//! The durable trace format and the out-of-process replay loop.
//!
//! Acceptance properties exercised here:
//!
//! * a workload recorded with `Config::record_to` replays **byte-identically**
//!   (equal `RunReport::fingerprint`) from the trace file alone, on a fresh
//!   runtime that never saw the original run -- for BOTH the binary and the
//!   JSON encoding, for a plain run and for a forced-replay run;
//! * binary <-> JSON conversion is lossless in both directions;
//! * truncated, corrupted, version-stamped, and non-trace files surface as
//!   typed `ErrorKind::TraceIo` / `ErrorKind::TraceVersion` errors, never a
//!   panic; replaying the wrong program or config is refused up front;
//! * strict replay stops at the first divergence with an error naming it;
//! * a checked-in `Trace::emit_test` fixture opens and replays green.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use ireplayer::{
    Config, EpochDecision, EpochView, ErrorKind, Program, ReplayRequest, RunReport, Runtime, Step, ToolHook, Trace,
    TraceFormat,
};

/// A scratch path in the system temp dir, unique per test and process so
/// parallel test binaries never collide.
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ireplayer-{name}-{}.trace", std::process::id()))
}

fn recording_config(path: &Path, format: TraceFormat) -> Config {
    Config::builder()
        .arena_size(4 << 20)
        .heap_block_size(128 << 10)
        .record_to(path)
        .trace_format(format)
        .build()
        .unwrap()
}

/// The replay side deliberately drops `record_to`: the config fingerprint
/// covers only execution-relevant knobs, so a runtime without a trace sink
/// still matches the recording's fingerprint.
fn replay_config() -> Config {
    Config::builder()
        .arena_size(4 << 20)
        .heap_block_size(128 << 10)
        .build()
        .unwrap()
}

/// A two-epoch workload touching every recorded input class: staged file
/// I/O, spawned workers contending on a mutex, heap traffic, and a
/// `gettimeofday` (whose outcome is the one sanctioned nondeterminism).
/// The step counter lives in simulated memory, not in the closure, so a
/// rollback rewinds it along with everything else.
fn recorded_workload() -> Program {
    Program::new("durable-workload", |ctx| {
        let step_cell = ctx.global("step", 8);
        let step = ctx.read_u64(step_cell);
        ctx.write_u64(step_cell, step + 1);
        if step == 0 {
            let total = ctx.global("total", 8);
            let lock = ctx.mutex();
            let scratch = ctx.alloc(256);
            ctx.fill(scratch, 256, 0x17);

            let fd = ctx.open("input.bin").expect("staged file");
            let data = ctx.read(fd, 32);
            ctx.write_u64(scratch, data.len() as u64);
            ctx.close(fd);
            let _ = ctx.now_ns();

            let mut workers = Vec::new();
            for _ in 0..2u64 {
                workers.push(ctx.spawn("worker", move |ctx| {
                    ctx.lock(lock);
                    let value = ctx.read_u64(total);
                    ctx.write_u64(total, value + 1);
                    ctx.unlock(lock);
                    Step::Done
                }));
            }
            for worker in workers {
                ctx.join(worker);
            }
            ctx.free(scratch);
            ctx.end_epoch();
            return Step::Yield;
        }
        let total = ctx.global("total", 8);
        let value = ctx.read_u64(total);
        ctx.assert_that(value == 2, "both workers incremented");
        Step::Done
    })
}

fn stage(runtime: &Runtime) {
    runtime.os().create_file("input.bin", vec![0xabu8; 48]);
}

/// Records `recorded_workload` durably, drops the recording runtime, and
/// returns the report plus the trace re-opened from disk.
fn record(path: &Path, format: TraceFormat) -> (RunReport, Trace) {
    let runtime = Runtime::new(recording_config(path, format)).unwrap();
    stage(&runtime);
    let report = runtime.run(recorded_workload()).unwrap();
    assert!(report.outcome.is_success(), "faults: {:?}", report.faults);
    drop(runtime);
    let trace = Trace::open(path).unwrap();
    (report, trace)
}

fn record_then_replay(format: TraceFormat) {
    let path = scratch(&format!("roundtrip-{format}"));
    let (recorded, trace) = record(&path, format);

    assert_eq!(trace.format(), format);
    assert_eq!(trace.program(), "durable-workload");
    assert!(trace.completed(), "the summary marks a finished run");
    assert_eq!(trace.fingerprint(), Some(recorded.fingerprint()));
    assert_eq!(trace.epoch_count() as u64, recorded.epochs);
    assert!(trace.epoch_count() >= 2, "the explicit boundary split the run");
    assert!(trace.event_count() > 0, "order logs were captured");

    // A fresh runtime: nothing staged, nothing shared with the recorder.
    // The trace alone restores the simulated-OS inputs and proves the
    // reproduction by fingerprint.
    let fresh = Runtime::new(replay_config()).unwrap();
    let replayed = fresh.replay_trace(recorded_workload(), &trace).unwrap();
    assert_eq!(replayed.fingerprint(), recorded.fingerprint());

    // Strict mode additionally matches every epoch's order logs in situ;
    // the workload is deterministic, so it passes too -- including the
    // gettimeofday whose outcome is exempt from the comparison.
    let strict = Runtime::new(replay_config()).unwrap();
    let replayed = strict.replay_trace_strict(recorded_workload(), &trace).unwrap();
    assert_eq!(replayed.fingerprint(), recorded.fingerprint());

    let _ = std::fs::remove_file(&path);
}

#[test]
fn recorded_binary_trace_replays_byte_identically_on_a_fresh_runtime() {
    record_then_replay(TraceFormat::Binary);
}

#[test]
fn recorded_json_trace_replays_byte_identically_on_a_fresh_runtime() {
    record_then_replay(TraceFormat::Json);
}

/// Requests one validation replay at every epoch end, forcing the
/// checkpoint-rollback-replay machinery into the recording.
struct ValidateAlways;

impl ToolHook for ValidateAlways {
    fn name(&self) -> &str {
        "validate-always"
    }

    fn at_epoch_end(&self, _view: &dyn EpochView) -> EpochDecision {
        EpochDecision::Replay(ReplayRequest::because("trace-roundtrip validation"))
    }
}

/// A two-epoch workload for validation replays, with its step counter in
/// simulated memory so a rollback re-executes the recorded branch.
fn hook_friendly_workload() -> Program {
    Program::new("forced-replay-workload", |ctx| {
        let step_cell = ctx.global("step", 8);
        let step = ctx.read_u64(step_cell);
        ctx.write_u64(step_cell, step + 1);
        if step == 0 {
            let lock = ctx.mutex();
            ctx.lock(lock);
            ctx.unlock(lock);
            let _ = ctx.now_ns();
            ctx.end_epoch();
            return Step::Yield;
        }
        let buffer = ctx.alloc(128);
        ctx.fill(buffer, 128, 0x2a);
        let fd = ctx.open("input.bin").expect("staged file");
        let data = ctx.read(fd, 16);
        ctx.assert_that(data.len() == 16, "the staged file holds 16+ bytes");
        ctx.close(fd);
        ctx.free(buffer);
        Step::Done
    })
}

#[test]
fn forced_replay_recordings_roundtrip_with_the_hook_reinstalled() {
    for format in [TraceFormat::Binary, TraceFormat::Json] {
        let path = scratch(&format!("forced-{format}"));
        let runtime = Runtime::new(recording_config(&path, format)).unwrap();
        runtime.add_hook(Arc::new(ValidateAlways));
        stage(&runtime);
        let recorded = runtime.run(hook_friendly_workload()).unwrap();
        assert!(
            !recorded.replay_validations.is_empty(),
            "the hook must force at least one replay"
        );
        assert!(recorded.replays_identical());
        drop(runtime);

        // Hooks are part of the workload: the recording ran under
        // ValidateAlways, so the replay must install it again.
        let trace = Trace::open(&path).unwrap();
        let fresh = Runtime::new(replay_config()).unwrap();
        fresh.add_hook(Arc::new(ValidateAlways));
        let replayed = fresh.replay_trace(hook_friendly_workload(), &trace).unwrap();
        assert_eq!(replayed.fingerprint(), recorded.fingerprint());
        assert!(!replayed.replay_validations.is_empty());

        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn binary_and_json_conversions_are_lossless() {
    let original = scratch("convert-src");
    let (_, binary) = record(&original, TraceFormat::Binary);

    // binary -> JSON -> binary: every hop compares equal (Trace equality
    // is over the recorded data, not the container format).
    let as_json = scratch("convert-json");
    binary.save(&as_json, TraceFormat::Json).unwrap();
    let json = Trace::open(&as_json).unwrap();
    assert_eq!(json.format(), TraceFormat::Json);
    assert_eq!(json, binary);

    let back = scratch("convert-back");
    json.save(&back, TraceFormat::Binary).unwrap();
    let reopened = Trace::open(&back).unwrap();
    assert_eq!(reopened.format(), TraceFormat::Binary);
    assert_eq!(reopened, binary);

    // The round-tripped binary is byte-identical to the recorder's own
    // output, not merely structurally equal.
    assert_eq!(std::fs::read(&back).unwrap(), std::fs::read(&original).unwrap());

    // And a converted trace still drives a replay.
    let fresh = Runtime::new(replay_config()).unwrap();
    let replayed = fresh.replay_trace(recorded_workload(), &json).unwrap();
    assert_eq!(Some(replayed.fingerprint()), json.fingerprint());

    for path in [original, as_json, back] {
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn malformed_trace_files_surface_typed_errors() {
    let source = scratch("malformed-src");
    let (_, _trace) = record(&source, TraceFormat::Binary);
    let bytes = std::fs::read(&source).unwrap();
    let broken = scratch("malformed-dst");

    // A path that does not exist: I/O error, with the path in the message.
    let missing = Trace::open(scratch("no-such-trace")).unwrap_err();
    assert_eq!(missing.kind(), ErrorKind::TraceIo);
    assert!(missing.trace_path().is_some());

    // Truncation: the checksum no longer covers the payload.
    std::fs::write(&broken, &bytes[..bytes.len() / 2]).unwrap();
    let error = Trace::open(&broken).unwrap_err();
    assert_eq!(error.kind(), ErrorKind::TraceIo, "{error}");

    // Bit corruption deep in the payload: caught by the checksum.
    let mut corrupted = bytes.clone();
    let last = corrupted.len() - 1;
    corrupted[last] ^= 0x40;
    std::fs::write(&broken, &corrupted).unwrap();
    let error = Trace::open(&broken).unwrap_err();
    assert_eq!(error.kind(), ErrorKind::TraceIo);
    assert!(error.to_string().contains("checksum"), "{error}");

    // A future format version: refused by name, not misparsed.
    let mut future = bytes.clone();
    future[4..8].copy_from_slice(&9u32.to_le_bytes());
    std::fs::write(&broken, &future).unwrap();
    let error = Trace::open(&broken).unwrap_err();
    assert_eq!(error.kind(), ErrorKind::TraceVersion);

    // Not a trace at all.
    std::fs::write(&broken, b"GIF89a not a trace").unwrap();
    let error = Trace::open(&broken).unwrap_err();
    assert_eq!(error.kind(), ErrorKind::TraceVersion);

    // JSON that is valid JSON but not a trace, and JSON stamped with a
    // foreign version: both refused with the version error.
    std::fs::write(&broken, b"{\"hello\": \"world\"}").unwrap();
    let error = Trace::open(&broken).unwrap_err();
    assert_eq!(error.kind(), ErrorKind::TraceVersion);

    let json_path = scratch("malformed-json");
    _trace.save(&json_path, TraceFormat::Json).unwrap();
    let text = std::fs::read_to_string(&json_path).unwrap();
    let stamped = text.replacen("\"version\": 3", "\"version\": 999", 1);
    assert_ne!(stamped, text, "the version field must be present to stamp");
    std::fs::write(&broken, stamped).unwrap();
    let error = Trace::open(&broken).unwrap_err();
    assert_eq!(error.kind(), ErrorKind::TraceVersion);

    for path in [source, broken, json_path] {
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn replays_of_the_wrong_program_or_config_are_refused_up_front() {
    let path = scratch("refused");
    let (_, trace) = record(&path, TraceFormat::Binary);

    // Wrong program name: refused before anything launches.
    let fresh = Runtime::new(replay_config()).unwrap();
    let error = fresh
        .replay_trace(Program::new("someone-else", |_| Step::Done), &trace)
        .unwrap_err();
    assert_eq!(error.kind(), ErrorKind::TraceMismatch);
    let (what, detail) = error.trace_divergence().unwrap();
    assert_eq!(what, "program name");
    assert!(detail.contains("durable-workload"), "{detail}");

    // Wrong configuration: a different seed changes the execution-relevant
    // fingerprint, so the replay is refused rather than left to diverge.
    let reseeded = Config {
        seed: 0x0dd_5eed,
        ..replay_config()
    };
    let other = Runtime::new(reseeded).unwrap();
    let error = other.replay_trace(recorded_workload(), &trace).unwrap_err();
    assert_eq!(error.kind(), ErrorKind::TraceMismatch);
    let (what, _) = error.trace_divergence().unwrap();
    assert_eq!(what, "config fingerprint");

    let _ = std::fs::remove_file(&path);
}

/// Same name, different body: `lock/unlock` once when recording, twice when
/// replaying.  Non-strict replay notices at the end (fingerprint); strict
/// replay stops at the first epoch whose order log disagrees.
fn shape_shifter(extra_ops: bool) -> Program {
    Program::new("shape-shifter", move |ctx| {
        let lock = ctx.mutex();
        ctx.lock(lock);
        ctx.unlock(lock);
        if extra_ops {
            ctx.lock(lock);
            ctx.unlock(lock);
        }
        Step::Done
    })
}

#[test]
fn strict_replay_stops_at_the_first_divergence() {
    let path = scratch("divergence");
    let runtime = Runtime::new(recording_config(&path, TraceFormat::Binary)).unwrap();
    let recorded = runtime.run(shape_shifter(false)).unwrap();
    drop(runtime);
    let trace = Trace::open(&path).unwrap();

    // Strict: the divergence is reported at the epoch boundary, naming the
    // order log that disagreed.
    let fresh = Runtime::new(replay_config()).unwrap();
    let error = fresh.replay_trace_strict(shape_shifter(true), &trace).unwrap_err();
    assert_eq!(error.kind(), ErrorKind::TraceMismatch);
    let (what, detail) = error.trace_divergence().unwrap();
    assert_eq!(what, "epoch order log");
    assert!(detail.contains("epoch"), "{detail}");

    // Non-strict: the same wrong body still cannot fake the recorded
    // fingerprint at the end of the run.
    let fresh = Runtime::new(replay_config()).unwrap();
    let error = fresh.replay_trace(shape_shifter(true), &trace).unwrap_err();
    assert_eq!(error.kind(), ErrorKind::TraceMismatch);
    assert!(error.trace_divergence().is_some());

    // The honest body replays clean in both modes.
    let fresh = Runtime::new(replay_config()).unwrap();
    let replayed = fresh.replay_trace_strict(shape_shifter(false), &trace).unwrap();
    assert_eq!(replayed.fingerprint(), recorded.fingerprint());

    let _ = std::fs::remove_file(&path);
}

fn fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/durable_workload.json")
}

fn fixture_v2_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/durable_workload_v2.json")
}

/// The checked-in fixture (`tests/fixtures/durable_workload.json`, produced
/// by [`Trace::emit_test`] via the `regenerate_fixture` test below) opens
/// and replays green, pinning the on-disk format across refactors.
#[test]
fn checked_in_fixture_replays_green() {
    let trace = Trace::open(fixture_path()).unwrap();
    assert_eq!(trace.format(), TraceFormat::Json);
    assert_eq!(trace.version(), 3);
    assert_eq!(trace.program(), "durable-workload");
    assert!(trace.completed());

    let fresh = Runtime::new(replay_config()).unwrap();
    let replayed = fresh.replay_trace_strict(recorded_workload(), &trace).unwrap();
    assert_eq!(Some(replayed.fingerprint()), trace.fingerprint());
}

/// The frozen version-2 fixture (the pre-compression format) still opens,
/// still replays fingerprint-identically, and describes the same run as
/// its regenerated version-3 sibling -- the version-compatibility rule is
/// load-bearing, not aspirational.
#[test]
fn version_2_fixture_still_replays_green() {
    let trace = Trace::open(fixture_v2_path()).unwrap();
    assert_eq!(trace.format(), TraceFormat::Json);
    assert_eq!(trace.version(), 2);
    assert_eq!(trace.program(), "durable-workload");
    assert!(trace.completed());

    let fresh = Runtime::new(replay_config()).unwrap();
    let replayed = fresh.replay_trace_strict(recorded_workload(), &trace).unwrap();
    assert_eq!(Some(replayed.fingerprint()), trace.fingerprint());

    // Both generations pin the same recording: identical fingerprint, and
    // epoch-for-epoch the same order logs once decoded.
    let current = Trace::open(fixture_path()).unwrap();
    assert_eq!(trace.fingerprint(), current.fingerprint());
    assert_eq!(trace.epoch_count(), current.epoch_count());
    assert_eq!(trace.event_count(), current.event_count());

    // A version-2 trace converts to binary and back without being silently
    // upgraded to the new framing.
    let binary_path = scratch("v2-fixture-binary");
    trace.save(&binary_path, TraceFormat::Binary).unwrap();
    let reopened = Trace::open(&binary_path).unwrap();
    assert_eq!(reopened.version(), 2);
    assert_eq!(reopened, trace);
    let _ = std::fs::remove_file(&binary_path);
}

/// Regenerates the checked-in fixture; run manually after an intentional
/// format change: `cargo test -p ireplayer-tests --test trace_roundtrip
/// regenerate_fixture -- --ignored`.
#[test]
#[ignore = "regenerates tests/fixtures/durable_workload.json in place"]
fn regenerate_fixture() {
    let path = scratch("regenerate");
    let (_, trace) = record(&path, TraceFormat::Binary);
    trace.emit_test(fixture_path()).unwrap();
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------------
// The explorer-minimized chaos fixture.
// ---------------------------------------------------------------------------

use ireplayer::{ChaosPlan, ChaosProfile, FaultClass, ShrinkStep};
use ireplayer_workloads::{Ledger, Workload, WorkloadSpec};

/// The reproduction recipe the chaos explorer found for the planted
/// `flaky-ledger` ordering bug (printed by `chaos_hunt.rs`'s
/// `regenerate_minimized_fixture`): seed 0 of the heavy profile,
/// delta-debugged from weight 2098 down to a single net-reset slot.
fn minimized_ledger_plan() -> ChaosPlan {
    use FaultClass::*;
    use ShrinkStep::*;
    let steps = [
        DropClass(ShortRead),
        DropClass(ShortWrite),
        DropClass(NetEagain),
        DropClass(NetPartition),
        DropClass(ClockJump),
        DropClass(MmapExhausted),
        DropClass(FdPressure),
        DropClass(AllocFail),
        KeepFirstHalf(NetReset),
        KeepFirstHalf(NetReset),
        KeepFirstHalf(NetReset),
        KeepFirstHalf(NetReset),
        KeepFirstHalf(NetReset),
        KeepFirstHalf(NetReset),
    ];
    let mut plan = ChaosPlan::compile(0, ChaosProfile::heavy());
    for step in steps {
        plan = ireplayer::shrink_candidates(&plan)
            .into_iter()
            .find(|(cut, _)| *cut == step)
            .map(|(_, shrunk)| shrunk)
            .expect("every recipe step is a legal shrink of its predecessor");
    }
    plan
}

fn chaos_fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/chaos_hunt_min.json")
}

/// The checked-in explorer fixture (`tests/fixtures/chaos_hunt_min.json`,
/// produced by `ChaosExplorer::emit_fixture` via `chaos_hunt.rs`'s
/// `regenerate_minimized_fixture` test) opens, matches the recipe-rebuilt
/// minimized plan, and replays the planted ledger failure
/// fingerprint-identically on a fresh runtime.
#[test]
fn minimized_chaos_fixture_replays_green() {
    let plan = minimized_ledger_plan();
    assert_eq!(plan.weight(), 1, "the recipe rebuilds the single-slot reproducer");

    let trace = Trace::open(chaos_fixture_path()).unwrap();
    assert_eq!(trace.format(), TraceFormat::Json);
    assert_eq!(trace.program(), "flaky-ledger");
    assert_eq!(
        trace.chaos_digest(),
        plan.digest(),
        "the fixture pins the minimized plan"
    );
    assert!(!trace.completed(), "the recorded run trips the planted audit bug");

    let config = Config::builder()
        .partitions(1)
        .arena_size(16 << 20)
        .heap_block_size(256 << 10)
        .quiescence_timeout_ms(20_000)
        .chaos(plan)
        .build()
        .unwrap();
    let fresh = Runtime::new(config).unwrap();
    let replayed = fresh
        .replay_trace(Ledger.program(&WorkloadSpec::tiny()), &trace)
        .unwrap();
    assert_eq!(Some(replayed.fingerprint()), trace.fingerprint());
    assert!(
        matches!(&replayed.outcome, ireplayer::RunOutcome::Faulted(fault)
            if matches!(&fault.kind, ireplayer::FaultKind::AssertionFailure { message }
                if message == ireplayer_workloads::LEDGER_AUDIT)),
        "the replay reproduces the planted fault, got {:?}",
        replayed.outcome
    );
}
