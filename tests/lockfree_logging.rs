//! Stress coverage for the lock-free logging layer: the single-writer
//! per-thread lists and the reserve-then-publish per-variable lists must
//! yield identical replays under sustained multi-thread recording.
//!
//! Eight threads (the main thread plus seven workers) hammer one contended
//! mutex and many uncontended ones across 40+ epochs, and a hook forces a
//! rollback-and-replay of *every* epoch, so each recorded schedule is
//! re-executed and byte-compared against the original.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ireplayer::{
    Config, EpochDecision, EpochView, JoinHandle, MutexHandle, Program, ReplayRequest, Runtime, Step, ToolHook,
};

const WORKERS: u64 = 7;
const EPOCHS: u64 = 48;

fn config() -> Config {
    Config::builder()
        .arena_size(16 << 20)
        .heap_block_size(256 << 10)
        .max_replay_attempts(32)
        .quiescence_timeout_ms(30_000)
        .build()
        .unwrap()
}

/// Forces a rollback and replay at the end of every epoch.
struct ReplayEveryEpoch {
    replays: AtomicU64,
}

impl ToolHook for ReplayEveryEpoch {
    fn name(&self) -> &str {
        "replay-every-epoch"
    }

    fn at_epoch_end(&self, _view: &dyn EpochView) -> EpochDecision {
        self.replays.fetch_add(1, Ordering::Relaxed);
        EpochDecision::Replay(ReplayRequest::because("lock-free logging stress"))
    }
}

/// 8 threads, one contended + many uncontended mutexes, an epoch boundary
/// (and forced replay) every main-thread step, 40+ times.
#[test]
fn eight_thread_stress_replays_identically_across_40_epochs() {
    let runtime = Runtime::new(config()).unwrap();
    let hook = Arc::new(ReplayEveryEpoch {
        replays: AtomicU64::new(0),
    });
    runtime.add_hook(hook.clone());

    // Captured across steps; rebuilt whenever the rollback-safe `spawned`
    // flag in managed memory reads zero (so an epoch-0 replay re-creates
    // the same handles through the recorded creation events).
    let mut setup: Option<(MutexHandle, Vec<JoinHandle>)> = None;

    let report = runtime
        .run(Program::new("lockfree-stress", move |ctx| {
            let spawned_flag = ctx.global("spawned", 8);
            let epoch_cell = ctx.global("epochs", 8);
            let shared_cell = ctx.global("shared", 8);
            if ctx.read_u64(spawned_flag) == 0 {
                ctx.write_u64(spawned_flag, 1);
                let shared_mutex = ctx.mutex();
                let mut workers = Vec::new();
                for w in 0..WORKERS {
                    // Each worker gets its own (uncontended) mutexes + cell.
                    let own_mutexes = [ctx.mutex(), ctx.mutex(), ctx.mutex()];
                    let own_cell = ctx.global(&format!("worker-{w}"), 8);
                    workers.push(ctx.spawn(format!("worker-{w}"), move |ctx| {
                        // Uncontended section: cycle the private mutexes.
                        for (round, own) in own_mutexes.iter().enumerate() {
                            ctx.lock(*own);
                            let value = ctx.read_u64(own_cell);
                            ctx.write_u64(own_cell, value + round as u64 + 1);
                            ctx.unlock(*own);
                        }
                        // Contended section: all eight threads take this.
                        ctx.lock(shared_mutex);
                        let value = ctx.read_u64(shared_cell);
                        ctx.write_u64(shared_cell, value + 1);
                        ctx.unlock(shared_mutex);
                        if ctx.read_u64(own_cell) >= (1 + 2 + 3) * EPOCHS {
                            Step::Done
                        } else {
                            Step::Yield
                        }
                    }));
                }
                setup = Some((shared_mutex, workers));
            }
            let (shared_mutex, workers) = setup.as_ref().expect("setup ran on the first step");

            // The main thread participates in the contention and closes an
            // epoch per step until the quota is reached.
            let done = ctx.read_u64(epoch_cell) + 1;
            ctx.write_u64(epoch_cell, done);
            ctx.lock(*shared_mutex);
            let value = ctx.read_u64(shared_cell);
            ctx.write_u64(shared_cell, value + 1);
            ctx.unlock(*shared_mutex);
            if done >= EPOCHS {
                for worker in workers.clone() {
                    ctx.join(worker);
                }
                let total = ctx.read_u64(shared_cell);
                ctx.assert_that(total >= EPOCHS + WORKERS, "every thread reached the contended mutex");
                Step::Done
            } else {
                ctx.end_epoch();
                Step::Yield
            }
        }))
        .unwrap();

    assert!(report.outcome.is_success(), "faults: {:?}", report.faults);
    assert_eq!(report.threads as u64, 1 + WORKERS);
    assert!(
        report.replay_validations.len() as u64 >= 40,
        "expected >= 40 record/replay iterations, got {}",
        report.replay_validations.len()
    );
    assert!(hook.replays.load(Ordering::Relaxed) >= 40);
    assert!(
        report.replays_identical(),
        "a replay diverged or produced a different image: {:?}",
        report
            .replay_validations
            .iter()
            .filter(|v| !v.matched || v.image_diff.map(|d| !d.is_identical()).unwrap_or(false))
            .collect::<Vec<_>>()
    );
    assert!(report.sync_events > 0);
}

/// The workers-only variant keeps every mutex uncontended, exercising the
/// pure fast path end to end (record + replay) for many epochs.
#[test]
fn uncontended_workers_replay_identically() {
    let runtime = Runtime::new(config()).unwrap();
    let report = runtime
        .run(Program::new("lockfree-uncontended", |ctx| {
            let mut workers = Vec::new();
            for w in 0..4u64 {
                let own_mutex = ctx.mutex();
                let own_cell = ctx.global(&format!("cell-{w}"), 8);
                workers.push(ctx.spawn(format!("worker-{w}"), move |ctx| {
                    for _ in 0..8 {
                        ctx.lock(own_mutex);
                        let value = ctx.read_u64(own_cell);
                        ctx.write_u64(own_cell, value + 1);
                        ctx.unlock(own_mutex);
                    }
                    if ctx.read_u64(own_cell) >= 80 {
                        Step::Done
                    } else {
                        Step::Yield
                    }
                }));
            }
            for worker in workers {
                ctx.join(worker);
            }
            ctx.end_epoch();
            Step::Done
        }))
        .unwrap();
    assert!(report.outcome.is_success(), "faults: {:?}", report.faults);
    assert!(report.replays_identical());
}
