//! Race handling (paper §2.2.2, §3.5.2, §5.2.1): data races are not
//! recorded; divergence is detected during replay and the runtime searches
//! for a matching schedule with bounded random delays.

use ireplayer::{Config, Program, Runtime, Step};
use ireplayer_workloads::{Crasher, Workload, WorkloadSpec};

fn config() -> Config {
    Config::builder()
        .arena_size(16 << 20)
        .heap_block_size(256 << 10)
        .max_replay_attempts(16)
        .quiescence_timeout_ms(20_000)
        .build()
        .unwrap()
}

#[test]
fn crasher_race_is_reproduced_by_the_diagnostic_replay() {
    // Run Crasher until one execution crashes (its race fires in the vast
    // majority of executions), then check the rollback machinery engaged.
    let crasher = Crasher::table2();
    let spec = WorkloadSpec::tiny();
    let mut observed_crash = false;
    for _ in 0..5 {
        let runtime = Runtime::new(config()).unwrap();
        crasher.stage(&runtime, &spec);
        let report = runtime.run(crasher.program(&spec)).unwrap();
        if report.outcome.is_success() {
            continue;
        }
        observed_crash = true;
        assert!(!report.faults.is_empty());
        let validation = report.replay_validations.first().expect("diagnostic replay");
        assert!(validation.attempts >= 1);
        break;
    }
    assert!(observed_crash, "the race never manifested in five executions");
}

#[test]
fn racy_counter_still_yields_a_matching_replay() {
    // An unsynchronized counter: both threads increment without a lock.
    // Whatever interleaving the original execution took, the recorded
    // synchronization order (thread create/join only) admits it, so the
    // replay search terminates and the run completes.
    let runtime = Runtime::new(config()).unwrap();
    let report = runtime
        .run(Program::new("racy-counter", |ctx| {
            let counter = ctx.global("counter", 8);
            let racer = ctx.spawn("racer", move |ctx| {
                for _ in 0..200 {
                    let value = ctx.read_u64(counter);
                    ctx.write_u64(counter, value + 1);
                }
                Step::Done
            });
            for _ in 0..200 {
                let value = ctx.read_u64(counter);
                ctx.write_u64(counter, value + 1);
            }
            ctx.join(racer);
            Step::Done
        }))
        .unwrap();
    assert!(report.outcome.is_success(), "faults: {:?}", report.faults);
    // Lost updates are possible (it is a race), but memory safety and
    // recording hold: between 200 and 400 increments survive.
    assert!(report.sync_events > 0);
}

#[test]
fn divergence_statistics_are_reported() {
    // Force a replay of a racy program and check that divergence counters
    // are surfaced in the report (they may be zero if the first replay
    // matches, which is the common case per Table 2).
    let crasher = Crasher {
        null_window_us: 400,
        rounds: 10,
    };
    let spec = WorkloadSpec::tiny();
    for _ in 0..3 {
        let runtime = Runtime::new(config()).unwrap();
        crasher.stage(&runtime, &spec);
        let report = runtime.run(crasher.program(&spec)).unwrap();
        if !report.outcome.is_success() {
            let validation = &report.replay_validations[0];
            assert!(validation.attempts >= 1);
            assert!(report.replay_attempts as u32 >= validation.attempts);
            return;
        }
    }
    // No crash in three runs is extremely unlikely but not an error of the
    // replay machinery itself.
}
