//! End-to-end behaviour of the five system-call classes (paper §2.2.3),
//! observed through the public API.

use ireplayer::{Config, Program, Runtime, Step, SyscallClass, SyscallKind, Whence};

fn config() -> Config {
    Config::builder()
        .arena_size(8 << 20)
        .heap_block_size(128 << 10)
        .build()
        .unwrap()
}

#[test]
fn classification_table_matches_the_paper() {
    use SyscallClass::*;
    assert_eq!(SyscallKind::GetPid.classify(), Repeatable);
    assert_eq!(SyscallKind::GetTime.classify(), Recordable);
    assert_eq!(SyscallKind::FileRead.classify(), Revocable);
    assert_eq!(SyscallKind::Close.classify(), Deferrable);
    assert_eq!(SyscallKind::Munmap.classify(), Deferrable);
    assert_eq!(SyscallKind::Fork.classify(), Irrevocable);
    assert_eq!(SyscallKind::Lseek { repositions: true }.classify(), Irrevocable);
    assert_eq!(SyscallKind::FcntlGet.classify(), Repeatable);
    assert_eq!(SyscallKind::FcntlDupFd.classify(), Recordable);
}

#[test]
fn repeatable_calls_are_not_recorded() {
    let runtime = Runtime::new(config()).unwrap();
    let report = runtime
        .run(Program::new("getpid", |ctx| {
            let a = ctx.getpid();
            let b = ctx.getpid();
            ctx.assert_that(a == b, "pid is stable");
            Step::Done
        }))
        .unwrap();
    assert!(report.outcome.is_success());
    assert_eq!(report.sync_events, 0, "repeatable calls add no events");
    assert_eq!(report.syscalls, 2);
}

#[test]
fn deferred_close_runs_at_the_next_epoch_boundary() {
    let runtime = Runtime::new(config()).unwrap();
    runtime.os().create_file("data", vec![0; 64]);
    let report = runtime
        .run(Program::new("close-then-epoch", {
            let mut phase = 0u64;
            move |ctx| {
                match phase {
                    0 => {
                        let fd = ctx.open("data").unwrap();
                        ctx.close(fd);
                        // The descriptor stays open until the epoch ends.
                        let second = ctx.open("data").unwrap();
                        ctx.assert_that(second != fd, "close is deferred");
                        ctx.end_epoch();
                    }
                    _ => {
                        // After the boundary, the deferred close has been
                        // issued and the lowest descriptor is available
                        // again.
                        let third = ctx.open("data").unwrap();
                        ctx.assert_that(third == 3, "deferred close released fd 3");
                        return Step::Done;
                    }
                }
                phase += 1;
                Step::Yield
            }
        }))
        .unwrap();
    assert!(report.outcome.is_success(), "faults: {:?}", report.faults);
    assert!(report.epochs >= 2, "the explicit epoch boundary was honoured");
}

#[test]
fn irrevocable_fork_closes_the_epoch() {
    let runtime = Runtime::new(config()).unwrap();
    let report = runtime
        .run(Program::new("forker", {
            let mut rounds = 0u64;
            move |ctx| {
                if rounds == 0 {
                    let child = ctx.fork();
                    ctx.assert_that(child > 0, "fork returns a child pid");
                }
                rounds += 1;
                if rounds >= 3 {
                    Step::Done
                } else {
                    Step::Yield
                }
            }
        }))
        .unwrap();
    assert!(report.outcome.is_success());
    assert!(
        report.epochs >= 2,
        "an irrevocable call must start a new epoch (saw {})",
        report.epochs
    );
}

#[test]
fn revocable_file_io_and_recordable_sockets_round_trip() {
    let runtime = Runtime::new(config()).unwrap();
    runtime.os().create_file("in.txt", b"0123456789abcdef".to_vec());
    runtime
        .os()
        .register_peer("peer:1", ireplayer::PeerScript::Echo { response_len: 8 });
    let report = runtime
        .run(Program::new("io", |ctx| {
            let fd = ctx.open("in.txt").unwrap();
            let head = ctx.read(fd, 4);
            ctx.assert_that(head == b"0123", "file read returns file data");
            let pos = ctx.lseek(fd, 0, Whence::Cur);
            ctx.assert_that(pos == 4, "position advanced");

            let sock = ctx.connect("peer:1").unwrap();
            ctx.send(sock, b"ping");
            let reply = ctx.recv(sock, 16);
            ctx.assert_that(reply.len() == 8, "echo peer replied");
            ctx.close(sock);
            ctx.close(fd);
            Step::Done
        }))
        .unwrap();
    assert!(report.outcome.is_success(), "faults: {:?}", report.faults);
    assert!(report.syscalls >= 7);
}
