//! The chaos explorer end to end: sweep, classify, shrink, fixture.
//!
//! Acceptance properties exercised here (ISSUE 10):
//!
//! * a bounded seed sweep over the `flaky-ledger` subject finds the
//!   planted ordering bug (reset between send and acknowledgement leaves
//!   the ledger audit unbalanced);
//! * the delta-debugging minimizer reproduces the **identical** failure
//!   fingerprint from a plan at least 4x lighter, and the minimized plan
//!   fires only slots the original plan fired (subset);
//! * a sweep over a chaos-hardened subject (`job-steal`) reports zero
//!   failures while still injecting faults -- the explorer does not
//!   manufacture failures;
//! * a minimized find emitted through `ChaosExplorer::emit_fixture`
//!   replays fingerprint-identically from the durable trace alone.

use std::path::PathBuf;

use ireplayer::{ChaosExplorer, ChaosProfile, Config, ExploreSubject, FaultKind, OutcomeClass, Runtime, Trace};
use ireplayer_workloads::{workload_by_name, Ledger, Workload, WorkloadSpec, LEDGER_AUDIT};

/// A scratch path in the system temp dir, unique per test and process so
/// parallel test binaries never collide.
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ireplayer-{name}-{}.trace", std::process::id()))
}

fn hunt_config(partitions: usize) -> Config {
    Config::builder()
        .partitions(partitions)
        .arena_size(16 << 20)
        .heap_block_size(256 << 10)
        .quiescence_timeout_ms(20_000)
        .build()
        .unwrap()
}

fn ledger_subject() -> ExploreSubject {
    let spec = WorkloadSpec::tiny();
    ExploreSubject::new("flaky-ledger", move || Ledger.program(&spec)).with_stage(Ledger::stage_os)
}

/// The seed budget the planted bug must be found within.
const SEED_BUDGET: u64 = 32;

fn hunt_seeds() -> Vec<u64> {
    (0..SEED_BUDGET).collect()
}

fn is_planted_bug(outcome: &OutcomeClass) -> bool {
    matches!(
        outcome,
        OutcomeClass::Faulted(FaultKind::AssertionFailure { message }) if message == LEDGER_AUDIT
    )
}

#[test]
fn explorer_finds_and_minimizes_the_planted_ledger_bug() {
    let runtime = Runtime::new(hunt_config(2)).unwrap();
    let explorer = ChaosExplorer::new(&runtime, ledger_subject());
    let report = explorer.hunt(&hunt_seeds(), ChaosProfile::heavy()).unwrap();

    assert_eq!(report.outcomes.len(), SEED_BUDGET as usize);
    assert!(
        report.failures() >= 1,
        "no heavy seed in 0..{SEED_BUDGET} failed: {}",
        report.to_json()
    );
    let find = report
        .finds
        .iter()
        .find(|find| is_planted_bug(&find.outcome))
        .expect("the planted ledger bug was not among the minimized finds");

    // Minimization soundness: the identity was preserved through every cut.
    assert!(is_planted_bug(&find.outcome));
    assert_eq!(find.outcome.fingerprint(), Some(find.fingerprint));
    assert!(!find.steps.is_empty(), "a heavy plan must shrink at least once");

    // The minimized plan is a strict subset of the original's slots.
    assert!(find.is_subset(), "minimized plan fires slots the original never fired");
    assert!(find.minimized.weight() < find.original.weight());

    // The acceptance bar: at least a 4x reduction in fault-schedule weight.
    assert!(
        find.shrink_ratio() >= 4.0,
        "only shrank {:.1}x (weight {} -> {})",
        find.shrink_ratio(),
        find.original.weight(),
        find.minimized.weight()
    );

    // Re-probing the minimized plan reproduces the identical fingerprint:
    // the find is a deterministic reproducer, not a one-off.
    let again = explorer.probe(&find.minimized).unwrap();
    assert_eq!(again.fingerprint(), Some(find.fingerprint));

    // The report serializes with the headline numbers.
    let json = report.to_json();
    for needle in [
        "\"subject\": \"flaky-ledger\"",
        &format!("\"plans_tried\": {SEED_BUDGET}"),
        "mean_shrink_ratio_per_mille",
        "\"minimized\":",
    ] {
        assert!(json.contains(needle), "missing {needle} in:\n{json}");
    }
}

#[test]
fn clean_subject_sweeps_report_zero_failures() {
    // job-steal handles every fault class fallibly, so any plan is
    // survivable: the explorer must come back empty-handed.
    let runtime = Runtime::new(hunt_config(2)).unwrap();
    let workload = workload_by_name("job-steal").expect("chaos-suite workload");
    let spec = WorkloadSpec::tiny();
    let subject = ExploreSubject::new("job-steal", move || workload.program(&spec));
    let explorer = ChaosExplorer::new(&runtime, subject);

    let seeds: Vec<u64> = (0..8).collect();
    let report = explorer.hunt(&seeds, ChaosProfile::heavy()).unwrap();

    assert_eq!(report.failures(), 0, "{}", report.to_json());
    assert!(report.finds.is_empty());
    assert_eq!(report.trials, 8, "a clean sweep spends no minimization probes");
    assert!(report.outcomes.iter().all(|o| o.outcome == OutcomeClass::Clean));
    // The sweep was not a no-op: the heavy plans really injected faults
    // through the per-launch override path.
    assert!(
        report.outcomes.iter().any(|o| o.faults_injected > 0),
        "no heavy plan injected anything: {}",
        report.to_json()
    );
}

#[test]
fn emitted_fixture_replays_fingerprint_identically() {
    let runtime = Runtime::new(hunt_config(1)).unwrap();
    let explorer = ChaosExplorer::new(&runtime, ledger_subject());

    let outcomes = explorer.sweep(&hunt_seeds(), ChaosProfile::heavy()).unwrap();
    let failing = outcomes
        .iter()
        .find(|o| is_planted_bug(&o.outcome))
        .expect("a heavy seed trips the planted bug");
    let find = explorer.minimize(&failing.plan).unwrap();

    let fixture = scratch("hunt-fixture");
    let trace = explorer.emit_fixture(&find, &fixture).unwrap();
    assert_eq!(trace.program(), "flaky-ledger");
    assert_eq!(trace.chaos_digest(), find.minimized.digest());
    assert!(!trace.completed(), "the recorded run faulted by design");

    // A fresh runtime that never saw the hunt: the minimized plan plus the
    // trace alone reproduce the failing run byte-identically.
    let mut config = hunt_config(1);
    config.chaos = Some(find.minimized.clone());
    let fresh = Runtime::new(config).unwrap();
    let reopened = Trace::open(&fixture).unwrap();
    let spec = WorkloadSpec::tiny();
    let replayed = fresh.replay_trace(Ledger.program(&spec), &reopened).unwrap();
    assert_eq!(Some(replayed.fingerprint()), reopened.fingerprint());
    assert!(
        is_planted_bug(&match &replayed.outcome {
            ireplayer::RunOutcome::Faulted(fault) => OutcomeClass::Faulted(fault.kind.clone()),
            _ => OutcomeClass::Clean,
        }),
        "the replay must reproduce the planted fault, got {:?}",
        replayed.outcome
    );

    let _ = std::fs::remove_file(&fixture);
}

/// Regenerates the checked-in explorer fixture
/// (`tests/fixtures/chaos_hunt_min.json`) and prints the reproduction
/// recipe to paste into `tests/trace_roundtrip.rs`; run manually after an
/// intentional format or plan change: `cargo test -p ireplayer-tests
/// --test chaos_hunt regenerate_minimized_fixture -- --ignored
/// --nocapture`.
#[test]
#[ignore = "regenerates tests/fixtures/chaos_hunt_min.json in place"]
fn regenerate_minimized_fixture() {
    let runtime = Runtime::new(hunt_config(1)).unwrap();
    let explorer = ChaosExplorer::new(&runtime, ledger_subject());
    let outcomes = explorer.sweep(&hunt_seeds(), ChaosProfile::heavy()).unwrap();
    let failing = outcomes
        .iter()
        .find(|o| is_planted_bug(&o.outcome))
        .expect("a heavy seed trips the planted bug");
    let find = explorer.minimize(&failing.plan).unwrap();
    let fixture = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/chaos_hunt_min.json");
    explorer.emit_fixture(&find, &fixture).unwrap();
    println!("seed: {}", find.original.seed);
    println!("steps: {:?}", find.steps);
    println!("minimized digest: {:#018x}", find.minimized.digest());
    println!(
        "shrink: {:.1}x ({} -> {})",
        find.shrink_ratio(),
        find.original.weight(),
        find.minimized.weight()
    );
}
