//! End-to-end tests of the detection tools (paper §4, §5.4): evidence-based
//! detection at epoch boundaries plus root-cause identification through
//! watchpoint replays.

use ireplayer::{Program, Step};
use ireplayer_bench::detection_runtime;
use ireplayer_detect::BugKind;

#[test]
fn overflow_in_a_worker_thread_is_diagnosed_with_its_culprit_write() {
    let (runtime, overflow, _uaf) = detection_runtime();
    let report = runtime
        .run(Program::new("worker-overflow", |ctx| {
            let buffer = ctx.alloc(40);
            let worker = ctx.spawn("filler", move |ctx| {
                // Off-by-one: writes 6 * 8 = 48 bytes into a 40-byte buffer.
                for i in 0..6u64 {
                    ctx.write_u64(buffer + i * 8, i);
                }
                Step::Done
            });
            ctx.join(worker);
            Step::Done
        }))
        .unwrap();
    assert!(report.outcome.is_success());

    let bugs = overflow.reports();
    assert_eq!(bugs.len(), 1);
    assert_eq!(bugs[0].kind, BugKind::HeapOverflow);
    assert!(bugs[0].alloc_site.is_some(), "allocation site is reported");
    let culprit = bugs[0].culprit.as_ref().expect("culprit write identified");
    assert_eq!(culprit.thread, 1, "the worker thread performed the write");
    assert!(culprit.site.is_some(), "faulting statement is reported");
}

#[test]
fn use_after_free_is_diagnosed_with_alloc_and_free_sites() {
    let (runtime, _overflow, uaf) = detection_runtime();
    let report = runtime
        .run(Program::new("dangling-write", |ctx| {
            let cache_entry = ctx.alloc(96);
            ctx.write_u64(cache_entry, 0x11);
            ctx.free(cache_entry);
            // The entry is quarantined; this dangling write is the bug.
            ctx.write_u64(cache_entry + 16, 0x22);
            Step::Done
        }))
        .unwrap();
    assert!(report.outcome.is_success());

    let bugs = uaf.reports();
    assert_eq!(bugs.len(), 1);
    assert_eq!(bugs[0].kind, BugKind::UseAfterFree);
    assert!(bugs[0].alloc_site.is_some());
    assert!(bugs[0].free_site.is_some());
    assert!(bugs[0].culprit.is_some());
}

#[test]
fn clean_programs_produce_no_reports_and_no_replays() {
    let (runtime, overflow, uaf) = detection_runtime();
    let report = runtime
        .run(Program::new("clean", |ctx| {
            let buffer = ctx.alloc(64);
            for i in 0..8u64 {
                ctx.write_u64(buffer + i * 8, i);
            }
            ctx.free(buffer);
            let reused = ctx.alloc(64);
            ctx.write_u64(reused, 9);
            ctx.free(reused);
            Step::Done
        }))
        .unwrap();
    assert!(report.outcome.is_success());
    assert!(overflow.reports().is_empty());
    assert!(uaf.reports().is_empty());
    assert_eq!(report.replay_attempts, 0);
}

#[test]
fn implanted_overflows_in_workloads_are_detected() {
    // §5.4.1: the detector catches the implanted end-of-main overflow in
    // the evaluated applications.
    use ireplayer_workloads::{workload_by_name, WorkloadSpec};
    for name in ["swaptions", "pfscan"] {
        let (runtime, overflow, _uaf) = detection_runtime();
        let workload = workload_by_name(name).unwrap();
        let spec = WorkloadSpec::tiny().with_overflow();
        workload.stage(&runtime, &spec);
        let report = runtime.run(workload.program(&spec)).unwrap();
        assert!(report.outcome.is_success());
        assert_eq!(overflow.reports().len(), 1, "{name}: implanted overflow not detected");
    }
}
