//! Property-based tests of the core invariants: deterministic heap layout,
//! identical replay of randomized programs, and uniqueness of Ball-Larus
//! path identifiers.

use proptest::prelude::*;

use ireplayer::{AllocatorMode, Config, Program, Runtime, Step};
use ireplayer_baselines::{BallLarus, Cfg};

fn config(allocator: AllocatorMode) -> Config {
    Config::builder()
        .arena_size(8 << 20)
        .heap_block_size(128 << 10)
        .allocator(allocator)
        .build()
        .unwrap()
}

/// Runs a single-threaded allocation/free script and returns the addresses
/// handed out plus the final heap hash.
fn run_alloc_script(script: Vec<(u16, bool)>) -> (Vec<u64>, u64) {
    let runtime = Runtime::new(config(AllocatorMode::PerThread)).unwrap();
    let addresses = std::sync::Arc::new(parking::Cell::default());
    let addresses_for_run = addresses.clone();
    let report = runtime
        .run(Program::new("alloc-script", move |ctx| {
            let mut live = Vec::new();
            let mut seen = Vec::new();
            for (size, do_free) in &script {
                let addr = ctx.alloc(usize::from(*size) + 1);
                seen.push(addr.offset());
                if *do_free {
                    if let Some(victim) = live.pop() {
                        ctx.free(victim);
                    }
                }
                live.push(addr);
            }
            addresses_for_run.set(seen);
            Step::Done
        }))
        .unwrap();
    assert!(report.outcome.is_success());
    (addresses.get(), report.final_heap_hash)
}

/// Tiny shared cell (std only) used to extract results from program bodies.
mod parking {
    use std::sync::Mutex;

    #[derive(Default)]
    pub struct Cell(Mutex<Vec<u64>>);

    impl Cell {
        pub fn set(&self, value: Vec<u64>) {
            *self.0.lock().unwrap() = value;
        }
        pub fn get(&self) -> Vec<u64> {
            self.0.lock().unwrap().clone()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// §2.2.4: the deterministic heap hands out identical addresses for
    /// identical allocation sequences, across independent executions.
    #[test]
    fn allocator_layout_is_a_pure_function_of_the_program(
        script in proptest::collection::vec((1u16..2048, any::<bool>()), 1..40)
    ) {
        let (first_addresses, first_hash) = run_alloc_script(script.clone());
        let (second_addresses, second_hash) = run_alloc_script(script);
        prop_assert_eq!(first_addresses, second_addresses);
        prop_assert_eq!(first_hash, second_hash);
    }

    /// Ball-Larus numbering assigns unique, dense identifiers on random
    /// two-way branching DAGs.
    #[test]
    fn ball_larus_ids_are_unique_and_dense(branches in proptest::collection::vec(any::<bool>(), 1..8)) {
        // Build a chain of diamonds: block 2i branches to 2i+1 / 2i+2 style.
        let blocks = branches.len() * 2 + 1;
        let mut cfg = Cfg::new(blocks);
        for (i, _) in branches.iter().enumerate() {
            let base = i * 2;
            cfg.add_edge(base, base + 1);
            cfg.add_edge(base, base + 2);
            cfg.add_edge(base + 1, base + 2);
        }
        let numbering = BallLarus::number(&cfg);
        prop_assert_eq!(numbering.num_paths(), 1u64 << branches.len());

        // Enumerate every path and check identifiers are a permutation of
        // 0..num_paths.
        let mut ids = Vec::new();
        for mask in 0..(1usize << branches.len()) {
            let mut path = vec![0usize];
            for (i, _) in branches.iter().enumerate() {
                let base = i * 2;
                if mask & (1 << i) != 0 {
                    path.push(base + 1);
                }
                path.push(base + 2);
            }
            ids.push(numbering.path_id(&path));
        }
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len() as u64, numbering.num_paths());
    }

    /// Memory accessors round-trip arbitrary values at arbitrary (valid)
    /// offsets.
    #[test]
    fn managed_memory_round_trips(values in proptest::collection::vec(any::<u64>(), 1..32)) {
        let runtime = Runtime::new(config(AllocatorMode::PerThread)).unwrap();
        let report = runtime
            .run(Program::new("roundtrip", move |ctx| {
                let buffer = ctx.alloc(values.len() * 8);
                for (i, value) in values.iter().enumerate() {
                    ctx.write_u64(buffer + (i as u64) * 8, *value);
                }
                for (i, value) in values.iter().enumerate() {
                    let read = ctx.read_u64(buffer + (i as u64) * 8);
                    ctx.assert_that(read == *value, "round trip");
                }
                ctx.free(buffer);
                Step::Done
            }))
            .unwrap();
        prop_assert!(report.outcome.is_success());
    }
}

// ---------------------------------------------------------------------------
// Properties of the synchronization-variable lookup strategies (§3.2) and of
// the evidence-based prevention plan (§1).
// ---------------------------------------------------------------------------

use ireplayer_detect::{PreventionAction, PreventionPlan};
use ireplayer_log::{HashDirectory, ShadowDirectory, SyncAddr, SyncOp, SyncVarDirectory, ThreadId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The shadow-indirection directory and the global hash table are
    /// observationally equivalent: for any registration count and any
    /// sequence of operations over the registered variables, both assign the
    /// same identifiers and record the same per-variable operation counts.
    /// (They differ only in lookup cost, which the `ablation_lookup` bench
    /// measures.)
    #[test]
    fn lookup_strategies_are_observationally_equivalent(
        variables in 1u64..64,
        operations in proptest::collection::vec((any::<u64>(), 0u32..4), 0..128),
    ) {
        let shadow = ShadowDirectory::new();
        let hashed = HashDirectory::with_buckets(8);
        for i in 0..variables {
            prop_assert_eq!(shadow.register(SyncAddr(i)), hashed.register(SyncAddr(i)));
        }
        for (pick, thread) in &operations {
            let addr = SyncAddr(pick % variables);
            shadow.record(addr, ThreadId(*thread), SyncOp::MutexLock, 0).unwrap();
            hashed.record(addr, ThreadId(*thread), SyncOp::MutexLock, 0).unwrap();
        }
        prop_assert_eq!(shadow.len(), hashed.len());
        for i in 0..variables {
            let a = shadow.slot(SyncAddr(i)).unwrap();
            let b = hashed.slot(SyncAddr(i)).unwrap();
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.list.len(), b.list.len());
        }
    }

    /// Hardening a configuration from a prevention plan never weakens it:
    /// the quarantine budget never shrinks and canaries are never turned
    /// off, for any combination of observed evidence.
    #[test]
    fn prevention_plans_never_weaken_a_configuration(
        quarantines in proptest::collection::vec(0usize..(4 << 20), 0..8),
        paddings in proptest::collection::vec(0usize..4096, 0..8),
    ) {
        let mut plan = PreventionPlan::default();
        for bytes in &quarantines {
            plan = PreventionPlan::from_actions(
                plan.actions().iter().cloned().chain([PreventionAction::DelayFrees {
                    free_site: None,
                    quarantine_bytes: *bytes,
                }]).collect(),
            );
        }
        for pad in &paddings {
            plan = PreventionPlan::from_actions(
                plan.actions().iter().cloned().chain([PreventionAction::PadAllocations {
                    alloc_site: None,
                    pad_bytes: *pad,
                }]).collect(),
            );
        }
        let base = ireplayer_detect::detection_config().build().unwrap();
        let hardened = plan.harden(base.clone());
        prop_assert!(hardened.canaries);
        prop_assert!(hardened.quarantine_bytes >= base.quarantine_bytes);
        let expected = base
            .quarantine_bytes
            .max(plan.advised_quarantine_bytes().unwrap_or(0));
        prop_assert_eq!(hardened.quarantine_bytes, expected);
    }
}

// ---------------------------------------------------------------------------
// Multi-tenancy properties: for random (workload shape, partition count,
// epoch length) tuples, a tenant's report fingerprint is invariant under
// concurrency -- running the same program on every partition of one runtime
// yields the solo fingerprint for each -- and replay never blames a
// neighbour's sync handles (no `DivergenceKind::UnknownVariable`).
// ---------------------------------------------------------------------------

use std::sync::Arc;

use ireplayer::{DivergenceKind, EpochDecision, EpochView, EventFilter, ReplayRequest, SessionEvent, ToolHook};

/// Forces a validation replay at every epoch end, so the property also
/// exercises rollback/re-execution under tenancy (where a cross-partition
/// leak of sync state would surface as an `UnknownVariable` divergence).
struct ReplayEveryEpoch;

impl ToolHook for ReplayEveryEpoch {
    fn name(&self) -> &str {
        "replay-every-epoch"
    }

    fn at_epoch_end(&self, _view: &dyn EpochView) -> EpochDecision {
        EpochDecision::Replay(ReplayRequest::because("tenancy property validation"))
    }
}

fn tenant_config(partitions: usize, events_per_thread: usize) -> Config {
    Config::builder()
        .partitions(partitions)
        .arena_size(4 << 20)
        .heap_block_size(128 << 10)
        .events_per_thread(events_per_thread)
        .build()
        .unwrap()
}

fn tenant_program(workers: u64, increments: u64) -> Program {
    Program::new("tenant", move |ctx| {
        let total = ctx.global("total", 8);
        let lock = ctx.mutex();
        let mut handles = Vec::new();
        for _ in 0..workers {
            handles.push(ctx.spawn("worker", move |ctx| {
                for _ in 0..increments {
                    ctx.lock(lock);
                    let value = ctx.read_u64(total);
                    ctx.write_u64(total, value + 1);
                    ctx.unlock(lock);
                }
                Step::Done
            }));
        }
        for handle in handles {
            ctx.join(handle);
        }
        let value = ctx.read_u64(total);
        ctx.assert_that(value == workers * increments, "every increment landed");
        Step::Done
    })
}

// ---------------------------------------------------------------------------
// Chaos-plane properties: for random (seed, profile, partition-count)
// tuples, a chaotic run is byte-identical across record, forced in-situ
// replay, and out-of-process trace replay -- and the detection tools keep
// working with a plan installed.
// ---------------------------------------------------------------------------

use ireplayer::{ChaosPlan, ChaosProfile, Trace};
use ireplayer_detect::OverflowDetector;
use ireplayer_workloads::{workload_by_name, WorkloadSpec};

fn chaos_profile(pick: u8) -> ChaosProfile {
    match pick % 3 {
        0 => ChaosProfile::quiet(),
        1 => ChaosProfile::light(),
        _ => ChaosProfile::heavy(),
    }
}

fn chaos_builder(partitions: usize, plan: ChaosPlan) -> ireplayer::ConfigBuilder {
    Config::builder()
        .partitions(partitions)
        .arena_size(8 << 20)
        .heap_block_size(128 << 10)
        .quiescence_timeout_ms(20_000)
        .chaos(plan)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Record -> forced-replay -> trace-replay identity of a chaotic run,
    /// over random plans and partition counts.  The subject is the
    /// work-stealing server: it handles every fault class fallibly, so any
    /// plan is survivable.
    #[test]
    fn chaos_runs_are_identical_across_record_forced_replay_and_trace_replay(
        seed in 0u64..(1 << 16),
        profile_pick in 0u8..3,
        partitions in 1usize..3,
    ) {
        let plan = ChaosPlan::compile(seed, chaos_profile(profile_pick));
        let path = std::env::temp_dir().join(format!(
            "ireplayer-chaos-prop-{seed}-{profile_pick}-{partitions}-{}.trace",
            std::process::id()
        ));
        let workload = workload_by_name("job-steal").expect("chaos-suite workload");
        let spec = WorkloadSpec::tiny();

        // Record on a single partition (a durable sink requires one), with
        // a forced in-situ replay at every epoch end.
        let runtime = Runtime::new(chaos_builder(1, plan.clone()).record_to(&path).build().unwrap()).unwrap();
        runtime.add_hook(Arc::new(ReplayEveryEpoch));
        let recorded = runtime.run(workload.program(&spec)).unwrap();
        prop_assert!(recorded.outcome.is_success(), "faults: {:?}", recorded.faults);
        prop_assert!(!recorded.replay_validations.is_empty(), "the hook must force replays");
        prop_assert!(recorded.replays_identical(), "forced in-situ replay diverged under chaos");
        drop(runtime);

        // The partition count is a deployment knob outside the config
        // fingerprint, so the trace replays on a runtime of any width --
        // and concurrent tenants on that same runtime, each under an
        // isolated copy of the plan, reproduce the solo fingerprint too.
        let trace = Trace::open(&path).unwrap();
        prop_assert_eq!(trace.chaos_digest(), plan.digest());
        let fresh = Runtime::new(chaos_builder(partitions, plan).build().unwrap()).unwrap();
        // Hooks are part of the workload: the recording ran under forced
        // replays, so every reproducing run installs the same hook.
        fresh.add_hook(Arc::new(ReplayEveryEpoch));
        let sessions: Vec<_> = (0..partitions)
            .map(|_| fresh.launch(workload.program(&spec)).unwrap())
            .collect();
        for session in sessions {
            let concurrent = session.wait().unwrap();
            prop_assert!(concurrent.outcome.is_success(), "faults: {:?}", concurrent.faults);
            prop_assert_eq!(
                concurrent.fingerprint(),
                recorded.fingerprint(),
                "a concurrent chaotic tenant diverged from the recorded solo run"
            );
        }
        let replayed = fresh.replay_trace(workload.program(&spec), &trace).unwrap();
        prop_assert_eq!(replayed.fingerprint(), recorded.fingerprint());
        let _ = std::fs::remove_file(&path);
    }

    /// Detection keeps working under chaos: the implanted heap overflow in
    /// the work-stealing server is caught by the canary detector no matter
    /// which plan is installed.
    #[test]
    fn detectors_still_fire_on_buggy_workloads_under_chaos(
        seed in 0u64..(1 << 16),
        profile_pick in 0u8..3,
    ) {
        let plan = ChaosPlan::compile(seed, chaos_profile(profile_pick));
        let config = ireplayer_detect::detection_config()
            .arena_size(16 << 20)
            .heap_block_size(256 << 10)
            .quiescence_timeout_ms(20_000)
            .chaos(plan)
            .build()
            .unwrap();
        let runtime = Runtime::new(config).unwrap();
        let overflow = OverflowDetector::new();
        runtime.add_hook(overflow.clone());
        let workload = workload_by_name("job-steal").expect("chaos-suite workload");
        let spec = WorkloadSpec::tiny().with_overflow();
        workload.stage(&runtime, &spec);
        let report = runtime.run(workload.program(&spec)).unwrap();
        prop_assert!(report.outcome.is_success(), "faults: {:?}", report.faults);
        let bugs = overflow.reports();
        prop_assert!(!bugs.is_empty(), "the implanted overflow must be detected under chaos");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Solo-vs-concurrent fingerprint invariance over random program /
    /// partition-count / epoch-length tuples, with forced replays; no
    /// replay ever yields `UnknownVariable` from a neighbour's handles.
    #[test]
    fn tenants_fingerprint_identically_solo_and_concurrent(
        partitions in 2usize..4,
        workers in 1u64..4,
        increments in 1u64..5,
        events_per_thread in 48usize..256,
    ) {
        // The identity baseline: solo run on a fresh single-partition
        // runtime with the same epoch length and the same forced replays.
        let solo_runtime = Runtime::new(tenant_config(1, events_per_thread)).unwrap();
        solo_runtime.add_hook(Arc::new(ReplayEveryEpoch));
        let solo = solo_runtime.run(tenant_program(workers, increments)).unwrap();
        prop_assert!(solo.outcome.is_success(), "faults: {:?}", solo.faults);
        prop_assert!(!solo.replay_validations.is_empty(), "the hook must force replays");
        prop_assert!(solo.replays_identical());

        // The same program on every partition of one runtime, all sessions
        // live at once.
        let multi = Runtime::new(tenant_config(partitions, events_per_thread)).unwrap();
        multi.add_hook(Arc::new(ReplayEveryEpoch));
        let events = multi.subscribe(EventFilter::none().divergences());
        let sessions: Vec<_> = (0..partitions)
            .map(|_| multi.launch(tenant_program(workers, increments)).unwrap())
            .collect();
        for (expected, session) in sessions.iter().enumerate() {
            prop_assert_eq!(session.partition(), Some(expected));
        }
        for session in sessions {
            let report = session.wait().unwrap();
            prop_assert!(report.outcome.is_success(), "faults: {:?}", report.faults);
            prop_assert!(report.replays_identical());
            prop_assert_eq!(
                report.fingerprint(),
                solo.fingerprint(),
                "a concurrent tenant diverged from its solo baseline"
            );
        }
        for event in events.drain() {
            if let SessionEvent::Diverged { divergence } = event {
                prop_assert!(
                    !matches!(divergence.kind, DivergenceKind::UnknownVariable { .. }),
                    "a neighbour's sync handle leaked across partitions: {divergence:?}"
                );
            }
        }
    }
}

use ireplayer::{shrink_candidates, ChaosExplorer, ExploreSubject};
use ireplayer_workloads::{Ledger, Workload as _};

fn ledger_subject() -> ExploreSubject {
    let spec = WorkloadSpec::tiny();
    ExploreSubject::new("flaky-ledger", move || Ledger.program(&spec)).with_stage(Ledger::stage_os)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Minimization is **sound** and **monotone** over randomized failing
    /// seeds of the heavy profile on the planted-bug ledger: the minimized
    /// plan reproduces the exact failure (same outcome class, fault kind,
    /// and fingerprint) as the plan it came from, and replaying the
    /// accepted shrink steps reconstructs it through strictly decreasing
    /// weights, each step a slot-subset of the original -- the schedule
    /// never grows.
    #[test]
    fn chaos_minimization_is_sound_and_monotone(seed in 0u64..512) {
        let runtime = Runtime::new(chaos_builder(1, ChaosPlan::compile(0, ChaosProfile::quiet())).build().unwrap()).unwrap();
        let explorer = ChaosExplorer::new(&runtime, ledger_subject());

        // Scan forward from the random seed for a failing plan.
        let mut failing = None;
        for probe_seed in seed..seed + 32 {
            let plan = ChaosPlan::compile(probe_seed, ChaosProfile::heavy());
            let outcome = explorer.probe(&plan).unwrap();
            if outcome.fingerprint().is_some() {
                failing = Some((plan, outcome));
                break;
            }
        }
        // No failing plan in this window: nothing to minimize (the
        // vendored proptest shim has no prop_assume, so pass trivially).
        let Some((plan, baseline)) = failing else { return };

        let find = explorer.minimize(&plan).unwrap();

        // Soundness: the identical failure survives minimization.
        prop_assert_eq!(baseline.outcome.fingerprint(), Some(find.fingerprint));
        prop_assert_eq!(&find.outcome, &baseline.outcome);
        let reprobe = explorer.probe(&find.minimized).unwrap();
        prop_assert_eq!(reprobe.fingerprint(), Some(find.fingerprint));

        // Monotonicity: replaying the accepted steps reconstructs the
        // minimized plan through strictly decreasing weights, always a
        // slot-subset of the original.
        let mut current = plan.clone();
        for step in &find.steps {
            let next = shrink_candidates(&current)
                .into_iter()
                .find(|(cut, _)| cut == step)
                .map(|(_, shrunk)| shrunk);
            prop_assert!(next.is_some(), "accepted step {} is not a legal shrink", step);
            let next = next.unwrap();
            prop_assert!(next.weight() < current.weight(), "step {} grew the schedule", step);
            prop_assert!(next.is_subset_of(&plan), "step {} left the original's slots", step);
            current = next;
        }
        prop_assert_eq!(current.digest(), find.minimized.digest());
        prop_assert!(find.minimized.weight() <= plan.weight());
        prop_assert!(find.is_subset());
    }
}
