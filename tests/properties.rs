//! Property-based tests of the core invariants: deterministic heap layout,
//! identical replay of randomized programs, and uniqueness of Ball-Larus
//! path identifiers.

use proptest::prelude::*;

use ireplayer::{AllocatorMode, Config, Program, Runtime, Step};
use ireplayer_baselines::{BallLarus, Cfg};

fn config(allocator: AllocatorMode) -> Config {
    Config::builder()
        .arena_size(8 << 20)
        .heap_block_size(128 << 10)
        .allocator(allocator)
        .build()
        .unwrap()
}

/// Runs a single-threaded allocation/free script and returns the addresses
/// handed out plus the final heap hash.
fn run_alloc_script(script: Vec<(u16, bool)>) -> (Vec<u64>, u64) {
    let runtime = Runtime::new(config(AllocatorMode::PerThread)).unwrap();
    let addresses = std::sync::Arc::new(parking::Cell::default());
    let addresses_for_run = addresses.clone();
    let report = runtime
        .run(Program::new("alloc-script", move |ctx| {
            let mut live = Vec::new();
            let mut seen = Vec::new();
            for (size, do_free) in &script {
                let addr = ctx.alloc(usize::from(*size) + 1);
                seen.push(addr.offset());
                if *do_free {
                    if let Some(victim) = live.pop() {
                        ctx.free(victim);
                    }
                }
                live.push(addr);
            }
            addresses_for_run.set(seen);
            Step::Done
        }))
        .unwrap();
    assert!(report.outcome.is_success());
    (addresses.get(), report.final_heap_hash)
}

/// Tiny shared cell (std only) used to extract results from program bodies.
mod parking {
    use std::sync::Mutex;

    #[derive(Default)]
    pub struct Cell(Mutex<Vec<u64>>);

    impl Cell {
        pub fn set(&self, value: Vec<u64>) {
            *self.0.lock().unwrap() = value;
        }
        pub fn get(&self) -> Vec<u64> {
            self.0.lock().unwrap().clone()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// §2.2.4: the deterministic heap hands out identical addresses for
    /// identical allocation sequences, across independent executions.
    #[test]
    fn allocator_layout_is_a_pure_function_of_the_program(
        script in proptest::collection::vec((1u16..2048, any::<bool>()), 1..40)
    ) {
        let (first_addresses, first_hash) = run_alloc_script(script.clone());
        let (second_addresses, second_hash) = run_alloc_script(script);
        prop_assert_eq!(first_addresses, second_addresses);
        prop_assert_eq!(first_hash, second_hash);
    }

    /// Ball-Larus numbering assigns unique, dense identifiers on random
    /// two-way branching DAGs.
    #[test]
    fn ball_larus_ids_are_unique_and_dense(branches in proptest::collection::vec(any::<bool>(), 1..8)) {
        // Build a chain of diamonds: block 2i branches to 2i+1 / 2i+2 style.
        let blocks = branches.len() * 2 + 1;
        let mut cfg = Cfg::new(blocks);
        for (i, _) in branches.iter().enumerate() {
            let base = i * 2;
            cfg.add_edge(base, base + 1);
            cfg.add_edge(base, base + 2);
            cfg.add_edge(base + 1, base + 2);
        }
        let numbering = BallLarus::number(&cfg);
        prop_assert_eq!(numbering.num_paths(), 1u64 << branches.len());

        // Enumerate every path and check identifiers are a permutation of
        // 0..num_paths.
        let mut ids = Vec::new();
        for mask in 0..(1usize << branches.len()) {
            let mut path = vec![0usize];
            for (i, _) in branches.iter().enumerate() {
                let base = i * 2;
                if mask & (1 << i) != 0 {
                    path.push(base + 1);
                }
                path.push(base + 2);
            }
            ids.push(numbering.path_id(&path));
        }
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len() as u64, numbering.num_paths());
    }

    /// Memory accessors round-trip arbitrary values at arbitrary (valid)
    /// offsets.
    #[test]
    fn managed_memory_round_trips(values in proptest::collection::vec(any::<u64>(), 1..32)) {
        let runtime = Runtime::new(config(AllocatorMode::PerThread)).unwrap();
        let report = runtime
            .run(Program::new("roundtrip", move |ctx| {
                let buffer = ctx.alloc(values.len() * 8);
                for (i, value) in values.iter().enumerate() {
                    ctx.write_u64(buffer + (i as u64) * 8, *value);
                }
                for (i, value) in values.iter().enumerate() {
                    let read = ctx.read_u64(buffer + (i as u64) * 8);
                    ctx.assert_that(read == *value, "round trip");
                }
                ctx.free(buffer);
                Step::Done
            }))
            .unwrap();
        prop_assert!(report.outcome.is_success());
    }
}

// ---------------------------------------------------------------------------
// Properties of the synchronization-variable lookup strategies (§3.2) and of
// the evidence-based prevention plan (§1).
// ---------------------------------------------------------------------------

use ireplayer_detect::{PreventionAction, PreventionPlan};
use ireplayer_log::{HashDirectory, ShadowDirectory, SyncAddr, SyncOp, SyncVarDirectory, ThreadId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The shadow-indirection directory and the global hash table are
    /// observationally equivalent: for any registration count and any
    /// sequence of operations over the registered variables, both assign the
    /// same identifiers and record the same per-variable operation counts.
    /// (They differ only in lookup cost, which the `ablation_lookup` bench
    /// measures.)
    #[test]
    fn lookup_strategies_are_observationally_equivalent(
        variables in 1u64..64,
        operations in proptest::collection::vec((any::<u64>(), 0u32..4), 0..128),
    ) {
        let shadow = ShadowDirectory::new();
        let hashed = HashDirectory::with_buckets(8);
        for i in 0..variables {
            prop_assert_eq!(shadow.register(SyncAddr(i)), hashed.register(SyncAddr(i)));
        }
        for (pick, thread) in &operations {
            let addr = SyncAddr(pick % variables);
            shadow.record(addr, ThreadId(*thread), SyncOp::MutexLock, 0).unwrap();
            hashed.record(addr, ThreadId(*thread), SyncOp::MutexLock, 0).unwrap();
        }
        prop_assert_eq!(shadow.len(), hashed.len());
        for i in 0..variables {
            let a = shadow.slot(SyncAddr(i)).unwrap();
            let b = hashed.slot(SyncAddr(i)).unwrap();
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.list.len(), b.list.len());
        }
    }

    /// Hardening a configuration from a prevention plan never weakens it:
    /// the quarantine budget never shrinks and canaries are never turned
    /// off, for any combination of observed evidence.
    #[test]
    fn prevention_plans_never_weaken_a_configuration(
        quarantines in proptest::collection::vec(0usize..(4 << 20), 0..8),
        paddings in proptest::collection::vec(0usize..4096, 0..8),
    ) {
        let mut plan = PreventionPlan::default();
        for bytes in &quarantines {
            plan = PreventionPlan::from_actions(
                plan.actions().iter().cloned().chain([PreventionAction::DelayFrees {
                    free_site: None,
                    quarantine_bytes: *bytes,
                }]).collect(),
            );
        }
        for pad in &paddings {
            plan = PreventionPlan::from_actions(
                plan.actions().iter().cloned().chain([PreventionAction::PadAllocations {
                    alloc_site: None,
                    pad_bytes: *pad,
                }]).collect(),
            );
        }
        let base = ireplayer_detect::detection_config().build().unwrap();
        let hardened = plan.harden(base.clone());
        prop_assert!(hardened.canaries);
        prop_assert!(hardened.quarantine_bytes >= base.quarantine_bytes);
        let expected = base
            .quarantine_bytes
            .max(plan.advised_quarantine_bytes().unwrap_or(0));
        prop_assert_eq!(hardened.quarantine_bytes, expected);
    }
}
