//! End-to-end reproduction of the detection-effectiveness experiment
//! (paper §5.4.1): every known-buggy application analogue is detected, the
//! diagnostic replay pinpoints a root cause for the overflows, and the
//! evidence-based prevention advisor produces a hardening plan.

use ireplayer::Runtime;
use ireplayer_bench::{run_detection_effectiveness, run_known_bug};
use ireplayer_detect::{detection_config, PreventionAdvisor, UseAfterFreeDetector};
use ireplayer_workloads::{all_known_bugs, known_bug_by_name, ExpectedBug, WorkloadSpec};

#[test]
fn every_known_bug_is_detected() {
    let rows = run_detection_effectiveness(&WorkloadSpec::tiny());
    assert_eq!(rows.len(), all_known_bugs().len());
    for row in &rows {
        assert!(row.detected, "{} was not detected", row.program);
    }
    // The paper reports precise calling contexts for the root causes; the
    // watchpoint replay must identify the faulting write for every heap
    // overflow in the suite.
    for row in rows.iter().filter(|r| r.expected == ExpectedBug::HeapOverflow) {
        assert!(
            row.root_cause_identified,
            "{}: overflow root cause not identified",
            row.program
        );
    }
}

#[test]
fn overflow_reports_name_the_faulting_write_site() {
    let bug = known_bug_by_name("libtiff-gif2tiff").expect("suite entry");
    let row = run_known_bug(bug.as_ref(), &WorkloadSpec::tiny());
    let report = row.report.expect("a report was produced");
    let culprit = report.culprit.expect("culprit identified by the replay");
    let site = culprit.site.expect("faulting write has a source location");
    assert!(
        site.file.ends_with("buggy.rs"),
        "culprit should point into the workload source, got {site}"
    );
}

#[test]
fn prevention_advisor_turns_uaf_evidence_into_a_hardened_config() {
    let bug = known_bug_by_name("producer-uaf").expect("suite entry");
    let config = detection_config()
        .arena_size(32 << 20)
        .heap_block_size(512 << 10)
        .build()
        .expect("valid configuration");
    let runtime = Runtime::new(config).expect("runtime");
    let detector = UseAfterFreeDetector::new();
    let advisor = PreventionAdvisor::new();
    runtime.add_hook(detector.clone());
    runtime.add_hook(advisor.clone());
    let spec = WorkloadSpec::tiny();
    bug.stage(&runtime, &spec);
    let report = runtime.run(bug.program(&spec)).expect("run");
    assert!(report.outcome.is_success());
    assert!(!detector.reports().is_empty());

    let plan = advisor.plan();
    assert!(!plan.is_empty(), "evidence must produce a plan");
    let baseline_quarantine = detection_config().build().unwrap().quarantine_bytes;
    let hardened = plan.harden(detection_config().build().expect("valid configuration"));
    assert!(
        hardened.quarantine_bytes >= baseline_quarantine,
        "hardening never weakens the quarantine"
    );
}
