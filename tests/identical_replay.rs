//! Cross-crate validation of the paper's central claim (§5.2): the in-situ
//! re-execution of the last epoch is identical -- same synchronization
//! order, same system-call results, and a byte-identical heap image.

use ireplayer_bench::assert_identical_replay;
use ireplayer_workloads::workload_by_name;

fn check(name: &str) {
    let workload = workload_by_name(name).expect("workload exists");
    assert_identical_replay(workload.as_ref());
}

#[test]
fn blackscholes_replays_identically() {
    check("blackscholes");
}

#[test]
fn fluidanimate_replays_identically() {
    check("fluidanimate");
}

#[test]
fn dedup_replays_identically() {
    check("dedup");
}

#[test]
fn ferret_replays_identically() {
    check("ferret");
}

#[test]
fn swaptions_replays_identically() {
    check("swaptions");
}

#[test]
fn aget_replays_identically() {
    check("aget");
}

#[test]
fn memcached_replays_identically() {
    check("memcached");
}

#[test]
fn sqlite_replays_identically() {
    check("sqlite");
}

#[test]
fn pfscan_replays_identically() {
    check("pfscan");
}
