//! The session-based public API: reusable runtimes, live replay control,
//! warm-relaunch storage reuse, and the unified error taxonomy.
//!
//! Acceptance properties exercised here:
//!
//! * one `Runtime` runs several programs back-to-back via `Session`
//!   handles, with reports identical (modulo wall time) to fresh-runtime
//!   runs -- including a forced-replay scenario;
//! * a warm relaunch performs **zero** re-allocation of backing storage:
//!   no new arena, no new per-thread lists, no new per-variable chunks;
//! * each layer's failure surfaces as `ireplayer::Error` with the right
//!   `ErrorKind`, and no panic.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ireplayer::{
    Config, DiagnosticsSnapshot, EpochDecision, EpochView, Error, ErrorKind, EventFilter, MemError, Program,
    ReplayRequest, RunPhase, Runtime, SessionEvent, Step, SysError, ToolHook,
};

fn small_config() -> Config {
    Config::builder()
        .arena_size(8 << 20)
        .heap_block_size(256 << 10)
        .build()
        .unwrap()
}

/// A deterministic multithreaded program: workers bump a locked counter,
/// the main thread allocates, does file I/O on a staged input, and checks
/// the total.  Every run of it (fresh or warm) records the same event
/// counts and produces the same heap image.
fn deterministic_program() -> Program {
    Program::new("session-determinism", |ctx| {
        let total = ctx.global("total", 8);
        let lock = ctx.mutex();
        let scratch = ctx.alloc(512);
        ctx.fill(scratch, 512, 0xa5);

        let fd = ctx.open("input.bin").expect("staged file");
        let data = ctx.read(fd, 16);
        ctx.write_u64(scratch, data.len() as u64);
        ctx.close(fd);

        let mut workers = Vec::new();
        for _ in 0..3u64 {
            workers.push(ctx.spawn("worker", move |ctx| {
                ctx.lock(lock);
                let value = ctx.read_u64(total);
                ctx.write_u64(total, value + 1);
                ctx.unlock(lock);
                Step::Done
            }));
        }
        for worker in workers {
            ctx.join(worker);
        }
        let value = ctx.read_u64(total);
        ctx.assert_that(value == 3, "all workers incremented");
        ctx.free(scratch);
        Step::Done
    })
}

fn stage(runtime: &Runtime) {
    runtime.os().create_file("input.bin", vec![7u8; 64]);
}

/// Requests one validation replay at every epoch end: the forced-replay
/// scenario of the reuse acceptance test.  Stateless, so it behaves
/// identically on every run it is attached to.
struct ValidateAlways;

impl ToolHook for ValidateAlways {
    fn name(&self) -> &str {
        "validate-always"
    }

    fn at_epoch_end(&self, _view: &dyn EpochView) -> EpochDecision {
        EpochDecision::Replay(ReplayRequest::because("session-api validation"))
    }
}

fn fresh_run(with_replay_hook: bool) -> ireplayer::RunReport {
    let runtime = Runtime::new(small_config()).unwrap();
    if with_replay_hook {
        runtime.add_hook(Arc::new(ValidateAlways));
    }
    stage(&runtime);
    runtime.run(deterministic_program()).unwrap()
}

#[test]
fn one_runtime_runs_three_programs_with_reports_identical_to_fresh_runs() {
    // Scenarios: two plain runs and one forced-replay run, all on one
    // runtime -- compared against fresh-runtime baselines.
    let baseline_plain = fresh_run(false);
    let baseline_replay = fresh_run(true);
    assert!(baseline_plain.outcome.is_success());
    assert!(baseline_replay.outcome.is_success());
    assert!(
        !baseline_replay.replay_validations.is_empty(),
        "the hook must force at least one replay"
    );
    assert!(baseline_replay.replays_identical());

    let runtime = Runtime::new(small_config()).unwrap();
    let mut warm_reports = Vec::new();
    for _ in 0..3 {
        stage(&runtime);
        let session = runtime.launch(deterministic_program()).unwrap();
        warm_reports.push(session.wait().unwrap());
    }

    for warm in &warm_reports {
        assert!(warm.outcome.is_success(), "faults: {:?}", warm.faults);
        // Byte-identical modulo wall time: equalize the one nondeterministic
        // field, then compare whole structs, and cross-check with the
        // deterministic fingerprint.
        let mut normalized = warm.clone();
        normalized.wall_time = baseline_plain.wall_time;
        assert_eq!(normalized, baseline_plain);
        assert_eq!(warm.fingerprint(), baseline_plain.fingerprint());
    }

    // Forced-replay scenario on the same (already twice-used) runtime.
    runtime.add_hook(Arc::new(ValidateAlways));
    stage(&runtime);
    let warm_replay = runtime.launch(deterministic_program()).unwrap().wait().unwrap();
    let mut normalized = warm_replay.clone();
    normalized.wall_time = baseline_replay.wall_time;
    assert_eq!(normalized, baseline_replay);
    assert_eq!(warm_replay.fingerprint(), baseline_replay.fingerprint());
}

#[test]
fn warm_relaunch_reallocates_no_backing_storage() {
    let runtime = Runtime::new(small_config()).unwrap();

    // Warm the pools: the first launch allocates the lists; the second may
    // still fault in one lazily-allocated chunk where the pool rotation
    // hands a never-touched var list to a variable that records (chunk
    // placement reaches steady state here).
    for _ in 0..2 {
        stage(&runtime);
        runtime.run(deterministic_program()).unwrap();
    }
    let warm: DiagnosticsSnapshot = runtime.diagnostics();
    assert_eq!(warm.arena_allocations, 1);
    assert!(warm.thread_lists_created >= 4, "main + 3 workers allocate lists");
    assert!(warm.thread_lists_reused >= 4, "the first relaunch draws from the pool");

    // Two more warm relaunches: zero new arena allocations, zero new
    // per-thread lists, zero new per-variable lists or chunks --
    // everything is served from the pools.
    for _ in 0..2 {
        stage(&runtime);
        runtime.run(deterministic_program()).unwrap();
    }
    let after: DiagnosticsSnapshot = runtime.diagnostics();
    assert_eq!(
        after.arena_allocations, warm.arena_allocations,
        "no arena re-allocation"
    );
    assert_eq!(
        after.thread_lists_created, warm.thread_lists_created,
        "no new per-thread list storage on warm relaunch"
    );
    assert_eq!(
        after.var_lists_created, warm.var_lists_created,
        "no new per-variable list storage on warm relaunch"
    );
    assert_eq!(
        after.var_chunks_allocated, warm.var_chunks_allocated,
        "no new per-variable chunks on warm relaunch"
    );
    assert!(
        after.thread_lists_reused >= warm.thread_lists_reused + 8,
        "relaunches must draw lists from the warm pool"
    );
    assert!(
        after.var_lists_reused > warm.var_lists_reused,
        "relaunches must draw var lists from the warm pool"
    );
}

#[test]
fn sessions_expose_status_events_and_live_replay_control() {
    let runtime = Runtime::new(small_config()).unwrap();
    // Subscribe before launching so even the first epoch (which can begin
    // within microseconds of the launch) is captured.
    let events = runtime.subscribe(EventFilter::none().epochs().replays().lifecycle());

    // The program does its recorded work, then idles on a gate: the test
    // provably queues its replay request before the final epoch closes.
    let gate = Arc::new(AtomicBool::new(false));
    let gate_for_body = Arc::clone(&gate);
    let session = runtime
        .launch(Program::new("live-control", move |ctx| {
            // The "already worked" flag lives in managed memory so a
            // rollback rewinds it and the replay re-records the same
            // events (closure-captured state would not be rolled back).
            let worked = ctx.global("worked", 8);
            if ctx.read_u64(worked) == 0 {
                ctx.write_u64(worked, 1);
                let cell = ctx.global("cell", 8);
                let lock = ctx.mutex();
                ctx.lock(lock);
                let value = ctx.read_u64(cell);
                ctx.write_u64(cell, value + 1);
                ctx.unlock(lock);
            }
            if gate_for_body.load(Ordering::Acquire) {
                Step::Done
            } else {
                Step::Yield
            }
        }))
        .unwrap();

    // Live status streams from the runtime's atomics.
    let status = session.status();
    assert!(matches!(
        status.phase,
        RunPhase::Recording | RunPhase::Replaying | RunPhase::Finished
    ));

    // Live replay control: ask the running session for a diagnostic
    // replay; the coordinator honours it at the next epoch boundary.
    session
        .request_replay(ReplayRequest::because("live validation"))
        .unwrap();
    gate.store(true, Ordering::Release);

    let report = session.wait().unwrap();
    assert!(report.outcome.is_success());
    assert!(
        !report.replay_validations.is_empty(),
        "the live replay request must force a replay cycle"
    );
    assert!(report.replays_identical());

    let drained = events.drain();
    assert!(
        drained.iter().any(|e| matches!(e, SessionEvent::EpochBegan { .. })),
        "epoch events must be delivered: {drained:?}"
    );
    assert!(
        drained
            .iter()
            .any(|e| matches!(e, SessionEvent::ReplayFinished { matched: true, .. })),
        "the live-requested replay must be announced: {drained:?}"
    );
    assert!(
        drained.iter().any(|e| matches!(e, SessionEvent::Finished { .. })),
        "the lifecycle event must close the stream's run: {drained:?}"
    );
}

#[test]
fn epoch_closed_events_carry_per_epoch_counters() {
    // A plain run: every closed epoch reports its recorded events and zero
    // replay attempts.
    let runtime = Runtime::new(small_config()).unwrap();
    let events = runtime.subscribe(EventFilter::none().epochs());
    stage(&runtime);
    runtime.run(deterministic_program()).unwrap();
    let closed: Vec<(u64, u64, u64)> = events
        .drain()
        .into_iter()
        .filter_map(|e| match e {
            SessionEvent::EpochClosed {
                epoch,
                events_recorded,
                replays_attempted,
            } => Some((epoch, events_recorded, replays_attempted)),
            _ => None,
        })
        .collect();
    assert!(!closed.is_empty(), "every run closes at least one epoch");
    assert!(
        closed.iter().any(|(_, events_recorded, _)| *events_recorded > 0),
        "the deterministic program records sync events: {closed:?}"
    );
    assert!(
        closed.iter().all(|(_, _, replays)| *replays == 0),
        "a plain run attempts no replays: {closed:?}"
    );

    // A forced-replay run: the closed epoch accounts for its replay cycle.
    let runtime = Runtime::new(small_config()).unwrap();
    runtime.add_hook(Arc::new(ValidateAlways));
    let events = runtime.subscribe(EventFilter::none().epochs().replays());
    stage(&runtime);
    let report = runtime.run(deterministic_program()).unwrap();
    assert!(!report.replay_validations.is_empty());
    let drained = events.drain();
    let replayed_epochs: Vec<u64> = drained
        .iter()
        .filter_map(|e| match e {
            SessionEvent::ReplayFinished { epoch, .. } => Some(*epoch),
            _ => None,
        })
        .collect();
    assert!(!replayed_epochs.is_empty());
    for e in &drained {
        if let SessionEvent::EpochClosed {
            epoch,
            events_recorded,
            replays_attempted,
        } = e
        {
            if replayed_epochs.contains(epoch) {
                assert!(
                    *replays_attempted >= 1,
                    "epoch {epoch} replayed but its close reports none"
                );
                assert!(*events_recorded > 0, "a replayed epoch has recorded events");
            }
        }
    }
}

#[test]
fn strict_replay_budget_surfaces_replay_budget_exhausted() {
    // A taint-every-epoch workload: each step issues `fork` (irrevocable,
    // taints the epoch and forces an epoch end), and the final step faults
    // while its freshly tainted epoch can never be replayed for diagnosis.
    let taint_every_epoch_crasher = || {
        Program::new("tainted-crasher", |ctx| {
            let step = ctx.global("step", 8);
            let n = ctx.read_u64(step) + 1;
            ctx.write_u64(step, n);
            ctx.fork();
            if n == 3 {
                ctx.crash("fault inside a tainted epoch")
            }
            Step::Yield
        })
    };

    // Default (lenient) budget: the run completes with a faulted report
    // and simply no replay validation -- the pre-existing behaviour.
    let runtime = Runtime::new(small_config()).unwrap();
    let report = runtime.run(taint_every_epoch_crasher()).unwrap();
    assert!(!report.outcome.is_success());
    assert!(report.replay_validations.is_empty(), "tainted epochs cannot replay");

    // Strict budget: the impossible diagnosis surfaces as
    // ReplayBudgetExhausted with zero attempts.
    let config = Config::builder()
        .arena_size(8 << 20)
        .heap_block_size(256 << 10)
        .strict_replay_budget(true)
        .build()
        .unwrap();
    let runtime = Runtime::new(config).unwrap();
    let error = runtime.run(taint_every_epoch_crasher()).unwrap_err();
    assert_eq!(error.kind(), ErrorKind::ReplayBudgetExhausted);
    assert_eq!(error.replay_attempts(), Some(0), "the diagnosis never even started");
    assert!(error.to_string().contains("0 replay attempts"), "{error}");

    // The teardown was orderly, so the runtime stays launchable.
    let report = runtime.run(Program::new("recovered", |_| Step::Done)).unwrap();
    assert!(report.outcome.is_success());
}

#[test]
fn status_can_be_polled_while_the_program_runs() {
    let runtime = Runtime::new(small_config()).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let stop_for_body = Arc::clone(&stop);
    let session = runtime
        .launch(Program::new("poll-me", move |ctx| {
            ctx.work(10_000);
            if stop_for_body.load(Ordering::Acquire) {
                Step::Done
            } else {
                Step::Yield
            }
        }))
        .unwrap();
    // Poll the lock-free status a few times mid-run, then release.
    for _ in 0..10 {
        let status = session.status();
        let _ = (status.epoch, status.sync_events, status.faults);
        std::thread::sleep(Duration::from_millis(1));
    }
    stop.store(true, Ordering::Release);
    assert!(session.wait().unwrap().outcome.is_success());
}

#[test]
fn finished_sessions_keep_their_final_status() {
    let runtime = Runtime::new(small_config()).unwrap();
    let session = runtime
        .launch(Program::new("final-status", |ctx| {
            let lock = ctx.mutex();
            ctx.lock(lock);
            ctx.unlock(lock);
            Step::Done
        }))
        .unwrap();
    while !session.is_finished() {
        std::thread::sleep(Duration::from_millis(1));
    }
    // The end-of-run reset zeroes the live counters, but the session's
    // status must keep describing the run it belongs to.
    let status = session.status();
    assert_eq!(status.phase, RunPhase::Finished);
    assert!(status.sync_events > 0, "the final status keeps this run's counters");

    // Even after the runtime moves on to another launch, the old handle
    // keeps describing its own (finished) run.  `is_finished` can turn
    // true a moment before the runtime is launchable again (wait() is the
    // hard synchronization point), so retry a briefly-refused launch.
    let second = loop {
        match runtime.launch(Program::new("second", |_| Step::Done)) {
            Ok(session) => break session.wait().unwrap(),
            Err(error) if error.kind() == ErrorKind::SessionActive => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(error) => panic!("unexpected launch error: {error}"),
        }
    };
    assert!(second.outcome.is_success());
    let status_again = session.status();
    assert_eq!(status_again.phase, RunPhase::Finished);
    assert_eq!(status_again.sync_events, status.sync_events);
    session.wait().unwrap();
}

// ---------------------------------------------------------------------------
// The unified error taxonomy: each layer's failure surfaces with the right
// kind, and nothing panics.
// ---------------------------------------------------------------------------

#[test]
fn config_errors_name_the_field_and_value() {
    let error = Config::builder().arena_size(1024).build().unwrap_err();
    assert_eq!(error.kind(), ErrorKind::InvalidConfig);
    assert_eq!(error.config_field(), Some("arena_size"));
    let message = error.to_string();
    assert!(message.contains("arena_size") && message.contains("1024"), "{message}");
}

#[test]
fn substrate_errors_carry_their_kind_and_source() {
    let mem: Error = MemError::NoWatchpointSlot.into();
    assert_eq!(mem.kind(), ErrorKind::Memory);
    assert!(std::error::Error::source(&mem).is_some());

    let sys: Error = SysError::WouldBlock.into();
    assert_eq!(sys.kind(), ErrorKind::Sys);
    assert!(std::error::Error::source(&sys).is_some());
}

#[test]
fn faults_surface_as_reports_and_convert_to_faulted_errors() {
    let runtime = Runtime::new(small_config()).unwrap();
    let report = runtime
        .run(Program::new("crasher", |ctx| ctx.crash("intentional crash")))
        .unwrap();
    assert!(!report.outcome.is_success());
    let error = report.into_result().unwrap_err();
    assert_eq!(error.kind(), ErrorKind::Faulted);
    assert!(error.fault().is_some());
    assert!(error.to_string().contains("intentional crash"));
}

#[test]
fn overlapping_sessions_are_rejected_with_session_active_at_depth_zero() {
    // The pre-scheduler contract, now opt-in: with a zero-depth admission
    // queue an overcommitted launch is refused instead of queued.
    let config = Config::builder()
        .arena_size(8 << 20)
        .heap_block_size(256 << 10)
        .admission_queue_depth(0)
        .build()
        .unwrap();
    let runtime = Runtime::new(config).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let stop_for_body = Arc::clone(&stop);
    let session = runtime
        .launch(Program::new("long-runner", move |ctx| {
            ctx.work(1_000);
            if stop_for_body.load(Ordering::Acquire) {
                Step::Done
            } else {
                Step::Yield
            }
        }))
        .unwrap();
    let error = runtime.launch(Program::new("rejected", |_| Step::Done)).unwrap_err();
    assert_eq!(error.kind(), ErrorKind::SessionActive);
    // `try_launch` behaves the same on every configuration: no queueing.
    let error = runtime.try_launch(Program::new("shed", |_| Step::Done)).unwrap_err();
    assert_eq!(error.kind(), ErrorKind::SessionActive);
    stop.store(true, Ordering::Release);
    session.wait().unwrap();
}

#[test]
fn diagnostics_report_admission_queue_depth_and_per_partition_quota_counters() {
    let config = Config::builder()
        .arena_size(8 << 20)
        .heap_block_size(256 << 10)
        .max_epochs(1_000)
        .max_events(1 << 20)
        .build()
        .unwrap();
    let runtime = Runtime::new(config).unwrap();

    // Idle baseline: the configured quotas are visible, nothing is used,
    // nothing is queued.
    let idle = runtime.diagnostics();
    assert_eq!(idle.admission_queue_depth, 0);
    assert_eq!(idle.launches_queued, 0);
    assert_eq!(idle.launches_admitted, 0);
    assert_eq!(idle.partitions[0].quota_max_epochs, 1_000);
    assert_eq!(idle.partitions[0].quota_max_events, 1 << 20);
    assert_eq!(idle.partitions[0].quota_epochs_used, 0);
    assert_eq!(idle.partitions[0].quota_events_used, 0);

    // A metered tenant closes one epoch carrying recorded sync events,
    // then idles on the gate: its quota usage (2 epochs begun, the first
    // epoch's events accumulated) is observable mid-run and stays stable.
    let gate = Arc::new(AtomicBool::new(false));
    let gate_for_body = Arc::clone(&gate);
    let session = runtime
        .launch(Program::new("metered", move |ctx| {
            let worked = ctx.global("worked", 8);
            if ctx.read_u64(worked) == 0 {
                ctx.write_u64(worked, 1);
                let lock = ctx.mutex();
                ctx.lock(lock);
                ctx.unlock(lock);
                ctx.end_epoch();
            }
            if gate_for_body.load(Ordering::Acquire) {
                Step::Done
            } else {
                Step::Yield
            }
        }))
        .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let live = runtime.diagnostics();
        if live.partitions[0].quota_epochs_used >= 2 && live.partitions[0].quota_events_used >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "quota usage must become visible mid-run: {live:?}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    // An overcommitted launch shows up as admission-queue depth.
    let queued = runtime.launch(Program::new("waiting", |_| Step::Done)).unwrap();
    let mid = runtime.diagnostics();
    assert_eq!(mid.admission_queue_depth, 1, "the second launch waits in the queue");
    assert_eq!(mid.launches_queued, 1);
    assert_eq!(mid.launches_admitted, 1);

    gate.store(true, Ordering::Release);
    assert!(session.wait().unwrap().outcome.is_success());
    assert!(queued.wait().unwrap().outcome.is_success());

    // Drained: both launches were admitted, the queue is empty, and the
    // end-of-run reset returned the partition's quota counters to the
    // idle baseline.
    let drained = runtime.diagnostics();
    assert_eq!(drained.admission_queue_depth, 0);
    assert_eq!(drained.launches_admitted, 2);
    assert_eq!(
        drained.partitions[0].quota_epochs_used, 0,
        "reset restarts the counters"
    );
    assert_eq!(drained.partitions[0].quota_events_used, 0);
}

#[test]
fn live_replay_requests_in_passthrough_mode_are_recording_disabled() {
    let config = Config::builder()
        .mode(ireplayer::RunMode::Passthrough)
        .arena_size(8 << 20)
        .heap_block_size(256 << 10)
        .build()
        .unwrap();
    let runtime = Runtime::new(config).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let stop_for_body = Arc::clone(&stop);
    let session = runtime
        .launch(Program::new("passthrough", move |ctx| {
            ctx.work(1_000);
            if stop_for_body.load(Ordering::Acquire) {
                Step::Done
            } else {
                Step::Yield
            }
        }))
        .unwrap();
    let error = session.request_replay(ReplayRequest::because("nope")).unwrap_err();
    assert_eq!(error.kind(), ErrorKind::RecordingDisabled);
    stop.store(true, Ordering::Release);
    session.wait().unwrap();
}

#[test]
fn bounded_step_violations_surface_as_quiescence_timeout_and_the_runtime_recovers() {
    let config = Config::builder()
        .arena_size(8 << 20)
        .heap_block_size(256 << 10)
        .quiescence_timeout_ms(400)
        .fault_policy(ireplayer::FaultPolicy::ReportOnly)
        .build()
        .unwrap();
    let runtime = Runtime::new(config).unwrap();
    let error = runtime
        .run(Program::new("discipline-violation", |ctx| {
            // The worker's step outlives the quiescence budget (600 ms >
            // 400 ms) but is finite, so the teardown can still reclaim it.
            ctx.spawn("slow", |ctx| {
                ctx.sleep(Duration::from_millis(600));
                Step::Done
            });
            // Faulting while the worker is mid-step forces the coordinator
            // to wait for settlement, which times out.
            ctx.sleep(Duration::from_millis(50));
            ctx.crash("fault while a peer is stuck mid-step")
        }))
        .unwrap_err();
    assert_eq!(error.kind(), ErrorKind::QuiescenceTimeout);
    assert!(error.stuck_threads().is_some_and(|stuck| !stuck.is_empty()));

    // The teardown settled once the slow step finished, so the runtime
    // stays usable -- errors do not poison a recoverable world.
    let report = runtime.run(Program::new("recovered", |_| Step::Done)).unwrap();
    assert!(report.outcome.is_success());
}

#[test]
fn injected_faults_are_delivered_live_through_the_fault_filter() {
    // A chaotic runtime: the heavy plan's short-read schedule is dense
    // enough (400 per mille) that a 64-chunk read loop is guaranteed to
    // take several injections.
    let config = Config::builder()
        .arena_size(8 << 20)
        .heap_block_size(256 << 10)
        .chaos(ireplayer::ChaosPlan::compile(7, ireplayer::ChaosProfile::heavy()))
        .build()
        .unwrap();
    let runtime = Runtime::new(config).unwrap();
    let faults = runtime.subscribe(EventFilter::none().faults());
    let unrelated = runtime.subscribe(EventFilter::none().epochs());
    runtime.os().create_file("bulk.bin", vec![0x5a; 64 * 64]);
    let report = runtime
        .run(Program::new("chunk-reader", |ctx| {
            let fd = ctx.open("bulk.bin").expect("staged file");
            let mut total = 0usize;
            loop {
                let chunk = ctx.read(fd, 64);
                if chunk.is_empty() {
                    break;
                }
                total += chunk.len();
            }
            ctx.close(fd);
            ctx.assert_that(total == 64 * 64, "short reads only defer bytes, never drop them");
            Step::Done
        }))
        .unwrap();
    assert!(report.outcome.is_success(), "faults: {:?}", report.faults);

    // Delivery: every injection arrives as a typed event whose class and
    // count match the diagnostics counters, and a filter without the fault
    // class sees none of them.
    let delivered = faults.drain();
    let injected: Vec<_> = delivered
        .iter()
        .filter_map(|e| match e {
            SessionEvent::FaultInjected { class, site, epoch } => Some((*class, *site, *epoch)),
            _ => None,
        })
        .collect();
    assert!(!injected.is_empty(), "the chaotic read loop must announce injections");
    let short_reads = runtime.diagnostics().faults_injected[ireplayer::FaultClass::ShortRead.code() as usize];
    assert_eq!(injected.len() as u64, short_reads, "one event per injected fault");
    assert!(
        injected
            .iter()
            .all(|(class, _, _)| *class == ireplayer::FaultClass::ShortRead),
        "only the short-read schedule is exercised: {injected:?}"
    );
    assert!(
        unrelated
            .drain()
            .iter()
            .all(|e| !matches!(e, SessionEvent::FaultInjected { .. })),
        "an epochs-only filter must not deliver fault events"
    );
}

#[test]
fn event_streams_survive_across_launches_on_the_same_runtime() {
    let runtime = Runtime::new(small_config()).unwrap();
    let events = runtime.subscribe(EventFilter::none().lifecycle());
    for _ in 0..2 {
        stage(&runtime);
        runtime.run(deterministic_program()).unwrap();
    }
    let finished = events
        .drain()
        .into_iter()
        .filter(|e| matches!(e, SessionEvent::Finished { .. }))
        .count();
    assert_eq!(finished, 2, "one lifecycle event per launch");
}
