//! Multi-tenant sessions over partitioned arenas: the cross-session
//! identity suite.
//!
//! Acceptance properties exercised here:
//!
//! * N sessions launched **concurrently** on one multi-partition `Runtime`
//!   (a mix of plain-record and forced-replay workloads) each produce a
//!   `RunReport` whose fingerprint is byte-identical to the same program
//!   run solo on a fresh single-partition runtime -- neighbours cannot
//!   perturb a tenant;
//! * `Runtime::diagnostics()` shows zero cross-partition allocation
//!   leakage through a **staggered** teardown: as each session ends, its
//!   partition (and only its partition) returns to the idle baseline while
//!   the others keep running;
//! * when every partition is occupied, `launch` **queues** on the bounded
//!   FIFO admission queue: 2N launches on N partitions all complete, in
//!   FIFO admission order under staggered frees, with fingerprints
//!   byte-identical to solo runs; `wait_async` resolves an overcommitted
//!   fleet from a single polling thread;
//! * `admission_queue_depth = 0` restores the pre-scheduler contract
//!   (refuse with `ErrorKind::SessionActive` while full), and `try_launch`
//!   never queues;
//! * per-tenant quotas: a tenant exceeding `max_epochs` ends with
//!   `ErrorKind::QuotaExhausted` (after one `QuotaWarning` at three
//!   quarters of the quota) while its neighbours finish clean;
//! * each partition is its own simulated-OS namespace: files staged for
//!   one tenant are invisible to the others.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ireplayer::{Config, ErrorKind, Program, ReplayRequest, RunReport, Runtime, Step};

fn config(partitions: usize) -> Config {
    Config::builder()
        .partitions(partitions)
        .arena_size(4 << 20)
        .heap_block_size(128 << 10)
        .build()
        .unwrap()
}

/// A gated deterministic program: the recorded work happens once (guarded
/// by a flag in *managed* memory, so rollbacks rewind it), then the main
/// thread yields until the external gate opens.  The gate lives outside
/// managed memory on purpose -- it controls wall-clock overlap between
/// sessions without ever entering the recording, so a gated run's report
/// is identical whether the gate opened immediately (solo baseline) or
/// after every tenant was launched (concurrency proof).
fn gated_counter(name: &str, workers: u64, gate: Arc<AtomicBool>) -> Program {
    Program::new(name, move |ctx| {
        let worked = ctx.global("worked", 8);
        if ctx.read_u64(worked) == 0 {
            ctx.write_u64(worked, 1);
            let total = ctx.global("total", 8);
            let lock = ctx.mutex();
            let mut handles = Vec::new();
            for _ in 0..workers {
                handles.push(ctx.spawn("worker", move |ctx| {
                    ctx.lock(lock);
                    let value = ctx.read_u64(total);
                    ctx.write_u64(total, value + 1);
                    ctx.unlock(lock);
                    Step::Done
                }));
            }
            for handle in handles {
                ctx.join(handle);
            }
            let value = ctx.read_u64(total);
            ctx.assert_that(value == workers, "all workers incremented");
        }
        if gate.load(Ordering::Acquire) {
            Step::Done
        } else {
            Step::Yield
        }
    })
}

/// A gated allocation-heavy program: a different workload shape (heap
/// churn, byte patterns, frees) for the mixed-tenant scenario.
fn gated_allocator(name: &str, gate: Arc<AtomicBool>) -> Program {
    Program::new(name, move |ctx| {
        let worked = ctx.global("worked", 8);
        if ctx.read_u64(worked) == 0 {
            ctx.write_u64(worked, 1);
            let mut live = Vec::new();
            for round in 0..6u64 {
                let block = ctx.alloc(256 + (round as usize) * 64);
                ctx.fill(block, 64, 0xb0 + round as u8);
                ctx.write_u64(block, round * 7);
                if round % 2 == 1 {
                    if let Some(victim) = live.pop() {
                        ctx.free(victim);
                    }
                }
                live.push(block);
            }
            let sum = ctx.global("sum", 8);
            let mut total = 0u64;
            for block in &live {
                total += ctx.read_u64(*block);
            }
            ctx.write_u64(sum, total);
            for block in live {
                ctx.free(block);
            }
        }
        if gate.load(Ordering::Acquire) {
            Step::Done
        } else {
            Step::Yield
        }
    })
}

/// Runs one gated program solo on a fresh single-partition runtime:
/// the identity baseline.  `with_replay` queues a live replay request
/// before opening the gate, exactly as the concurrent scenario does.
fn solo_baseline(program: Program, gate: Arc<AtomicBool>, with_replay: bool) -> RunReport {
    let runtime = Runtime::new(config(1)).unwrap();
    let session = runtime.launch(program).unwrap();
    assert_eq!(session.partition(), Some(0));
    if with_replay {
        session
            .request_replay(ReplayRequest::because("multi-tenancy identity baseline"))
            .unwrap();
    }
    gate.store(true, Ordering::Release);
    session.wait().unwrap()
}

#[test]
fn concurrent_sessions_fingerprint_identically_to_solo_runs() {
    // Solo baselines on fresh runtimes: two plain-record workload shapes
    // and one forced-replay workload.
    let gate = Arc::new(AtomicBool::new(false));
    let counter_solo = solo_baseline(gated_counter("tenant-counter", 3, Arc::clone(&gate)), gate, false);
    let gate = Arc::new(AtomicBool::new(false));
    let alloc_solo = solo_baseline(gated_allocator("tenant-alloc", Arc::clone(&gate)), gate, false);
    let gate = Arc::new(AtomicBool::new(false));
    let replay_solo = solo_baseline(gated_counter("tenant-replay", 2, Arc::clone(&gate)), gate, true);
    assert!(counter_solo.outcome.is_success());
    assert!(alloc_solo.outcome.is_success());
    assert!(replay_solo.outcome.is_success());
    assert!(
        !replay_solo.replay_validations.is_empty(),
        "the live request must force a replay"
    );
    assert!(replay_solo.replays_identical());

    // The same three programs, launched concurrently on one runtime.  All
    // three sessions are provably live at once: every gate stays shut
    // until every session has launched.
    let runtime = Runtime::new(config(3)).unwrap();
    let gates: Vec<Arc<AtomicBool>> = (0..3).map(|_| Arc::new(AtomicBool::new(false))).collect();
    let session_counter = runtime
        .launch(gated_counter("tenant-counter", 3, Arc::clone(&gates[0])))
        .unwrap();
    let session_alloc = runtime
        .launch(gated_allocator("tenant-alloc", Arc::clone(&gates[1])))
        .unwrap();
    let session_replay = runtime
        .launch(gated_counter("tenant-replay", 2, Arc::clone(&gates[2])))
        .unwrap();
    assert_eq!(
        session_counter.partition(),
        Some(0),
        "launch claims the lowest free partition"
    );
    assert_eq!(session_alloc.partition(), Some(1));
    assert_eq!(session_replay.partition(), Some(2));
    session_replay
        .request_replay(ReplayRequest::because("multi-tenancy identity baseline"))
        .unwrap();
    for gate in &gates {
        gate.store(true, Ordering::Release);
    }
    let counter_multi = session_counter.wait().unwrap();
    let alloc_multi = session_alloc.wait().unwrap();
    let replay_multi = session_replay.wait().unwrap();

    // Byte-identical reports modulo wall time: equalize the one
    // nondeterministic field, compare whole structs, and cross-check with
    // the deterministic fingerprint.
    for (multi, solo) in [
        (&counter_multi, &counter_solo),
        (&alloc_multi, &alloc_solo),
        (&replay_multi, &replay_solo),
    ] {
        assert!(multi.outcome.is_success(), "faults: {:?}", multi.faults);
        let mut normalized = multi.clone();
        normalized.wall_time = solo.wall_time;
        assert_eq!(&normalized, solo, "a neighbour perturbed {}", solo.program);
        assert_eq!(multi.fingerprint(), solo.fingerprint());
    }
    assert!(replay_multi.replays_identical());
}

/// Polls a condition for up to ~2 seconds (launch registers the main
/// thread asynchronously on the supervisor actor).
fn wait_until(what: &str, mut condition: impl FnMut() -> bool) {
    for _ in 0..2000 {
        if condition() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    panic!("timed out waiting for: {what}");
}

#[test]
fn staggered_teardown_releases_only_the_finishing_partition() {
    let runtime = Runtime::new(config(3)).unwrap();

    // Idle baseline per partition, before anything ran.
    let baseline = runtime.diagnostics();
    assert_eq!(baseline.partitions.len(), 3);
    for (i, p) in baseline.partitions.iter().enumerate() {
        assert_eq!(p.partition, i as u32);
        assert_eq!(p.arena_base, (i as u64) * (4 << 20), "partition bases tile the backing");
        assert_eq!(p.arena_size, 4 << 20);
        assert_eq!(p.arena_allocations, 1, "one backing share per partition");
        assert!(!p.session_active);
        assert_eq!(p.live_threads, 0);
        assert_eq!(p.live_sync_vars, 0);
    }
    let idle_high_water: Vec<u64> = baseline.partitions.iter().map(|p| p.arena_in_use).collect();

    // Launch three gated tenants, then tear them down one at a time.
    let gates: Vec<Arc<AtomicBool>> = (0..3).map(|_| Arc::new(AtomicBool::new(false))).collect();
    let mut sessions = Vec::new();
    for (i, gate) in gates.iter().enumerate() {
        sessions.push(
            runtime
                .launch(gated_counter(&format!("tenant-{i}"), 3, Arc::clone(gate)))
                .unwrap(),
        );
    }
    for (expected, session) in sessions.iter().enumerate() {
        assert_eq!(session.partition(), Some(expected));
    }
    // Every tenant is provably live before the first teardown begins.
    wait_until("all three tenants registered their main thread", || {
        runtime
            .diagnostics()
            .partitions
            .iter()
            .all(|p| p.session_active && p.live_threads >= 1)
    });

    for (index, session) in sessions.into_iter().enumerate() {
        // Before this tenant's gate opens, its partition (and every
        // not-yet-finished one) is occupied.
        let during = runtime.diagnostics();
        assert!(during.partitions[index].session_active);
        assert!(during.partitions[index].live_threads >= 1);

        gates[index].store(true, Ordering::Release);
        let report = session.wait().unwrap();
        assert!(report.outcome.is_success(), "faults: {:?}", report.faults);

        // The finished partition is back at its idle baseline...
        let after = runtime.diagnostics();
        let mine = &after.partitions[index];
        assert!(!mine.session_active, "partition {index} must be free again");
        assert_eq!(mine.live_threads, 0, "partition {index} leaks threads");
        assert_eq!(mine.live_sync_vars, 0, "partition {index} leaks sync vars");
        assert_eq!(
            mine.arena_in_use, idle_high_water[index],
            "partition {index}'s arena high-water must rewind to its baseline"
        );
        assert!(mine.pooled_thread_lists >= 4, "teardown pools the tenant's lists");
        // ...while every still-running neighbour is untouched by the
        // teardown: still occupied, still holding its own threads.
        for later in index + 1..3 {
            let neighbour = &after.partitions[later];
            assert!(neighbour.session_active, "teardown of {index} must not free {later}");
            assert!(neighbour.live_threads >= 1);
        }
        // And no partition ever allocated into another's share.
        for p in &after.partitions {
            assert_eq!(p.arena_allocations, 1, "no partition re-allocates backing");
        }
    }

    // A warm relaunch on partition 0 draws from partition 0's own pools
    // and leaves the neighbours' allocation counters exactly as they were.
    let settled = runtime.diagnostics();
    let gate = Arc::new(AtomicBool::new(true));
    runtime
        .launch(gated_counter("tenant-0-again", 3, gate))
        .unwrap()
        .wait()
        .unwrap();
    let relaunched = runtime.diagnostics();
    assert_eq!(
        relaunched.partitions[0].thread_lists_created, settled.partitions[0].thread_lists_created,
        "the relaunch must reuse partition 0's warm pool"
    );
    assert!(relaunched.partitions[0].thread_lists_reused > settled.partitions[0].thread_lists_reused);
    for i in 1..3 {
        assert_eq!(
            relaunched.partitions[i].thread_lists_created, settled.partitions[i].thread_lists_created,
            "partition {i} must not serve a neighbour's launch"
        );
        assert_eq!(
            relaunched.partitions[i].thread_lists_reused, settled.partitions[i].thread_lists_reused,
            "partition {i} must not serve a neighbour's launch"
        );
        assert_eq!(
            relaunched.partitions[i].var_lists_created,
            settled.partitions[i].var_lists_created
        );
    }
}

#[test]
fn a_zero_depth_queue_restores_reject_when_full_and_try_launch_never_queues() {
    // `admission_queue_depth = 0` is the migration escape hatch: a full
    // runtime refuses launches immediately, exactly as before the
    // admission scheduler existed.
    let strict = Config::builder()
        .partitions(2)
        .arena_size(4 << 20)
        .heap_block_size(128 << 10)
        .admission_queue_depth(0)
        .build()
        .unwrap();
    let runtime = Runtime::new(strict).unwrap();
    let gates: Vec<Arc<AtomicBool>> = (0..2).map(|_| Arc::new(AtomicBool::new(false))).collect();
    let first = runtime
        .launch(gated_counter("hold-0", 1, Arc::clone(&gates[0])))
        .unwrap();
    let second = runtime
        .launch(gated_counter("hold-1", 1, Arc::clone(&gates[1])))
        .unwrap();
    assert_eq!((first.partition(), second.partition()), (Some(0), Some(1)));

    let error = runtime.launch(Program::new("rejected", |_| Step::Done)).unwrap_err();
    assert_eq!(error.kind(), ErrorKind::SessionActive);
    // `try_launch` sheds load on a full runtime regardless of queue depth.
    let error = runtime.try_launch(Program::new("shed", |_| Step::Done)).unwrap_err();
    assert_eq!(error.kind(), ErrorKind::SessionActive);

    // Freeing partition 0 (while partition 1 keeps running) makes the
    // runtime launchable again, and the new session lands on partition 0.
    gates[0].store(true, Ordering::Release);
    first.wait().unwrap();
    let third = runtime.launch(Program::new("accepted", |_| Step::Done)).unwrap();
    assert_eq!(third.partition(), Some(0));
    third.wait().unwrap();
    gates[1].store(true, Ordering::Release);
    second.wait().unwrap();
}

#[test]
fn overcommitted_launches_complete_in_fifo_admission_order_with_solo_identical_reports() {
    // The overcommit fairness suite: 2N launches on N = 2 partitions.
    // Solo baseline first (fresh single-partition runtime, gate open).
    let gate = Arc::new(AtomicBool::new(false));
    let solo = solo_baseline(gated_counter("tenant", 2, Arc::clone(&gate)), gate, false);
    assert!(solo.outcome.is_success());

    let runtime = Runtime::new(config(2)).unwrap();
    let gates: Vec<Arc<AtomicBool>> = (0..4).map(|_| Arc::new(AtomicBool::new(false))).collect();
    let sessions: Vec<_> = gates
        .iter()
        .map(|gate| runtime.launch(gated_counter("tenant", 2, Arc::clone(gate))).unwrap())
        .collect();

    // Launches 0 and 1 are admitted directly; 2 and 3 queue, none fails.
    assert_eq!(sessions[0].partition(), Some(0));
    assert_eq!(sessions[1].partition(), Some(1));
    assert_eq!(sessions[2].partition(), None, "the third launch must queue");
    assert_eq!(sessions[3].partition(), None, "the fourth launch must queue");
    assert_eq!(sessions[2].status().phase, ireplayer::RunPhase::Queued);
    let diagnostics = runtime.diagnostics();
    assert_eq!(diagnostics.admission_queue_depth, 2, "two launches are waiting");
    assert_eq!(diagnostics.launches_queued, 2);
    assert_eq!(diagnostics.launches_admitted, 2);

    // Staggered frees, out of launch order: partition 1 frees first.  The
    // freed partition must claim the *oldest* queued launch (number 2),
    // while launch 3 stays queued -- FIFO admission.
    gates[1].store(true, Ordering::Release);
    wait_until("session 1 finishes", || sessions[1].is_finished());
    wait_until("launch 2 is admitted onto the freed partition", || {
        sessions[2].partition() == Some(1)
    });
    assert_eq!(
        sessions[3].partition(),
        None,
        "FIFO: launch 3 must not overtake launch 2"
    );

    // Partition 0 frees next: launch 3 is admitted there.
    gates[0].store(true, Ordering::Release);
    wait_until("launch 3 is admitted onto partition 0", || {
        sessions[3].partition() == Some(0)
    });

    // Open the remaining gates and collect everything.
    gates[2].store(true, Ordering::Release);
    gates[3].store(true, Ordering::Release);
    for (index, session) in sessions.into_iter().enumerate() {
        let report = session.wait().unwrap();
        assert!(
            report.outcome.is_success(),
            "launch {index} faults: {:?}",
            report.faults
        );
        assert_eq!(
            report.fingerprint(),
            solo.fingerprint(),
            "queued admission perturbed launch {index}"
        );
    }

    // The queue drained and every launch was admitted.
    let drained = runtime.diagnostics();
    assert_eq!(drained.admission_queue_depth, 0);
    assert_eq!(drained.launches_admitted, 4);
    assert_eq!(drained.launches_queued, 2, "only the overcommitted launches queued");
}

#[test]
fn a_greedy_tenant_hits_its_quota_while_neighbours_finish_clean() {
    // Two tenants share a runtime; `max_epochs = 4` bounds each of them.
    // The greedy one requests a fresh epoch on every step and is cut off
    // with `QuotaExhausted`; the frugal neighbour finishes untouched.
    let quota_config = Config::builder()
        .partitions(2)
        .arena_size(4 << 20)
        .heap_block_size(128 << 10)
        .max_epochs(4)
        .build()
        .unwrap();
    let runtime = Runtime::new(quota_config).unwrap();
    let warnings = runtime.subscribe(ireplayer::EventFilter::none().quotas());

    let greedy = runtime
        .launch(Program::new("greedy", |ctx| {
            ctx.end_epoch();
            Step::Yield
        }))
        .unwrap();
    let gate = Arc::new(AtomicBool::new(false));
    let frugal = runtime.launch(gated_counter("frugal", 2, Arc::clone(&gate))).unwrap();
    gate.store(true, Ordering::Release);

    let error = greedy.wait().unwrap_err();
    assert_eq!(error.kind(), ErrorKind::QuotaExhausted);
    assert_eq!(
        error.quota_usage(),
        Some(("epochs", 4, 4)),
        "the error names the exhausted resource and the usage"
    );
    let report = frugal.wait().unwrap();
    assert!(report.outcome.is_success(), "faults: {:?}", report.faults);

    // The warning fired once, before the cut, at >= 3/4 of the quota.
    let warned: Vec<_> = warnings
        .drain()
        .into_iter()
        .filter_map(|event| match event {
            ireplayer::SessionEvent::QuotaWarning {
                resource, used, limit, ..
            } => Some((resource, used, limit)),
            _ => None,
        })
        .collect();
    assert_eq!(warned, vec![("epochs", 3, 4)], "one warning at three quarters");

    // The greedy tenant's teardown was orderly: its partition is free and
    // the runtime keeps serving launches.
    let after = runtime.run(Program::new("after-quota", |_| Step::Done)).unwrap();
    assert!(after.outcome.is_success());
}

/// A minimal single-threaded executor for [`ireplayer::SessionFuture`]s:
/// parks the polling thread between wake-ups.  This is the satellite
/// acceptance check that `wait_async` costs no thread per pending tenant
/// -- one polling thread drives every launch of an overcommitted runtime
/// to completion.
#[test]
fn wait_async_resolves_an_overcommitted_fleet_from_one_polling_thread() {
    use std::future::Future;
    use std::pin::Pin;
    use std::task::{Context, Poll, Wake, Waker};

    struct Unpark(std::thread::Thread);
    impl Wake for Unpark {
        fn wake(self: Arc<Self>) {
            self.0.unpark();
        }
    }

    let runtime = Runtime::new(config(2)).unwrap();
    // 8 launches on 2 partitions: 6 of them queue.
    let mut futures: Vec<Pin<Box<ireplayer::SessionFuture<'_>>>> = (0..8)
        .map(|i| {
            let session = runtime
                .launch(Program::new(format!("async-{i}"), |ctx| {
                    let cell = ctx.alloc(16);
                    ctx.write_u64(cell, 3);
                    Step::Done
                }))
                .unwrap();
            Box::pin(session.wait_async())
        })
        .collect();

    let waker = Waker::from(Arc::new(Unpark(std::thread::current())));
    let mut context = Context::from_waker(&waker);
    let mut reports = Vec::new();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while !futures.is_empty() {
        assert!(std::time::Instant::now() < deadline, "async waits must resolve");
        let before = futures.len();
        futures.retain_mut(|future| match future.as_mut().poll(&mut context) {
            Poll::Ready(result) => {
                reports.push(result.unwrap());
                false
            }
            Poll::Pending => true,
        });
        if futures.len() == before {
            // Nothing resolved this round: sleep until a delivery wakes us
            // (bounded, so one missed unpark cannot hang the test).
            std::thread::park_timeout(std::time::Duration::from_millis(50));
        }
    }
    assert_eq!(reports.len(), 8, "every queued tenant resolves");
    for report in &reports {
        assert!(report.outcome.is_success(), "faults: {:?}", report.faults);
    }
    assert_eq!(runtime.diagnostics().admission_queue_depth, 0);
}

#[test]
fn partitions_are_independent_simulated_os_namespaces() {
    let runtime = Runtime::new(config(2)).unwrap();
    assert_eq!(runtime.partition_count(), 2);

    // Stage a file in partition 1's namespace only.
    runtime
        .partition_os(1)
        .unwrap()
        .create_file("tenant1.bin", vec![42u8; 32]);
    assert!(
        runtime.partition_os(0).unwrap().file_contents("tenant1.bin").is_err(),
        "partition 0 must not see partition 1's files"
    );
    assert!(runtime.partition_os(2).is_none(), "out-of-range partitions are None");
    // `Runtime::os()` is partition 0's namespace.
    assert!(runtime.os().file_contents("tenant1.bin").is_err());

    // Occupy partition 0, so the next launch lands on partition 1 and can
    // open the staged file there.
    let gate = Arc::new(AtomicBool::new(false));
    let holder = runtime.launch(gated_counter("hold-0", 1, Arc::clone(&gate))).unwrap();
    assert_eq!(holder.partition(), Some(0));
    let reader = runtime
        .launch(Program::new("tenant-1-reader", |ctx| {
            let fd = ctx.open("tenant1.bin").expect("staged in this tenant's namespace");
            let data = ctx.read(fd, 32);
            let len = data.len() as u64;
            ctx.assert_that(len == 32, "the staged bytes are readable");
            ctx.close(fd);
            Step::Done
        }))
        .unwrap();
    assert_eq!(reader.partition(), Some(1));
    let report = reader.wait().unwrap();
    assert!(report.outcome.is_success(), "faults: {:?}", report.faults);
    gate.store(true, Ordering::Release);
    holder.wait().unwrap();
}
