//! The deterministic chaos plane end to end: seeded fault plans injected at
//! the simulated-OS boundary, recorded like any other syscall
//! nondeterminism, and replayed byte-identically.
//!
//! Acceptance properties exercised here:
//!
//! * a chaos-enabled run of the connection-pool KV server -- with nonzero
//!   injections in **every** fault class -- records, force-replays (in-situ
//!   rollback at every epoch end), and trace-replays fingerprint-identically
//!   on a fresh runtime that never saw the original;
//! * the same identity holds under 2-partition concurrent sessions, each
//!   partition running its own isolated copy of the plan;
//! * the plan digest travels in the durable trace header: replaying a trace
//!   under a different plan (or no plan at all, or a plan where none was
//!   recorded) is refused up front with a typed `ErrorKind::TraceMismatch`
//!   naming the chaos plan;
//! * injected faults surface as `SessionEvent::FaultInjected` and as
//!   per-class `DiagnosticsSnapshot` counters, and the two agree;
//! * a checked-in chaotic-run fixture (`tests/fixtures/chaos_workload.json`)
//!   opens and replays green, pinning the on-disk format.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use ireplayer::{
    ChaosPlan, ChaosProfile, Config, EpochDecision, EpochView, ErrorKind, EventFilter, FaultClass, LaunchOptions,
    Program, ReplayRequest, Runtime, SessionEvent, Step, ToolHook, Trace, TraceFormat,
};
use ireplayer_workloads::{workload_by_name, Ledger, Workload, WorkloadSpec};

/// A scratch path in the system temp dir, unique per test and process.
fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ireplayer-chaos-{name}-{}.trace", std::process::id()))
}

/// The seed every test compiles its plan from.  Chosen (by scanning) so
/// that a heavy plan fires at least once in **every** fault class within
/// the operation budget of a small `kv-pool` run -- the acceptance
/// criterion below asserts exactly that, so the seed is part of the test.
const SPICY_SEED: u64 = 0x20;

fn heavy_plan() -> ChaosPlan {
    ChaosPlan::compile(SPICY_SEED, ChaosProfile::heavy())
}

/// The shared configuration shape; execution-relevant knobs must match
/// between the recording and every replaying runtime.
fn chaos_builder() -> ireplayer::ConfigBuilder {
    Config::builder()
        .arena_size(16 << 20)
        .heap_block_size(256 << 10)
        .quiescence_timeout_ms(20_000)
}

fn chaos_config() -> Config {
    chaos_builder().chaos(heavy_plan()).build().unwrap()
}

fn kv_pool() -> Box<dyn Workload> {
    workload_by_name("kv-pool").expect("registered chaos-suite workload")
}

/// `kv-pool` at the small size: enough per-class operations that the heavy
/// plan's schedule fires in every class (see [`SPICY_SEED`]).
fn spec() -> WorkloadSpec {
    WorkloadSpec::small()
}

/// Requests one validation replay at every epoch end, forcing the
/// checkpoint-rollback-re-execution machinery through the chaos plane.
struct ValidateAlways;

impl ToolHook for ValidateAlways {
    fn name(&self) -> &str {
        "chaos-validate-always"
    }

    fn at_epoch_end(&self, _view: &dyn EpochView) -> EpochDecision {
        EpochDecision::Replay(ReplayRequest::because("chaos validation"))
    }
}

#[test]
fn a_chaos_run_records_force_replays_and_trace_replays_identically() {
    let path = scratch("roundtrip");
    let workload = kv_pool();

    // Record with a durable trace, a forced replay at every epoch end, and
    // a live fault-event subscription.
    let runtime = Runtime::new(chaos_builder().chaos(heavy_plan()).record_to(&path).build().unwrap()).unwrap();
    runtime.add_hook(Arc::new(ValidateAlways));
    let events = runtime.subscribe(EventFilter::none().faults());
    workload.stage(&runtime, &spec());
    let recorded = runtime.run(workload.program(&spec())).unwrap();
    assert!(recorded.outcome.is_success(), "faults: {:?}", recorded.faults);
    assert!(!recorded.replay_validations.is_empty(), "the hook must force a replay");
    assert!(
        recorded.replays_identical(),
        "the in-situ re-execution re-derived different outcomes"
    );

    // Every fault class fired at least once, and the counters agree with
    // the live event stream (original executions only: the forced replay
    // must not double-count).
    let diagnostics = runtime.diagnostics();
    let mut announced = vec![0u64; FaultClass::ALL.len()];
    for event in events.drain() {
        if let SessionEvent::FaultInjected { class, .. } = event {
            announced[class.code() as usize] += 1;
        }
    }
    for class in FaultClass::ALL {
        let count = diagnostics.faults_injected[class.code() as usize];
        assert!(count > 0, "no {} fault was injected", class.name());
        assert_eq!(
            announced[class.code() as usize],
            count,
            "{}: events and diagnostics disagree",
            class.name()
        );
    }
    drop(runtime);

    // A fresh runtime with the same plan: the trace alone restores the
    // staged inputs and the recorded injections, and reproduces the run
    // by fingerprint -- non-strict and strict, with the hook reinstalled.
    let trace = Trace::open(&path).unwrap();
    assert_eq!(trace.chaos_digest(), heavy_plan().digest());
    let fresh = Runtime::new(chaos_config()).unwrap();
    fresh.add_hook(Arc::new(ValidateAlways));
    let replayed = fresh.replay_trace(workload.program(&spec()), &trace).unwrap();
    assert_eq!(replayed.fingerprint(), recorded.fingerprint());
    // The verifier re-executes the program (in-situ rollback replays are
    // served from the order logs, but the out-of-process verify is a fresh
    // original execution), so the plan deterministically re-injects the
    // exact same per-class counts.
    assert_eq!(
        fresh.diagnostics().faults_injected,
        diagnostics.faults_injected,
        "the verifying run must re-derive the recorded injections exactly"
    );

    let strict = Runtime::new(chaos_config()).unwrap();
    strict.add_hook(Arc::new(ValidateAlways));
    let replayed = strict.replay_trace_strict(workload.program(&spec()), &trace).unwrap();
    assert_eq!(replayed.fingerprint(), recorded.fingerprint());

    let _ = std::fs::remove_file(&path);
}

#[test]
fn chaos_fingerprints_are_invariant_under_two_partition_concurrency() {
    let workload = kv_pool();

    // The identity baseline: a solo run on a single-partition runtime.
    // The staged config bytes are captured up front: the end-of-run reset
    // clears the simulated filesystem.
    let solo_runtime = Runtime::new(chaos_config()).unwrap();
    workload.stage(&solo_runtime, &spec());
    let staged_config = solo_runtime.os().file_contents("kv-pool.conf").unwrap();
    let solo = solo_runtime.run(workload.program(&spec())).unwrap();
    assert!(solo.outcome.is_success(), "faults: {:?}", solo.faults);

    // The same program on both partitions of one runtime, sessions live at
    // once.  Each partition owns an isolated copy of the plan, so each
    // tenant sees exactly the injections the solo run saw.
    let multi = Runtime::new(chaos_builder().partitions(2).chaos(heavy_plan()).build().unwrap()).unwrap();
    for partition in 0..2 {
        let os = multi.partition_os(partition).unwrap();
        os.register_peer("kv:6379", ireplayer::PeerScript::Echo { response_len: 32 });
        os.create_file("kv-pool.conf", staged_config.clone());
    }
    let sessions: Vec<_> = (0..2)
        .map(|_| multi.launch(workload.program(&spec())).unwrap())
        .collect();
    for session in sessions {
        let report = session.wait().unwrap();
        assert!(report.outcome.is_success(), "faults: {:?}", report.faults);
        assert_eq!(
            report.fingerprint(),
            solo.fingerprint(),
            "a concurrent chaotic tenant diverged from its solo baseline"
        );
    }

    // Both partitions injected the same per-class counts as the solo run
    // (isolation: neither consumed the other's schedule).
    let solo_counts = solo_runtime.diagnostics().faults_injected;
    let multi_counts = multi.diagnostics();
    for class in FaultClass::ALL {
        let index = class.code() as usize;
        for partition in &multi_counts.partitions {
            assert_eq!(
                partition.faults_injected[index],
                solo_counts[index],
                "{}: partition {} diverged from the solo injection count",
                class.name(),
                partition.partition
            );
        }
    }
}

#[test]
fn a_trace_records_the_plan_and_refuses_a_mismatched_one() {
    let path = scratch("mismatch");
    let workload = kv_pool();

    let runtime = Runtime::new(chaos_builder().chaos(heavy_plan()).record_to(&path).build().unwrap()).unwrap();
    workload.stage(&runtime, &spec());
    let recorded = runtime.run(workload.program(&spec())).unwrap();
    assert!(recorded.outcome.is_success());
    drop(runtime);
    let trace = Trace::open(&path).unwrap();

    let expect_refusal = |config: Config| {
        let fresh = Runtime::new(config).unwrap();
        let error = fresh.replay_trace(workload.program(&spec()), &trace).unwrap_err();
        assert_eq!(error.kind(), ErrorKind::TraceMismatch);
        let (what, detail) = error.trace_divergence().unwrap();
        assert_eq!(what, "chaos plan");
        assert!(detail.contains("chaos-plan digest"), "{detail}");
        detail.to_string()
    };

    // A different plan: same shape, different seed.
    let other = ChaosPlan::compile(SPICY_SEED + 1, ChaosProfile::heavy());
    assert_ne!(other.digest(), heavy_plan().digest());
    expect_refusal(chaos_builder().chaos(other).build().unwrap());

    // No plan at all: the digest mismatch is reported as the chaos plan,
    // not hidden behind the aggregate config fingerprint.
    let detail = expect_refusal(chaos_builder().build().unwrap());
    assert!(detail.contains("0x0000000000000000"), "{detail}");

    // And the reverse direction: a planless recording refuses a chaotic
    // replayer.
    let planless_path = scratch("planless");
    let runtime = Runtime::new(chaos_builder().record_to(&planless_path).build().unwrap()).unwrap();
    workload.stage(&runtime, &spec());
    runtime.run(workload.program(&spec())).unwrap();
    drop(runtime);
    let planless = Trace::open(&planless_path).unwrap();
    assert_eq!(planless.chaos_digest(), 0);
    let chaotic = Runtime::new(chaos_config()).unwrap();
    let error = chaotic.replay_trace(workload.program(&spec()), &planless).unwrap_err();
    assert_eq!(error.kind(), ErrorKind::TraceMismatch);
    let (what, _) = error.trace_divergence().unwrap();
    assert_eq!(what, "chaos plan");

    for path in [path, planless_path] {
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn the_work_stealing_queue_survives_chaos_and_replays_identically() {
    let workload = workload_by_name("job-steal").expect("registered chaos-suite workload");
    let path = scratch("job-steal");

    let runtime = Runtime::new(chaos_builder().chaos(heavy_plan()).record_to(&path).build().unwrap()).unwrap();
    runtime.add_hook(Arc::new(ValidateAlways));
    workload.stage(&runtime, &spec());
    let recorded = runtime.run(workload.program(&spec())).unwrap();
    assert!(recorded.outcome.is_success(), "faults: {:?}", recorded.faults);
    assert!(recorded.replays_identical());
    drop(runtime);

    let trace = Trace::open(&path).unwrap();
    let fresh = Runtime::new(chaos_config()).unwrap();
    fresh.add_hook(Arc::new(ValidateAlways));
    let replayed = fresh.replay_trace(workload.program(&spec()), &trace).unwrap();
    assert_eq!(replayed.fingerprint(), recorded.fingerprint());

    let _ = std::fs::remove_file(&path);
}

#[test]
fn a_quiet_plan_injects_nothing_and_changes_nothing() {
    let workload = kv_pool();
    let quiet = ChaosPlan::compile(SPICY_SEED, ChaosProfile::quiet());
    assert!(quiet.is_quiet());

    let baseline_runtime = Runtime::new(chaos_builder().build().unwrap()).unwrap();
    workload.stage(&baseline_runtime, &spec());
    let baseline = baseline_runtime.run(workload.program(&spec())).unwrap();
    assert!(baseline.outcome.is_success());

    let runtime = Runtime::new(chaos_builder().chaos(quiet).build().unwrap()).unwrap();
    workload.stage(&runtime, &spec());
    let report = runtime.run(workload.program(&spec())).unwrap();
    assert!(report.outcome.is_success());
    assert_eq!(
        runtime.diagnostics().faults_injected,
        vec![0u64; FaultClass::ALL.len()],
        "a quiet plan fires nothing"
    );
    assert_eq!(
        report.fingerprint(),
        baseline.fingerprint(),
        "a quiet plan must not perturb the execution"
    );
}

/// A deliberately fragile program: it treats every syscall as infallible
/// (`expect`), so the heavy plan's fd-pressure schedule makes it fail --
/// and the failure is *detectable*: the report carries the fault rather
/// than the process crashing.
#[test]
fn a_fragile_program_fails_detectably_under_chaos() {
    let fragile = || {
        Program::new("fragile", |ctx| {
            // Enough descriptor-producing calls that the heavy fd-pressure
            // schedule (150 per mille) is guaranteed to hit one.
            for i in 0..64 {
                let fd = ctx
                    .open_create(&format!("out-{i}.log"))
                    .expect("fragile code assumes descriptors never run out");
                ctx.close(fd);
            }
            Step::Done
        })
    };
    let chaotic = Runtime::new(chaos_config()).unwrap();
    let report = chaotic.run(fragile()).unwrap();
    assert!(
        !report.outcome.is_success(),
        "the fragile program must detectably fail under fd pressure"
    );
    assert!(!report.faults.is_empty());

    // The same program is clean without a plan: the failure is chaos's.
    let calm = Runtime::new(chaos_builder().build().unwrap()).unwrap();
    assert!(calm.run(fragile()).unwrap().outcome.is_success());
}

// ---------------------------------------------------------------------------
// The checked-in chaotic fixture: a durable trace of a chaos run, part of
// the published corpus.
// ---------------------------------------------------------------------------

fn fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/chaos_workload.json")
}

fn fixture_v2_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/chaos_workload_v2.json")
}

/// Records the fixture's run: `kv-pool` at the small size under the heavy
/// [`SPICY_SEED`] plan.
fn record_fixture_run(path: &Path) -> ireplayer::RunReport {
    let workload = kv_pool();
    let runtime = Runtime::new(
        chaos_builder()
            .chaos(heavy_plan())
            .record_to(path)
            .trace_format(TraceFormat::Binary)
            .build()
            .unwrap(),
    )
    .unwrap();
    workload.stage(&runtime, &spec());
    let report = runtime.run(workload.program(&spec())).unwrap();
    assert!(report.outcome.is_success(), "faults: {:?}", report.faults);
    report
}

/// The checked-in fixture (`tests/fixtures/chaos_workload.json`, produced
/// by [`Trace::emit_test`] via `regenerate_chaos_fixture` below) opens and
/// replays green, pinning the chaotic on-disk format across refactors.
#[test]
fn checked_in_chaos_fixture_replays_green() {
    let trace = Trace::open(fixture_path()).unwrap();
    assert_eq!(trace.format(), TraceFormat::Json);
    assert_eq!(trace.version(), 3);
    assert_eq!(trace.program(), "kv-pool");
    assert_eq!(trace.chaos_digest(), heavy_plan().digest());
    assert!(trace.completed());

    let fresh = Runtime::new(chaos_config()).unwrap();
    let replayed = fresh.replay_trace_strict(kv_pool().program(&spec()), &trace).unwrap();
    assert_eq!(Some(replayed.fingerprint()), trace.fingerprint());
}

/// The frozen version-2 chaos fixture (pre-compression format) still opens
/// and replays fingerprint-identically, fault schedule and all.
#[test]
fn version_2_chaos_fixture_still_replays_green() {
    let trace = Trace::open(fixture_v2_path()).unwrap();
    assert_eq!(trace.version(), 2);
    assert_eq!(trace.program(), "kv-pool");
    assert_eq!(trace.chaos_digest(), heavy_plan().digest());

    let fresh = Runtime::new(chaos_config()).unwrap();
    let replayed = fresh.replay_trace_strict(kv_pool().program(&spec()), &trace).unwrap();
    assert_eq!(Some(replayed.fingerprint()), trace.fingerprint());

    // Same recording as the regenerated version-3 sibling.
    let current = Trace::open(fixture_path()).unwrap();
    assert_eq!(trace.fingerprint(), current.fingerprint());
}

/// Maintenance helper: scans seeds for one whose heavy plan fires every
/// class within the small kv-pool run.  Re-run manually (`-- --ignored
/// --nocapture`) if a profile or workload change invalidates
/// [`SPICY_SEED`], and update the constant with what it prints.
#[test]
#[ignore = "seed scan for SPICY_SEED maintenance"]
fn scan_for_a_spicy_seed() {
    let workload = kv_pool();
    'seeds: for seed in 0..256u64 {
        let plan = ChaosPlan::compile(seed, ChaosProfile::heavy());
        let runtime = Runtime::new(chaos_builder().chaos(plan).build().unwrap()).unwrap();
        workload.stage(&runtime, &spec());
        let report = runtime.run(workload.program(&spec())).unwrap();
        if !report.outcome.is_success() {
            continue;
        }
        let diag = runtime.diagnostics();
        for class in FaultClass::ALL {
            if diag.faults_injected[class.code() as usize] == 0 {
                continue 'seeds;
            }
        }
        println!("seed {seed:#x} fires every class: {:?}", diag.faults_injected);
        return;
    }
    panic!("no seed in range fires every class");
}

/// Regenerates the checked-in fixture; run manually after an intentional
/// format change: `cargo test -p ireplayer-tests --test chaos
/// regenerate_chaos_fixture -- --ignored`.
#[test]
#[ignore = "regenerates tests/fixtures/chaos_workload.json in place"]
fn regenerate_chaos_fixture() {
    let path = scratch("regenerate");
    record_fixture_run(&path);
    let trace = Trace::open(&path).unwrap();
    trace.emit_test(fixture_path()).unwrap();
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------------
// Per-launch chaos overrides (the explorer's probe path).
// ---------------------------------------------------------------------------

/// Regression: warm-runtime trials must start from identical injection
/// state.  The supervisor reinstalls the launch's plan -- with zeroed
/// revocable-state counters -- at every admission, so two back-to-back
/// trials of the same override on the same runtime inject identical
/// per-class fault counts and fingerprint identically.  (Before the fix,
/// the second trial inherited the first trial's consumed schedule.)
#[test]
fn warm_runtime_trials_start_from_identical_injection_state() {
    let runtime = Runtime::new(chaos_builder().build().unwrap()).unwrap();
    let trial = || {
        let options = LaunchOptions::new().chaos(heavy_plan()).stage(Ledger::stage_os);
        runtime
            .launch_with(Ledger.program(&WorkloadSpec::tiny()), options)
            .unwrap()
            .wait()
            .unwrap()
    };
    let first = trial();
    let second = trial();
    assert!(
        first.faults_injected.iter().sum::<u64>() > 0,
        "the override plan must inject something"
    );
    assert_eq!(
        first.faults_injected, second.faults_injected,
        "warm trial started from consumed injection state"
    );
    assert_eq!(
        first.fingerprint(),
        second.fingerprint(),
        "warm trial diverged from the cold one"
    );
}

/// A per-launch override neither records durably nor leaks into the next
/// launch: on a runtime configured without a plan, the launch after a
/// chaotic override runs fault-free.
#[test]
fn a_chaos_override_does_not_leak_into_the_next_launch() {
    let runtime = Runtime::new(chaos_builder().build().unwrap()).unwrap();

    let chaotic_options = LaunchOptions::new().chaos(heavy_plan()).stage(Ledger::stage_os);
    let chaotic = runtime
        .launch_with(Ledger.program(&WorkloadSpec::tiny()), chaotic_options)
        .unwrap()
        .wait()
        .unwrap();
    assert!(chaotic.faults_injected.iter().sum::<u64>() > 0);

    let clean_options = LaunchOptions::new().stage(Ledger::stage_os);
    let clean = runtime
        .launch_with(Ledger.program(&WorkloadSpec::tiny()), clean_options)
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(
        clean.faults_injected.iter().sum::<u64>(),
        0,
        "the previous launch's override leaked"
    );
    assert!(clean.outcome.is_success(), "faults: {:?}", clean.faults);
}
