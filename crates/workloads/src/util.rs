//! Shared building blocks for the workloads: a bounded queue and a striped
//! hash table living entirely in managed memory, plus small helpers.
//!
//! Keeping all state in managed memory (and all blocking on runtime
//! primitives) is what makes the workloads recordable and identically
//! replayable; these helpers are also a realistic exercise of the public
//! API, since real applications build exactly these structures on top of
//! `malloc` + `pthread`.

use ireplayer::{CondvarHandle, MemAddr, MutexHandle, ThreadCtx};

/// A bounded multi-producer multi-consumer queue of `u64` items stored in
/// managed memory and synchronized with a managed mutex and two condition
/// variables -- the classic `pthread` bounded buffer.
#[derive(Debug, Clone, Copy)]
pub struct BoundedQueue {
    base: MemAddr,
    capacity: u64,
    lock: MutexHandle,
    not_empty: CondvarHandle,
    not_full: CondvarHandle,
}

const QUEUE_HEADER: u64 = 24; // head, tail, count (8 bytes each)

impl BoundedQueue {
    /// Allocates a queue with room for `capacity` items.
    pub fn new(ctx: &mut ThreadCtx<'_>, capacity: u64) -> Self {
        let base = ctx.alloc((QUEUE_HEADER + capacity * 8) as usize);
        ctx.write_u64(base, 0);
        ctx.write_u64(base + 8, 0);
        ctx.write_u64(base + 16, 0);
        BoundedQueue {
            base,
            capacity,
            lock: ctx.mutex(),
            not_empty: ctx.condvar(),
            not_full: ctx.condvar(),
        }
    }

    fn count(&self, ctx: &mut ThreadCtx<'_>) -> u64 {
        ctx.read_u64(self.base + 16)
    }

    /// Pushes an item, blocking while the queue is full.
    pub fn push(&self, ctx: &mut ThreadCtx<'_>, item: u64) {
        ctx.lock(self.lock);
        while self.count(ctx) == self.capacity {
            ctx.wait(self.not_full, self.lock);
        }
        let tail = ctx.read_u64(self.base + 8);
        ctx.write_u64(self.base + QUEUE_HEADER + (tail % self.capacity) * 8, item);
        ctx.write_u64(self.base + 8, tail + 1);
        let count = self.count(ctx);
        ctx.write_u64(self.base + 16, count + 1);
        ctx.signal(self.not_empty);
        ctx.unlock(self.lock);
    }

    /// Pops an item, blocking while the queue is empty.  Returns `None` if
    /// `poison` has been observed and the queue is empty (shutdown).
    pub fn pop(&self, ctx: &mut ThreadCtx<'_>, poison: u64) -> Option<u64> {
        ctx.lock(self.lock);
        loop {
            let count = self.count(ctx);
            if count > 0 {
                break;
            }
            ctx.wait(self.not_empty, self.lock);
        }
        let head = ctx.read_u64(self.base);
        let item = ctx.read_u64(self.base + QUEUE_HEADER + (head % self.capacity) * 8);
        if item == poison {
            // Leave the poison pill for the next consumer.
            ctx.signal(self.not_empty);
            ctx.unlock(self.lock);
            return None;
        }
        ctx.write_u64(self.base, head + 1);
        let count = self.count(ctx);
        ctx.write_u64(self.base + 16, count - 1);
        ctx.signal(self.not_full);
        ctx.unlock(self.lock);
        Some(item)
    }
}

/// A fixed-size open-addressing hash table of `u64 -> u64` with striped
/// locks, as used by the memcached and dedup workloads.
#[derive(Debug, Clone)]
pub struct StripedTable {
    slots: MemAddr,
    capacity: u64,
    locks: Vec<MutexHandle>,
}

impl StripedTable {
    /// Allocates a table with `capacity` slots (rounded up to a power of
    /// two) and `stripes` locks.
    pub fn new(ctx: &mut ThreadCtx<'_>, capacity: u64, stripes: usize) -> Self {
        let capacity = capacity.next_power_of_two();
        let slots = ctx.alloc((capacity * 16) as usize);
        ctx.fill(slots, (capacity * 16) as usize, 0);
        let locks = (0..stripes.max(1)).map(|_| ctx.mutex()).collect();
        StripedTable { slots, capacity, locks }
    }

    /// Slot value 0 means "empty", so the zero key is remapped to a sentinel.
    fn encode(key: u64) -> u64 {
        if key == 0 {
            0xfeed_face_cafe_beef
        } else {
            key
        }
    }

    fn stripe(&self, key: u64) -> MutexHandle {
        self.locks[(key as usize) % self.locks.len()]
    }

    fn slot(&self, index: u64) -> MemAddr {
        self.slots + (index % self.capacity) * 16
    }

    /// Inserts or updates a key.  Returns `false` if the table is full.
    pub fn put(&self, ctx: &mut ThreadCtx<'_>, key: u64, value: u64) -> bool {
        let key = Self::encode(key);
        let lock = self.stripe(key);
        ctx.lock(lock);
        let mut inserted = false;
        for probe in 0..self.capacity {
            let slot = self.slot(key.wrapping_add(probe));
            let existing = ctx.read_u64(slot);
            if existing == 0 || existing == key {
                ctx.write_u64(slot, key);
                ctx.write_u64(slot + 8, value);
                inserted = true;
                break;
            }
        }
        ctx.unlock(lock);
        inserted
    }

    /// Looks a key up.
    pub fn get(&self, ctx: &mut ThreadCtx<'_>, key: u64) -> Option<u64> {
        let key = Self::encode(key);
        let lock = self.stripe(key);
        ctx.lock(lock);
        let mut result = None;
        for probe in 0..self.capacity {
            let slot = self.slot(key.wrapping_add(probe));
            let existing = ctx.read_u64(slot);
            if existing == key {
                result = Some(ctx.read_u64(slot + 8));
                break;
            }
            if existing == 0 {
                break;
            }
        }
        ctx.unlock(lock);
        result
    }
}

/// A simple deterministic mixing function used by workloads to model
/// content-dependent computation (hashing, compression dictionaries).
pub fn mix(value: u64) -> u64 {
    let mut x = value.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 29;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^ (x >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ireplayer::{Config, Program, Runtime, Step};

    fn run(body: impl FnMut(&mut ThreadCtx<'_>) -> Step + Send + 'static) {
        let config = Config::builder()
            .arena_size(8 << 20)
            .heap_block_size(128 << 10)
            .build()
            .unwrap();
        let report = Runtime::new(config)
            .unwrap()
            .run(Program::new("util-test", body))
            .unwrap();
        assert!(report.outcome.is_success(), "faults: {:?}", report.faults);
    }

    #[test]
    fn queue_is_fifo_across_threads() {
        run(|ctx| {
            let queue = BoundedQueue::new(ctx, 4);
            let out = ctx.global("out", 8);
            let consumer = ctx.spawn("consumer", move |ctx| {
                let mut sum = 0u64;
                while let Some(item) = queue.pop(ctx, u64::MAX) {
                    sum += item;
                }
                ctx.write_u64(out, sum);
                Step::Done
            });
            for i in 1..=10u64 {
                queue.push(ctx, i);
            }
            queue.push(ctx, u64::MAX);
            ctx.join(consumer);
            let sum = ctx.read_u64(out);
            ctx.assert_that(sum == 55, "consumer saw all items");
            Step::Done
        });
    }

    #[test]
    fn table_put_get_round_trip() {
        run(|ctx| {
            let table = StripedTable::new(ctx, 64, 4);
            for key in 1..=32u64 {
                let inserted = table.put(ctx, key, key * 10);
                ctx.assert_that(inserted, "insert fits");
            }
            for key in 1..=32u64 {
                let value = table.get(ctx, key);
                ctx.assert_that(value == Some(key * 10), "lookup returns stored value");
            }
            let missing = table.get(ctx, 999);
            ctx.assert_that(missing.is_none(), "missing key is absent");
            Step::Done
        });
    }

    #[test]
    fn mix_is_deterministic() {
        assert_eq!(mix(1), mix(1));
        assert_ne!(mix(1), mix(2));
    }
}
