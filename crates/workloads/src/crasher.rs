//! The Crasher workload: a synthetic racy program (paper §5.2.1, Table 2).
//!
//! Crasher intentionally widens a race window with sleeps so that a crash
//! (a null-pointer dereference) occurs in the majority of executions.  One
//! thread repeatedly publishes a pointer, briefly nulls it, and restores it;
//! the other thread reads the pointer and dereferences it.  If the reader
//! observes the transient null, it dereferences the null address and
//! faults.  iReplayer's job is to reproduce exactly this crash during the
//! diagnostic replay, which Table 2 quantifies by the number of replay
//! attempts needed.

use std::time::Duration;

use ireplayer::{MemAddr, Program, Step};

use crate::spec::{implant_overflow, Workload, WorkloadSpec};

/// The Crasher racy program.
#[derive(Debug, Clone, Copy, Default)]
pub struct Crasher {
    /// Microseconds the writer keeps the pointer null; larger values make
    /// the crash more likely (the paper's Crasher observes the race in
    /// roughly 83% of runs).
    pub null_window_us: u64,
    /// Number of publish/deref rounds per execution.
    pub rounds: u64,
}

impl Crasher {
    /// The configuration used by the Table 2 harness.
    pub fn table2() -> Self {
        Crasher {
            null_window_us: 300,
            rounds: 12,
        }
    }
}

impl Workload for Crasher {
    fn name(&self) -> &'static str {
        "crasher"
    }

    fn program(&self, spec: &WorkloadSpec) -> Program {
        let window = if self.null_window_us == 0 {
            200
        } else {
            self.null_window_us
        };
        let rounds = if self.rounds == 0 { spec.scaled(4) } else { self.rounds };
        let spec = *spec;
        Program::new("crasher", move |ctx| {
            // Shared cell holding a pointer to a heap object; 0 models NULL.
            let pointer_cell = ctx.global("shared_pointer", 8);
            let flag = ctx.global("done_flag", 8);
            let object = ctx.alloc(64);
            ctx.write_u64(object, 0x5eed);
            ctx.write_addr(pointer_cell, object);
            ctx.write_u64(flag, 0);

            // Writer: transiently nulls the shared pointer without holding
            // any lock -- the data race.
            let writer = ctx.spawn("writer", move |ctx| {
                for _ in 0..rounds {
                    ctx.write_addr(pointer_cell, MemAddr::NULL);
                    ctx.sleep(Duration::from_micros(window));
                    ctx.write_addr(pointer_cell, object);
                    ctx.sleep(Duration::from_micros(window / 4));
                }
                ctx.write_u64(flag, 1);
                Step::Done
            });

            // Reader: dereferences whatever the shared pointer holds.  When
            // it observes the transient null, the dereference is the
            // SIGSEGV analogue that ends the run.
            let reader = ctx.spawn("reader", move |ctx| {
                if ctx.read_u64(flag) == 1 {
                    return Step::Done;
                }
                let pointer = ctx.read_addr(pointer_cell);
                ctx.sleep(Duration::from_micros(window / 2));
                let value = ctx.read_u64(pointer);
                std::hint::black_box(value);
                Step::Yield
            });

            ctx.join(writer);
            ctx.join(reader);
            implant_overflow(ctx, &spec);
            Step::Done
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ireplayer::{Config, Runtime};

    #[test]
    fn crasher_usually_crashes_and_is_diagnosed() {
        let config = Config::builder()
            .arena_size(8 << 20)
            .heap_block_size(128 << 10)
            .max_replay_attempts(8)
            .quiescence_timeout_ms(10_000)
            .build()
            .unwrap();
        let crasher = Crasher::table2();
        let mut crashes = 0;
        for _ in 0..3 {
            let runtime = Runtime::new(config.clone()).unwrap();
            let report = runtime.run(crasher.program(&WorkloadSpec::tiny())).unwrap();
            if !report.outcome.is_success() {
                crashes += 1;
                // The diagnostic replay ran.
                assert!(!report.replay_validations.is_empty());
            }
        }
        // With a 300 µs null window the crash is overwhelmingly likely; at
        // least one of three runs must observe it.
        assert!(crashes >= 1);
    }
}
