//! Known-buggy application analogues (paper §5.4.1).
//!
//! The paper validates the detection tools on heap overflows and
//! use-after-free bugs collected from prior tools, Bugbench, and Bugzilla:
//! `bc-1.06`, `bzip2recover`, `gzip-1.2.4`, `libHX`, `polymorph`,
//! memcached's SASL authentication overflow, and libtiff's `gif2tiff`
//! overflow, plus implanted bugs in every evaluated application.  The
//! originals are C programs; this module provides synthetic analogues that
//! reproduce the *bug pattern* of each report -- the same kind of object,
//! the same kind of out-of-bounds or dangling write, reached through a
//! plausible slice of the application's logic -- written against the
//! `ireplayer` public API so the detectors of `ireplayer-detect` can be
//! exercised end to end.
//!
//! Every entry implements [`KnownBug`]: a [`Workload`] plus the expected
//! bug class and the provenance of the original report.  The
//! `detection_effectiveness` harness in `ireplayer-bench` runs each one
//! under the detection tools and checks that the corruption is found and
//! the faulting write is pinpointed by the diagnostic replay.

use ireplayer::{Program, Step};

use crate::spec::{Workload, WorkloadSpec};
use crate::util::mix;

/// The class of memory error a known-buggy program is expected to trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExpectedBug {
    /// A write past the end of a live heap allocation.
    HeapOverflow,
    /// A write to a heap object after it has been freed.
    UseAfterFree,
}

impl std::fmt::Display for ExpectedBug {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExpectedBug::HeapOverflow => f.write_str("heap overflow"),
            ExpectedBug::UseAfterFree => f.write_str("use after free"),
        }
    }
}

/// A workload with a known memory error, used by the §5.4.1 detection
/// effectiveness experiment.
pub trait KnownBug: Workload {
    /// The bug class the program triggers.
    fn expected(&self) -> ExpectedBug;

    /// Where the original report comes from (Bugbench, Bugzilla, CVE, ...).
    fn origin(&self) -> &'static str;
}

/// Returns all known-buggy programs in the order used by the paper's §5.4.1
/// discussion, followed by the two implanted use-after-free scenarios.
pub fn all_known_bugs() -> Vec<Box<dyn KnownBug>> {
    vec![
        Box::new(BcStorage),
        Box::new(Bzip2Recover),
        Box::new(GzipPath),
        Box::new(LibHxSplit),
        Box::new(PolymorphName),
        Box::new(MemcachedSasl),
        Box::new(LibtiffGif),
        Box::new(ProducerUaf),
        Box::new(CacheEvictionUaf),
    ]
}

/// Looks up a known-buggy program by name.
pub fn known_bug_by_name(name: &str) -> Option<Box<dyn KnownBug>> {
    all_known_bugs().into_iter().find(|bug| bug.name() == name)
}

// ---------------------------------------------------------------------------
// bc-1.06 (Bugbench): more variables are stored than the storage array was
// sized for, overflowing the array by one element.
// ---------------------------------------------------------------------------

/// Analogue of the `bc-1.06` storage-array overflow from Bugbench.
#[derive(Debug, Clone, Copy, Default)]
pub struct BcStorage;

impl Workload for BcStorage {
    fn name(&self) -> &'static str {
        "bc"
    }

    fn program(&self, spec: &WorkloadSpec) -> Program {
        let variables = 8 + spec.scaled(4);
        Program::new("bc", move |ctx| {
            // The interpreter sizes its variable store for `variables`
            // entries but the parser later registers one more.
            let store = ctx.alloc((variables * 8) as usize);
            for index in 0..variables {
                ctx.write_u64(store + index * 8, mix(index));
            }
            // Evaluate a few expressions so the store is actually used.
            let mut acc = 0u64;
            for index in 0..variables {
                acc = acc.wrapping_add(ctx.read_u64(store + index * 8));
            }
            std::hint::black_box(acc);
            // The off-by-one registration: element `variables` is one past
            // the end of the array.
            ctx.write_u64(store + variables * 8, mix(variables));
            Step::Done
        })
    }
}

impl KnownBug for BcStorage {
    fn expected(&self) -> ExpectedBug {
        ExpectedBug::HeapOverflow
    }

    fn origin(&self) -> &'static str {
        "bc-1.06 storage array overflow (Bugbench)"
    }
}

// ---------------------------------------------------------------------------
// bzip2recover (Red Hat Bugzilla #226979): the block-file name buffer is
// too small for long input file names.
// ---------------------------------------------------------------------------

/// Analogue of the `bzip2recover` file-name overflow (Bugzilla #226979).
#[derive(Debug, Clone, Copy, Default)]
pub struct Bzip2Recover;

impl Workload for Bzip2Recover {
    fn name(&self) -> &'static str {
        "bzip2recover"
    }

    fn program(&self, _spec: &WorkloadSpec) -> Program {
        Program::new("bzip2recover", move |ctx| {
            // The recovered-block output name is built in a fixed buffer of
            // 32 bytes; the attacker-controlled input name is longer.
            let name_buffer = ctx.alloc(32);
            let input_name = b"rec00001-a-very-long-archive-name.bz2";
            // Copy the "prefix" that fits, byte by byte, as strcpy would.
            for (offset, byte) in input_name.iter().enumerate() {
                ctx.write_u8(name_buffer + offset as u64, *byte);
            }
            Step::Done
        })
    }
}

impl KnownBug for Bzip2Recover {
    fn expected(&self) -> ExpectedBug {
        ExpectedBug::HeapOverflow
    }

    fn origin(&self) -> &'static str {
        "bzip2recover block-name overflow (Red Hat Bugzilla #226979)"
    }
}

// ---------------------------------------------------------------------------
// gzip-1.2.4 (Bugbench): strcpy of the input path into a fixed buffer.
// ---------------------------------------------------------------------------

/// Analogue of the `gzip-1.2.4` input-path overflow from Bugbench.
#[derive(Debug, Clone, Copy, Default)]
pub struct GzipPath;

impl Workload for GzipPath {
    fn name(&self) -> &'static str {
        "gzip"
    }

    fn program(&self, spec: &WorkloadSpec) -> Program {
        let spec = *spec;
        Program::new("gzip", move |ctx| {
            // Compress a small file first, so the overflow is preceded by
            // normal application activity.
            let data = ctx.alloc(spec.scaled(256) as usize);
            ctx.fill(data, spec.scaled(256) as usize, 0xa5);
            let mut checksum = 0u64;
            for offset in (0..spec.scaled(256)).step_by(8) {
                checksum ^= ctx.read_u64(data + offset);
            }
            std::hint::black_box(checksum);
            ctx.free(data);

            // `ifname` is 48 bytes; the supplied path is longer.
            let ifname = ctx.alloc(48);
            let path = b"/tmp/a/really/deep/path/that/keeps/on/going/archive.gz";
            for (offset, byte) in path.iter().enumerate() {
                ctx.write_u8(ifname + offset as u64, *byte);
            }
            Step::Done
        })
    }
}

impl KnownBug for GzipPath {
    fn expected(&self) -> ExpectedBug {
        ExpectedBug::HeapOverflow
    }

    fn origin(&self) -> &'static str {
        "gzip-1.2.4 ifname overflow (Bugbench)"
    }
}

// ---------------------------------------------------------------------------
// libHX: HX_split miscounts delimiters and allocates one slot too few for
// the split results.
// ---------------------------------------------------------------------------

/// Analogue of the `libHX` `HX_split` slot-count overflow.
#[derive(Debug, Clone, Copy, Default)]
pub struct LibHxSplit;

impl Workload for LibHxSplit {
    fn name(&self) -> &'static str {
        "libHX"
    }

    fn program(&self, _spec: &WorkloadSpec) -> Program {
        Program::new("libHX", move |ctx| {
            let input = b"alpha:beta:gamma:delta";
            // The buggy field counter stops at the last delimiter, so it
            // reports one field fewer than the split produces.
            let counted_fields = input.iter().filter(|b| **b == b':').count() as u64;
            let slots = ctx.alloc((counted_fields * 8) as usize);
            // The split itself produces counted_fields + 1 entries.
            for field in 0..=counted_fields {
                ctx.write_u64(slots + field * 8, mix(field));
            }
            Step::Done
        })
    }
}

impl KnownBug for LibHxSplit {
    fn expected(&self) -> ExpectedBug {
        ExpectedBug::HeapOverflow
    }

    fn origin(&self) -> &'static str {
        "libHX HX_split slot-count overflow"
    }
}

// ---------------------------------------------------------------------------
// polymorph: fixed-size destination for an attacker-controlled file name.
// ---------------------------------------------------------------------------

/// Analogue of the `polymorph` file-name overflow.
#[derive(Debug, Clone, Copy, Default)]
pub struct PolymorphName;

impl Workload for PolymorphName {
    fn name(&self) -> &'static str {
        "polymorph"
    }

    fn program(&self, _spec: &WorkloadSpec) -> Program {
        Program::new("polymorph", move |ctx| {
            let destination = ctx.alloc(40);
            let long_name = b"AN_EXTREMELY_LONG_UPPERCASE_FILE_NAME.TXT";
            for (offset, byte) in long_name.iter().enumerate() {
                ctx.write_u8(destination + offset as u64, byte.to_ascii_lowercase());
            }
            Step::Done
        })
    }
}

impl KnownBug for PolymorphName {
    fn expected(&self) -> ExpectedBug {
        ExpectedBug::HeapOverflow
    }

    fn origin(&self) -> &'static str {
        "polymorph file-name overflow (Bugbench)"
    }
}

// ---------------------------------------------------------------------------
// memcached SASL authentication overflow (TALOS-2016-0221): the SASL
// continuation buffer is sized for the first message only.
// ---------------------------------------------------------------------------

/// Analogue of memcached's SASL authentication overflow (TALOS-2016-0221).
#[derive(Debug, Clone, Copy, Default)]
pub struct MemcachedSasl;

impl Workload for MemcachedSasl {
    fn name(&self) -> &'static str {
        "memcached-sasl"
    }

    fn program(&self, spec: &WorkloadSpec) -> Program {
        let spec = *spec;
        Program::new("memcached-sasl", move |ctx| {
            // A worker thread services ordinary requests concurrently, as a
            // real memcached would while an authentication exchange runs.
            let table = ctx.alloc(64 * 16);
            ctx.fill(table, 64 * 16, 0);
            let lock = ctx.mutex();
            let worker = ctx.spawn("worker", move |ctx| {
                for round in 0..spec.scaled(8) {
                    ctx.lock(lock);
                    let slot = (mix(round) % 64) * 16;
                    ctx.write_u64(table + slot, round);
                    ctx.write_u64(table + slot + 8, mix(round));
                    ctx.unlock(lock);
                    ctx.work(64);
                }
                Step::Done
            });

            // The SASL exchange: the continuation buffer is sized for the
            // first message, but the second (attacker-controlled) message is
            // appended to it without a bounds check.
            let first_message = 40u64;
            let sasl_buffer = ctx.alloc(first_message as usize);
            for offset in 0..first_message {
                ctx.write_u8(sasl_buffer + offset, b'A');
            }
            let continuation = b"admin";
            for (offset, byte) in continuation.iter().enumerate() {
                ctx.write_u8(sasl_buffer + first_message + offset as u64, *byte);
            }

            ctx.join(worker);
            Step::Done
        })
    }
}

impl KnownBug for MemcachedSasl {
    fn expected(&self) -> ExpectedBug {
        ExpectedBug::HeapOverflow
    }

    fn origin(&self) -> &'static str {
        "memcached SASL authentication overflow (TALOS-2016-0221)"
    }
}

// ---------------------------------------------------------------------------
// libtiff gif2tiff (Bugzilla #2451): readgifimage() trusts the GIF logical
// screen size and overflows the scanline buffer.
// ---------------------------------------------------------------------------

/// Analogue of libtiff's `gif2tiff` `readgifimage()` overflow
/// (MapTools Bugzilla #2451).
#[derive(Debug, Clone, Copy, Default)]
pub struct LibtiffGif;

impl Workload for LibtiffGif {
    fn name(&self) -> &'static str {
        "libtiff-gif2tiff"
    }

    fn program(&self, _spec: &WorkloadSpec) -> Program {
        Program::new("libtiff-gif2tiff", move |ctx| {
            // The header claims a width of 64 pixels, so the scanline buffer
            // is 64 bytes; the image data actually decodes 72 pixels per row.
            let claimed_width = 64u64;
            let actual_width = 72u64;
            let scanline = ctx.alloc(claimed_width as usize);
            for row in 0..4u64 {
                for column in 0..actual_width {
                    let pixel = (mix(row * 131 + column) & 0xff) as u8;
                    ctx.write_u8(scanline + column, pixel);
                }
                // Consume the scanline as the converter would.
                let mut sum = 0u64;
                for column in 0..claimed_width {
                    sum += u64::from(ctx.read_u8(scanline + column));
                }
                std::hint::black_box(sum);
            }
            Step::Done
        })
    }
}

impl KnownBug for LibtiffGif {
    fn expected(&self) -> ExpectedBug {
        ExpectedBug::HeapOverflow
    }

    fn origin(&self) -> &'static str {
        "libtiff gif2tiff readgifimage overflow (MapTools Bugzilla #2451)"
    }
}

// ---------------------------------------------------------------------------
// Implanted use-after-free scenarios, mirroring the paper's implanted bugs:
// a producer/consumer hand-off where the producer retires a buffer the
// consumer still updates, and a cache that writes statistics into an entry
// it has already evicted.
// ---------------------------------------------------------------------------

/// Implanted use-after-free: a retired work buffer is updated after it has
/// been freed by the producer.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProducerUaf;

impl Workload for ProducerUaf {
    fn name(&self) -> &'static str {
        "producer-uaf"
    }

    fn program(&self, spec: &WorkloadSpec) -> Program {
        let spec = *spec;
        Program::new("producer-uaf", move |ctx| {
            let buffer = ctx.alloc(96);
            ctx.fill(buffer, 96, 0);
            let lock = ctx.mutex();
            // Consumer fills the buffer under the lock.
            let consumer = ctx.spawn("consumer", move |ctx| {
                for round in 0..spec.scaled(4) {
                    ctx.lock(lock);
                    ctx.write_u64(buffer + (round % 12) * 8, mix(round));
                    ctx.unlock(lock);
                    ctx.work(32);
                }
                Step::Done
            });
            ctx.join(consumer);
            // The producer retires the buffer ...
            ctx.free(buffer);
            // ... and then posts one final status word into it: the
            // use-after-free write the quarantine poison catches.
            ctx.write_u64(buffer + 8, 0xdead_beef);
            Step::Done
        })
    }
}

impl KnownBug for ProducerUaf {
    fn expected(&self) -> ExpectedBug {
        ExpectedBug::UseAfterFree
    }

    fn origin(&self) -> &'static str {
        "implanted: retired work buffer updated after free"
    }
}

/// Implanted use-after-free: statistics are written into a cache entry that
/// has already been evicted and freed.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheEvictionUaf;

impl Workload for CacheEvictionUaf {
    fn name(&self) -> &'static str {
        "cache-eviction-uaf"
    }

    fn program(&self, spec: &WorkloadSpec) -> Program {
        let spec = *spec;
        Program::new("cache-eviction-uaf", move |ctx| {
            // A small cache of heap entries; eviction frees the entry but a
            // stale pointer to the hottest entry survives in the statistics
            // path.
            let entries: Vec<_> = (0..4u64)
                .map(|index| {
                    let entry = ctx.alloc(64);
                    ctx.write_u64(entry, index);
                    entry
                })
                .collect();
            let hot = entries[1];
            let mut hits = 0u64;
            for round in 0..spec.scaled(16) {
                let entry = entries[(mix(round) % 4) as usize];
                hits = hits.wrapping_add(ctx.read_u64(entry));
            }
            std::hint::black_box(hits);
            // Eviction pass frees every entry.
            for entry in &entries {
                ctx.free(*entry);
            }
            // The statistics path still holds `hot` and bumps its hit
            // counter: a dangling write into quarantined memory.
            ctx.write_u64(hot + 16, hits);
            Step::Done
        })
    }
}

impl KnownBug for CacheEvictionUaf {
    fn expected(&self) -> ExpectedBug {
        ExpectedBug::UseAfterFree
    }

    fn origin(&self) -> &'static str {
        "implanted: statistics written into an evicted cache entry"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_suite_covers_both_bug_classes() {
        let bugs = all_known_bugs();
        assert!(bugs.len() >= 9);
        assert!(bugs.iter().any(|bug| bug.expected() == ExpectedBug::HeapOverflow));
        assert!(bugs.iter().any(|bug| bug.expected() == ExpectedBug::UseAfterFree));
    }

    #[test]
    fn names_are_unique_and_lookup_works() {
        let bugs = all_known_bugs();
        let mut names: Vec<_> = bugs.iter().map(|bug| bug.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), bugs.len(), "duplicate known-bug names");
        for name in names {
            let found = known_bug_by_name(name).expect("lookup by name");
            assert_eq!(found.name(), name);
            assert!(!found.origin().is_empty());
        }
        assert!(known_bug_by_name("no-such-bug").is_none());
    }

    #[test]
    fn expected_bug_displays_human_readably() {
        assert_eq!(ExpectedBug::HeapOverflow.to_string(), "heap overflow");
        assert_eq!(ExpectedBug::UseAfterFree.to_string(), "use after free");
    }
}
