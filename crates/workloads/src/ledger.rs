//! A ledger-posting client with a **planted ordering bug**, built as prey
//! for the chaos explorer.
//!
//! [`Ledger`] follows the chaos-suite discipline of [`crate::server`]
//! (fixed-order descriptor opens on the main thread, static partitioning
//! of entries to workers, commutative merges) and tolerates almost every
//! injected fault class the way [`crate::server::KvPool`] does.  The one
//! exception is deliberate: a worker counts an entry as *posted* as soon
//! as its send succeeds, before the acknowledgement arrives.  The
//! timeout path compensates (an unacknowledged entry is un-posted), but
//! the **connection-reset path forgets to** -- it retires the slot and
//! returns with the optimistic count still in place.  The main thread's
//! closing audit `posted == acked` then fails with a *static* assertion
//! message, so every execution that trips the bug produces the same
//! failure fingerprint no matter which seed, profile, or shrunken plan
//! triggered it.
//!
//! The bug therefore fires exactly when a [`FaultClass::NetReset`]
//! injection lands between a worker's send and its acknowledgement --
//! which is what makes the workload a good minimization subject: a heavy
//! plan that trips the audit shrinks all the way down to the handful of
//! reset slots that matter.
//!
//! [`FaultClass::NetReset`]: ireplayer::FaultClass::NetReset

use ireplayer::{MutexHandle, PeerScript, Program, Runtime, SimOs, Step, SysError, ThreadCtx};

use crate::spec::{implant_overflow, Workload, WorkloadSpec};
use crate::util::mix;

/// Bounded retries for a transient (`EAGAIN`/partition) socket failure.
const RETRIES: usize = 3;

/// Per-slot record layout: socket fd, journal fd, posted, acked.
const SLOT_STRIDE: u64 = 32;

/// The flaky ledger client (see the module docs for the planted bug).
#[derive(Debug, Clone, Copy, Default)]
pub struct Ledger;

/// The static audit message the planted bug fails with.  Exported so the
/// chaos-hunt tests can recognize the planted failure without stringly
/// matching a formatted message.
pub const LEDGER_AUDIT: &str = "ledger balances: every posted entry is acknowledged";

impl Ledger {
    fn entries(spec: &WorkloadSpec) -> u64 {
        spec.scaled(24)
    }

    /// Stages the ledger's inputs directly on a simulated OS: the
    /// acknowledgement peer and the rate-table file.  [`Workload::stage`]
    /// delegates here; the chaos explorer's staging closure (which sees
    /// the claimed partition's OS, not the runtime) calls it directly.
    pub fn stage_os(os: &SimOs) {
        os.register_peer("ledger:7000", PeerScript::Echo { response_len: 16 });
        let rates: Vec<u8> = (0..2048).map(|i| (mix(i as u64) & 0xff) as u8).collect();
        os.create_file("ledger-rates.tbl", rates);
    }
}

impl Workload for Ledger {
    fn name(&self) -> &'static str {
        "flaky-ledger"
    }

    fn stage(&self, runtime: &Runtime, _spec: &WorkloadSpec) {
        Self::stage_os(runtime.os());
    }

    fn program(&self, spec: &WorkloadSpec) -> Program {
        let spec = *spec;
        let entries = Self::entries(&spec);
        Program::new("flaky-ledger", move |ctx| {
            let workers = u64::from(spec.threads);

            // Load the rate table, tolerating injected short reads (loop
            // to end of stream) and a denied descriptor (fd pressure --
            // pricing falls back to the built-in defaults).
            if let Some(rates) = ctx.open("ledger-rates.tbl") {
                let mut rate_digest = 0u64;
                loop {
                    let bytes = ctx.read(rates, 512);
                    if bytes.is_empty() {
                        break;
                    }
                    rate_digest = bytes.iter().fold(rate_digest, |acc, b| mix(acc ^ u64::from(*b)));
                }
                ctx.close(rates);
                ctx.assert_that(rate_digest != 0, "rate table was read");
            }
            let started_at = ctx.now_ns();

            // Scratch mappings, under the mmap-exhaustion schedule.
            for _ in 0..2 {
                if let Ok(region) = ctx.try_mmap(4096) {
                    ctx.munmap(region);
                }
            }

            // Open every slot's connection and journal on the main thread,
            // in slot order.  A denied descriptor (fd pressure) leaves the
            // slot dead from the start; its entries are never posted.
            let slots = ctx.global("ledger_slots", workers * SLOT_STRIDE);
            for slot in 0..workers {
                let base = slots + slot * SLOT_STRIDE;
                let socket = ctx.connect("ledger:7000").map(i64::from).unwrap_or(-1);
                let journal = ctx
                    .open_create(&format!("ledger-journal-{slot}.log"))
                    .map(i64::from)
                    .unwrap_or(-1);
                ctx.write_i64(base, socket);
                ctx.write_i64(base + 8, journal);
                ctx.write_u64(base + 16, 0);
                ctx.write_u64(base + 24, 0);
            }

            let totals = ctx.global("ledger_totals", 16);
            let audit_lock = ctx.mutex();
            let mut handles = Vec::new();
            for slot in 0..workers {
                handles.push(ctx.spawn("ledger-poster", move |ctx| {
                    poster_step(ctx, slots, slot, workers, entries, audit_lock, totals)
                }));
            }
            for handle in handles {
                ctx.join(handle);
            }

            let posted = ctx.read_u64(totals);
            let acked = ctx.read_u64(totals + 8);
            // The audit the planted bug trips: a reset between send and
            // acknowledgement leaves `posted` one ahead of `acked`.
            ctx.assert_that(posted == acked, LEDGER_AUDIT);
            let elapsed = ctx.now_ns().wrapping_sub(started_at);
            std::hint::black_box(elapsed);
            implant_overflow(ctx, &spec);
            Step::Done
        })
    }
}

/// One poster's whole life: drive the slot's share of the entry stream
/// (`entry % workers == slot`), then merge the per-slot counters.
fn poster_step(
    ctx: &mut ThreadCtx<'_>,
    slots: ireplayer::MemAddr,
    slot: u64,
    workers: u64,
    entries: u64,
    audit_lock: MutexHandle,
    totals: ireplayer::MemAddr,
) -> Step {
    let base = slots + slot * SLOT_STRIDE;
    let socket = ctx.read_i64(base);
    let journal = ctx.read_i64(base + 8);
    let mut alive = socket >= 0;
    let mut posted = 0u64;
    let mut acked = 0u64;

    let mut entry = slot;
    while entry < entries {
        // Per-entry scratch, under the allocation-failure schedule; the
        // entry proceeds without it when denied.
        let scratch = ctx.try_alloc(48);
        if alive {
            post_one(ctx, socket as i32, journal, entry, &mut alive, &mut posted, &mut acked);
        }
        if let Some(scratch) = scratch {
            ctx.write_u64(scratch, mix(entry));
            ctx.free(scratch);
        }
        entry += workers;
    }

    ctx.write_u64(base + 16, posted);
    ctx.write_u64(base + 24, acked);
    ctx.lock(audit_lock);
    let total = ctx.read_u64(totals);
    ctx.write_u64(totals, total + posted);
    let confirmed = ctx.read_u64(totals + 8);
    ctx.write_u64(totals + 8, confirmed + acked);
    ctx.unlock(audit_lock);
    Step::Done
}

/// Posts one entry: send, count it as posted, await the acknowledgement.
///
/// This is where the bug lives.  The send-failure path posts nothing, and
/// the acknowledgement-timeout path compensates by un-posting the entry.
/// The reset path retires the slot and returns -- **without** the
/// compensation the timeout path has, leaving `posted` permanently one
/// ahead of `acked`.
fn post_one(
    ctx: &mut ThreadCtx<'_>,
    socket: i32,
    journal: i64,
    entry: u64,
    alive: &mut bool,
    posted: &mut u64,
    acked: &mut u64,
) {
    let payload = mix(entry | 1).to_le_bytes();
    let mut sent = false;
    for _ in 0..RETRIES {
        match ctx.try_send(socket, &payload) {
            Ok(_) => {
                sent = true;
                break;
            }
            Err(SysError::WouldBlock) => continue,
            Err(_) => {
                // Reset during send: nothing was posted, nothing to undo.
                *alive = false;
                return;
            }
        }
    }
    if !sent {
        return;
    }

    // Optimistically post the entry: it is in flight, the ledger peer
    // will surely confirm it.
    *posted += 1;

    for _ in 0..RETRIES {
        match ctx.try_recv(socket, 32) {
            Ok(ack) if ack.is_empty() => continue,
            Ok(ack) => {
                *acked += 1;
                if journal >= 0 {
                    let digest = ack.iter().fold(mix(entry), |acc, b| mix(acc ^ u64::from(*b)));
                    append_record(ctx, journal as i32, digest);
                }
                return;
            }
            Err(SysError::WouldBlock) => continue,
            Err(_) => {
                // THE PLANTED BUG: the reset path forgets the
                // compensation the timeout path below performs.
                *alive = false;
                return;
            }
        }
    }
    // No acknowledgement within the retry budget: un-post the entry.
    *posted -= 1;
}

/// Appends one record to the slot's journal, topping up after an injected
/// short write (at most one retry: the schedule fires once per site).
fn append_record(ctx: &mut ThreadCtx<'_>, journal: i32, digest: u64) {
    let bytes = digest.to_le_bytes();
    let written = ctx.write(journal, &bytes);
    if written < bytes.len() {
        let _ = ctx.write(journal, &bytes[written..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ireplayer::{ChaosPlan, ChaosProfile, Config, FaultKind, Runtime};

    fn config() -> ireplayer::ConfigBuilder {
        Config::builder()
            .arena_size(16 << 20)
            .heap_block_size(256 << 10)
            .quiescence_timeout_ms(20_000)
    }

    fn run_with(config: Config) -> ireplayer::RunReport {
        let runtime = Runtime::new(config).unwrap();
        let spec = WorkloadSpec::tiny();
        Ledger.stage(&runtime, &spec);
        runtime.run(Ledger.program(&spec)).unwrap()
    }

    #[test]
    fn ledger_balances_without_chaos() {
        let report = run_with(config().build().unwrap());
        assert!(report.outcome.is_success(), "faults: {:?}", report.faults);
    }

    #[test]
    fn a_reset_heavy_plan_trips_the_audit() {
        // The planted bug needs a reset between send and acknowledgement;
        // sweep a few seeds of the heavy profile until one lands there.
        let tripped = (0..32u64).any(|seed| {
            let plan = ChaosPlan::compile(seed, ChaosProfile::heavy());
            let report = run_with(config().chaos(plan).build().unwrap());
            matches!(
                &report.outcome,
                ireplayer::RunOutcome::Faulted(fault)
                    if fault.kind == FaultKind::AssertionFailure { message: LEDGER_AUDIT.into() }
            )
        });
        assert!(tripped, "no heavy seed in 0..32 tripped the planted audit bug");
    }
}
