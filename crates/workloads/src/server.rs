//! Long-running server workloads built to survive a chaos plan.
//!
//! Unlike the paper-table analogues in [`crate::real`], these two programs
//! are written against the *fallible* syscall surface (`try_send`,
//! `try_recv`, `try_alloc`) and treat every injected outcome -- `EAGAIN`,
//! connection resets, partition windows, short file I/O, fd-limit
//! pressure, allocation denial -- as a condition to handle, not a crash.
//! They are the standard subjects of the chaos suite, so they are built
//! for schedule-independent fingerprints: out-of-process trace replay
//! re-executes under a fresh thread interleaving, which means
//!
//! * every descriptor (socket, log file) is opened by the main thread in a
//!   fixed order, so per-descriptor chaos schedules attach to the same
//!   calls in every execution;
//! * requests are statically partitioned (`request % workers`), never
//!   pulled from a shared queue, so each worker's syscall sequence depends
//!   only on its own slot;
//! * shared results are commutative sums merged under one lock, and every
//!   per-slot cell is written by exactly one thread.

use ireplayer::{MutexHandle, PeerScript, Program, Runtime, Step, SysError, ThreadCtx};

use crate::spec::{implant_overflow, Workload, WorkloadSpec};
use crate::util::mix;

/// Bounded retries for a transient (`EAGAIN`/partition) socket failure.
const RETRIES: usize = 3;

// ---------------------------------------------------------------------------
// kv-pool: a connection-pool KV client over fallible sockets.
// ---------------------------------------------------------------------------

/// A connection-pool key-value store client: each worker owns one
/// pre-opened connection (its *slot*) and a private log file, and drives
/// its statically assigned share of the request stream through
/// send/receive round-trips, retrying transient failures and retiring the
/// slot on a connection reset.
///
/// Exercises every chaos fault class: short reads (config load), short
/// writes (log append), the three socket classes, clock jumps, mmap
/// exhaustion, fd pressure (pool setup), and allocation denial (per-request
/// scratch buffers).
#[derive(Debug, Clone, Copy, Default)]
pub struct KvPool;

impl KvPool {
    fn requests(spec: &WorkloadSpec) -> u64 {
        spec.scaled(24)
    }
}

/// Per-slot record layout: socket fd, log fd, sum, served, failed.
const SLOT_STRIDE: u64 = 40;

impl Workload for KvPool {
    fn name(&self) -> &'static str {
        "kv-pool"
    }

    fn stage(&self, runtime: &Runtime, _spec: &WorkloadSpec) {
        runtime
            .os()
            .register_peer("kv:6379", PeerScript::Echo { response_len: 32 });
        let config: Vec<u8> = (0..4096).map(|i| (mix(i as u64) & 0xff) as u8).collect();
        runtime.os().create_file("kv-pool.conf", config);
    }

    fn program(&self, spec: &WorkloadSpec) -> Program {
        let spec = *spec;
        let requests = Self::requests(&spec);
        Program::new("kv-pool", move |ctx| {
            let pool = u64::from(spec.threads);

            // Load the configuration, tolerating injected short reads by
            // looping to end of stream.
            let conf = ctx.open("kv-pool.conf").expect("staged config file");
            let mut conf_digest = 0u64;
            loop {
                let bytes = ctx.read(conf, 1024);
                if bytes.is_empty() {
                    break;
                }
                conf_digest = bytes.iter().fold(conf_digest, |acc, b| mix(acc ^ u64::from(*b)));
            }
            ctx.close(conf);
            ctx.assert_that(conf_digest != 0, "configuration was read");
            let started_at = ctx.now_ns();

            // A few scratch mappings, under the mmap-exhaustion schedule.
            for _ in 0..4 {
                if let Ok(region) = ctx.try_mmap(4096) {
                    ctx.munmap(region);
                }
            }

            // Open every slot's connection and log file on the main thread,
            // in slot order.  A denied descriptor (fd pressure) leaves the
            // slot dead from the start; its requests are counted as failed.
            let slots = ctx.global("kv_slots", pool * SLOT_STRIDE);
            for slot in 0..pool {
                let base = slots + slot * SLOT_STRIDE;
                let socket = ctx.connect("kv:6379").map(i64::from).unwrap_or(-1);
                let log = ctx
                    .open_create(&format!("kv-pool-{slot}.log"))
                    .map(i64::from)
                    .unwrap_or(-1);
                ctx.write_i64(base, socket);
                ctx.write_i64(base + 8, log);
                ctx.write_u64(base + 16, 0);
                ctx.write_u64(base + 24, 0);
                ctx.write_u64(base + 32, 0);
            }

            let totals = ctx.global("kv_totals", 24);
            let stats_lock = ctx.mutex();
            let mut handles = Vec::new();
            for slot in 0..pool {
                handles.push(ctx.spawn("kv-worker", move |ctx| {
                    worker_step(ctx, slots, slot, pool, requests, stats_lock, totals)
                }));
            }
            for handle in handles {
                ctx.join(handle);
            }

            let served = ctx.read_u64(totals + 8);
            let failed = ctx.read_u64(totals + 16);
            ctx.assert_that(
                served + failed == requests,
                "every request was either served or accounted as failed",
            );
            let elapsed = ctx.now_ns().wrapping_sub(started_at);
            std::hint::black_box(elapsed);
            implant_overflow(ctx, &spec);
            Step::Done
        })
    }
}

/// One pool worker's whole life: drive the slot's share of the request
/// stream (`request % pool == slot`), then merge results.
fn worker_step(
    ctx: &mut ThreadCtx<'_>,
    slots: ireplayer::MemAddr,
    slot: u64,
    pool: u64,
    requests: u64,
    stats_lock: MutexHandle,
    totals: ireplayer::MemAddr,
) -> Step {
    let base = slots + slot * SLOT_STRIDE;
    let socket = ctx.read_i64(base);
    let log = ctx.read_i64(base + 8);
    let mut alive = socket >= 0;
    let mut sum = 0u64;
    let mut served = 0u64;
    let mut failed = 0u64;

    let mut request = slot;
    while request < requests {
        // Per-request scratch buffer, under the allocation-failure
        // schedule.  The request proceeds without it when denied.
        let scratch = ctx.try_alloc(64);
        match serve_one(ctx, socket as i32, &mut alive, request) {
            Some(digest) => {
                sum = sum.wrapping_add(digest);
                served += 1;
                if let Some(scratch) = scratch {
                    ctx.write_u64(scratch, digest);
                }
                if log >= 0 {
                    append_record(ctx, log as i32, digest);
                }
            }
            None => failed += 1,
        }
        if let Some(scratch) = scratch {
            ctx.free(scratch);
        }
        request += pool;
    }

    ctx.write_u64(base + 16, sum);
    ctx.write_u64(base + 24, served);
    ctx.write_u64(base + 32, failed);
    ctx.lock(stats_lock);
    let total = ctx.read_u64(totals);
    ctx.write_u64(totals, total.wrapping_add(sum));
    let count = ctx.read_u64(totals + 8);
    ctx.write_u64(totals + 8, count + served);
    let misses = ctx.read_u64(totals + 16);
    ctx.write_u64(totals + 16, misses + failed);
    ctx.unlock(stats_lock);
    Step::Done
}

/// One request/response round-trip with bounded retries.  Returns the
/// response digest, or `None` when the request failed (dead slot, retries
/// exhausted, or a reset mid-flight -- which also retires the slot).
fn serve_one(ctx: &mut ThreadCtx<'_>, socket: i32, alive: &mut bool, request: u64) -> Option<u64> {
    if !*alive {
        return None;
    }
    let payload = mix(request | 1).to_le_bytes();
    let mut sent = false;
    for _ in 0..RETRIES {
        match ctx.try_send(socket, &payload) {
            Ok(_) => {
                sent = true;
                break;
            }
            Err(SysError::WouldBlock) => continue,
            Err(_) => {
                *alive = false;
                return None;
            }
        }
    }
    if !sent {
        return None;
    }
    for _ in 0..RETRIES {
        match ctx.try_recv(socket, 64) {
            Ok(response) if response.is_empty() => continue,
            Ok(response) => {
                return Some(response.iter().fold(mix(request), |acc, b| mix(acc ^ u64::from(*b))));
            }
            Err(SysError::WouldBlock) => continue,
            Err(_) => {
                *alive = false;
                return None;
            }
        }
    }
    None
}

/// Appends one record to the slot's log, topping up after an injected
/// short write (at most one retry: the schedule fires once per site).
fn append_record(ctx: &mut ThreadCtx<'_>, log: i32, digest: u64) {
    let bytes = digest.to_le_bytes();
    let written = ctx.write(log, &bytes);
    if written < bytes.len() {
        let _ = ctx.write(log, &bytes[written..]);
    }
}

// ---------------------------------------------------------------------------
// job-steal: a work-stealing job queue with a provably exact total.
// ---------------------------------------------------------------------------

/// A work-stealing job queue: the main thread deals jobs round-robin into
/// per-worker queues, and every worker sweeps all queues (its own first) a
/// fixed number of rounds, popping one job per visit under the queue's
/// lock.  The fixed sweep count makes the per-thread synchronization
/// sequence schedule-independent while the *assignment* of jobs to workers
/// stays genuinely racy; the final commutative checksum proves every job
/// was executed exactly once no matter who stole what.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobSteal;

impl JobSteal {
    fn jobs(spec: &WorkloadSpec) -> u64 {
        spec.scaled(32)
    }
}

impl Workload for JobSteal {
    fn name(&self) -> &'static str {
        "job-steal"
    }

    fn program(&self, spec: &WorkloadSpec) -> Program {
        let spec = *spec;
        let jobs = Self::jobs(&spec);
        Program::new("job-steal", move |ctx| {
            let workers = u64::from(spec.threads);
            // Per-queue layout: head, tail, then `jobs` slots (a queue can
            // hold every job, so stealing can never overflow one).
            let stride = 16 + jobs * 8;
            let queues = ctx.global("steal_queues", workers * stride);
            let locks: Vec<MutexHandle> = (0..workers).map(|_| ctx.mutex()).collect();
            for job in 0..jobs {
                let base = queues + (job % workers) * stride;
                let tail = ctx.read_u64(base + 8);
                ctx.write_u64(base + 16 + tail * 8, mix(job) | 1);
                ctx.write_u64(base + 8, tail + 1);
            }

            let totals = ctx.global("steal_totals", 16);
            let stats_lock = ctx.mutex();
            // Every worker sweeps all queues `jobs` times: if a job were
            // still queued when a worker finished, that worker would have
            // popped one job from its queue on each of `jobs` visits -- more
            // than exist.  So the fixed bound drains everything without a
            // schedule-dependent termination test.
            let rounds = jobs;
            let mut handles = Vec::new();
            for worker in 0..workers {
                let locks = locks.clone();
                handles.push(ctx.spawn("stealer", move |ctx| {
                    let mut sum = 0u64;
                    let mut processed = 0u64;
                    for _ in 0..rounds {
                        for offset in 0..workers {
                            let victim = (worker + offset) % workers;
                            let base = queues + victim * stride;
                            ctx.lock(locks[victim as usize]);
                            let head = ctx.read_u64(base);
                            let tail = ctx.read_u64(base + 8);
                            let job = (head < tail).then(|| {
                                let value = ctx.read_u64(base + 16 + head * 8);
                                ctx.write_u64(base, head + 1);
                                value
                            });
                            ctx.unlock(locks[victim as usize]);
                            if let Some(value) = job {
                                sum = sum.wrapping_add(mix(value ^ ctx.work(40)));
                                processed += 1;
                            }
                        }
                    }
                    ctx.lock(stats_lock);
                    let total = ctx.read_u64(totals);
                    ctx.write_u64(totals, total.wrapping_add(sum));
                    let count = ctx.read_u64(totals + 8);
                    ctx.write_u64(totals + 8, count + processed);
                    ctx.unlock(stats_lock);
                    Step::Done
                }));
            }
            for handle in handles {
                ctx.join(handle);
            }

            let processed = ctx.read_u64(totals + 8);
            ctx.assert_that(processed == jobs, "every job ran exactly once");
            let unit = ctx.work(40);
            let expected = (0..jobs).fold(0u64, |acc, job| acc.wrapping_add(mix((mix(job) | 1) ^ unit)));
            let total = ctx.read_u64(totals);
            ctx.assert_that(total == expected, "checksum proves exactly-once execution");

            // A short, fallible audit log -- the workload's only file I/O,
            // on the main thread so chaos schedules hit it identically in
            // every execution.
            if let Some(log) = ctx.open_create("job-steal.log") {
                append_record(ctx, log, total);
                ctx.close(log);
            }
            implant_overflow(ctx, &spec);
            Step::Done
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ireplayer::{ChaosPlan, ChaosProfile, Config, Runtime};

    fn config() -> ireplayer::ConfigBuilder {
        Config::builder()
            .arena_size(16 << 20)
            .heap_block_size(256 << 10)
            .quiescence_timeout_ms(20_000)
    }

    fn run_with(workload: &dyn Workload, config: Config) -> ireplayer::RunReport {
        let runtime = Runtime::new(config).unwrap();
        let spec = WorkloadSpec::tiny();
        workload.stage(&runtime, &spec);
        runtime.run(workload.program(&spec)).unwrap()
    }

    #[test]
    fn kv_pool_serves_every_request_without_chaos() {
        let report = run_with(&KvPool, config().build().unwrap());
        assert!(report.outcome.is_success(), "faults: {:?}", report.faults);
    }

    #[test]
    fn job_steal_checksum_holds_without_chaos() {
        let report = run_with(&JobSteal, config().build().unwrap());
        assert!(report.outcome.is_success(), "faults: {:?}", report.faults);
    }

    #[test]
    fn both_servers_survive_a_heavy_chaos_plan() {
        for workload in [&KvPool as &dyn Workload, &JobSteal] {
            let plan = ChaosPlan::compile(0xc4a05, ChaosProfile::heavy());
            let report = run_with(workload, config().chaos(plan).build().unwrap());
            assert!(
                report.outcome.is_success(),
                "{} under chaos: {:?}",
                workload.name(),
                report.faults
            );
        }
    }
}
