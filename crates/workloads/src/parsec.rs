//! Synthetic analogues of the nine PARSEC 2.1 applications used in the
//! paper's evaluation (§5.1).
//!
//! Each workload reproduces the synchronization/allocation/computation
//! profile that drives its recording overhead in Table 3:
//!
//! | workload | profile |
//! |---|---|
//! | `blackscholes` | data-parallel compute, one barrier per round |
//! | `bodytrack` | task queue with condition variables |
//! | `canneal` | random element swaps under per-element locks |
//! | `dedup` | pipeline with queues, hash table, many allocations |
//! | `ferret` | four-stage pipeline |
//! | `fluidanimate` | very high lock-acquisition rate on a grid of cells |
//! | `streamcluster` | barrier-heavy iterations with temporary allocations |
//! | `swaptions` | independent Monte-Carlo compute, almost no sharing |
//! | `x264` | sliding-window frame dependencies via condition variables |

use ireplayer::{Program, Step};

use crate::spec::{implant_overflow, Workload, WorkloadSpec};
use crate::util::{mix, BoundedQueue, StripedTable};

/// Shared skeleton: spawn `threads` workers running `worker` (one call per
/// step, `rounds` steps each), join them, then implant the optional
/// overflow.
fn fork_join_program(
    name: &'static str,
    spec: &WorkloadSpec,
    rounds: u64,
    worker: impl Fn(&mut ireplayer::ThreadCtx<'_>, u64, u64) + Send + Sync + Clone + 'static,
) -> Program {
    let spec = *spec;
    let threads = u64::from(spec.threads);
    Program::new(name, move |ctx| {
        let worker = worker.clone();
        // Per-worker round counters live in managed memory so that a
        // rollback restores them (closure state does not survive replay).
        let round_slots = ctx.global(&format!("{name}_rounds"), threads * 8);
        let mut handles = Vec::new();
        for worker_index in 0..threads {
            let worker = worker.clone();
            let round_slot = round_slots + worker_index * 8;
            handles.push(ctx.spawn(format!("{name}-{worker_index}"), move |ctx| {
                let round = ctx.read_u64(round_slot);
                worker(ctx, worker_index, round);
                ctx.write_u64(round_slot, round + 1);
                if round + 1 >= rounds {
                    Step::Done
                } else {
                    Step::Yield
                }
            }));
        }
        for handle in handles {
            ctx.join(handle);
        }
        implant_overflow(ctx, &spec);
        Step::Done
    })
}

// ---------------------------------------------------------------------------
// blackscholes: embarrassingly parallel option pricing, barrier per round.
// ---------------------------------------------------------------------------

/// The `blackscholes` analogue.
#[derive(Debug, Clone, Copy, Default)]
pub struct Blackscholes;

impl Workload for Blackscholes {
    fn name(&self) -> &'static str {
        "blackscholes"
    }

    fn program(&self, spec: &WorkloadSpec) -> Program {
        let spec = *spec;
        let threads = u64::from(spec.threads);
        let rounds = spec.scaled(6);
        let options_per_thread = 64u64;
        Program::new("blackscholes", move |ctx| {
            let barrier = ctx.barrier(spec.threads);
            let results = ctx.global("bs_results", threads * 8);
            // Per-worker round counters in managed memory (rollback-safe).
            let round_slots = ctx.global("bs_rounds", threads * 8);
            let mut handles = Vec::new();
            for worker in 0..threads {
                let round_slot = round_slots + worker * 8;
                handles.push(ctx.spawn("pricer", move |ctx| {
                    // Price a slice of options: pure compute over a private
                    // buffer, then one barrier.
                    let round = ctx.read_u64(round_slot);
                    let prices = ctx.alloc((options_per_thread * 8) as usize);
                    let mut acc = 0u64;
                    for option in 0..options_per_thread {
                        let spot = mix(worker * 1000 + option + round) % 1000 + 1;
                        let price = ctx.work(40) % spot + spot / 2;
                        ctx.write_u64(prices + option * 8, price);
                        acc = acc.wrapping_add(price);
                    }
                    let slot = results + worker * 8;
                    let prev = ctx.read_u64(slot);
                    ctx.write_u64(slot, prev.wrapping_add(acc));
                    ctx.free(prices);
                    ctx.barrier_wait(barrier);
                    ctx.write_u64(round_slot, round + 1);
                    if round + 1 >= rounds {
                        Step::Done
                    } else {
                        Step::Yield
                    }
                }));
            }
            for handle in handles {
                ctx.join(handle);
            }
            implant_overflow(ctx, &spec);
            Step::Done
        })
    }
}

// ---------------------------------------------------------------------------
// bodytrack: task queue guarded by a mutex + condition variables.
// ---------------------------------------------------------------------------

/// The `bodytrack` analogue.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bodytrack;

impl Workload for Bodytrack {
    fn name(&self) -> &'static str {
        "bodytrack"
    }

    fn program(&self, spec: &WorkloadSpec) -> Program {
        let spec = *spec;
        let threads = u64::from(spec.threads);
        let frames = spec.scaled(40);
        Program::new("bodytrack", move |ctx| {
            let queue = BoundedQueue::new(ctx, 16);
            let processed = ctx.global("bt_processed", 8);
            let lock = ctx.mutex();
            let mut handles = Vec::new();
            for _ in 0..threads {
                handles.push(ctx.spawn("tracker", move |ctx| {
                    // One frame per step, popped from the shared queue.
                    match queue.pop(ctx, u64::MAX) {
                        None => Step::Done,
                        Some(frame) => {
                            let particles = ctx.alloc(512);
                            let score = ctx.work(300) ^ mix(frame);
                            ctx.write_u64(particles, score);
                            ctx.free(particles);
                            ctx.lock(lock);
                            let done = ctx.read_u64(processed);
                            ctx.write_u64(processed, done + 1);
                            ctx.unlock(lock);
                            Step::Yield
                        }
                    }
                }));
            }
            for frame in 0..frames {
                queue.push(ctx, frame);
            }
            queue.push(ctx, u64::MAX);
            for handle in handles {
                ctx.join(handle);
            }
            let done = ctx.read_u64(processed);
            ctx.assert_that(done == frames, "every frame was tracked");
            implant_overflow(ctx, &spec);
            Step::Done
        })
    }
}

// ---------------------------------------------------------------------------
// canneal: random swaps of elements under per-element locks (the paper
// replaces its atomics with mutexes, §5.2).
// ---------------------------------------------------------------------------

/// The `canneal` analogue.
#[derive(Debug, Clone, Copy, Default)]
pub struct Canneal;

impl Workload for Canneal {
    fn name(&self) -> &'static str {
        "canneal"
    }

    fn program(&self, spec: &WorkloadSpec) -> Program {
        let elements = 64u64;
        let swaps = spec.scaled(150);
        let spec = *spec;
        Program::new("canneal", move |ctx| {
            let netlist = ctx.global("canneal_netlist", elements * 8);
            for element in 0..elements {
                ctx.write_u64(netlist + element * 8, mix(element));
            }
            // One lock per element, as in the mutex-converted canneal.
            let locks: Vec<_> = (0..elements).map(|_| ctx.mutex()).collect();
            let spec_inner = spec;
            let threads = u64::from(spec_inner.threads);
            // Per-worker swap counters in managed memory (rollback-safe).
            let done_slots = ctx.global("canneal_done", threads * 8);
            let mut handles = Vec::new();
            for worker in 0..threads {
                let locks = locks.clone();
                let done_slot = done_slots + worker * 8;
                handles.push(ctx.spawn("annealer", move |ctx| {
                    // One batch of swaps per step.
                    for _ in 0..8 {
                        let a = ctx.rand_below(elements);
                        let b = ctx.rand_below(elements);
                        if a == b {
                            continue;
                        }
                        let (first, second) = if a < b { (a, b) } else { (b, a) };
                        ctx.lock(locks[first as usize]);
                        ctx.lock(locks[second as usize]);
                        let va = ctx.read_u64(netlist + a * 8);
                        let vb = ctx.read_u64(netlist + b * 8);
                        let cost = ctx.work(25) ^ worker;
                        ctx.write_u64(netlist + a * 8, vb ^ (cost & 1));
                        ctx.write_u64(netlist + b * 8, va ^ (cost & 1));
                        ctx.unlock(locks[second as usize]);
                        ctx.unlock(locks[first as usize]);
                    }
                    let done = ctx.read_u64(done_slot) + 8;
                    ctx.write_u64(done_slot, done);
                    if done >= swaps {
                        Step::Done
                    } else {
                        Step::Yield
                    }
                }));
            }
            for handle in handles {
                ctx.join(handle);
            }
            implant_overflow(ctx, &spec);
            Step::Done
        })
    }
}

// ---------------------------------------------------------------------------
// dedup: read file -> chunk -> hash/dedup via shared table -> write output.
// ---------------------------------------------------------------------------

/// The `dedup` analogue.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dedup;

impl Workload for Dedup {
    fn name(&self) -> &'static str {
        "dedup"
    }

    fn stage(&self, runtime: &ireplayer::Runtime, spec: &WorkloadSpec) {
        let len = (spec.scaled(20) * 1024) as usize;
        let data: Vec<u8> = (0..len).map(|i| (mix(i as u64 / 256) & 0xff) as u8).collect();
        runtime.os().create_file("dedup-input.bin", data);
    }

    fn program(&self, spec: &WorkloadSpec) -> Program {
        let spec = *spec;
        let chunk = 1024u64;
        Program::new("dedup", move |ctx| {
            let queue = BoundedQueue::new(ctx, 32);
            let table = StripedTable::new(ctx, 512, 8);
            let unique = ctx.global("dedup_unique", 8);
            let input = ctx.open("dedup-input.bin").expect("staged input");
            let output = ctx.open_create("dedup-output.bin").expect("output file");
            let out_lock = ctx.mutex();

            let workers = u64::from(spec.threads);
            let mut handles = Vec::new();
            for _ in 0..workers {
                let table = table.clone();
                handles.push(ctx.spawn("chunker", move |ctx| {
                    match queue.pop(ctx, u64::MAX) {
                        None => Step::Done,
                        Some(fingerprint) => {
                            // Compress (model) and deduplicate the chunk.
                            let scratch = ctx.alloc(chunk as usize);
                            ctx.write_u64(scratch, fingerprint);
                            let digest = mix(fingerprint) ^ ctx.work(150);
                            ctx.free(scratch);
                            let fresh = table.get(ctx, fingerprint | 1).is_none();
                            if fresh {
                                table.put(ctx, fingerprint | 1, digest);
                                ctx.lock(out_lock);
                                let count = ctx.read_u64(unique);
                                ctx.write_u64(unique, count + 1);
                                ctx.write(output, &digest.to_le_bytes());
                                ctx.unlock(out_lock);
                            }
                            Step::Yield
                        }
                    }
                }));
            }

            // Reader: push fingerprints of the file's chunks.
            loop {
                let bytes = ctx.read(input, chunk as usize);
                if bytes.is_empty() {
                    break;
                }
                let fingerprint = bytes.iter().fold(0u64, |acc, b| mix(acc ^ u64::from(*b)));
                queue.push(ctx, fingerprint);
            }
            queue.push(ctx, u64::MAX);
            for handle in handles {
                ctx.join(handle);
            }
            ctx.close(input);
            ctx.close(output);
            implant_overflow(ctx, &spec);
            Step::Done
        })
    }
}

// ---------------------------------------------------------------------------
// ferret: four-stage similarity-search pipeline.
// ---------------------------------------------------------------------------

/// The `ferret` analogue.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ferret;

impl Workload for Ferret {
    fn name(&self) -> &'static str {
        "ferret"
    }

    fn program(&self, spec: &WorkloadSpec) -> Program {
        let spec = *spec;
        let queries = spec.scaled(30);
        Program::new("ferret", move |ctx| {
            let segment = BoundedQueue::new(ctx, 8);
            let extract = BoundedQueue::new(ctx, 8);
            let rank = BoundedQueue::new(ctx, 8);
            let results = ctx.global("ferret_results", 8);
            let lock = ctx.mutex();

            let seg_worker = ctx.spawn("segment", move |ctx| match segment.pop(ctx, u64::MAX) {
                None => {
                    extract.push(ctx, u64::MAX);
                    Step::Done
                }
                Some(image) => {
                    let features = mix(image) ^ ctx.work(120);
                    extract.push(ctx, features);
                    Step::Yield
                }
            });
            let ext_worker = ctx.spawn("extract", move |ctx| match extract.pop(ctx, u64::MAX) {
                None => {
                    rank.push(ctx, u64::MAX);
                    Step::Done
                }
                Some(features) => {
                    let buffer = ctx.alloc(256);
                    ctx.write_u64(buffer, features);
                    let vector = mix(features) ^ ctx.work(180);
                    ctx.free(buffer);
                    rank.push(ctx, vector);
                    Step::Yield
                }
            });
            let rank_worker = ctx.spawn("rank", move |ctx| match rank.pop(ctx, u64::MAX) {
                None => Step::Done,
                Some(vector) => {
                    let score = ctx.work(220) ^ vector;
                    ctx.lock(lock);
                    let total = ctx.read_u64(results);
                    ctx.write_u64(results, total.wrapping_add(score | 1));
                    ctx.unlock(lock);
                    Step::Yield
                }
            });

            for query in 0..queries {
                segment.push(ctx, mix(query) | 1);
            }
            segment.push(ctx, u64::MAX);
            ctx.join(seg_worker);
            ctx.join(ext_worker);
            ctx.join(rank_worker);
            implant_overflow(ctx, &spec);
            Step::Done
        })
    }
}

// ---------------------------------------------------------------------------
// fluidanimate: extremely lock-heavy grid updates.
// ---------------------------------------------------------------------------

/// The `fluidanimate` analogue: the lock-acquisition-rate stress test (the
/// paper measures over 54 million acquisitions per second here, making it
/// iReplayer's worst case).
#[derive(Debug, Clone, Copy, Default)]
pub struct Fluidanimate;

impl Workload for Fluidanimate {
    fn name(&self) -> &'static str {
        "fluidanimate"
    }

    fn program(&self, spec: &WorkloadSpec) -> Program {
        let spec = *spec;
        let cells = 32u64;
        let rounds = spec.scaled(12);
        let particles_per_round = 160u64;
        Program::new("fluidanimate", move |ctx| {
            let grid = ctx.global("fluid_grid", cells * 8);
            let cell_locks: Vec<_> = (0..cells).map(|_| ctx.mutex()).collect();
            let barrier = ctx.barrier(spec.threads);
            let threads = u64::from(spec.threads);
            // Per-worker round counters in managed memory (rollback-safe).
            let round_slots = ctx.global("fluid_rounds", threads * 8);
            let mut handles = Vec::new();
            for worker in 0..threads {
                let cell_locks = cell_locks.clone();
                let round_slot = round_slots + worker * 8;
                handles.push(ctx.spawn("solver", move |ctx| {
                    // Each particle update acquires the lock of its cell and
                    // of a neighbour: two acquisitions per tiny unit of
                    // work, the worst case for recording overhead.
                    let round = ctx.read_u64(round_slot);
                    for particle in 0..particles_per_round {
                        let cell = (mix(worker * 7919 + particle + round) % cells) as usize;
                        let neighbour = (cell + 1) % cells as usize;
                        let (first, second) = if cell < neighbour {
                            (cell, neighbour)
                        } else {
                            (neighbour, cell)
                        };
                        ctx.lock(cell_locks[first]);
                        ctx.lock(cell_locks[second]);
                        let density = ctx.read_u64(grid + first as u64 * 8);
                        ctx.write_u64(grid + first as u64 * 8, density.wrapping_add(1));
                        let momentum = ctx.read_u64(grid + second as u64 * 8);
                        ctx.write_u64(grid + second as u64 * 8, momentum.wrapping_add(2));
                        ctx.unlock(cell_locks[second]);
                        ctx.unlock(cell_locks[first]);
                    }
                    ctx.barrier_wait(barrier);
                    ctx.write_u64(round_slot, round + 1);
                    if round + 1 >= rounds {
                        Step::Done
                    } else {
                        Step::Yield
                    }
                }));
            }
            for handle in handles {
                ctx.join(handle);
            }
            implant_overflow(ctx, &spec);
            Step::Done
        })
    }
}

// ---------------------------------------------------------------------------
// streamcluster: barrier-heavy clustering with temporary allocations.
// ---------------------------------------------------------------------------

/// The `streamcluster` analogue.
#[derive(Debug, Clone, Copy, Default)]
pub struct Streamcluster;

impl Workload for Streamcluster {
    fn name(&self) -> &'static str {
        "streamcluster"
    }

    fn program(&self, spec: &WorkloadSpec) -> Program {
        let spec = *spec;
        let rounds = spec.scaled(10);
        let points = 96u64;
        Program::new("streamcluster", move |ctx| {
            let centers = ctx.global("sc_centers", 16 * 8);
            let barrier = ctx.barrier(spec.threads);
            let cost_lock = ctx.mutex();
            let total_cost = ctx.global("sc_cost", 8);
            let threads = u64::from(spec.threads);
            // Per-worker round counters in managed memory (rollback-safe).
            let round_slots = ctx.global("sc_rounds", threads * 8);
            let mut handles = Vec::new();
            for worker in 0..threads {
                let round_slot = round_slots + worker * 8;
                handles.push(ctx.spawn("cluster", move |ctx| {
                    // Allocate a scratch distance table every round (the
                    // real program stresses the allocator the same way).
                    let round = ctx.read_u64(round_slot);
                    let scratch = ctx.alloc((points * 8) as usize);
                    let mut local_cost = 0u64;
                    for point in 0..points {
                        let coordinate = mix(worker * 31 + point * 17 + round);
                        let center = ctx.read_u64(centers + (point % 16) * 8);
                        let distance = (coordinate ^ center) % 1000 + ctx.work(20) % 7;
                        ctx.write_u64(scratch + point * 8, distance);
                        local_cost = local_cost.wrapping_add(distance);
                    }
                    ctx.free(scratch);
                    ctx.lock(cost_lock);
                    let cost = ctx.read_u64(total_cost);
                    ctx.write_u64(total_cost, cost.wrapping_add(local_cost));
                    ctx.unlock(cost_lock);
                    // Two barriers per round, like the original's phases.
                    ctx.barrier_wait(barrier);
                    let serial = ctx.barrier_wait(barrier);
                    if serial {
                        ctx.write_u64(centers + (round % 16) * 8, mix(round));
                    }
                    ctx.write_u64(round_slot, round + 1);
                    if round + 1 >= rounds {
                        Step::Done
                    } else {
                        Step::Yield
                    }
                }));
            }
            for handle in handles {
                ctx.join(handle);
            }
            implant_overflow(ctx, &spec);
            Step::Done
        })
    }
}

// ---------------------------------------------------------------------------
// swaptions: independent Monte-Carlo pricing, nearly no synchronization.
// ---------------------------------------------------------------------------

/// The `swaptions` analogue.
#[derive(Debug, Clone, Copy, Default)]
pub struct Swaptions;

impl Workload for Swaptions {
    fn name(&self) -> &'static str {
        "swaptions"
    }

    fn program(&self, spec: &WorkloadSpec) -> Program {
        let rounds = spec.scaled(8);
        fork_join_program("swaptions", spec, rounds, |ctx, worker, round| {
            let paths = ctx.alloc(1024);
            let mut price = 0u64;
            for path in 0..24u64 {
                let sample = ctx.rand_u64() ^ mix(worker * 97 + round * 31 + path);
                price = price.wrapping_add(ctx.work(60) ^ sample);
                ctx.write_u64(paths + (path % 128) * 8, price);
            }
            ctx.free(paths);
        })
    }
}

// ---------------------------------------------------------------------------
// x264: sliding-window frame encoding with condvar-signalled dependencies.
// ---------------------------------------------------------------------------

/// The `x264` analogue.
#[derive(Debug, Clone, Copy, Default)]
pub struct X264;

impl Workload for X264 {
    fn name(&self) -> &'static str {
        "x264"
    }

    fn program(&self, spec: &WorkloadSpec) -> Program {
        let spec = *spec;
        let frames = spec.scaled(24);
        Program::new("x264", move |ctx| {
            // `encoded` counts fully encoded frames; a frame may start only
            // when its reference frame (the previous one) is done.
            let encoded = ctx.global("x264_encoded", 8);
            let lock = ctx.mutex();
            let frame_done = ctx.condvar();
            let next_frame = ctx.global("x264_next", 8);
            let threads = u64::from(spec.threads);
            let mut handles = Vec::new();
            for _ in 0..threads {
                handles.push(ctx.spawn("encoder", move |ctx| {
                    // Claim the next frame.
                    ctx.lock(lock);
                    let frame = ctx.read_u64(next_frame);
                    if frame >= frames {
                        ctx.unlock(lock);
                        return Step::Done;
                    }
                    ctx.write_u64(next_frame, frame + 1);
                    // Wait until the reference frame is encoded.
                    while ctx.read_u64(encoded) < frame {
                        ctx.wait(frame_done, lock);
                    }
                    ctx.unlock(lock);

                    // Encode: motion estimation over a scratch buffer.
                    let macroblocks = ctx.alloc(2048);
                    let mut residual = 0u64;
                    for block in 0..48u64 {
                        residual = residual.wrapping_add(ctx.work(40) ^ mix(frame * 64 + block));
                        ctx.write_u64(macroblocks + (block % 256) * 8, residual);
                    }
                    ctx.free(macroblocks);

                    // Publish completion in frame order.
                    ctx.lock(lock);
                    while ctx.read_u64(encoded) != frame {
                        ctx.wait(frame_done, lock);
                    }
                    ctx.write_u64(encoded, frame + 1);
                    ctx.broadcast(frame_done);
                    ctx.unlock(lock);
                    Step::Yield
                }));
            }
            for handle in handles {
                ctx.join(handle);
            }
            let total = ctx.read_u64(encoded);
            ctx.assert_that(total == frames, "all frames encoded");
            implant_overflow(ctx, &spec);
            Step::Done
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;
    use ireplayer::{Config, Runtime};

    fn run_tiny(workload: &dyn Workload) {
        let config = Config::builder()
            .arena_size(16 << 20)
            .heap_block_size(256 << 10)
            .quiescence_timeout_ms(20_000)
            .build()
            .unwrap();
        let runtime = Runtime::new(config).unwrap();
        let spec = WorkloadSpec::tiny();
        workload.stage(&runtime, &spec);
        let report = runtime.run(workload.program(&spec)).unwrap();
        assert!(
            report.outcome.is_success(),
            "{} faulted: {:?}",
            workload.name(),
            report.faults
        );
        assert!(report.sync_events > 0, "{} recorded no events", workload.name());
    }

    #[test]
    fn blackscholes_runs() {
        run_tiny(&Blackscholes);
    }

    #[test]
    fn bodytrack_runs() {
        run_tiny(&Bodytrack);
    }

    #[test]
    fn canneal_runs() {
        run_tiny(&Canneal);
    }

    #[test]
    fn dedup_runs() {
        run_tiny(&Dedup);
    }

    #[test]
    fn ferret_runs() {
        run_tiny(&Ferret);
    }

    #[test]
    fn fluidanimate_runs() {
        run_tiny(&Fluidanimate);
    }

    #[test]
    fn streamcluster_runs() {
        run_tiny(&Streamcluster);
    }

    #[test]
    fn swaptions_runs() {
        run_tiny(&Swaptions);
    }

    #[test]
    fn x264_runs() {
        run_tiny(&X264);
    }
}
