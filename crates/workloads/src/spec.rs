//! Workload parameterization.

use ireplayer::{Program, Runtime, ThreadCtx};

/// How much work a workload performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadSize {
    /// A few milliseconds; used by unit and integration tests.
    Tiny,
    /// Tens of milliseconds; used by the Table 1 / Table 2 harnesses.
    Small,
    /// Hundreds of milliseconds; used by the Table 3 / Figure 5 overhead
    /// measurements.
    Bench,
}

impl WorkloadSize {
    /// A multiplier applied to iteration counts.
    pub fn scale(self) -> u64 {
        match self {
            WorkloadSize::Tiny => 1,
            WorkloadSize::Small => 4,
            WorkloadSize::Bench => 24,
        }
    }
}

/// Parameters shared by every workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Problem size.
    pub size: WorkloadSize,
    /// Number of worker threads (most workloads spawn this many in addition
    /// to the main thread).
    pub threads: u32,
    /// Implant a one-byte heap overflow at the end of the main routine, as
    /// the paper does for the §5.2 identical-replay validation and the
    /// detector evaluation.
    pub implant_overflow: bool,
}

impl WorkloadSpec {
    /// A specification suitable for unit tests.
    pub fn tiny() -> Self {
        WorkloadSpec {
            size: WorkloadSize::Tiny,
            threads: 2,
            implant_overflow: false,
        }
    }

    /// The specification used by the Table 1 harness.
    pub fn small() -> Self {
        WorkloadSpec {
            size: WorkloadSize::Small,
            threads: 4,
            implant_overflow: false,
        }
    }

    /// The specification used by the Table 3 / Figure 5 harnesses.
    pub fn bench() -> Self {
        WorkloadSpec {
            size: WorkloadSize::Bench,
            threads: 4,
            implant_overflow: false,
        }
    }

    /// Returns a copy with the implanted overflow enabled.
    pub fn with_overflow(mut self) -> Self {
        self.implant_overflow = true;
        self
    }

    /// Returns a copy with a different worker count.
    pub fn with_threads(mut self, threads: u32) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Scaled iteration count helper.
    pub fn scaled(&self, base: u64) -> u64 {
        base * self.size.scale()
    }
}

/// A benchmark application.
pub trait Workload: Send + Sync {
    /// The name used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Stages inputs (files, network peers) on the runtime's simulated OS.
    /// The default stages nothing.
    fn stage(&self, runtime: &Runtime, spec: &WorkloadSpec) {
        let _ = (runtime, spec);
    }

    /// Builds the program for the given parameters.
    fn program(&self, spec: &WorkloadSpec) -> Program;
}

/// Implants the paper's end-of-main buffer overflow: allocate a small object
/// and write one byte past its requested size, corrupting the allocation
/// canary when canaries are enabled (§5.2).
pub fn implant_overflow(ctx: &mut ThreadCtx<'_>, spec: &WorkloadSpec) {
    if spec.implant_overflow {
        let object = ctx.alloc(24);
        // One byte past the 24 requested bytes.
        ctx.write_u8(object + 24, 0xbb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_scale_with_size() {
        assert!(WorkloadSpec::bench().scaled(10) > WorkloadSpec::small().scaled(10));
        assert!(WorkloadSpec::small().scaled(10) > WorkloadSpec::tiny().scaled(10));
        let spec = WorkloadSpec::tiny().with_overflow().with_threads(0);
        assert!(spec.implant_overflow);
        assert_eq!(spec.threads, 1);
    }
}
