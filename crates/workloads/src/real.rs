//! Synthetic analogues of the six real applications of the paper's
//! evaluation (§5.1): `aget`, Apache httpd, memcached, pbzip2, pfscan, and
//! SQLite.

use ireplayer::{PeerScript, Program, Runtime, Step};

use crate::spec::{implant_overflow, Workload, WorkloadSpec};
use crate::util::{mix, BoundedQueue, StripedTable};

// ---------------------------------------------------------------------------
// aget: multi-connection download to a file (IO-bound).
// ---------------------------------------------------------------------------

/// The `aget` analogue: each worker downloads its share of a remote file
/// over its own connection and writes it to a per-segment output file.
#[derive(Debug, Clone, Copy, Default)]
pub struct Aget;

impl Workload for Aget {
    fn name(&self) -> &'static str {
        "aget"
    }

    fn stage(&self, runtime: &Runtime, spec: &WorkloadSpec) {
        let total = spec.scaled(64) as usize * 1024;
        runtime.os().register_peer(
            "mirror:80",
            PeerScript::Download {
                seed: 0xa6e7,
                total_bytes: total,
            },
        );
    }

    fn program(&self, spec: &WorkloadSpec) -> Program {
        let spec = *spec;
        Program::new("aget", move |ctx| {
            let downloaded = ctx.global("aget_bytes", 8);
            let lock = ctx.mutex();
            let threads = u64::from(spec.threads);
            let mut handles = Vec::new();
            for segment in 0..threads {
                handles.push(ctx.spawn("downloader", move |ctx| {
                    let socket = ctx.connect("mirror:80").expect("download peer is registered");
                    let output = ctx
                        .open_create(&format!("aget-part-{segment}.bin"))
                        .expect("create segment file");
                    let mut received = 0u64;
                    loop {
                        let chunk = ctx.recv(socket, 8 * 1024);
                        if chunk.is_empty() {
                            break;
                        }
                        received += chunk.len() as u64;
                        ctx.write(output, &chunk);
                        // Each connection only fetches its share.
                        if received >= 16 * 1024 * (segment + 1) {
                            break;
                        }
                    }
                    ctx.close(output);
                    ctx.close(socket);
                    ctx.lock(lock);
                    let total = ctx.read_u64(downloaded);
                    ctx.write_u64(downloaded, total + received);
                    ctx.unlock(lock);
                    Step::Done
                }));
            }
            for handle in handles {
                ctx.join(handle);
            }
            let total = ctx.read_u64(downloaded);
            ctx.assert_that(total > 0, "something was downloaded");
            implant_overflow(ctx, &spec);
            Step::Done
        })
    }
}

// ---------------------------------------------------------------------------
// apache: a worker-pool HTTP-ish server driven by scripted clients.
// ---------------------------------------------------------------------------

/// The Apache httpd analogue.
#[derive(Debug, Clone, Copy, Default)]
pub struct Apache;

impl Apache {
    fn requests(spec: &WorkloadSpec) -> usize {
        spec.scaled(50) as usize
    }
}

impl Workload for Apache {
    fn name(&self) -> &'static str {
        "apache"
    }

    fn stage(&self, runtime: &Runtime, spec: &WorkloadSpec) {
        runtime.os().register_peer(
            "httpd:80",
            PeerScript::Client {
                seed: 0x4711,
                requests: 1,
                request_len: 128,
            },
        );
        runtime.os().enqueue_clients("httpd:80", Self::requests(spec));
    }

    fn program(&self, spec: &WorkloadSpec) -> Program {
        let spec = *spec;
        let requests = Self::requests(&spec) as u64;
        Program::new("apache", move |ctx| {
            let served = ctx.global("apache_served", 8);
            let accept_lock = ctx.mutex();
            let threads = u64::from(spec.threads);
            let mut handles = Vec::new();
            for _ in 0..threads {
                handles.push(ctx.spawn("httpd-worker", move |ctx| {
                    // Accept one connection per step (accepting is serialized
                    // as in Apache's accept mutex).
                    ctx.lock(accept_lock);
                    let connection = ctx.accept("httpd:80");
                    ctx.unlock(accept_lock);
                    let Some(connection) = connection else {
                        return Step::Done;
                    };
                    let request = ctx.recv(connection, 256);
                    let digest = request.iter().fold(0u64, |acc, b| mix(acc ^ u64::from(*b)));
                    let body = ctx.alloc(512);
                    ctx.write_u64(body, digest);
                    let response = format!("HTTP/1.1 200 OK\r\ncontent: {digest:016x}\r\n\r\n");
                    ctx.send(connection, response.as_bytes());
                    ctx.free(body);
                    ctx.close(connection);
                    ctx.lock(accept_lock);
                    let count = ctx.read_u64(served);
                    ctx.write_u64(served, count + 1);
                    ctx.unlock(accept_lock);
                    Step::Yield
                }));
            }
            for handle in handles {
                ctx.join(handle);
            }
            let count = ctx.read_u64(served);
            ctx.assert_that(count == requests, "every request was served");
            implant_overflow(ctx, &spec);
            Step::Done
        })
    }
}

// ---------------------------------------------------------------------------
// memcached: a key-value server with a striped hash table.
// ---------------------------------------------------------------------------

/// The memcached analogue.
#[derive(Debug, Clone, Copy, Default)]
pub struct Memcached;

impl Memcached {
    fn connections(spec: &WorkloadSpec) -> usize {
        (spec.threads as usize) * 2
    }
}

impl Workload for Memcached {
    fn name(&self) -> &'static str {
        "memcached"
    }

    fn stage(&self, runtime: &Runtime, spec: &WorkloadSpec) {
        runtime.os().register_peer(
            "memcache:11211",
            PeerScript::Client {
                seed: 0x11211,
                requests: spec.scaled(30) as usize,
                request_len: 40,
            },
        );
        runtime.os().enqueue_clients("memcache:11211", Self::connections(spec));
    }

    fn program(&self, spec: &WorkloadSpec) -> Program {
        let spec = *spec;
        Program::new("memcached", move |ctx| {
            let table = StripedTable::new(ctx, 1024, 16);
            let operations = ctx.global("memcached_ops", 8);
            let stats_lock = ctx.mutex();
            let accept_lock = ctx.mutex();
            let threads = u64::from(spec.threads);
            let mut handles = Vec::new();
            for _ in 0..threads {
                let table = table.clone();
                handles.push(ctx.spawn("mc-worker", move |ctx| {
                    ctx.lock(accept_lock);
                    let connection = ctx.accept("memcache:11211");
                    ctx.unlock(accept_lock);
                    let Some(connection) = connection else {
                        return Step::Done;
                    };
                    // Serve the whole connection.
                    let mut local_ops = 0u64;
                    loop {
                        let request = ctx.recv(connection, 64);
                        if request.is_empty() {
                            break;
                        }
                        let key = request.iter().fold(0u64, |acc, b| mix(acc ^ u64::from(*b))) | 1;
                        if key % 3 == 0 {
                            let value = table.get(ctx, key).unwrap_or(0);
                            ctx.send(connection, &value.to_le_bytes());
                        } else {
                            let item = ctx.alloc(128);
                            ctx.write_u64(item, key);
                            table.put(ctx, key, item.offset());
                            ctx.send(connection, b"STORED\r\n");
                        }
                        local_ops += 1;
                    }
                    ctx.close(connection);
                    ctx.lock(stats_lock);
                    let count = ctx.read_u64(operations);
                    ctx.write_u64(operations, count + local_ops);
                    ctx.unlock(stats_lock);
                    Step::Yield
                }));
            }
            for handle in handles {
                ctx.join(handle);
            }
            let count = ctx.read_u64(operations);
            ctx.assert_that(count > 0, "the cache served requests");
            implant_overflow(ctx, &spec);
            Step::Done
        })
    }
}

// ---------------------------------------------------------------------------
// pbzip2: parallel block compression of a file.
// ---------------------------------------------------------------------------

/// The pbzip2 analogue.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pbzip2;

impl Workload for Pbzip2 {
    fn name(&self) -> &'static str {
        "pbzip2"
    }

    fn stage(&self, runtime: &Runtime, spec: &WorkloadSpec) {
        let len = (spec.scaled(48) * 1024) as usize;
        let data: Vec<u8> = (0..len).map(|i| (mix(i as u64 / 64) & 0xff) as u8).collect();
        runtime.os().create_file("pbzip2-input.bin", data);
    }

    fn program(&self, spec: &WorkloadSpec) -> Program {
        let spec = *spec;
        let block = 4 * 1024usize;
        Program::new("pbzip2", move |ctx| {
            let work = BoundedQueue::new(ctx, 16);
            let compressed = ctx.global("pbzip2_blocks", 8);
            let out_lock = ctx.mutex();
            let input = ctx.open("pbzip2-input.bin").expect("staged input");
            let output = ctx.open_create("pbzip2-output.bz2").expect("output");
            let threads = u64::from(spec.threads);
            let mut handles = Vec::new();
            for _ in 0..threads {
                handles.push(ctx.spawn("bzip-worker", move |ctx| {
                    match work.pop(ctx, u64::MAX) {
                        None => Step::Done,
                        Some(seed) => {
                            // "Compress" the block: CPU work plus a scratch
                            // dictionary allocation, like libbz2's state.
                            let dictionary = ctx.alloc(block);
                            let mut digest = seed;
                            for round in 0..16u64 {
                                digest = mix(digest ^ round) ^ ctx.work(80);
                                ctx.write_u64(dictionary + (round % 64) * 8, digest);
                            }
                            ctx.free(dictionary);
                            ctx.lock(out_lock);
                            ctx.write(output, &digest.to_le_bytes());
                            let blocks = ctx.read_u64(compressed);
                            ctx.write_u64(compressed, blocks + 1);
                            ctx.unlock(out_lock);
                            Step::Yield
                        }
                    }
                }));
            }
            let mut blocks_read = 0u64;
            loop {
                let bytes = ctx.read(input, block);
                if bytes.is_empty() {
                    break;
                }
                let seed = bytes.iter().fold(0u64, |acc, b| mix(acc ^ u64::from(*b)));
                work.push(ctx, seed | 1);
                blocks_read += 1;
            }
            work.push(ctx, u64::MAX);
            for handle in handles {
                ctx.join(handle);
            }
            let blocks = ctx.read_u64(compressed);
            ctx.assert_that(blocks == blocks_read, "every block was compressed");
            ctx.close(input);
            ctx.close(output);
            implant_overflow(ctx, &spec);
            Step::Done
        })
    }
}

// ---------------------------------------------------------------------------
// pfscan: parallel scan of a file for a pattern.
// ---------------------------------------------------------------------------

/// The pfscan analogue.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pfscan;

impl Workload for Pfscan {
    fn name(&self) -> &'static str {
        "pfscan"
    }

    fn stage(&self, runtime: &Runtime, spec: &WorkloadSpec) {
        let len = (spec.scaled(96) * 1024) as usize;
        let data: Vec<u8> = (0..len)
            .map(|i| {
                if i % 509 == 0 {
                    b'@'
                } else {
                    (mix(i as u64) & 0x7f) as u8
                }
            })
            .collect();
        runtime.os().create_file("pfscan-input.log", data);
    }

    fn program(&self, spec: &WorkloadSpec) -> Program {
        let spec = *spec;
        let chunk = 8 * 1024usize;
        Program::new("pfscan", move |ctx| {
            let work = BoundedQueue::new(ctx, 16);
            let matches = ctx.global("pfscan_matches", 8);
            let lock = ctx.mutex();
            let input = ctx.open("pfscan-input.log").expect("staged input");
            let threads = u64::from(spec.threads);
            let mut handles = Vec::new();
            for _ in 0..threads {
                handles.push(ctx.spawn("scanner", move |ctx| {
                    match work.pop(ctx, u64::MAX) {
                        None => Step::Done,
                        Some(found_in_chunk) => {
                            // The main thread already read the chunk; the
                            // worker models the scan cost and merges counts.
                            let cost = ctx.work(200);
                            std::hint::black_box(cost);
                            ctx.lock(lock);
                            let count = ctx.read_u64(matches);
                            ctx.write_u64(matches, count + found_in_chunk);
                            ctx.unlock(lock);
                            Step::Yield
                        }
                    }
                }));
            }
            let mut expected = 0u64;
            loop {
                let bytes = ctx.read(input, chunk);
                if bytes.is_empty() {
                    break;
                }
                let found = bytes.iter().filter(|b| **b == b'@').count() as u64;
                expected += found;
                work.push(ctx, found);
            }
            work.push(ctx, u64::MAX);
            for handle in handles {
                ctx.join(handle);
            }
            let total = ctx.read_u64(matches);
            ctx.assert_that(total == expected, "all occurrences counted");
            ctx.close(input);
            implant_overflow(ctx, &spec);
            Step::Done
        })
    }
}

// ---------------------------------------------------------------------------
// sqlite: concurrent inserts/queries against one database lock.
// ---------------------------------------------------------------------------

/// The SQLite analogue (`threadtest3`-style workload: many threads hammering
/// one serialized database).
#[derive(Debug, Clone, Copy, Default)]
pub struct Sqlite;

impl Workload for Sqlite {
    fn name(&self) -> &'static str {
        "sqlite"
    }

    fn program(&self, spec: &WorkloadSpec) -> Program {
        let spec = *spec;
        let transactions = spec.scaled(60);
        Program::new("sqlite", move |ctx| {
            // The "database": a table in managed memory plus a WAL file.
            let table = StripedTable::new(ctx, 2048, 1);
            let db_lock = ctx.mutex();
            let committed = ctx.global("sqlite_committed", 8);
            let wal = ctx.open_create("sqlite.wal").expect("wal file");
            let threads = u64::from(spec.threads);
            // Per-worker transaction counters in managed memory
            // (rollback-safe).
            let done_slots = ctx.global("sqlite_done", threads * 8);
            let mut handles = Vec::new();
            for worker in 0..threads {
                let table = table.clone();
                let done_slot = done_slots + worker * 8;
                handles.push(ctx.spawn("sql-thread", move |ctx| {
                    // One transaction per step, fully serialized by the
                    // database lock (SQLite's single-writer model).
                    let done = ctx.read_u64(done_slot);
                    ctx.lock(db_lock);
                    let row = ctx.alloc(96);
                    let key = mix(worker * 100_000 + done) | 1;
                    ctx.write_u64(row, key);
                    table.put(ctx, key, row.offset());
                    let lookup = table.get(ctx, key);
                    let checksum = ctx.work(120) ^ key;
                    ctx.write(wal, &checksum.to_le_bytes());
                    let count = ctx.read_u64(committed);
                    ctx.write_u64(committed, count + 1);
                    let ok = lookup.is_some();
                    ctx.unlock(db_lock);
                    ctx.assert_that(ok, "inserted row is visible");
                    ctx.write_u64(done_slot, done + 1);
                    if (done + 1) * threads >= transactions {
                        Step::Done
                    } else {
                        Step::Yield
                    }
                }));
            }
            for handle in handles {
                ctx.join(handle);
            }
            let count = ctx.read_u64(committed);
            ctx.assert_that(count > 0, "transactions committed");
            ctx.close(wal);
            implant_overflow(ctx, &spec);
            Step::Done
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ireplayer::Config;

    fn run_tiny(workload: &dyn Workload) {
        let config = Config::builder()
            .arena_size(16 << 20)
            .heap_block_size(256 << 10)
            .quiescence_timeout_ms(20_000)
            .build()
            .unwrap();
        let runtime = Runtime::new(config).unwrap();
        let spec = WorkloadSpec::tiny();
        workload.stage(&runtime, &spec);
        let report = runtime.run(workload.program(&spec)).unwrap();
        assert!(
            report.outcome.is_success(),
            "{} faulted: {:?}",
            workload.name(),
            report.faults
        );
    }

    #[test]
    fn aget_runs() {
        run_tiny(&Aget);
    }

    #[test]
    fn apache_runs() {
        run_tiny(&Apache);
    }

    #[test]
    fn memcached_runs() {
        run_tiny(&Memcached);
    }

    #[test]
    fn pbzip2_runs() {
        run_tiny(&Pbzip2);
    }

    #[test]
    fn pfscan_runs() {
        run_tiny(&Pfscan);
    }

    #[test]
    fn sqlite_runs() {
        run_tiny(&Sqlite);
    }
}
