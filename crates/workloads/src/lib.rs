//! Benchmark workloads for the iReplayer evaluation (paper §5.1).
//!
//! The paper evaluates nine PARSEC 2.1 applications and six real
//! applications (`aget`, Apache httpd, memcached, pbzip2, pfscan, SQLite),
//! plus the synthetic racy program Crasher.  The originals cannot run on the
//! managed substrate, so this crate provides synthetic analogues that
//! reproduce each application's *profile* -- the mix of synchronization,
//! allocation, file/network IO, and computation that drives recording
//! overhead -- while exercising the `ireplayer` public API end to end.
//!
//! Every workload implements [`Workload`]: it can stage its inputs
//! (files, network peers) on a [`Runtime`] and build a [`Program`]
//! parameterized by a [`WorkloadSpec`].  [`all_workloads`] returns the
//! fifteen applications in the order used by the paper's tables.

pub mod buggy;
pub mod crasher;
pub mod ledger;
pub mod parsec;
pub mod real;
pub mod server;
pub mod spec;
pub mod util;

pub use buggy::{all_known_bugs, known_bug_by_name, ExpectedBug, KnownBug};
pub use crasher::Crasher;
pub use ledger::{Ledger, LEDGER_AUDIT};
pub use server::{JobSteal, KvPool};
pub use spec::{Workload, WorkloadSize, WorkloadSpec};

use ireplayer::{Program, Runtime};

/// Returns the fifteen applications of Tables 1 and 3, in table order.
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(parsec::Blackscholes),
        Box::new(parsec::Bodytrack),
        Box::new(parsec::Canneal),
        Box::new(parsec::Dedup),
        Box::new(parsec::Ferret),
        Box::new(parsec::Fluidanimate),
        Box::new(parsec::Streamcluster),
        Box::new(parsec::Swaptions),
        Box::new(parsec::X264),
        Box::new(real::Aget),
        Box::new(real::Apache),
        Box::new(real::Memcached),
        Box::new(real::Pbzip2),
        Box::new(real::Pfscan),
        Box::new(real::Sqlite),
    ]
}

/// Looks a workload up by its table name (e.g. `"fluidanimate"`).  Also
/// resolves the chaos-suite servers (`"kv-pool"`, `"job-steal"`) and the
/// explorer's planted-bug subject (`"flaky-ledger"`), which are not part
/// of the paper tables and so not in [`all_workloads`].
pub fn workload_by_name(name: &str) -> Option<Box<dyn Workload>> {
    match name {
        "kv-pool" => return Some(Box::new(server::KvPool)),
        "job-steal" => return Some(Box::new(server::JobSteal)),
        "flaky-ledger" => return Some(Box::new(ledger::Ledger)),
        _ => {}
    }
    all_workloads().into_iter().find(|w| w.name() == name)
}

/// Convenience: stages and builds a workload's program on a runtime.
pub fn prepare(workload: &dyn Workload, runtime: &Runtime, spec: &WorkloadSpec) -> Program {
    workload.stage(runtime, spec);
    workload.program(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_the_paper_tables() {
        let names: Vec<&str> = all_workloads().iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec![
                "blackscholes",
                "bodytrack",
                "canneal",
                "dedup",
                "ferret",
                "fluidanimate",
                "streamcluster",
                "swaptions",
                "x264",
                "aget",
                "apache",
                "memcached",
                "pbzip2",
                "pfscan",
                "sqlite",
            ]
        );
        assert!(workload_by_name("fluidanimate").is_some());
        assert!(workload_by_name("kv-pool").is_some());
        assert!(workload_by_name("job-steal").is_some());
        assert!(workload_by_name("flaky-ledger").is_some());
        assert!(workload_by_name("doom").is_none());
    }
}
