//! Micro-benchmarks of the mechanisms the paper's §3.2 design choices
//! target: the cost of recording a lock acquisition, of an allocation on
//! the deterministic heap versus the global-lock heap, and of an epoch
//! checkpoint.  These are the ablation knobs called out in DESIGN.md.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use ireplayer::{AllocatorMode, Config, Program, RunMode, Runtime, Step};

fn small_config() -> ireplayer::ConfigBuilder {
    Config::builder().arena_size(16 << 20).heap_block_size(256 << 10)
}

fn run_program(config: Config, mut body: impl FnMut(&mut ireplayer::ThreadCtx<'_>) -> Step + Send + 'static) {
    let runtime = Runtime::new(config).unwrap();
    let report = runtime.run(Program::new("micro", move |ctx| body(ctx))).unwrap();
    assert!(report.outcome.is_success());
}

/// Recording cost per lock acquisition: the same lock-heavy loop with and
/// without recording.
fn record_lock_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("lock_acquisition");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for (name, mode) in [("passthrough", RunMode::Passthrough), ("recording", RunMode::Record)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                run_program(small_config().mode(mode).build().unwrap(), |ctx| {
                    let lock = ctx.mutex();
                    for _ in 0..2_000 {
                        ctx.lock(lock);
                        ctx.unlock(lock);
                    }
                    Step::Done
                });
            })
        });
    }
    group.finish();
}

/// Allocation cost: deterministic per-thread heap versus the global-lock
/// baseline allocator (the "IR-Alloc is 3% faster" claim of §5.3).
fn allocator_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocation");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for (name, allocator) in [
        ("per_thread", AllocatorMode::PerThread),
        ("global_lock", AllocatorMode::GlobalLock),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                run_program(
                    small_config()
                        .mode(RunMode::Passthrough)
                        .allocator(allocator)
                        .build()
                        .unwrap(),
                    |ctx| {
                        let mut live = Vec::new();
                        for i in 0..1_500usize {
                            live.push(ctx.alloc(16 + (i % 8) * 32));
                            if i % 3 == 0 {
                                if let Some(addr) = live.pop() {
                                    ctx.free(addr);
                                }
                            }
                        }
                        for addr in live.drain(..) {
                            ctx.free(addr);
                        }
                        Step::Done
                    },
                );
            })
        });
    }
    group.finish();
}

/// Cost of an explicit epoch boundary (checkpoint + housekeeping).
fn epoch_checkpoint_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch_checkpoint");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("explicit_epochs", |b| {
        b.iter(|| {
            run_program(small_config().build().unwrap(), {
                let mut rounds = 0u64;
                move |ctx| {
                    let cell = ctx.alloc(64);
                    ctx.write_u64(cell, rounds);
                    ctx.free(cell);
                    ctx.end_epoch();
                    rounds += 1;
                    if rounds >= 10 {
                        Step::Done
                    } else {
                        Step::Yield
                    }
                }
            });
        })
    });
    group.finish();
}

criterion_group!(benches, record_lock_cost, allocator_cost, epoch_checkpoint_cost);
criterion_main!(benches);
