//! Criterion version of the Table 3 measurement on reduced inputs: the
//! recording overhead of each system on three representative workloads
//! (lock-heavy, pipeline/allocation-heavy, IO-bound).  The full-size table
//! is produced by the `table3_overhead` binary.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ireplayer_baselines::SystemUnderTest;
use ireplayer_bench::run_once;
use ireplayer_workloads::{workload_by_name, WorkloadSpec};

fn table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let spec = WorkloadSpec::tiny();
    for workload_name in ["fluidanimate", "dedup", "aget"] {
        for system in SystemUnderTest::table3() {
            let id = BenchmarkId::new(workload_name, system.label());
            group.bench_function(id, |b| {
                b.iter(|| {
                    let workload = workload_by_name(workload_name).unwrap();
                    run_once(system, workload.as_ref(), &spec)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, table3);
criterion_main!(benches);
