//! `record_path`: throughput of the logging layer's record path, old
//! (mutex-serialized) versus new (lock-free single-writer) design, at 1, 4
//! and 8 threads.
//!
//! Before the lock-free refactor every recorded event went through
//! `Mutex<ThreadList>` plus a `Mutex<VarList>` per variable; this bench
//! keeps that shape alive as [`MutexLists`] so the win stays measurable.
//! The new path is the real [`ThreadList`] / [`VarList`] pair.  The
//! workload mirrors the runtime's stress shape: every thread appends to its
//! own thread list, most events order on a thread-private variable, and
//! every fourth event orders on one variable shared by all threads (the
//! contended case that used to convoy on the variable's mutex).
//!
//! Besides the criterion timings, the bench *verifies* several properties
//! and panics if they regress:
//!
//! * the uncontended lock-free record path performs **zero** mutex
//!   acquisitions (counted by the vendored parking_lot's
//!   `mutex_acquisitions` instrumentation);
//! * at 8 threads the lock-free path sustains at least **2x** the
//!   throughput of the mutex path (best of seven rounds; the bar drops to
//!   parity on machines with fewer cores than bench threads, so a small
//!   shared CI runner cannot fail the check spuriously);
//! * **two partitions recording concurrently share nothing on the fast
//!   path**: the multi-tenant shape (one logging state and one arena
//!   partition per tenant, as the runtime holds them per `RtInner`)
//!   sustains its full record load with zero mutex acquisitions -- there
//!   is no cross-partition lock to take -- and zero cross-partition arena
//!   writes (each partition's bytes hold exactly its own pattern
//!   afterwards, and wiping one partition leaves the neighbour intact);
//! * one recorded epoch serializes at least **4x smaller** under the
//!   delta/varint compressed framing than under the fixed-width packed
//!   words it replaced, with the byte counts published as
//!   `log_bytes_per_epoch/*` metrics in the JSON summary.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ireplayer_log::{wire, Event, EventKind, SyncOp, ThreadId, ThreadList, VarId, VarList};
use parking_lot::Mutex;

/// Events appended per thread per measured round.  Large enough that the
/// per-round thread-spawn overhead is noise next to the appends.
const EVENTS_PER_THREAD: usize = 65_536;
/// Every `CONTENDED_STRIDE`-th event orders on the shared variable.
const CONTENDED_STRIDE: usize = 4;

fn sync_event(thread: ThreadId, var: VarId, index: u32) -> EventKind {
    let _ = (thread, index);
    EventKind::Sync {
        var,
        op: SyncOp::MutexLock,
        result: 0,
    }
}

// ---------------------------------------------------------------------------
// The pre-refactor shape: every list behind a mutex.
// ---------------------------------------------------------------------------

/// One thread's mutex-guarded event list plus the mutex-guarded variable
/// lists, as the runtime held them before the lock-free refactor.
struct MutexLists {
    threads: Vec<Mutex<Vec<Event>>>,
    vars: Vec<Mutex<Vec<(ThreadId, SyncOp, u32)>>>,
    /// The pre-refactor per-event epoch-state check: `(end_requested,
    /// tainted)` read under the epoch mutex, as the old syscall path did.
    epoch: Mutex<(bool, bool)>,
}

impl MutexLists {
    fn new(threads: usize) -> Self {
        MutexLists {
            threads: (0..threads)
                .map(|_| Mutex::new(Vec::with_capacity(EVENTS_PER_THREAD)))
                .collect(),
            // Variable 0 is shared; variable 1 + t is thread t's private one.
            vars: (0..threads + 1).map(|_| Mutex::new(Vec::new())).collect(),
            epoch: Mutex::new((false, false)),
        }
    }

    fn record(&self, thread: usize, event_index: usize) {
        let (end_requested, tainted) = *self.epoch.lock();
        assert!(!end_requested && !tainted);
        let tid = ThreadId(thread as u32);
        let var = var_for(thread, event_index);
        let index = {
            let mut list = self.threads[thread].lock();
            let index = list.len() as u32;
            list.push(Event {
                thread: tid,
                index,
                kind: sync_event(tid, var, index),
            });
            index
        };
        self.vars[var.0 as usize].lock().push((tid, SyncOp::MutexLock, index));
    }
}

// ---------------------------------------------------------------------------
// The lock-free shape shipped in `ireplayer-log`.
// ---------------------------------------------------------------------------

struct LockFreeLists {
    threads: Vec<ThreadList>,
    vars: Vec<VarList>,
    /// The refactored epoch-state check: two atomics on `RtInner`.
    end_requested: AtomicBool,
    tainted: AtomicBool,
}

impl LockFreeLists {
    fn new(threads: usize) -> Self {
        LockFreeLists {
            threads: (0..threads)
                .map(|t| ThreadList::new(ThreadId(t as u32), EVENTS_PER_THREAD))
                .collect(),
            vars: (0..threads + 1).map(|_| VarList::new()).collect(),
            end_requested: AtomicBool::new(false),
            tainted: AtomicBool::new(false),
        }
    }

    fn record(&self, thread: usize, event_index: usize) {
        assert!(!self.end_requested.load(Ordering::Acquire) && !self.tainted.load(Ordering::Acquire));
        let tid = ThreadId(thread as u32);
        let var = var_for(thread, event_index);
        // SAFETY: bench thread `thread` is the sole appender to its own
        // list (the single-writer contract), and nothing clears the lists
        // while a round is running.
        #[allow(unsafe_code)]
        let index = unsafe { self.threads[thread].append(sync_event(tid, var, event_index as u32)) }
            .expect("bench lists are sized for the round");
        self.vars[var.0 as usize].append(tid, SyncOp::MutexLock, index);
    }
}

/// Shared variable 0 every `CONTENDED_STRIDE` events, thread-private
/// variable otherwise.
fn var_for(thread: usize, event_index: usize) -> VarId {
    if event_index % CONTENDED_STRIDE == 0 {
        VarId(0)
    } else {
        VarId(1 + thread as u32)
    }
}

/// Runs one full round (`threads` threads x `EVENTS_PER_THREAD` events)
/// against `record`, returning the wall time.
fn run_round<L: Send + Sync + 'static>(
    lists: Arc<L>,
    threads: usize,
    record: fn(&L, usize, usize),
) -> std::time::Duration {
    let start = Instant::now();
    if threads == 1 {
        for i in 0..EVENTS_PER_THREAD {
            record(&lists, 0, i);
        }
        return start.elapsed();
    }
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let lists = Arc::clone(&lists);
            std::thread::spawn(move || {
                for i in 0..EVENTS_PER_THREAD {
                    record(&lists, t, i);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    start.elapsed()
}

fn events_per_sec(threads: usize, elapsed: std::time::Duration) -> f64 {
    (threads * EVENTS_PER_THREAD) as f64 / elapsed.as_secs_f64().max(1e-9)
}

/// Runs `partitions` independent logging states concurrently,
/// `threads_per_partition` recording threads each -- the multi-tenant
/// shape, where every tenant's fast path touches only its own partition's
/// lists.  Returns the wall time of the whole round.
fn run_partitioned_round(partitions: usize, threads_per_partition: usize) -> std::time::Duration {
    let lists: Vec<Arc<LockFreeLists>> = (0..partitions)
        .map(|_| Arc::new(LockFreeLists::new(threads_per_partition)))
        .collect();
    let start = Instant::now();
    let handles: Vec<_> = lists
        .iter()
        .flat_map(|partition| {
            (0..threads_per_partition).map(|t| {
                let partition = Arc::clone(partition);
                std::thread::spawn(move || {
                    for i in 0..EVENTS_PER_THREAD {
                        partition.record(t, i);
                    }
                })
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let elapsed = start.elapsed();
    // Every partition recorded its full load into its own lists.
    for partition in &lists {
        for list in &partition.threads {
            assert_eq!(list.len(), EVENTS_PER_THREAD, "a partition lost events");
        }
    }
    elapsed
}

fn bench_record_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("record_path");
    group.sample_size(10);
    for threads in [1usize, 4, 8] {
        group.bench_function(BenchmarkId::new("mutex", threads), |b| {
            b.iter(|| run_round(Arc::new(MutexLists::new(threads)), threads, MutexLists::record));
        });
        group.bench_function(BenchmarkId::new("lockfree", threads), |b| {
            b.iter(|| run_round(Arc::new(LockFreeLists::new(threads)), threads, LockFreeLists::record));
        });
    }
    // The multi-tenant shape: 2 partitions x 4 threads (same total thread
    // count as the 8-thread single-tenant case, for comparability).
    group.bench_function(BenchmarkId::new("lockfree-2-partitions", 8), |b| {
        b.iter(|| run_partitioned_round(2, 4));
    });
    group.finish();
}

/// The uncontended record fast path acquires zero mutexes: one thread, one
/// private variable per event, counted by the vendored parking_lot
/// instrumentation.
fn verify_lock_free_fast_path(_c: &mut Criterion) {
    // Probe that the lock-count instrumentation is actually live (the
    // vendored parking_lot counts only with its `lock-count` feature, which
    // this bench enables); otherwise the zero assertion below is vacuous.
    {
        let probe = Mutex::new(());
        let before = parking_lot::mutex_acquisitions();
        drop(probe.lock());
        assert!(
            parking_lot::mutex_acquisitions() > before,
            "lock-count instrumentation must be enabled for this bench"
        );
    }
    let lists = LockFreeLists::new(1);
    let before = parking_lot::mutex_acquisitions();
    for i in 0..EVENTS_PER_THREAD {
        lists.record(0, i);
    }
    let acquisitions = parking_lot::mutex_acquisitions() - before;
    println!("record_path/verify: {acquisitions} mutex acquisitions across {EVENTS_PER_THREAD} lock-free records");
    assert_eq!(
        acquisitions, 0,
        "the lock-free record fast path must not acquire any mutex"
    );
}

/// At 8 threads the lock-free path must beat the mutex path by at least 2x
/// (best of seven rounds each, so a noisy scheduler cannot fail the check
/// spuriously).
fn verify_speedup(_c: &mut Criterion) {
    let threads = 8;
    let rounds = 7;
    let best = |record_round: &dyn Fn() -> std::time::Duration| {
        (0..rounds).map(|_| record_round()).min().expect("at least one round")
    };
    let mutex_best = best(&|| run_round(Arc::new(MutexLists::new(threads)), threads, MutexLists::record));
    let lockfree_best = best(&|| run_round(Arc::new(LockFreeLists::new(threads)), threads, LockFreeLists::record));
    let mutex_rate = events_per_sec(threads, mutex_best);
    let lockfree_rate = events_per_sec(threads, lockfree_best);
    let speedup = lockfree_rate / mutex_rate;
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // On a machine with fewer cores than bench threads (small shared CI
    // runners) the threads barely overlap, so the contention this bench
    // measures mostly disappears; require only parity there and keep the
    // hard 2x bar for machines that can actually run 8 threads at once.
    let required = if cores >= threads { 2.0 } else { 1.0 };
    println!(
        "record_path/speedup at {threads} threads on {cores} cores: {speedup:.2}x \
         (mutex {:.1}M events/s, lock-free {:.1}M events/s, required {required:.1}x)",
        mutex_rate / 1e6,
        lockfree_rate / 1e6
    );
    assert!(
        speedup >= required,
        "lock-free record path must be >= {required:.1}x the mutex path at {threads} threads, measured {speedup:.2}x"
    );
}

/// Two partitions recording concurrently acquire **no cross-partition
/// mutex on the fast path** -- in fact no mutex at all: each tenant's
/// appends touch only its own partition's single-writer/lock-free lists,
/// exactly as the runtime holds them on per-partition `RtInner`s.  Counted
/// across the whole concurrent round by the vendored parking_lot
/// instrumentation (the probe in `verify_lock_free_fast_path` already
/// established the counter is live).
fn verify_partitioned_fast_path(_c: &mut Criterion) {
    let before = parking_lot::mutex_acquisitions();
    let elapsed = run_partitioned_round(2, 4);
    let acquisitions = parking_lot::mutex_acquisitions() - before;
    println!(
        "record_path/partitioned: {acquisitions} mutex acquisitions across {} records \
         on 2 partitions x 4 threads in {elapsed:?}",
        2 * 4 * EVENTS_PER_THREAD
    );
    assert_eq!(
        acquisitions, 0,
        "concurrent tenants must not acquire any mutex (cross-partition or otherwise) on the record fast path"
    );
}

/// Two partitions of one arena backing sustain concurrent write load with
/// **zero cross-partition writes**: afterwards each partition holds exactly
/// its own pattern, and wiping one leaves the neighbour byte-identical.
fn verify_partition_arena_isolation(_c: &mut Criterion) {
    use ireplayer_mem::{Arena, MemAddr};

    const PARTITION_SIZE: usize = 64 << 10;
    let mut partitions = Arena::partitioned(PARTITION_SIZE, 2);
    let right = Arc::new(partitions.pop().unwrap());
    let left = Arc::new(partitions.pop().unwrap());
    assert!(left.shares_backing_with(&right));

    let writer = |arena: Arc<Arena>, pattern: u8| {
        std::thread::spawn(move || {
            for round in 0..64usize {
                let addr = MemAddr::new(1 + ((round * 997) % (PARTITION_SIZE - 9)) as u64);
                arena.fill(addr, 8, pattern).unwrap();
                arena.write_u8(addr, pattern).unwrap();
            }
        })
    };
    let handles = [writer(Arc::clone(&left), 0xaa), writer(Arc::clone(&right), 0x55)];
    for handle in handles {
        handle.join().unwrap();
    }
    let foreign = |dump: Vec<u8>, own: u8| dump.into_iter().filter(|b| *b != 0 && *b != own).count();
    assert_eq!(foreign(left.dump(), 0xaa), 0, "left partition holds foreign bytes");
    assert_eq!(foreign(right.dump(), 0x55), 0, "right partition holds foreign bytes");

    // Releasing one tenant (the per-session reset wipes its partition)
    // leaves the neighbour byte-identical.
    let right_image = right.dump();
    left.wipe(PARTITION_SIZE);
    assert!(
        left.dump().iter().all(|b| *b == 0),
        "the wipe must clear the whole partition"
    );
    assert_eq!(
        right.dump(),
        right_image,
        "a neighbour's wipe leaked into this partition"
    );
    println!("record_path/partition-isolation: zero cross-partition writes across concurrent load");
}

/// One recorded epoch serializes at least **4x smaller** under the
/// delta/varint order-log compression (trace format version 3) than under
/// the fixed-width packed-word framing it replaced (version 2), measured on
/// the same workload shape the throughput benches record: 8 threads,
/// [`EVENTS_PER_THREAD`] events each, every [`CONTENDED_STRIDE`]-th event
/// on the shared variable.  Both byte counts and the ratio are published as
/// `log_bytes_per_epoch/*` metrics in the JSON summary so CI's bench-smoke
/// job can fail on a regression.
fn verify_log_compression(_c: &mut Criterion) {
    let threads = 8;
    let lists = LockFreeLists::new(threads);
    for t in 0..threads {
        for i in 0..EVENTS_PER_THREAD {
            lists.record(t, i);
        }
    }

    // The version-2 framing: per list, a u32 count followed by fixed-width
    // packed words per entry (exactly what `put_epoch` wrote before the
    // compressed framing landed).
    let mut packed = 0usize;
    let mut compressed = 0usize;
    for list in &lists.threads {
        let mut legacy = Vec::new();
        let events = list.snapshot();
        wire::put_u32(&mut legacy, events.len() as u32);
        for event in &events {
            wire::put_event(&mut legacy, event).expect("bench events fit the wire format");
        }
        packed += legacy.len();
        compressed += list.compressed_log().len();
    }
    for var in &lists.vars {
        let mut legacy = Vec::new();
        let entries = var.entries();
        wire::put_u32(&mut legacy, entries.len() as u32);
        for entry in &entries {
            wire::put_var_entry(&mut legacy, entry);
        }
        packed += legacy.len();
        compressed += var.compressed_entries().len();
    }

    let ratio = packed as f64 / compressed as f64;
    println!(
        "record_path/log-compression: {packed} packed bytes -> {compressed} compressed bytes \
         per epoch ({ratio:.2}x) across {threads} threads x {EVENTS_PER_THREAD} events"
    );
    criterion::record_metric("log_bytes_per_epoch/packed", packed as f64);
    criterion::record_metric("log_bytes_per_epoch/compressed", compressed as f64);
    criterion::record_metric("log_bytes_per_epoch/ratio", ratio);
    assert!(
        ratio >= 4.0,
        "compressed epoch logs must be >= 4x smaller than the packed framing, measured {ratio:.2}x"
    );
}

/// Supervisor wake-ups (`world_version` pokes) are batched at step and
/// epoch boundaries.  A thread recording past its list capacity used to
/// re-request the epoch end -- an epoch-mutex acquisition plus a world poke
/// -- on *every* event until its step boundary; now only the first request
/// per epoch pays for the wake-up.  This drives the real runtime with a
/// tiny per-thread log and steps that record far past capacity, then
/// asserts the poke count stays a small fraction of the event count (the
/// per-event scheme poked on the majority of events in this shape).
fn verify_poke_batching(_c: &mut Criterion) {
    use ireplayer::{Config, MutexHandle, Program, Runtime, Step};

    const STEPS: u64 = 40;
    const LOCKS_PER_STEP: u64 = 256;
    // The log holds well under one step's events, so most of each step
    // records past capacity -- the worst case for per-event poking.
    const EVENTS_PER_THREAD: usize = 64;

    let config = Config::builder()
        .arena_size(4 << 20)
        .heap_block_size(128 << 10)
        .events_per_thread(EVENTS_PER_THREAD)
        .build()
        .expect("bench config");
    let runtime = Runtime::new(config).expect("bench runtime");
    let report = runtime
        .run(Program::new("poke-batching", {
            let mut lock: Option<MutexHandle> = None;
            let mut steps = 0u64;
            move |ctx| {
                let lock = *lock.get_or_insert_with(|| ctx.mutex());
                for _ in 0..LOCKS_PER_STEP {
                    ctx.lock(lock);
                    ctx.unlock(lock);
                }
                steps += 1;
                if steps >= STEPS {
                    Step::Done
                } else {
                    Step::Yield
                }
            }
        }))
        .expect("poke-batching run");
    assert!(report.outcome.is_success());
    let pokes = runtime.diagnostics().world_pokes;
    let events = report.sync_events;
    println!(
        "record_path/poke-batching: {pokes} world pokes across {events} recorded events \
         ({} epochs); per-event poking would have paid on most past-capacity events",
        report.epochs
    );
    assert!(events >= STEPS * LOCKS_PER_STEP, "the workload must record its locks");
    assert!(
        pokes * 4 <= events,
        "world pokes must stay a small fraction of recorded events \
         (measured {pokes} pokes for {events} events)"
    );
}

criterion_group!(
    benches,
    bench_record_path,
    verify_lock_free_fast_path,
    verify_speedup,
    verify_partitioned_fast_path,
    verify_partition_arena_isolation,
    verify_log_compression,
    verify_poke_batching
);

/// Emits the machine-readable summary CI uploads as an artifact.
fn emit_summary() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_record_path.json");
    criterion::write_summary_json(path, "record_path").expect("write bench summary");
    println!("summary written to {path}");
}

criterion_main!(benches, emit_summary);
