//! `scheduler`: admission throughput of the overcommit scheduler.
//!
//! The admission queue turns "launch refused, caller retries" into "launch
//! queued, freed partition picks it up".  This bench times the end-to-end
//! cost of that path -- 4N short sessions pushed through an N-partition
//! runtime in one burst -- against the same total work submitted one
//! session at a time (the no-contention floor), at 1, 2 and 4 partitions.
//!
//! Besides the criterion timings, the bench *verifies* two properties and
//! panics if they regress:
//!
//! * **no refusal under overcommit**: a burst of 4N launches on N
//!   partitions is fully admitted through the default queue -- zero
//!   `SessionActive` errors, every session completes, and the queue
//!   drains back to depth 0;
//! * **solo-identical reports**: every overcommitted session's
//!   fingerprint equals the fingerprint of the same program run alone on
//!   a fresh runtime (queued admission perturbs nothing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ireplayer::{Config, Program, Runtime, Step};

/// Sessions pushed through the runtime per measured round, per partition.
const OVERCOMMIT_FACTOR: usize = 4;

/// A small deterministic session: enough recorded work (locked counter,
/// one allocation) that admission cost does not dominate the measurement
/// into noise, small enough that a round stays in the milliseconds.
fn short_program(name: &str) -> Program {
    Program::new(name, |ctx| {
        let total = ctx.global("total", 8);
        let lock = ctx.mutex();
        let scratch = ctx.alloc(128);
        ctx.write_u64(scratch, 41);
        let contribution = ctx.read_u64(scratch);
        ctx.lock(lock);
        let value = ctx.read_u64(total);
        ctx.write_u64(total, value + contribution + 1);
        ctx.unlock(lock);
        ctx.free(scratch);
        Step::Done
    })
}

fn runtime(partitions: usize) -> Runtime {
    let config = Config::builder()
        .partitions(partitions)
        .arena_size(2 << 20)
        .heap_block_size(64 << 10)
        .admission_queue_depth(256)
        .build()
        .expect("bench configuration");
    Runtime::new(config).expect("bench runtime")
}

/// One overcommit round: burst-launch every session, then wait for all.
fn overcommit_round(runtime: &Runtime, sessions: usize) {
    let handles: Vec<_> = (0..sessions)
        .map(|i| {
            runtime
                .launch(short_program(&format!("burst-{i}")))
                .expect("overcommitted launches must queue, not fail")
        })
        .collect();
    for handle in handles {
        let report = handle.wait().expect("queued session completes");
        assert!(report.outcome.is_success(), "faults: {:?}", report.faults);
    }
}

/// The no-contention floor: the same number of sessions, one at a time.
fn sequential_round(runtime: &Runtime, sessions: usize) {
    for i in 0..sessions {
        let report = runtime
            .run(short_program(&format!("burst-{i}")))
            .expect("sequential session completes");
        assert!(report.outcome.is_success());
    }
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler");
    group.sample_size(10);
    for partitions in [1usize, 2, 4] {
        let sessions = partitions * OVERCOMMIT_FACTOR;
        let rt = runtime(partitions);
        group.bench_function(BenchmarkId::new("overcommit-burst", partitions), |b| {
            b.iter(|| overcommit_round(&rt, sessions));
        });
        let rt = runtime(partitions);
        group.bench_function(BenchmarkId::new("sequential-floor", partitions), |b| {
            b.iter(|| sequential_round(&rt, sessions));
        });
    }
    group.finish();
}

/// A 4N-on-N burst is admitted without a single refusal and the queue
/// drains to zero.
fn verify_overcommit_admission(_c: &mut Criterion) {
    let partitions = 2;
    let sessions = partitions * OVERCOMMIT_FACTOR;
    let rt = runtime(partitions);
    overcommit_round(&rt, sessions);
    let diagnostics = rt.diagnostics();
    println!(
        "scheduler/overcommit: {sessions} launches on {partitions} partitions, \
         {} queued along the way, queue depth now {}",
        diagnostics.launches_queued, diagnostics.admission_queue_depth
    );
    assert_eq!(
        diagnostics.launches_admitted, sessions as u64,
        "every overcommitted launch must be admitted"
    );
    assert_eq!(diagnostics.admission_queue_depth, 0, "the queue must drain");
    // On a loaded runner an early session can finish mid-burst and hand a
    // later launch a free partition directly, so only *some* launches are
    // guaranteed to queue -- not all `sessions - partitions` of them.
    assert!(
        diagnostics.launches_queued >= 1,
        "the burst must exercise the queue at least once \
         (queued {} of {sessions} launches)",
        diagnostics.launches_queued
    );
}

/// Queued admission perturbs nothing: every overcommitted session's
/// report fingerprint equals a solo run's.
fn verify_overcommit_identity(_c: &mut Criterion) {
    let solo = runtime(1).run(short_program("identity")).expect("solo baseline");
    assert!(solo.outcome.is_success());

    let rt = runtime(2);
    let handles: Vec<_> = (0..2 * OVERCOMMIT_FACTOR)
        .map(|_| rt.launch(short_program("identity")).expect("launch queues"))
        .collect();
    for handle in handles {
        let report = handle.wait().expect("queued session completes");
        assert_eq!(
            report.fingerprint(),
            solo.fingerprint(),
            "queued admission must not perturb a session"
        );
    }
    println!(
        "scheduler/identity: {} overcommitted sessions matched the solo fingerprint",
        2 * OVERCOMMIT_FACTOR
    );
}

criterion_group!(
    benches,
    bench_scheduler,
    verify_overcommit_admission,
    verify_overcommit_identity
);

/// Emits the machine-readable summary CI uploads as an artifact.
fn emit_summary() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scheduler.json");
    criterion::write_summary_json(path, "scheduler").expect("write bench summary");
    println!("summary written to {path}");
}

criterion_main!(benches, emit_summary);
