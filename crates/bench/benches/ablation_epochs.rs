//! Ablation of the epoch length (paper §2.1 and §2.2.3).
//!
//! Epochs close when an irrevocable system call arrives or when the
//! per-thread event budget is exhausted ("users may use the size of logging
//! as the criteria").  Each epoch boundary pays for a stop-the-world,
//! a memory checkpoint, and log housekeeping, so shorter epochs trade
//! memory for overhead -- the reason the paper eliminates irrevocable
//! classifications wherever possible.  This bench runs the same lock- and
//! allocation-heavy program under iReplayer with decreasing per-thread
//! event budgets and measures the slowdown.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ireplayer::{Config, Program, Runtime, Step};

fn run_with_event_budget(events_per_thread: usize) {
    let config = Config::builder()
        .arena_size(16 << 20)
        .heap_block_size(256 << 10)
        .events_per_thread(events_per_thread)
        .build()
        .unwrap();
    let runtime = Runtime::new(config).unwrap();
    let report = runtime
        .run(Program::new("epoch-ablation", |ctx| {
            let lock = ctx.mutex();
            let cell = ctx.global("counter", 8);
            for round in 0..1_500u64 {
                ctx.lock(lock);
                let value = ctx.read_u64(cell);
                ctx.write_u64(cell, value + round);
                ctx.unlock(lock);
                if round % 16 == 0 {
                    let scratch = ctx.alloc(64);
                    ctx.write_u64(scratch, round);
                    ctx.free(scratch);
                }
            }
            Step::Done
        }))
        .unwrap();
    assert!(report.outcome.is_success());
}

fn epoch_length_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("epoch_length");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    // 65_536 is the default (epochs close only at program end here); 512
    // forces frequent checkpoints, the regime the paper avoids by deferring
    // and reclassifying system calls.
    for budget in [65_536usize, 4_096, 512] {
        group.bench_function(BenchmarkId::from_parameter(budget), |b| {
            b.iter(|| run_with_event_budget(budget))
        });
    }
    group.finish();
}

criterion_group!(benches, epoch_length_ablation);
criterion_main!(benches);
