//! `chaos_hunt`: explorer smoke sweep over the flaky-ledger workload.
//!
//! The chaos explorer is only useful if a bounded sweep reliably surfaces
//! the bug it was built to catch.  This bench times the two halves of a
//! hunt -- the seed sweep and the delta-debugging shrink -- and then
//! *verifies* the end-to-end pipeline, panicking if it regresses:
//!
//! * **the planted bug is found**: a 16-seed heavy sweep over
//!   [`Ledger`](ireplayer_workloads::Ledger) must surface at least one
//!   failure whose fingerprint matches the static ledger audit;
//! * **minimization bites**: the surviving plan must be a verified subset
//!   of the original with at least a 4x weight reduction, and re-probing
//!   it must reproduce the identical failure fingerprint.
//!
//! The summary lands in `BENCH_chaos_hunt.json` with the sweep size,
//! failures found, probe-run count, and the per-mille shrink ratio.

use criterion::{criterion_group, criterion_main, Criterion};
use ireplayer::{ChaosExplorer, ChaosProfile, Config, FaultKind, OutcomeClass, Runtime};
use ireplayer_workloads::{Ledger, Workload, WorkloadSpec, LEDGER_AUDIT};

/// Seeds per smoke sweep: enough that the heavy profile reliably lands a
/// reset between a send and its acknowledgement, small enough that the
/// bench stays well inside the CI smoke budget.
const SEED_BUDGET: u64 = 16;

fn runtime(partitions: usize) -> Runtime {
    let config = Config::builder()
        .partitions(partitions)
        .arena_size(16 << 20)
        .heap_block_size(256 << 10)
        .quiescence_timeout_ms(20_000)
        .build()
        .expect("bench configuration");
    Runtime::new(config).expect("bench runtime")
}

fn ledger_subject() -> ireplayer::ExploreSubject {
    let spec = WorkloadSpec::tiny();
    ireplayer::ExploreSubject::new("flaky-ledger", move || Ledger.program(&spec)).with_stage(Ledger::stage_os)
}

fn seeds() -> Vec<u64> {
    (0..SEED_BUDGET).collect()
}

/// True when an outcome is the planted ledger bug (and not some
/// artifact of the injection itself).
fn is_planted_bug(outcome: &OutcomeClass) -> bool {
    matches!(
        outcome,
        OutcomeClass::Faulted(FaultKind::AssertionFailure { message }) if message == LEDGER_AUDIT
    )
}

fn bench_chaos_hunt(c: &mut Criterion) {
    let mut group = c.benchmark_group("chaos_hunt");
    group.sample_size(10);

    // The sweep alone: compile + probe SEED_BUDGET plans through the
    // admission scheduler on two partitions.
    let rt = runtime(2);
    let explorer = ChaosExplorer::new(&rt, ledger_subject());
    group.bench_function("sweep-16-seeds", |b| {
        b.iter(|| {
            let outcomes = explorer
                .sweep(&seeds(), ChaosProfile::heavy())
                .expect("sweep completes");
            assert_eq!(outcomes.len(), SEED_BUDGET as usize);
        });
    });

    // The shrink alone: minimize one failing plan down to its kernel.
    let rt = runtime(1);
    let explorer = ChaosExplorer::new(&rt, ledger_subject());
    let outcomes = explorer
        .sweep(&seeds(), ChaosProfile::heavy())
        .expect("sweep completes");
    let failing = outcomes
        .iter()
        .find(|o| o.outcome.is_failure())
        .expect("a heavy sweep surfaces the planted bug")
        .plan
        .clone();
    group.bench_function("minimize-one-find", |b| {
        b.iter(|| {
            let find = explorer.minimize(&failing).expect("minimization completes");
            assert!(find.minimized.weight() < find.original.weight());
        });
    });
    group.finish();
}

/// The end-to-end smoke hunt: the planted bug must be found, minimized to
/// a verified subset with a real weight reduction, and reproducible.
fn verify_planted_bug_is_found(_c: &mut Criterion) {
    let rt = runtime(2);
    let explorer = ChaosExplorer::new(&rt, ledger_subject());
    let report = explorer.hunt(&seeds(), ChaosProfile::heavy()).expect("hunt completes");

    println!(
        "chaos_hunt/smoke: {} plans swept, {} failed, {} distinct fingerprint(s), {} probe runs",
        report.outcomes.len(),
        report.failures(),
        report.finds.len(),
        report.trials
    );
    assert!(
        report.failures() >= 1,
        "a {SEED_BUDGET}-seed heavy sweep must surface the planted ledger bug"
    );
    let find = report
        .finds
        .iter()
        .find(|f| is_planted_bug(&f.outcome))
        .expect("one find must carry the planted ledger-audit failure");
    assert!(find.is_subset(), "the minimized plan must be a subset of the original");
    assert!(
        find.shrink_ratio() >= 4.0,
        "minimization must shrink the plan at least 4x (got {:.1}x)",
        find.shrink_ratio()
    );
    let reproduced = explorer.probe(&find.minimized).expect("re-probe completes");
    assert_eq!(
        reproduced.fingerprint(),
        Some(find.fingerprint),
        "the minimized plan must reproduce the identical failure fingerprint"
    );
    println!(
        "chaos_hunt/smoke: minimized {} -> {} ({:.0}x) in {} trials",
        find.original.weight(),
        find.minimized.weight(),
        find.shrink_ratio(),
        find.trials
    );

    criterion::record_metric("chaos_hunt/plans_swept", report.outcomes.len() as f64);
    criterion::record_metric("chaos_hunt/failures_found", report.failures() as f64);
    criterion::record_metric("chaos_hunt/probe_runs", report.trials as f64);
    criterion::record_metric("chaos_hunt/mean_shrink_ratio", report.mean_shrink_ratio());
}

criterion_group!(benches, bench_chaos_hunt, verify_planted_bug_is_found);

/// Emits the machine-readable summary CI uploads as an artifact.
fn emit_summary() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chaos_hunt.json");
    criterion::write_summary_json(path, "chaos_hunt").expect("write bench summary");
    println!("summary written to {path}");
}

criterion_main!(benches, emit_summary);
