//! Ablation of the synchronization-variable lookup strategy (paper §3.2).
//!
//! iReplayer finds the per-variable list of a synchronization object
//! through a shadow object whose pointer is stored in the object itself
//! ("a level of indirection", as in SyncPerf).  The rejected alternative is
//! a global hash table keyed by the object's address, which the paper
//! measured at up to 4x overhead on applications with very many
//! synchronization variables (fluidanimate).  This bench sweeps the number
//! of variables and measures the cost of recording one lock acquisition
//! under each strategy.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ireplayer_log::{HashDirectory, ShadowDirectory, SyncAddr, SyncOp, SyncVarDirectory, ThreadId};

fn record_all(directory: &dyn SyncVarDirectory, variables: u64, operations: u64) {
    for round in 0..operations {
        let addr = SyncAddr(round % variables);
        directory
            .record(addr, ThreadId((round % 4) as u32), SyncOp::MutexLock, round as u32)
            .expect("bench variables are registered up front");
    }
}

fn lookup_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync_var_lookup");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let operations = 50_000u64;
    // fluidanimate allocates one lock per grid cell: hundreds of thousands
    // of synchronization variables.  The small counts model ordinary
    // applications where both strategies are equivalent.
    for variables in [16u64, 1_024, 65_536] {
        let shadow = ShadowDirectory::new();
        for i in 0..variables {
            shadow.register(SyncAddr(i));
        }
        group.bench_function(BenchmarkId::new("shadow-indirection", variables), |b| {
            b.iter(|| record_all(&shadow, variables, operations))
        });

        let hashed = HashDirectory::with_buckets(64);
        for i in 0..variables {
            hashed.register(SyncAddr(i));
        }
        group.bench_function(BenchmarkId::new("global-hash-table", variables), |b| {
            b.iter(|| record_all(&hashed, variables, operations))
        });
    }
    group.finish();
}

criterion_group!(benches, lookup_ablation);
criterion_main!(benches);
