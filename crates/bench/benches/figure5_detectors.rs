//! Criterion version of the Figure 5 measurement on reduced inputs: the
//! overhead of the detection tools versus the AddressSanitizer-style
//! checker on three representative workloads.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ireplayer_baselines::SystemUnderTest;
use ireplayer_bench::run_once;
use ireplayer_workloads::{workload_by_name, WorkloadSpec};

fn figure5(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure5");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let spec = WorkloadSpec::tiny();
    for workload_name in ["streamcluster", "memcached", "pbzip2"] {
        for system in SystemUnderTest::figure5() {
            let id = BenchmarkId::new(workload_name, system.label());
            group.bench_function(id, |b| {
                b.iter(|| {
                    let workload = workload_by_name(workload_name).unwrap();
                    run_once(system, workload.as_ref(), &spec)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, figure5);
criterion_main!(benches);
