//! Benchmark harness reproducing the evaluation of the iReplayer paper.
//!
//! Every table and figure of §5 has a corresponding harness function here
//! and a binary under `src/bin/` that prints the same rows the paper
//! reports:
//!
//! | experiment | function | binary |
//! |---|---|---|
//! | Table 1 (memory difference between original and re-execution) | [`run_table1`] | `table1_memdiff` |
//! | Table 2 (replays needed to reproduce Crasher's race) | [`run_table2`] | `table2_crasher` |
//! | Table 3 (recording overhead vs. CLAP and rr) | [`run_table3`] | `table3_overhead` |
//! | Figure 5 (detection tools vs. AddressSanitizer) | [`run_figure5`] | `figure5_detectors` |
//!
//! Criterion benches under `benches/` exercise the same configurations on
//! smaller inputs for regression tracking.  Absolute numbers differ from
//! the paper (the substrate is a simulator and this machine is not the
//! authors' 16-core Xeon); EXPERIMENTS.md records both and discusses the
//! preserved shape.

pub mod effectiveness;

pub use effectiveness::{render_effectiveness, run_detection_effectiveness, run_known_bug, EffectivenessRow};

use std::sync::Arc;
use std::time::{Duration, Instant};

use ireplayer::{Config, ConfigBuilder, RunReport, Runtime};
use ireplayer_baselines::{BenchConfig, SystemUnderTest};
use ireplayer_detect::{OverflowDetector, UseAfterFreeDetector};
use ireplayer_workloads::{all_workloads, Crasher, Workload, WorkloadSpec};

/// Sizing shared by all measurements.
pub fn base_config() -> ConfigBuilder {
    Config::builder()
        .arena_size(96 << 20)
        .heap_block_size(1 << 20)
        .quiescence_timeout_ms(60_000)
        .max_replay_attempts(16)
        // Image validation copies the whole heap; the overhead runs disable
        // it to keep the recording-phase measurement clean.
        .validate_replay_image(true)
}

/// Runs one workload once under one system and returns the wall time and
/// the run report.
///
/// # Panics
///
/// Panics if the configuration is invalid or the workload faults
/// unexpectedly (faults are expected only when an overflow is implanted).
pub fn run_once(system: SystemUnderTest, workload: &dyn Workload, spec: &WorkloadSpec) -> (Duration, RunReport) {
    let bench = BenchConfig::assemble(system, base_config()).expect("valid configuration");
    let runtime = bench.runtime().expect("runtime creation");
    if bench.attach_detectors {
        runtime.add_hook(OverflowDetector::new());
        runtime.add_hook(UseAfterFreeDetector::new());
    }
    workload.stage(&runtime, spec);
    let program = workload.program(spec);
    let start = Instant::now();
    let report = runtime.run(program).expect("workload run");
    let elapsed = start.elapsed();
    assert!(
        report.outcome.is_success() || spec.implant_overflow,
        "{} faulted under {}: {:?}",
        workload.name(),
        system.label(),
        report.faults
    );
    (elapsed, report)
}

/// One row of Table 1: the percentage of heap bytes that differ between the
/// original execution and the re-execution, for the default allocator
/// ("Orig") and for iReplayer ("IR").
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Workload name.
    pub workload: String,
    /// Memory difference (percent) with the scheduling-dependent global-lock
    /// allocator.
    pub orig_percent: f64,
    /// Memory difference (percent) with iReplayer's deterministic heap and
    /// recorded schedule.
    pub ireplayer_percent: f64,
    /// Replay attempts needed by the iReplayer run.
    pub attempts: u32,
}

fn memdiff_run(workload: &dyn Workload, deterministic: bool, spec: &WorkloadSpec) -> (f64, u32) {
    let allocator = if deterministic {
        ireplayer::AllocatorMode::PerThread
    } else {
        ireplayer::AllocatorMode::GlobalLock
    };
    let config = base_config()
        .allocator(allocator)
        .canaries(true)
        .build()
        .expect("valid configuration");
    let runtime = Runtime::new(config).expect("runtime");
    let detector = OverflowDetector::new();
    runtime.add_hook(detector.clone());
    workload.stage(&runtime, spec);
    let report = runtime
        .run(workload.program(&spec.with_overflow()))
        .expect("workload run");
    match report.replay_validations.first() {
        Some(validation) => (
            validation.image_diff.map(|d| d.percent()).unwrap_or(100.0),
            validation.attempts,
        ),
        None => (0.0, 0),
    }
}

/// Reproduces Table 1: every workload runs with an implanted end-of-main
/// overflow, the overflow detector forces a rollback, and the heap image at
/// the end of the replay is diffed against the original epoch-end image.
pub fn run_table1(spec: &WorkloadSpec) -> Vec<Table1Row> {
    all_workloads()
        .iter()
        .map(|workload| {
            let (orig_percent, _) = memdiff_run(workload.as_ref(), false, spec);
            let (ireplayer_percent, attempts) = memdiff_run(workload.as_ref(), true, spec);
            Table1Row {
                workload: workload.name().to_owned(),
                orig_percent,
                ireplayer_percent,
                attempts,
            }
        })
        .collect()
}

/// The distribution of replay attempts needed to reproduce Crasher's race
/// (Table 2).
#[derive(Debug, Clone, Default)]
pub struct Table2Result {
    /// Runs in which the race manifested (the program crashed).
    pub crashed_runs: u64,
    /// Total runs.
    pub total_runs: u64,
    /// Crashed runs reproduced on the first replay.
    pub one_replay: u64,
    /// Crashed runs needing two replays.
    pub two_replays: u64,
    /// Crashed runs needing three replays.
    pub three_replays: u64,
    /// Crashed runs needing four or more replays (or never reproduced).
    pub four_or_more: u64,
}

impl Table2Result {
    /// Percentage helper.
    pub fn percent(&self, count: u64) -> f64 {
        if self.crashed_runs == 0 {
            0.0
        } else {
            100.0 * count as f64 / self.crashed_runs as f64
        }
    }
}

/// Reproduces Table 2: run Crasher `trials` times; for every run that
/// crashes, count how many replay attempts the diagnostic rollback needed to
/// reproduce the crash.
pub fn run_table2(trials: u64) -> Table2Result {
    let crasher = Crasher::table2();
    let spec = WorkloadSpec::tiny();
    let mut result = Table2Result {
        total_runs: trials,
        ..Table2Result::default()
    };
    for _ in 0..trials {
        let config = base_config()
            .max_replay_attempts(16)
            .build()
            .expect("valid configuration");
        let runtime = Runtime::new(config).expect("runtime");
        crasher.stage(&runtime, &spec);
        let report = runtime.run(crasher.program(&spec)).expect("crasher run");
        if report.outcome.is_success() {
            continue;
        }
        result.crashed_runs += 1;
        let attempts = report
            .replay_validations
            .first()
            .map(|v| if v.matched { v.attempts } else { u32::MAX })
            .unwrap_or(u32::MAX);
        match attempts {
            1 => result.one_replay += 1,
            2 => result.two_replays += 1,
            3 => result.three_replays += 1,
            _ => result.four_or_more += 1,
        }
    }
    result
}

/// One workload row of Table 3 or Figure 5: wall time per system, and the
/// same normalized to the baseline.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Workload name.
    pub workload: String,
    /// `(system, wall time, normalized runtime)` per measured system.
    pub entries: Vec<(SystemUnderTest, Duration, f64)>,
}

/// Measures the recording-phase overhead of the given systems over the
/// given workloads (Table 3 uses [`SystemUnderTest::table3`], Figure 5 uses
/// [`SystemUnderTest::figure5`]).
pub fn run_overhead(
    systems: &[SystemUnderTest],
    spec: &WorkloadSpec,
    workloads: &[Box<dyn Workload>],
) -> Vec<OverheadRow> {
    workloads
        .iter()
        .map(|workload| {
            let mut entries = Vec::new();
            let mut baseline = None;
            for system in systems {
                let (elapsed, _report) = run_once(*system, workload.as_ref(), spec);
                if *system == SystemUnderTest::Baseline {
                    baseline = Some(elapsed);
                }
                entries.push((*system, elapsed, 0.0));
            }
            let baseline = baseline.unwrap_or_else(|| entries[0].1);
            for entry in &mut entries {
                entry.2 = entry.1.as_secs_f64() / baseline.as_secs_f64().max(1e-9);
            }
            OverheadRow {
                workload: workload.name().to_owned(),
                entries,
            }
        })
        .collect()
}

/// Reproduces Table 3 over all fifteen workloads.
pub fn run_table3(spec: &WorkloadSpec) -> Vec<OverheadRow> {
    run_overhead(&SystemUnderTest::table3(), spec, &all_workloads())
}

/// Reproduces Figure 5 over all fifteen workloads.
pub fn run_figure5(spec: &WorkloadSpec) -> Vec<OverheadRow> {
    run_overhead(&SystemUnderTest::figure5(), spec, &all_workloads())
}

/// Renders overhead rows as the normalized-runtime table the paper prints,
/// with a geometric-mean-free "average" row matching the paper's arithmetic
/// mean.
pub fn render_overhead(rows: &[OverheadRow], skip_baseline_column: bool) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let systems: Vec<SystemUnderTest> = rows
        .first()
        .map(|row| row.entries.iter().map(|(s, _, _)| *s).collect())
        .unwrap_or_default();
    write!(out, "{:<16}", "application").unwrap();
    for system in &systems {
        if skip_baseline_column && *system == SystemUnderTest::Baseline {
            continue;
        }
        write!(out, "{:>18}", system.label()).unwrap();
    }
    writeln!(out).unwrap();
    let mut sums = vec![0.0f64; systems.len()];
    for row in rows {
        write!(out, "{:<16}", row.workload).unwrap();
        for (index, (system, _elapsed, normalized)) in row.entries.iter().enumerate() {
            sums[index] += normalized;
            if skip_baseline_column && *system == SystemUnderTest::Baseline {
                continue;
            }
            write!(out, "{normalized:>18.3}").unwrap();
        }
        writeln!(out).unwrap();
    }
    write!(out, "{:<16}", "average").unwrap();
    for (index, system) in systems.iter().enumerate() {
        if skip_baseline_column && *system == SystemUnderTest::Baseline {
            continue;
        }
        write!(out, "{:>18.3}", sums[index] / rows.len().max(1) as f64).unwrap();
    }
    writeln!(out).unwrap();
    out
}

/// Renders Table 1.
pub fn render_table1(rows: &[Table1Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(
        out,
        "{:<16}{:>12}{:>12}{:>12}",
        "application", "Orig (%)", "IR (%)", "IR replays"
    )
    .unwrap();
    for row in rows {
        writeln!(
            out,
            "{:<16}{:>12.3}{:>12.3}{:>12}",
            row.workload, row.orig_percent, row.ireplayer_percent, row.attempts
        )
        .unwrap();
    }
    out
}

/// Renders Table 2.
pub fn render_table2(result: &Table2Result) -> String {
    format!(
        "crasher: {}/{} runs crashed\n\
         replays needed   1        2        3        >=4\n\
         percentage   {:>7.3}% {:>7.3}% {:>7.3}% {:>7.3}%\n",
        result.crashed_runs,
        result.total_runs,
        result.percent(result.one_replay),
        result.percent(result.two_replays),
        result.percent(result.three_replays),
        result.percent(result.four_or_more),
    )
}

/// Runs one workload under iReplayer and asserts the identical-replay
/// property end to end; used by integration tests.
pub fn assert_identical_replay(workload: &dyn Workload) {
    let spec = WorkloadSpec::tiny();
    let (percent, attempts) = memdiff_run(workload, true, &spec);
    assert_eq!(
        percent,
        0.0,
        "{}: replay image differs from the original",
        workload.name()
    );
    assert!(attempts >= 1);
}

/// Convenience used by the detectors' examples and tests: a runtime with
/// both detectors attached.
pub fn detection_runtime() -> (Runtime, Arc<OverflowDetector>, Arc<UseAfterFreeDetector>) {
    let config = ireplayer_detect::detection_config()
        .arena_size(32 << 20)
        .heap_block_size(512 << 10)
        .build()
        .expect("valid configuration");
    let runtime = Runtime::new(config).expect("runtime");
    let overflow = OverflowDetector::new();
    let uaf = UseAfterFreeDetector::new();
    runtime.add_hook(overflow.clone());
    runtime.add_hook(uaf.clone());
    (runtime, overflow, uaf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ireplayer_workloads::workload_by_name;

    #[test]
    fn overhead_rows_are_normalized_to_the_baseline() {
        let workloads = vec![workload_by_name("swaptions").unwrap()];
        let rows = run_overhead(
            &[SystemUnderTest::Baseline, SystemUnderTest::IReplayer],
            &WorkloadSpec::tiny(),
            &workloads,
        );
        assert_eq!(rows.len(), 1);
        let baseline = &rows[0].entries[0];
        assert_eq!(baseline.0, SystemUnderTest::Baseline);
        assert!((baseline.2 - 1.0).abs() < 1e-9);
        let rendered = render_overhead(&rows, true);
        assert!(rendered.contains("swaptions"));
        assert!(rendered.contains("average"));
    }

    #[test]
    fn table1_row_for_one_workload_shows_identical_ir_replay() {
        let workload = workload_by_name("pfscan").unwrap();
        let (ir_percent, attempts) = memdiff_run(workload.as_ref(), true, &WorkloadSpec::tiny());
        assert_eq!(ir_percent, 0.0);
        assert!(attempts >= 1);
    }

    #[test]
    fn table2_buckets_add_up() {
        let result = run_table2(3);
        assert_eq!(result.total_runs, 3);
        assert_eq!(
            result.one_replay + result.two_replays + result.three_replays + result.four_or_more,
            result.crashed_runs
        );
        assert!(!render_table2(&result).is_empty());
    }

    #[test]
    fn render_table1_includes_every_workload_passed() {
        let rows = vec![Table1Row {
            workload: "demo".into(),
            orig_percent: 1.5,
            ireplayer_percent: 0.0,
            attempts: 1,
        }];
        let rendered = render_table1(&rows);
        assert!(rendered.contains("demo"));
        assert!(rendered.contains("0.000"));
    }
}
