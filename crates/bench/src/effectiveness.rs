//! Detection-effectiveness harness (paper §5.4.1).
//!
//! The paper reports that iReplayer's detectors find every known heap
//! overflow and use-after-free collected from prior tools, Bugbench, and
//! Bugzilla, as well as every implanted bug, and that each report names the
//! root cause with the precise faulting statement.  This harness runs every
//! entry of [`ireplayer_workloads::buggy`] under a runtime with both
//! detectors attached and checks both properties: the corruption is
//! detected, and the diagnostic replay pinpoints the faulting write.

use ireplayer_detect::{BugKind, BugReport};
use ireplayer_workloads::{all_known_bugs, ExpectedBug, KnownBug, WorkloadSpec};

use crate::detection_runtime;

/// The outcome of running one known-buggy program under the detectors.
#[derive(Debug, Clone)]
pub struct EffectivenessRow {
    /// Program name (the paper's table label).
    pub program: String,
    /// Provenance of the original bug report.
    pub origin: String,
    /// The bug class the program is known to contain.
    pub expected: ExpectedBug,
    /// Whether a report of the expected class was produced.
    pub detected: bool,
    /// Whether the diagnostic replay identified the faulting write (the
    /// root cause the paper reports "with precise calling contexts").
    pub root_cause_identified: bool,
    /// The first matching report, for display.
    pub report: Option<BugReport>,
}

fn expected_kind(expected: ExpectedBug) -> BugKind {
    match expected {
        ExpectedBug::HeapOverflow => BugKind::HeapOverflow,
        ExpectedBug::UseAfterFree => BugKind::UseAfterFree,
    }
}

/// Runs one known-buggy program under the detection tools and summarizes
/// what was found.
///
/// # Panics
///
/// Panics if the runtime cannot be built or the program aborts for a reason
/// unrelated to its known bug (the known bugs corrupt memory silently; they
/// do not crash).
pub fn run_known_bug(bug: &dyn KnownBug, spec: &WorkloadSpec) -> EffectivenessRow {
    let (runtime, overflow, uaf) = detection_runtime();
    bug.stage(&runtime, spec);
    let report = runtime.run(bug.program(spec)).expect("known-bug run");
    assert!(
        report.outcome.is_success(),
        "{} aborted unexpectedly: {:?}",
        bug.name(),
        report.faults
    );
    let kind = expected_kind(bug.expected());
    let reports: Vec<BugReport> = match bug.expected() {
        ExpectedBug::HeapOverflow => overflow.reports(),
        ExpectedBug::UseAfterFree => uaf.reports(),
    }
    .into_iter()
    .filter(|r| r.kind == kind)
    .collect();
    let first = reports.first().cloned();
    EffectivenessRow {
        program: bug.name().to_owned(),
        origin: bug.origin().to_owned(),
        expected: bug.expected(),
        detected: !reports.is_empty(),
        root_cause_identified: reports.iter().any(|r| r.culprit.is_some()),
        report: first,
    }
}

/// Reproduces the §5.4.1 experiment over the whole known-bug suite.
pub fn run_detection_effectiveness(spec: &WorkloadSpec) -> Vec<EffectivenessRow> {
    all_known_bugs()
        .iter()
        .map(|bug| run_known_bug(bug.as_ref(), spec))
        .collect()
}

/// Renders the effectiveness rows as the summary table printed by the
/// `detection_effectiveness` binary.
pub fn render_effectiveness(rows: &[EffectivenessRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(
        out,
        "{:<20}{:<16}{:>10}{:>14}",
        "program", "bug class", "detected", "root cause"
    )
    .unwrap();
    for row in rows {
        writeln!(
            out,
            "{:<20}{:<16}{:>10}{:>14}",
            row.program,
            row.expected.to_string(),
            if row.detected { "yes" } else { "NO" },
            if row.root_cause_identified {
                "identified"
            } else {
                "not found"
            }
        )
        .unwrap();
    }
    let detected = rows.iter().filter(|r| r.detected).count();
    let located = rows.iter().filter(|r| r.root_cause_identified).count();
    writeln!(
        out,
        "detected {detected}/{} known bugs, root cause identified for {located}",
        rows.len()
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ireplayer_workloads::known_bug_by_name;

    #[test]
    fn an_overflow_bug_is_detected_and_located() {
        let bug = known_bug_by_name("bc").expect("bc analogue exists");
        let row = run_known_bug(bug.as_ref(), &WorkloadSpec::tiny());
        assert!(row.detected, "bc overflow not detected");
        assert!(row.root_cause_identified, "bc root cause not identified");
        assert_eq!(row.expected, ExpectedBug::HeapOverflow);
    }

    #[test]
    fn a_use_after_free_bug_is_detected() {
        let bug = known_bug_by_name("cache-eviction-uaf").expect("uaf analogue exists");
        let row = run_known_bug(bug.as_ref(), &WorkloadSpec::tiny());
        assert!(row.detected, "use-after-free not detected");
        assert_eq!(row.expected, ExpectedBug::UseAfterFree);
    }

    #[test]
    fn rendering_mentions_every_program() {
        let rows = vec![EffectivenessRow {
            program: "demo".into(),
            origin: "synthetic".into(),
            expected: ExpectedBug::HeapOverflow,
            detected: true,
            root_cause_identified: true,
            report: None,
        }];
        let rendered = render_effectiveness(&rows);
        assert!(rendered.contains("demo"));
        assert!(rendered.contains("detected 1/1"));
    }
}
