//! Reproduces Table 2 of the paper: the number of replays needed to
//! reproduce Crasher's race.
//!
//! Usage: `cargo run --release -p ireplayer-bench --bin table2_crasher [trials]`
//! (default 200 trials; the paper uses 100,000).

use ireplayer_bench::{render_table2, run_table2};

fn main() {
    let trials = std::env::args().nth(1).and_then(|arg| arg.parse().ok()).unwrap_or(200);
    println!("Table 2: reproducing Crasher's race ({trials} trials)\n");
    let result = run_table2(trials);
    println!("{}", render_table2(&result));
}
