//! Runs every experiment of the evaluation in sequence (quick sizes) and
//! prints the paper-style tables.  EXPERIMENTS.md records a captured run.
//!
//! Usage: `cargo run --release -p ireplayer-bench --bin all_experiments`

use ireplayer_bench::{render_overhead, render_table1, render_table2, run_figure5, run_table1, run_table2, run_table3};
use ireplayer_workloads::WorkloadSpec;

fn main() {
    println!("==== Table 1: memory difference between original and re-execution ====\n");
    println!("{}", render_table1(&run_table1(&WorkloadSpec::tiny())));

    println!("==== Table 2: replays needed to reproduce Crasher's race ====\n");
    println!("{}", render_table2(&run_table2(60)));

    println!("==== Table 3: recording overhead ====\n");
    println!("{}", render_overhead(&run_table3(&WorkloadSpec::small()), true));

    println!("==== Figure 5: detection-tool overhead ====\n");
    println!("{}", render_overhead(&run_figure5(&WorkloadSpec::small()), true));
}
