//! Reproduces Table 1 of the paper: the percentage of heap memory that
//! differs between the original execution and the re-execution, for the
//! default (scheduling-dependent) allocator and for iReplayer.
//!
//! Usage: `cargo run --release -p ireplayer-bench --bin table1_memdiff [--bench-size]`

use ireplayer_bench::{render_table1, run_table1};
use ireplayer_workloads::WorkloadSpec;

fn main() {
    let bench = std::env::args().any(|a| a == "--bench-size");
    let spec = if bench {
        WorkloadSpec::small()
    } else {
        WorkloadSpec::tiny()
    };
    println!("Table 1: memory difference between original execution and re-execution");
    println!("(every workload runs with an implanted end-of-main buffer overflow;");
    println!(" the overflow detector forces a rollback and the final images are diffed)\n");
    let rows = run_table1(&spec);
    println!("{}", render_table1(&rows));
    let identical = rows.iter().filter(|r| r.ireplayer_percent == 0.0).count();
    println!(
        "iReplayer reproduced {}/{} applications with a byte-identical heap image.",
        identical,
        rows.len()
    );
}
