//! Reproduces Figure 5 of the paper: normalized runtime of iReplayer, the
//! iReplayer detection tools (overflow + use-after-free), and the
//! AddressSanitizer-style checker.
//!
//! Usage: `cargo run --release -p ireplayer-bench --bin figure5_detectors [--bench-size]`

use ireplayer_bench::{render_overhead, run_figure5};
use ireplayer_workloads::WorkloadSpec;

fn main() {
    let bench = std::env::args().any(|a| a == "--bench-size");
    let spec = if bench {
        WorkloadSpec::bench()
    } else {
        WorkloadSpec::small()
    };
    println!("Figure 5: detection-tool overhead (normalized runtime, baseline = default library)\n");
    let rows = run_figure5(&spec);
    println!("{}", render_overhead(&rows, true));
}
