//! Reproduces Table 3 of the paper: recording-phase runtime of IR-Alloc,
//! iReplayer, CLAP, and rr, normalized to the default library.
//!
//! Usage: `cargo run --release -p ireplayer-bench --bin table3_overhead [--bench-size]`

use ireplayer_bench::{render_overhead, run_table3};
use ireplayer_workloads::WorkloadSpec;

fn main() {
    let bench = std::env::args().any(|a| a == "--bench-size");
    let spec = if bench {
        WorkloadSpec::bench()
    } else {
        WorkloadSpec::small()
    };
    println!("Table 3: recording overhead (normalized runtime, baseline = default library)\n");
    let rows = run_table3(&spec);
    println!("{}", render_overhead(&rows, true));
}
