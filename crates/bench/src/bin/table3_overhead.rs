//! Reproduces Table 3 of the paper: recording-phase runtime of IR-Alloc,
//! iReplayer, CLAP, and rr, normalized to the default library.
//!
//! Usage: `cargo run --release -p ireplayer-bench --bin table3_overhead [--bench-size | --quick]`
//!
//! `--quick` runs a CI smoke subset (tiny inputs, first three workloads) so
//! the driver is exercised end to end on every pull request without paying
//! for the full table.

use ireplayer_baselines::SystemUnderTest;
use ireplayer_bench::{render_overhead, run_overhead, run_table3};
use ireplayer_workloads::{all_workloads, WorkloadSpec};

const USAGE: &str = "usage: table3_overhead [--bench-size | --quick]";

fn main() {
    let mut quick = false;
    let mut bench = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            "--bench-size" => bench = true,
            // An unrecognized flag must not silently fall through to the
            // full (many-minute) run -- a typo'd `--quick` would hang CI.
            other => {
                eprintln!("table3_overhead: unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    if quick && bench {
        eprintln!("table3_overhead: --quick and --bench-size are mutually exclusive\n{USAGE}");
        std::process::exit(2);
    }

    if quick {
        let spec = WorkloadSpec::tiny();
        let workloads = all_workloads();
        let subset = &workloads[..3];
        println!(
            "Table 3 (quick smoke: tiny inputs, {} of {} workloads)\n",
            subset.len(),
            workloads.len()
        );
        let rows = run_overhead(&SystemUnderTest::table3(), &spec, subset);
        println!("{}", render_overhead(&rows, true));
        return;
    }

    let spec = if bench {
        WorkloadSpec::bench()
    } else {
        WorkloadSpec::small()
    };
    println!("Table 3: recording overhead (normalized runtime, baseline = default library)\n");
    let rows = run_table3(&spec);
    println!("{}", render_overhead(&rows, true));
}
