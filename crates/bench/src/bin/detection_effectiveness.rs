//! Reproduces the detection-effectiveness experiment of paper §5.4.1: run
//! every known-buggy application analogue (Bugbench, Bugzilla, TALOS, and
//! implanted bugs) under the overflow and use-after-free detectors, and
//! report whether each bug was detected and whether the diagnostic replay
//! identified its root cause.
//!
//! Usage: `cargo run --release -p ireplayer-bench --bin detection_effectiveness`

use ireplayer_bench::{render_effectiveness, run_detection_effectiveness};
use ireplayer_workloads::WorkloadSpec;

fn main() {
    let spec = WorkloadSpec::small();
    println!("== paper 5.4.1: detection effectiveness ==");
    let rows = run_detection_effectiveness(&spec);
    print!("{}", render_effectiveness(&rows));
    println!();
    for row in &rows {
        if let Some(report) = &row.report {
            println!("--- {} ({}) ---", row.program, row.origin);
            println!("{report}");
            println!();
        }
    }
}
