//! Shrink steps for chaos-plan minimization.
//!
//! The explorer (in `ireplayer-core`) drives a delta-debugging loop over a
//! failing [`ChaosPlan`]: it asks this module for the candidate cuts, runs
//! each candidate, and keeps the first one that still reproduces the
//! failure.  The cuts come in two granularities, coarse first:
//!
//! 1. **Drop a class** ([`ShrinkStep::DropClass`]): disable one fault class
//!    entirely via [`ChaosPlan::without_class`].  One candidate per class
//!    that currently contributes weight.
//! 2. **Halve a schedule** ([`ShrinkStep::KeepFirstHalf`] /
//!    [`ShrinkStep::KeepSecondHalf`]): replace one class's firing slots
//!    with either half via [`ChaosPlan::with_class_slots`].  Two candidates
//!    per class with at least two slots.
//!
//! Every candidate is strictly lighter than its parent
//! ([`ChaosPlan::weight`] decreases) and a slot-subset of it
//! ([`ChaosPlan::is_subset_of`]), so a greedy restart loop over
//! [`shrink_candidates`] terminates and never injects a fault the original
//! plan would not have injected.

use crate::plan::{ChaosPlan, FaultClass};

/// One candidate cut the minimizer can apply to a failing plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShrinkStep {
    /// Disable the class entirely (zero its intensity knob, clear its
    /// schedule).
    DropClass(FaultClass),
    /// Keep only the first half of the class's firing slots.
    KeepFirstHalf(FaultClass),
    /// Keep only the second half of the class's firing slots.
    KeepSecondHalf(FaultClass),
}

impl ShrinkStep {
    /// The fault class this step cuts.
    pub fn class(self) -> FaultClass {
        match self {
            ShrinkStep::DropClass(class) | ShrinkStep::KeepFirstHalf(class) | ShrinkStep::KeepSecondHalf(class) => {
                class
            }
        }
    }
}

impl std::fmt::Display for ShrinkStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShrinkStep::DropClass(class) => write!(f, "drop {class}"),
            ShrinkStep::KeepFirstHalf(class) => write!(f, "keep first half of {class}"),
            ShrinkStep::KeepSecondHalf(class) => write!(f, "keep second half of {class}"),
        }
    }
}

/// Every strictly-smaller one-step cut of `plan`, coarse cuts first.
///
/// The order is the search order: dropping a whole class removes the most
/// weight per re-execution, so those candidates come first (in
/// [`FaultClass::ALL`] order), followed by the per-class halvings.  Classes
/// that contribute no weight produce no candidates, so the list is empty
/// exactly when the plan is quiet.
pub fn shrink_candidates(plan: &ChaosPlan) -> Vec<(ShrinkStep, ChaosPlan)> {
    let mut candidates = Vec::new();
    for class in FaultClass::ALL {
        let slots = plan
            .schedule
            .iter()
            .find(|s| s.class == class)
            .map(|s| s.slots.as_slice())
            .unwrap_or(&[]);
        let contributes = if class == FaultClass::AllocFail {
            plan.profile.alloc_fail_nth > 0
        } else {
            !slots.is_empty()
        };
        if contributes {
            candidates.push((ShrinkStep::DropClass(class), plan.without_class(class)));
        }
    }
    for class in FaultClass::ALL {
        let slots = plan
            .schedule
            .iter()
            .find(|s| s.class == class)
            .map(|s| s.slots.clone())
            .unwrap_or_default();
        if slots.len() < 2 {
            continue;
        }
        let mid = slots.len() / 2;
        candidates.push((
            ShrinkStep::KeepFirstHalf(class),
            plan.with_class_slots(class, slots[..mid].to_vec()),
        ));
        candidates.push((
            ShrinkStep::KeepSecondHalf(class),
            plan.with_class_slots(class, slots[mid..].to_vec()),
        ));
    }
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ChaosProfile;

    #[test]
    fn candidates_are_strictly_smaller_verified_subsets() {
        let plan = ChaosPlan::compile(9, ChaosProfile::heavy());
        let candidates = shrink_candidates(&plan);
        assert!(!candidates.is_empty());
        for (step, candidate) in &candidates {
            assert!(candidate.weight() < plan.weight(), "{step} did not shrink");
            assert!(candidate.is_subset_of(&plan), "{step} is not a subset");
            assert!(candidate.verify().is_ok(), "{step} fails verification");
            assert!(candidate.derived);
        }
    }

    #[test]
    fn quiet_plans_yield_no_candidates() {
        let quiet = ChaosPlan::compile(9, ChaosProfile::quiet());
        assert!(shrink_candidates(&quiet).is_empty());
    }

    #[test]
    fn drop_candidates_cover_every_contributing_class() {
        let plan = ChaosPlan::compile(2, ChaosProfile::heavy());
        let drops: Vec<FaultClass> = shrink_candidates(&plan)
            .into_iter()
            .filter_map(|(step, _)| match step {
                ShrinkStep::DropClass(class) => Some(class),
                _ => None,
            })
            .collect();
        // The heavy profile enables every class, so every class is
        // droppable -- including AllocFail, whose weight is the Nth rule.
        assert_eq!(drops, FaultClass::ALL.to_vec());
    }

    #[test]
    fn halving_stops_at_single_slot_schedules() {
        let plan = ChaosPlan::compile(4, ChaosProfile::heavy());
        let reads = plan
            .schedule
            .iter()
            .find(|s| s.class == FaultClass::ShortRead)
            .unwrap()
            .slots
            .clone();
        let single = plan.with_class_slots(FaultClass::ShortRead, vec![reads[0]]);
        let halves_of_reads = shrink_candidates(&single)
            .into_iter()
            .filter(|(step, _)| {
                matches!(
                    step,
                    ShrinkStep::KeepFirstHalf(FaultClass::ShortRead)
                        | ShrinkStep::KeepSecondHalf(FaultClass::ShortRead)
                )
            })
            .count();
        assert_eq!(halves_of_reads, 0, "a one-slot schedule cannot be halved");
    }
}
