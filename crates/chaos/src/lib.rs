//! Deterministic chaos: seeded fault plans over the simulated OS.
//!
//! rr's chaos mode showed that deliberately perturbing the environment is
//! what surfaces intermittent bugs; its deployability follow-up argued the
//! perturbations must be applied *at the host-call boundary* so recordings
//! stay faithful.  This crate provides that plane for iReplayer:
//!
//! * a [`ChaosProfile`] holds per-class intensity knobs (per-mille rates
//!   plus shape parameters such as the clock-jump magnitude);
//! * [`ChaosPlan::compile`] turns a seed plus a profile into a *concrete
//!   schedule* -- for every fault class, the exact set of operation slots
//!   (indices modulo [`HORIZON`]) at which the fault fires.  The schedule
//!   is a pure function of `(seed, profile)`, so two kernels holding the
//!   same plan inject byte-identical fault streams;
//! * a [`ChaosEngine`] carries the per-kernel runtime state: one operation
//!   counter per fault class (per descriptor or per thread where replay
//!   re-execution demands it), consulted by the simulated OS on every
//!   eligible call.
//!
//! Determinism contract: every decision is a pure function of the plan and
//! of counters that advance exactly once per eligible operation.  Counters
//! consumed by calls that are **re-issued** during an in-situ replay (file
//! reads/writes, allocations) are exposed via [`ChaosRevocableState`] so
//! the runtime can snapshot them at epoch begin and restore them before a
//! rollback -- the re-issued call then sees the same counter value and
//! injects the same outcome.  Counters consumed by **recordable** calls
//! (sockets, opens, mmap, clock) persist across rollbacks, exactly like
//! the kernel tables those calls mutate: replay serves their outcomes from
//! the log and never re-invokes the OS.

mod engine;
mod explore;
mod plan;

pub use engine::{ChaosEngine, ChaosRevocableState, NetFault, SocketFault};
pub use explore::{shrink_candidates, ShrinkStep};
pub use plan::{ChaosPlan, ChaosPlanError, ChaosProfile, ClassSchedule, FaultClass, HORIZON};

/// SplitMix64, the same generator the scripted network peers use; public so
/// workloads can derive deterministic payloads from plan seeds.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
