//! [`ChaosPlan`]: a seed plus a profile, compiled into concrete schedules.

use serde::{Deserialize, Serialize};

use crate::splitmix64;

/// Length of the per-class firing pattern.  Operation counters are reduced
/// modulo this horizon before the schedule lookup, so long runs cycle
/// through the same pattern rather than running out of faults.
pub const HORIZON: u32 = 1024;

/// The nine fault classes the chaos plane can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum FaultClass {
    /// A file `read` returns fewer bytes than requested.
    ShortRead,
    /// A file `write` persists only a prefix of the buffer.
    ShortWrite,
    /// A socket operation fails with `EAGAIN` (`WouldBlock`).
    NetEagain,
    /// A socket operation fails with a connection reset.
    NetReset,
    /// A socket enters a partition window: operations block and readiness
    /// queries hide it until the window drains.
    NetPartition,
    /// `gettimeofday` observes a forward clock jump.
    ClockJump,
    /// `mmap` fails with address-space exhaustion.
    MmapExhausted,
    /// A descriptor-producing call (`open`, `dup`, `connect`, `accept`)
    /// fails with `EMFILE` (`TooManyFiles`).
    FdPressure,
    /// A thread's Nth managed allocation fails.
    AllocFail,
}

impl FaultClass {
    /// Every class, in schedule order.
    pub const ALL: [FaultClass; 9] = [
        FaultClass::ShortRead,
        FaultClass::ShortWrite,
        FaultClass::NetEagain,
        FaultClass::NetReset,
        FaultClass::NetPartition,
        FaultClass::ClockJump,
        FaultClass::MmapExhausted,
        FaultClass::FdPressure,
        FaultClass::AllocFail,
    ];

    /// Stable numeric code, used in digests and diagnostics.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Stable kebab-case name, used in diagnostics and error messages.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::ShortRead => "short-read",
            FaultClass::ShortWrite => "short-write",
            FaultClass::NetEagain => "net-eagain",
            FaultClass::NetReset => "net-reset",
            FaultClass::NetPartition => "net-partition",
            FaultClass::ClockJump => "clock-jump",
            FaultClass::MmapExhausted => "mmap-exhausted",
            FaultClass::FdPressure => "fd-pressure",
            FaultClass::AllocFail => "alloc-fail",
        }
    }

    fn salt(self) -> u64 {
        0x000c_4a05_u64 << 8 | u64::from(self.code())
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Intensity knobs per fault class, plus shape parameters.
///
/// Rates are per-mille probabilities *per eligible operation*; the compiler
/// turns them into a fixed pattern over [`HORIZON`] slots, so the realized
/// frequency is deterministic, not sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosProfile {
    /// Per-mille rate of short file reads.
    pub short_read_per_mille: u16,
    /// Per-mille rate of short file writes.
    pub short_write_per_mille: u16,
    /// Per-mille rate of `EAGAIN` on socket operations.
    pub net_eagain_per_mille: u16,
    /// Per-mille rate of connection resets on socket operations.
    pub net_reset_per_mille: u16,
    /// Per-mille rate of partition-window openings on socket operations.
    pub net_partition_per_mille: u16,
    /// Per-mille rate of clock jumps on `gettimeofday`.
    pub clock_jump_per_mille: u16,
    /// Per-mille rate of `mmap` exhaustion.
    pub mmap_exhausted_per_mille: u16,
    /// Per-mille rate of `EMFILE` on descriptor-producing calls.
    pub fd_pressure_per_mille: u16,
    /// Fail each thread's Nth allocation (1-based); 0 disables the class.
    pub alloc_fail_nth: u64,
    /// Nanoseconds added to the virtual clock per injected jump.
    pub clock_jump_ns: u64,
    /// Socket operations a partition window swallows once opened.
    pub partition_ops: u32,
}

impl ChaosProfile {
    /// All classes off; compiling this yields an empty schedule.
    pub fn quiet() -> Self {
        ChaosProfile {
            short_read_per_mille: 0,
            short_write_per_mille: 0,
            net_eagain_per_mille: 0,
            net_reset_per_mille: 0,
            net_partition_per_mille: 0,
            clock_jump_per_mille: 0,
            mmap_exhausted_per_mille: 0,
            fd_pressure_per_mille: 0,
            alloc_fail_nth: 0,
            clock_jump_ns: 0,
            partition_ops: 0,
        }
    }

    /// A mild profile: occasional faults in every class, survivable by a
    /// retrying workload.
    pub fn light() -> Self {
        ChaosProfile {
            short_read_per_mille: 125,
            short_write_per_mille: 125,
            net_eagain_per_mille: 90,
            net_reset_per_mille: 20,
            net_partition_per_mille: 15,
            clock_jump_per_mille: 60,
            mmap_exhausted_per_mille: 250,
            fd_pressure_per_mille: 60,
            alloc_fail_nth: 40,
            clock_jump_ns: 250_000_000,
            partition_ops: 3,
        }
    }

    /// An aggressive profile for robustness tests.
    pub fn heavy() -> Self {
        ChaosProfile {
            short_read_per_mille: 400,
            short_write_per_mille: 400,
            net_eagain_per_mille: 250,
            net_reset_per_mille: 60,
            net_partition_per_mille: 40,
            clock_jump_per_mille: 200,
            mmap_exhausted_per_mille: 500,
            fd_pressure_per_mille: 150,
            alloc_fail_nth: 12,
            clock_jump_ns: 2_000_000_000,
            partition_ops: 5,
        }
    }

    /// The per-mille intensity of a schedule-driven class.  [`AllocFail`]
    /// is driven by `alloc_fail_nth` instead of a schedule; its pseudo
    /// intensity is 1000 when enabled so validation treats a non-empty
    /// profile consistently.
    ///
    /// [`AllocFail`]: FaultClass::AllocFail
    pub fn intensity(&self, class: FaultClass) -> u16 {
        match class {
            FaultClass::ShortRead => self.short_read_per_mille,
            FaultClass::ShortWrite => self.short_write_per_mille,
            FaultClass::NetEagain => self.net_eagain_per_mille,
            FaultClass::NetReset => self.net_reset_per_mille,
            FaultClass::NetPartition => self.net_partition_per_mille,
            FaultClass::ClockJump => self.clock_jump_per_mille,
            FaultClass::MmapExhausted => self.mmap_exhausted_per_mille,
            FaultClass::FdPressure => self.fd_pressure_per_mille,
            FaultClass::AllocFail => {
                if self.alloc_fail_nth > 0 {
                    1000
                } else {
                    0
                }
            }
        }
    }

    fn digest_words(&self) -> [u64; 11] {
        [
            u64::from(self.short_read_per_mille),
            u64::from(self.short_write_per_mille),
            u64::from(self.net_eagain_per_mille),
            u64::from(self.net_reset_per_mille),
            u64::from(self.net_partition_per_mille),
            u64::from(self.clock_jump_per_mille),
            u64::from(self.mmap_exhausted_per_mille),
            u64::from(self.fd_pressure_per_mille),
            self.alloc_fail_nth,
            self.clock_jump_ns,
            u64::from(self.partition_ops),
        ]
    }
}

/// The compiled firing pattern of one fault class: the sorted set of
/// operation slots (indices modulo [`HORIZON`]) at which the fault fires.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassSchedule {
    /// The class this schedule drives.
    pub class: FaultClass,
    /// Sorted, deduplicated firing slots in `0..HORIZON`.
    pub slots: Vec<u32>,
}

/// Why a [`ChaosPlan`] failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosPlanError {
    /// A class with zero intensity carries a non-empty schedule: the plan
    /// was tampered with or assembled by hand.
    ZeroIntensitySchedule {
        /// The inconsistent class.
        class: FaultClass,
    },
    /// A class schedule disagrees with what `compile(seed, profile)`
    /// produces: the seed or profile no longer matches the schedule.
    SeedProfileMismatch {
        /// The first class whose schedule disagrees.
        class: FaultClass,
    },
}

impl std::fmt::Display for ChaosPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosPlanError::ZeroIntensitySchedule { class } => {
                write!(f, "class {class} has zero intensity but a non-empty schedule")
            }
            ChaosPlanError::SeedProfileMismatch { class } => {
                write!(f, "class {class} schedule does not match the plan's seed and profile")
            }
        }
    }
}

/// A seeded, fully deterministic fault plan.
///
/// The fields are public so a plan can travel through configuration files
/// and be inspected by tools; [`ChaosPlan::verify`] (called by
/// `Config::validate`) rejects any hand-assembled plan whose schedule does
/// not match its seed and profile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// The seed every schedule was derived from.
    pub seed: u64,
    /// The intensity knobs the schedules realize.
    pub profile: ChaosProfile,
    /// One compiled schedule per class, in [`FaultClass::ALL`] order.
    pub schedule: Vec<ClassSchedule>,
}

impl ChaosPlan {
    /// Compiles `seed + profile` into a concrete plan: for every class, the
    /// exact slots in `0..HORIZON` at which the fault fires.
    pub fn compile(seed: u64, profile: ChaosProfile) -> ChaosPlan {
        let schedule = FaultClass::ALL
            .iter()
            .map(|&class| {
                // AllocFail is driven by the Nth-allocation rule, not by a
                // slot pattern; its schedule stays empty.
                let slots = if class == FaultClass::AllocFail {
                    Vec::new()
                } else {
                    let intensity = u64::from(profile.intensity(class));
                    (0..HORIZON)
                        .filter(|&slot| {
                            let mut state = seed ^ class.salt().wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ u64::from(slot);
                            splitmix64(&mut state) % 1000 < intensity
                        })
                        .collect()
                };
                ClassSchedule { class, slots }
            })
            .collect();
        ChaosPlan {
            seed,
            profile,
            schedule,
        }
    }

    /// Returns `true` if the class fires at the given operation index (the
    /// index is reduced modulo [`HORIZON`]).
    pub fn fires(&self, class: FaultClass, op_index: u64) -> bool {
        let slot = (op_index % u64::from(HORIZON)) as u32;
        self.schedule
            .iter()
            .find(|s| s.class == class)
            .map(|s| s.slots.binary_search(&slot).is_ok())
            .unwrap_or(false)
    }

    /// Returns `true` if no class ever fires (the quiet plan).
    pub fn is_quiet(&self) -> bool {
        self.profile.alloc_fail_nth == 0 && self.schedule.iter().all(|s| s.slots.is_empty())
    }

    /// FNV-1a digest over the seed, the profile, and every compiled slot.
    /// Travels in durable trace headers so `replay_trace` can refuse a
    /// mismatched plan up front.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        let mut eat = |word: u64| {
            for byte in word.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(PRIME);
            }
        };
        eat(self.seed);
        for word in self.profile.digest_words() {
            eat(word);
        }
        for class in &self.schedule {
            eat(u64::from(class.class.code()));
            eat(class.slots.len() as u64);
            for &slot in &class.slots {
                eat(u64::from(slot));
            }
        }
        hash
    }

    /// Checks internal consistency: every zero-intensity class has an empty
    /// schedule, and the schedules are exactly what `compile` produces for
    /// this seed and profile.
    pub fn verify(&self) -> Result<(), ChaosPlanError> {
        for class in &self.schedule {
            if self.profile.intensity(class.class) == 0 && !class.slots.is_empty() {
                return Err(ChaosPlanError::ZeroIntensitySchedule { class: class.class });
            }
        }
        let recompiled = ChaosPlan::compile(self.seed, self.profile);
        if *self != recompiled {
            let class = FaultClass::ALL
                .iter()
                .copied()
                .find(|&c| {
                    let ours = self.schedule.iter().find(|s| s.class == c);
                    let theirs = recompiled.schedule.iter().find(|s| s.class == c);
                    ours != theirs
                })
                .unwrap_or(FaultClass::ShortRead);
            return Err(ChaosPlanError::SeedProfileMismatch { class });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_is_a_pure_function_of_seed_and_profile() {
        let a = ChaosPlan::compile(7, ChaosProfile::light());
        let b = ChaosPlan::compile(7, ChaosProfile::light());
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        let c = ChaosPlan::compile(8, ChaosProfile::light());
        assert_ne!(a, c);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn intensities_shape_the_schedule() {
        let quiet = ChaosPlan::compile(1, ChaosProfile::quiet());
        assert!(quiet.is_quiet());
        assert!(quiet.verify().is_ok());

        let heavy = ChaosPlan::compile(1, ChaosProfile::heavy());
        assert!(!heavy.is_quiet());
        for class in FaultClass::ALL {
            if class == FaultClass::AllocFail {
                continue;
            }
            let slots = &heavy.schedule.iter().find(|s| s.class == class).unwrap().slots;
            assert!(!slots.is_empty(), "{class} never fires under the heavy profile");
            assert!(slots.windows(2).all(|w| w[0] < w[1]), "{class} slots must be sorted");
            assert!(slots.iter().all(|&s| s < HORIZON));
        }
    }

    #[test]
    fn fires_matches_the_compiled_slots() {
        let plan = ChaosPlan::compile(3, ChaosProfile::heavy());
        let slots = &plan
            .schedule
            .iter()
            .find(|s| s.class == FaultClass::ShortRead)
            .unwrap()
            .slots;
        let first = u64::from(slots[0]);
        assert!(plan.fires(FaultClass::ShortRead, first));
        assert!(
            plan.fires(FaultClass::ShortRead, first + u64::from(HORIZON)),
            "the pattern cycles"
        );
        let miss = (0..u64::from(HORIZON)).find(|i| !slots.contains(&(*i as u32))).unwrap();
        assert!(!plan.fires(FaultClass::ShortRead, miss));
    }

    #[test]
    fn tampered_plans_fail_verification() {
        let mut zeroed = ChaosPlan::compile(11, ChaosProfile::light());
        zeroed.profile.net_reset_per_mille = 0;
        assert_eq!(
            zeroed.verify(),
            Err(ChaosPlanError::ZeroIntensitySchedule {
                class: FaultClass::NetReset
            })
        );

        let mut reseeded = ChaosPlan::compile(11, ChaosProfile::light());
        reseeded.seed = 12;
        assert!(matches!(
            reseeded.verify(),
            Err(ChaosPlanError::SeedProfileMismatch { .. })
        ));

        let mut edited = ChaosPlan::compile(11, ChaosProfile::light());
        let missing = (0..HORIZON)
            .find(|slot| !edited.schedule[0].slots.contains(slot))
            .unwrap();
        edited.schedule[0].slots.push(missing);
        edited.schedule[0].slots.sort_unstable();
        assert!(edited.verify().is_err());
    }
}
