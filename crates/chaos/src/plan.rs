//! [`ChaosPlan`]: a seed plus a profile, compiled into concrete schedules.

use serde::{Deserialize, Serialize};

use crate::splitmix64;

/// Length of the per-class firing pattern.  Operation counters are reduced
/// modulo this horizon before the schedule lookup, so long runs cycle
/// through the same pattern rather than running out of faults.
pub const HORIZON: u32 = 1024;

/// The nine fault classes the chaos plane can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum FaultClass {
    /// A file `read` returns fewer bytes than requested.
    ShortRead,
    /// A file `write` persists only a prefix of the buffer.
    ShortWrite,
    /// A socket operation fails with `EAGAIN` (`WouldBlock`).
    NetEagain,
    /// A socket operation fails with a connection reset.
    NetReset,
    /// A socket enters a partition window: operations block and readiness
    /// queries hide it until the window drains.
    NetPartition,
    /// `gettimeofday` observes a forward clock jump.
    ClockJump,
    /// `mmap` fails with address-space exhaustion.
    MmapExhausted,
    /// A descriptor-producing call (`open`, `dup`, `connect`, `accept`)
    /// fails with `EMFILE` (`TooManyFiles`).
    FdPressure,
    /// A thread's Nth managed allocation fails.
    AllocFail,
}

impl FaultClass {
    /// Every class, in schedule order.
    pub const ALL: [FaultClass; 9] = [
        FaultClass::ShortRead,
        FaultClass::ShortWrite,
        FaultClass::NetEagain,
        FaultClass::NetReset,
        FaultClass::NetPartition,
        FaultClass::ClockJump,
        FaultClass::MmapExhausted,
        FaultClass::FdPressure,
        FaultClass::AllocFail,
    ];

    /// Stable numeric code, used in digests and diagnostics.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Stable kebab-case name, used in diagnostics and error messages.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::ShortRead => "short-read",
            FaultClass::ShortWrite => "short-write",
            FaultClass::NetEagain => "net-eagain",
            FaultClass::NetReset => "net-reset",
            FaultClass::NetPartition => "net-partition",
            FaultClass::ClockJump => "clock-jump",
            FaultClass::MmapExhausted => "mmap-exhausted",
            FaultClass::FdPressure => "fd-pressure",
            FaultClass::AllocFail => "alloc-fail",
        }
    }

    fn salt(self) -> u64 {
        0x000c_4a05_u64 << 8 | u64::from(self.code())
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Intensity knobs per fault class, plus shape parameters.
///
/// Rates are per-mille probabilities *per eligible operation*; the compiler
/// turns them into a fixed pattern over [`HORIZON`] slots, so the realized
/// frequency is deterministic, not sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosProfile {
    /// Per-mille rate of short file reads.
    pub short_read_per_mille: u16,
    /// Per-mille rate of short file writes.
    pub short_write_per_mille: u16,
    /// Per-mille rate of `EAGAIN` on socket operations.
    pub net_eagain_per_mille: u16,
    /// Per-mille rate of connection resets on socket operations.
    pub net_reset_per_mille: u16,
    /// Per-mille rate of partition-window openings on socket operations.
    pub net_partition_per_mille: u16,
    /// Per-mille rate of clock jumps on `gettimeofday`.
    pub clock_jump_per_mille: u16,
    /// Per-mille rate of `mmap` exhaustion.
    pub mmap_exhausted_per_mille: u16,
    /// Per-mille rate of `EMFILE` on descriptor-producing calls.
    pub fd_pressure_per_mille: u16,
    /// Fail each thread's Nth allocation (1-based); 0 disables the class.
    pub alloc_fail_nth: u64,
    /// Nanoseconds added to the virtual clock per injected jump.
    pub clock_jump_ns: u64,
    /// Socket operations a partition window swallows once opened.
    pub partition_ops: u32,
}

impl ChaosProfile {
    /// All classes off; compiling this yields an empty schedule.
    pub fn quiet() -> Self {
        ChaosProfile {
            short_read_per_mille: 0,
            short_write_per_mille: 0,
            net_eagain_per_mille: 0,
            net_reset_per_mille: 0,
            net_partition_per_mille: 0,
            clock_jump_per_mille: 0,
            mmap_exhausted_per_mille: 0,
            fd_pressure_per_mille: 0,
            alloc_fail_nth: 0,
            clock_jump_ns: 0,
            partition_ops: 0,
        }
    }

    /// A mild profile: occasional faults in every class, survivable by a
    /// retrying workload.
    pub fn light() -> Self {
        ChaosProfile {
            short_read_per_mille: 125,
            short_write_per_mille: 125,
            net_eagain_per_mille: 90,
            net_reset_per_mille: 20,
            net_partition_per_mille: 15,
            clock_jump_per_mille: 60,
            mmap_exhausted_per_mille: 250,
            fd_pressure_per_mille: 60,
            alloc_fail_nth: 40,
            clock_jump_ns: 250_000_000,
            partition_ops: 3,
        }
    }

    /// An aggressive profile for robustness tests.
    pub fn heavy() -> Self {
        ChaosProfile {
            short_read_per_mille: 400,
            short_write_per_mille: 400,
            net_eagain_per_mille: 250,
            net_reset_per_mille: 60,
            net_partition_per_mille: 40,
            clock_jump_per_mille: 200,
            mmap_exhausted_per_mille: 500,
            fd_pressure_per_mille: 150,
            alloc_fail_nth: 12,
            clock_jump_ns: 2_000_000_000,
            partition_ops: 5,
        }
    }

    /// The per-mille intensity of a schedule-driven class.  [`AllocFail`]
    /// is driven by `alloc_fail_nth` instead of a schedule; its pseudo
    /// intensity is 1000 when enabled so validation treats a non-empty
    /// profile consistently.
    ///
    /// [`AllocFail`]: FaultClass::AllocFail
    pub fn intensity(&self, class: FaultClass) -> u16 {
        match class {
            FaultClass::ShortRead => self.short_read_per_mille,
            FaultClass::ShortWrite => self.short_write_per_mille,
            FaultClass::NetEagain => self.net_eagain_per_mille,
            FaultClass::NetReset => self.net_reset_per_mille,
            FaultClass::NetPartition => self.net_partition_per_mille,
            FaultClass::ClockJump => self.clock_jump_per_mille,
            FaultClass::MmapExhausted => self.mmap_exhausted_per_mille,
            FaultClass::FdPressure => self.fd_pressure_per_mille,
            FaultClass::AllocFail => {
                if self.alloc_fail_nth > 0 {
                    1000
                } else {
                    0
                }
            }
        }
    }

    fn digest_words(&self) -> [u64; 11] {
        [
            u64::from(self.short_read_per_mille),
            u64::from(self.short_write_per_mille),
            u64::from(self.net_eagain_per_mille),
            u64::from(self.net_reset_per_mille),
            u64::from(self.net_partition_per_mille),
            u64::from(self.clock_jump_per_mille),
            u64::from(self.mmap_exhausted_per_mille),
            u64::from(self.fd_pressure_per_mille),
            self.alloc_fail_nth,
            self.clock_jump_ns,
            u64::from(self.partition_ops),
        ]
    }
}

/// The compiled firing pattern of one fault class: the sorted set of
/// operation slots (indices modulo [`HORIZON`]) at which the fault fires.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassSchedule {
    /// The class this schedule drives.
    pub class: FaultClass,
    /// Sorted, deduplicated firing slots in `0..HORIZON`.
    pub slots: Vec<u32>,
}

/// Why a [`ChaosPlan`] failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosPlanError {
    /// A class with zero intensity carries a non-empty schedule: the plan
    /// was tampered with or assembled by hand.
    ZeroIntensitySchedule {
        /// The inconsistent class.
        class: FaultClass,
    },
    /// A class schedule disagrees with what `compile(seed, profile)`
    /// produces: the seed or profile no longer matches the schedule.
    SeedProfileMismatch {
        /// The first class whose schedule disagrees.
        class: FaultClass,
    },
}

impl std::fmt::Display for ChaosPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosPlanError::ZeroIntensitySchedule { class } => {
                write!(f, "class {class} has zero intensity but a non-empty schedule")
            }
            ChaosPlanError::SeedProfileMismatch { class } => {
                write!(f, "class {class} schedule does not match the plan's seed and profile")
            }
        }
    }
}

/// A seeded, fully deterministic fault plan.
///
/// The fields are public so a plan can travel through configuration files
/// and be inspected by tools; [`ChaosPlan::verify`] (called by
/// `Config::validate`) rejects any hand-assembled plan whose schedule does
/// not match its seed and profile.
///
/// A plan is either **compiled** ([`ChaosPlan::compile`], `derived ==
/// false`), in which case its schedules must be *exactly* what the seed
/// and profile produce, or **derived** (the shrink constructors
/// [`ChaosPlan::without_class`] / [`ChaosPlan::with_class_slots`], used by
/// the failure minimizer), in which case each schedule must be a *subset*
/// of the compiled one -- removal is the sanctioned edit, addition is
/// still tampering.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// The seed every schedule was derived from.
    pub seed: u64,
    /// The intensity knobs the schedules realize.
    pub profile: ChaosProfile,
    /// One compiled schedule per class, in [`FaultClass::ALL`] order.
    pub schedule: Vec<ClassSchedule>,
    /// `true` for plans produced by the shrink constructors: verification
    /// admits slot-subset schedules instead of demanding exact equality.
    pub derived: bool,
}

impl ChaosPlan {
    /// Compiles `seed + profile` into a concrete plan: for every class, the
    /// exact slots in `0..HORIZON` at which the fault fires.
    pub fn compile(seed: u64, profile: ChaosProfile) -> ChaosPlan {
        let schedule = FaultClass::ALL
            .iter()
            .map(|&class| {
                // AllocFail is driven by the Nth-allocation rule, not by a
                // slot pattern; its schedule stays empty.
                let slots = if class == FaultClass::AllocFail {
                    Vec::new()
                } else {
                    let intensity = u64::from(profile.intensity(class));
                    (0..HORIZON)
                        .filter(|&slot| {
                            let mut state = seed ^ class.salt().wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ u64::from(slot);
                            splitmix64(&mut state) % 1000 < intensity
                        })
                        .collect()
                };
                ClassSchedule { class, slots }
            })
            .collect();
        ChaosPlan {
            seed,
            profile,
            schedule,
            derived: false,
        }
    }

    /// A derived plan with one fault class disabled entirely: its intensity
    /// knob is zeroed (`alloc_fail_nth` for [`FaultClass::AllocFail`]) and
    /// its schedule cleared.  Every other class is untouched -- schedules
    /// are compiled per class, so zeroing one knob cannot shift another
    /// class's slots.  This is the minimizer's coarse cut.
    pub fn without_class(&self, class: FaultClass) -> ChaosPlan {
        let mut plan = self.clone();
        plan.derived = true;
        match class {
            FaultClass::ShortRead => plan.profile.short_read_per_mille = 0,
            FaultClass::ShortWrite => plan.profile.short_write_per_mille = 0,
            FaultClass::NetEagain => plan.profile.net_eagain_per_mille = 0,
            FaultClass::NetReset => plan.profile.net_reset_per_mille = 0,
            FaultClass::NetPartition => plan.profile.net_partition_per_mille = 0,
            FaultClass::ClockJump => plan.profile.clock_jump_per_mille = 0,
            FaultClass::MmapExhausted => plan.profile.mmap_exhausted_per_mille = 0,
            FaultClass::FdPressure => plan.profile.fd_pressure_per_mille = 0,
            FaultClass::AllocFail => plan.profile.alloc_fail_nth = 0,
        }
        if let Some(schedule) = plan.schedule.iter_mut().find(|s| s.class == class) {
            schedule.slots.clear();
        }
        plan
    }

    /// A derived plan with one class's firing slots replaced by `slots`
    /// (sorted and deduplicated here).  The slots must be a subset of the
    /// current schedule for the plan to pass [`ChaosPlan::verify`]; this is
    /// the minimizer's fine cut (halving a schedule).
    pub fn with_class_slots(&self, class: FaultClass, slots: Vec<u32>) -> ChaosPlan {
        let mut plan = self.clone();
        plan.derived = true;
        let mut slots = slots;
        slots.sort_unstable();
        slots.dedup();
        if let Some(schedule) = plan.schedule.iter_mut().find(|s| s.class == class) {
            schedule.slots = slots;
        }
        plan
    }

    /// `true` if every firing slot of every class of `self` also fires in
    /// `parent` (and `self` enables no class `parent` has off).  The
    /// minimizer's invariant: a shrunk plan never injects a fault its
    /// parent would not have injected.
    pub fn is_subset_of(&self, parent: &ChaosPlan) -> bool {
        if self.profile.alloc_fail_nth != 0 && self.profile.alloc_fail_nth != parent.profile.alloc_fail_nth {
            return false;
        }
        self.schedule.iter().all(|ours| {
            let theirs = parent.schedule.iter().find(|s| s.class == ours.class);
            match theirs {
                Some(theirs) => ours.slots.iter().all(|slot| theirs.slots.binary_search(slot).is_ok()),
                None => ours.slots.is_empty(),
            }
        })
    }

    /// The plan's size under minimization: total firing slots across all
    /// classes, plus one for an enabled Nth-allocation rule.  Shrink ratios
    /// are ratios of weights.
    pub fn weight(&self) -> u64 {
        let slots: u64 = self.schedule.iter().map(|s| s.slots.len() as u64).sum();
        slots + u64::from(self.profile.alloc_fail_nth > 0)
    }

    /// Returns `true` if the class fires at the given operation index (the
    /// index is reduced modulo [`HORIZON`]).
    pub fn fires(&self, class: FaultClass, op_index: u64) -> bool {
        let slot = (op_index % u64::from(HORIZON)) as u32;
        self.schedule
            .iter()
            .find(|s| s.class == class)
            .map(|s| s.slots.binary_search(&slot).is_ok())
            .unwrap_or(false)
    }

    /// Returns `true` if no class ever fires (the quiet plan).
    pub fn is_quiet(&self) -> bool {
        self.profile.alloc_fail_nth == 0 && self.schedule.iter().all(|s| s.slots.is_empty())
    }

    /// FNV-1a digest over the seed, the profile, and every compiled slot.
    /// Travels in durable trace headers so `replay_trace` can refuse a
    /// mismatched plan up front.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        let mut eat = |word: u64| {
            for byte in word.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(PRIME);
            }
        };
        eat(self.seed);
        for word in self.profile.digest_words() {
            eat(word);
        }
        for class in &self.schedule {
            eat(u64::from(class.class.code()));
            eat(class.slots.len() as u64);
            for &slot in &class.slots {
                eat(u64::from(slot));
            }
        }
        // Compiled plans keep their pre-`derived` digests (frozen trace
        // fixtures pin them); derived plans mix in a marker so a shrink
        // that happens to keep every slot still gets its own digest.
        if self.derived {
            eat(1);
        }
        hash
    }

    /// Checks internal consistency: every zero-intensity class has an empty
    /// schedule, and the schedules agree with what `compile` produces for
    /// this seed and profile -- *exactly* for a compiled plan, as a
    /// *slot subset* for a derived one (the minimizer only ever removes
    /// firings; a slot `compile` would not produce is tampering either way).
    pub fn verify(&self) -> Result<(), ChaosPlanError> {
        for class in &self.schedule {
            if self.profile.intensity(class.class) == 0 && !class.slots.is_empty() {
                return Err(ChaosPlanError::ZeroIntensitySchedule { class: class.class });
            }
        }
        let recompiled = ChaosPlan::compile(self.seed, self.profile);
        let consistent = if self.derived {
            self.is_subset_of(&recompiled)
        } else {
            self.schedule == recompiled.schedule
        };
        if !consistent {
            let class = FaultClass::ALL
                .iter()
                .copied()
                .find(|&c| {
                    let ours = self.schedule.iter().find(|s| s.class == c);
                    let theirs = recompiled.schedule.iter().find(|s| s.class == c);
                    match (ours, theirs, self.derived) {
                        (Some(ours), Some(theirs), true) => {
                            !ours.slots.iter().all(|slot| theirs.slots.binary_search(slot).is_ok())
                        }
                        (ours, theirs, _) => ours != theirs,
                    }
                })
                .unwrap_or(FaultClass::ShortRead);
            return Err(ChaosPlanError::SeedProfileMismatch { class });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_is_a_pure_function_of_seed_and_profile() {
        let a = ChaosPlan::compile(7, ChaosProfile::light());
        let b = ChaosPlan::compile(7, ChaosProfile::light());
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        let c = ChaosPlan::compile(8, ChaosProfile::light());
        assert_ne!(a, c);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn intensities_shape_the_schedule() {
        let quiet = ChaosPlan::compile(1, ChaosProfile::quiet());
        assert!(quiet.is_quiet());
        assert!(quiet.verify().is_ok());

        let heavy = ChaosPlan::compile(1, ChaosProfile::heavy());
        assert!(!heavy.is_quiet());
        for class in FaultClass::ALL {
            if class == FaultClass::AllocFail {
                continue;
            }
            let slots = &heavy.schedule.iter().find(|s| s.class == class).unwrap().slots;
            assert!(!slots.is_empty(), "{class} never fires under the heavy profile");
            assert!(slots.windows(2).all(|w| w[0] < w[1]), "{class} slots must be sorted");
            assert!(slots.iter().all(|&s| s < HORIZON));
        }
    }

    #[test]
    fn fires_matches_the_compiled_slots() {
        let plan = ChaosPlan::compile(3, ChaosProfile::heavy());
        let slots = &plan
            .schedule
            .iter()
            .find(|s| s.class == FaultClass::ShortRead)
            .unwrap()
            .slots;
        let first = u64::from(slots[0]);
        assert!(plan.fires(FaultClass::ShortRead, first));
        assert!(
            plan.fires(FaultClass::ShortRead, first + u64::from(HORIZON)),
            "the pattern cycles"
        );
        let miss = (0..u64::from(HORIZON)).find(|i| !slots.contains(&(*i as u32))).unwrap();
        assert!(!plan.fires(FaultClass::ShortRead, miss));
    }

    #[test]
    fn derived_subset_plans_verify() {
        let parent = ChaosPlan::compile(21, ChaosProfile::heavy());

        let dropped = parent.without_class(FaultClass::NetReset);
        assert!(dropped.derived);
        assert!(dropped.verify().is_ok(), "dropping a class is a sanctioned edit");
        assert!(dropped.is_subset_of(&parent));
        assert!(dropped.weight() < parent.weight());
        assert_ne!(dropped.digest(), parent.digest());

        let reads = parent
            .schedule
            .iter()
            .find(|s| s.class == FaultClass::ShortRead)
            .unwrap()
            .slots
            .clone();
        let half = reads[..reads.len() / 2].to_vec();
        let halved = parent.with_class_slots(FaultClass::ShortRead, half);
        assert!(halved.verify().is_ok(), "halving a schedule is a sanctioned edit");
        assert!(halved.is_subset_of(&parent));
        assert!(halved.weight() < parent.weight());

        // Stacked shrinks stay verifiable: each cut is a subset of what the
        // (possibly modified) profile compiles to.
        let stacked = dropped.without_class(FaultClass::ClockJump);
        assert!(stacked.verify().is_ok());
        assert!(stacked.is_subset_of(&parent));

        // A derived plan that keeps every slot still gets its own digest.
        let same_slots = parent.with_class_slots(FaultClass::ShortRead, reads);
        assert_eq!(same_slots.schedule, parent.schedule);
        assert_ne!(same_slots.digest(), parent.digest());
    }

    #[test]
    fn derived_plans_with_added_slots_fail_verification() {
        let parent = ChaosPlan::compile(21, ChaosProfile::light());
        let slots = &parent
            .schedule
            .iter()
            .find(|s| s.class == FaultClass::ShortRead)
            .unwrap()
            .slots;
        let foreign = (0..HORIZON).find(|slot| !slots.contains(slot)).unwrap();
        let mut grown = slots.clone();
        grown.push(foreign);
        let tampered = parent.with_class_slots(FaultClass::ShortRead, grown);
        assert_eq!(
            tampered.verify(),
            Err(ChaosPlanError::SeedProfileMismatch {
                class: FaultClass::ShortRead
            })
        );
        assert!(!tampered.is_subset_of(&parent));
    }

    #[test]
    fn without_alloc_fail_removes_the_nth_rule_weight() {
        let parent = ChaosPlan::compile(5, ChaosProfile::heavy());
        assert!(parent.profile.alloc_fail_nth > 0);
        let cut = parent.without_class(FaultClass::AllocFail);
        assert_eq!(cut.profile.alloc_fail_nth, 0);
        assert!(cut.verify().is_ok());
        assert_eq!(cut.weight(), parent.weight() - 1);

        // A derived plan re-enabling AllocFail with a different Nth is not a
        // subset: it injects faults the parent would not have injected.
        let mut retuned = parent.clone();
        retuned.profile.alloc_fail_nth = parent.profile.alloc_fail_nth + 1;
        assert!(!retuned.is_subset_of(&parent));
    }

    #[test]
    fn tampered_plans_fail_verification() {
        let mut zeroed = ChaosPlan::compile(11, ChaosProfile::light());
        zeroed.profile.net_reset_per_mille = 0;
        assert_eq!(
            zeroed.verify(),
            Err(ChaosPlanError::ZeroIntensitySchedule {
                class: FaultClass::NetReset
            })
        );

        let mut reseeded = ChaosPlan::compile(11, ChaosProfile::light());
        reseeded.seed = 12;
        assert!(matches!(
            reseeded.verify(),
            Err(ChaosPlanError::SeedProfileMismatch { .. })
        ));

        let mut edited = ChaosPlan::compile(11, ChaosProfile::light());
        let missing = (0..HORIZON)
            .find(|slot| !edited.schedule[0].slots.contains(slot))
            .unwrap();
        edited.schedule[0].slots.push(missing);
        edited.schedule[0].slots.sort_unstable();
        assert!(edited.verify().is_err());
    }
}
