//! [`ChaosEngine`]: per-kernel runtime state of a chaos plan.
//!
//! One engine lives inside each simulated kernel (one per arena partition
//! in a multi-tenant runtime, so plans are isolated per session by
//! construction).  Every eligible system call consults the engine exactly
//! once; the engine advances the matching counter and answers with the
//! injection decision.  Counters are keyed per descriptor (sockets, file
//! reads/writes) or per thread (allocations) wherever cross-thread
//! interleavings could otherwise reorder a shared stream, so decisions
//! depend only on state the application already serializes.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::plan::{ChaosPlan, FaultClass};

/// The socket-level outcome of a chaos decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Fail the operation with `EAGAIN` (`WouldBlock`).
    Eagain,
    /// Fail the operation with a connection reset.
    Reset,
    /// The socket is inside a partition window: the operation blocks.
    Partitioned,
}

/// One injected socket fault: what to inject, at which per-descriptor
/// operation index, and whether this is a fresh fault (a partition window
/// announces itself once when it opens, not on every drained operation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SocketFault {
    /// The fault to inject.
    pub fault: NetFault,
    /// Per-descriptor operation index the decision was made at.
    pub site: u64,
    /// `true` for fresh faults (observers should be notified).
    pub announce: bool,
}

/// The chaos counters consumed by calls that are **re-issued** during an
/// in-situ replay (file reads, file writes, allocations).  Captured into
/// the epoch checkpoint alongside file positions and restored on rollback,
/// so re-execution injects the same faults at the same operations.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosRevocableState {
    /// Per-descriptor file-read operation counters.
    pub file_reads: Vec<(i32, u64)>,
    /// Per-descriptor file-write operation counters.
    pub file_writes: Vec<(i32, u64)>,
    /// Per-thread allocation counters.
    pub allocs: Vec<(u32, u64)>,
}

/// Runtime state of one chaos plan inside one simulated kernel.
#[derive(Debug)]
pub struct ChaosEngine {
    plan: ChaosPlan,
    // Revocable-class counters: snapshot/restored with the epoch checkpoint.
    file_reads: BTreeMap<i32, u64>,
    file_writes: BTreeMap<i32, u64>,
    allocs: BTreeMap<u32, u64>,
    // Recordable-class counters: persist across rollbacks, exactly like the
    // descriptor and socket tables (replay never re-invokes these calls).
    socket_ops: BTreeMap<i32, u64>,
    partition_left: BTreeMap<i32, u32>,
    fd_ops: u64,
    mmap_ops: u64,
    clock_ops: u64,
    injected: [u64; FaultClass::ALL.len()],
}

impl ChaosEngine {
    /// Creates an engine with all counters at zero.
    pub fn new(plan: ChaosPlan) -> Self {
        ChaosEngine {
            plan,
            file_reads: BTreeMap::new(),
            file_writes: BTreeMap::new(),
            allocs: BTreeMap::new(),
            socket_ops: BTreeMap::new(),
            partition_left: BTreeMap::new(),
            fd_ops: 0,
            mmap_ops: 0,
            clock_ops: 0,
            injected: [0; FaultClass::ALL.len()],
        }
    }

    /// The plan this engine executes.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// Faults injected so far, per class.
    pub fn injected(&self) -> Vec<(FaultClass, u64)> {
        FaultClass::ALL
            .iter()
            .map(|&class| (class, self.injected[class.code() as usize]))
            .collect()
    }

    fn count(&mut self, class: FaultClass) {
        self.injected[class.code() as usize] += 1;
    }

    /// A descriptor-producing call (`open`, `dup`, `connect`, `accept`).
    /// `Some(site)` means: fail with `TooManyFiles`.
    pub fn on_fd_op(&mut self) -> Option<u64> {
        let index = self.fd_ops;
        self.fd_ops += 1;
        if self.plan.fires(FaultClass::FdPressure, index) {
            self.count(FaultClass::FdPressure);
            return Some(index);
        }
        None
    }

    /// A `recv`/`send` on a connected socket.  Partition windows take
    /// precedence (and drain one operation per call); then resets, then
    /// `EAGAIN`, each driven by the per-descriptor operation index.
    pub fn on_socket_op(&mut self, fd: i32) -> Option<SocketFault> {
        let index = {
            let counter = self.socket_ops.entry(fd).or_insert(0);
            let index = *counter;
            *counter += 1;
            index
        };
        if let Some(left) = self.partition_left.get_mut(&fd) {
            if *left > 0 {
                *left -= 1;
                return Some(SocketFault {
                    fault: NetFault::Partitioned,
                    site: index,
                    announce: false,
                });
            }
        }
        let fresh = |fault, site| {
            Some(SocketFault {
                fault,
                site,
                announce: true,
            })
        };
        if self.plan.fires(FaultClass::NetPartition, index) {
            self.count(FaultClass::NetPartition);
            self.partition_left
                .insert(fd, self.plan.profile.partition_ops.max(1) - 1);
            return fresh(NetFault::Partitioned, index);
        }
        if self.plan.fires(FaultClass::NetReset, index) {
            self.count(FaultClass::NetReset);
            return fresh(NetFault::Reset, index);
        }
        if self.plan.fires(FaultClass::NetEagain, index) {
            self.count(FaultClass::NetEagain);
            return fresh(NetFault::Eagain, index);
        }
        None
    }

    /// A readiness query over one socket.  Returns `true` if the socket is
    /// inside a partition window (and drains one operation from it), in
    /// which case the poll must hide the socket.
    pub fn on_poll(&mut self, fd: i32) -> bool {
        if let Some(left) = self.partition_left.get_mut(&fd) {
            if *left > 0 {
                *left -= 1;
                return true;
            }
        }
        false
    }

    /// A `gettimeofday`.  `Some((jump_ns, site))` means: advance the clock
    /// by `jump_ns` before reading it.
    pub fn on_clock(&mut self) -> Option<(u64, u64)> {
        let index = self.clock_ops;
        self.clock_ops += 1;
        if self.plan.fires(FaultClass::ClockJump, index) && self.plan.profile.clock_jump_ns > 0 {
            self.count(FaultClass::ClockJump);
            return Some((self.plan.profile.clock_jump_ns, index));
        }
        None
    }

    /// An `mmap`.  `Some(site)` means: fail with `MmapExhausted`.
    pub fn on_mmap(&mut self) -> Option<u64> {
        let index = self.mmap_ops;
        self.mmap_ops += 1;
        if self.plan.fires(FaultClass::MmapExhausted, index) {
            self.count(FaultClass::MmapExhausted);
            return Some(index);
        }
        None
    }

    /// A file `read` of `len` bytes.  `Some((short_len, site))` means:
    /// serve only `short_len` bytes.  Progress is guaranteed: the shortened
    /// length is never zero.
    pub fn on_file_read(&mut self, fd: i32, len: usize) -> Option<(usize, u64)> {
        let counter = self.file_reads.entry(fd).or_insert(0);
        let index = *counter;
        *counter += 1;
        let short = len.div_ceil(2).max(1);
        if len > 1 && short < len && self.plan.fires(FaultClass::ShortRead, index) {
            self.count(FaultClass::ShortRead);
            return Some((short, index));
        }
        None
    }

    /// A file `write` of `len` bytes.  `Some((short_len, site))` means:
    /// persist only the first `short_len` bytes.
    pub fn on_file_write(&mut self, fd: i32, len: usize) -> Option<(usize, u64)> {
        let counter = self.file_writes.entry(fd).or_insert(0);
        let index = *counter;
        *counter += 1;
        let short = len.div_ceil(2).max(1);
        if len > 1 && short < len && self.plan.fires(FaultClass::ShortWrite, index) {
            self.count(FaultClass::ShortWrite);
            return Some((short, index));
        }
        None
    }

    /// A managed allocation on `thread`.  `Some(site)` means: fail it.
    /// Fires exactly once per thread, at the thread's Nth allocation.
    pub fn on_alloc(&mut self, thread: u32) -> Option<u64> {
        let nth = self.plan.profile.alloc_fail_nth;
        if nth == 0 {
            return None;
        }
        let counter = self.allocs.entry(thread).or_insert(0);
        let index = *counter;
        *counter += 1;
        if index + 1 == nth {
            self.count(FaultClass::AllocFail);
            return Some(index);
        }
        None
    }

    /// Captures the replay-consumed counters for the epoch checkpoint.
    pub fn revocable_state(&self) -> ChaosRevocableState {
        ChaosRevocableState {
            file_reads: self.file_reads.iter().map(|(&fd, &n)| (fd, n)).collect(),
            file_writes: self.file_writes.iter().map(|(&fd, &n)| (fd, n)).collect(),
            allocs: self.allocs.iter().map(|(&t, &n)| (t, n)).collect(),
        }
    }

    /// Restores the replay-consumed counters from an epoch checkpoint
    /// (rollback); the recordable-class counters are left alone on purpose.
    pub fn restore_revocable(&mut self, state: &ChaosRevocableState) {
        self.file_reads = state.file_reads.iter().copied().collect();
        self.file_writes = state.file_writes.iter().copied().collect();
        self.allocs = state.allocs.iter().copied().collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ChaosProfile, HORIZON};

    fn engine(profile: ChaosProfile) -> ChaosEngine {
        ChaosEngine::new(ChaosPlan::compile(42, profile))
    }

    #[test]
    fn quiet_plans_never_inject() {
        let mut e = engine(ChaosProfile::quiet());
        for _ in 0..2 * HORIZON {
            assert!(e.on_fd_op().is_none());
            assert!(e.on_socket_op(5).is_none());
            assert!(e.on_clock().is_none());
            assert!(e.on_mmap().is_none());
            assert!(e.on_file_read(3, 64).is_none());
            assert!(e.on_file_write(3, 64).is_none());
            assert!(e.on_alloc(1).is_none());
        }
        assert!(e.injected().iter().all(|&(_, n)| n == 0));
    }

    #[test]
    fn heavy_plans_inject_every_class() {
        let mut e = engine(ChaosProfile::heavy());
        for _ in 0..2 * u64::from(HORIZON) {
            let _ = e.on_fd_op();
            let _ = e.on_socket_op(5);
            let _ = e.on_clock();
            let _ = e.on_mmap();
            let _ = e.on_file_read(3, 64);
            let _ = e.on_file_write(3, 64);
            let _ = e.on_alloc(1);
        }
        for (class, n) in e.injected() {
            assert!(n > 0, "{class} never injected under the heavy profile");
        }
    }

    #[test]
    fn alloc_fail_fires_once_per_thread_at_the_nth_site() {
        let mut profile = ChaosProfile::quiet();
        profile.alloc_fail_nth = 3;
        let mut e = engine(profile);
        let fired: Vec<bool> = (0..6).map(|_| e.on_alloc(1).is_some()).collect();
        assert_eq!(fired, vec![false, false, true, false, false, false]);
        assert!(e.on_alloc(2).is_none(), "thread 2 has its own counter");
        assert!(e.on_alloc(2).is_none());
        assert!(e.on_alloc(2).is_some());
    }

    #[test]
    fn partition_windows_open_and_drain_per_descriptor() {
        let mut profile = ChaosProfile::quiet();
        profile.net_partition_per_mille = 1000;
        profile.partition_ops = 3;
        let mut e = engine(profile);
        // Every op opens or drains a window; with full intensity the first
        // op opens a 3-op window (itself plus two more), then reopens.
        let announced: Vec<bool> = (0..6)
            .map(|i| {
                let fault = e
                    .on_socket_op(7)
                    .unwrap_or_else(|| panic!("op {i} must be partitioned"));
                assert_eq!(fault.fault, NetFault::Partitioned, "op {i}");
                fault.announce
            })
            .collect();
        assert_eq!(
            announced,
            vec![true, false, false, true, false, false],
            "windows announce once when they open"
        );
        // A different descriptor has an independent window.
        assert!(e.on_socket_op(8).is_some());
        // Polls drain the window too.
        let mut profile = ChaosProfile::quiet();
        profile.net_partition_per_mille = 1000;
        profile.partition_ops = 2;
        let mut e = engine(profile);
        assert!(e.on_socket_op(7).is_some(), "opens the window");
        assert!(e.on_poll(7), "drains one op");
        assert!(!e.on_poll(7), "window exhausted");
    }

    #[test]
    fn revocable_counters_roundtrip_and_replays_repeat_decisions() {
        let mut e = engine(ChaosProfile::heavy());
        for _ in 0..10 {
            let _ = e.on_file_read(3, 64);
            let _ = e.on_alloc(1);
        }
        let snapshot = e.revocable_state();
        let original: Vec<_> = (0..20).map(|_| e.on_file_read(3, 64).map(|(n, _)| n)).collect();
        let allocs: Vec<_> = (0..20).map(|_| e.on_alloc(1).is_some()).collect();
        e.restore_revocable(&snapshot);
        let replayed: Vec<_> = (0..20).map(|_| e.on_file_read(3, 64).map(|(n, _)| n)).collect();
        let reallocs: Vec<_> = (0..20).map(|_| e.on_alloc(1).is_some()).collect();
        assert_eq!(original, replayed);
        assert_eq!(allocs, reallocs);
    }
}
