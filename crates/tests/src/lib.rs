//! Integration-test support crate.  The tests themselves live in the
//! workspace-level `tests/` directory (see `Cargo.toml`'s `[[test]]`
//! entries); this library is intentionally empty.
