//! Detection and debugging tools built on top of the iReplayer runtime
//! (paper §4).
//!
//! Three tools are provided, mirroring the paper's applications:
//!
//! * [`OverflowDetector`] -- detects heap buffer overflows from corrupted
//!   allocation canaries at epoch boundaries and pinpoints the faulting
//!   write by replaying the epoch with watchpoints installed on the
//!   corrupted addresses (§4.1);
//! * [`UseAfterFreeDetector`] -- detects writes to freed (quarantined)
//!   objects and identifies the use-after-free site the same way (§4.2);
//! * [`ReplayDebugger`] -- an interactive (programmatic) debugger in the
//!   spirit of the GDB integration of §4.3: on a fault it lets the caller
//!   inspect memory, set watchpoints, request a rollback, and receive
//!   watch-hit notifications.
//!
//! A fourth hook, [`PreventionAdvisor`], implements the evidence-based
//! failure-prevention workflow the paper's introduction proposes: it turns
//! the same evidence into a [`PreventionPlan`] that hardens the next
//! deployment's configuration (delayed frees, padded allocations).
//!
//! All of these are [`ireplayer::ToolHook`]s; attach them to a [`ireplayer::Runtime`]
//! with [`ireplayer::Runtime::add_hook`].  The overflow detector requires
//! canaries to be enabled in the runtime configuration, and the
//! use-after-free detector requires a non-zero quarantine budget;
//! convenience constructors for suitable configurations are provided.

pub mod debugger;
pub mod overflow;
pub mod prevention;
pub mod report;
pub mod use_after_free;

pub use debugger::{DebugSession, ReplayDebugger};
pub use overflow::OverflowDetector;
pub use prevention::{PreventionAction, PreventionAdvisor, PreventionPlan};
pub use report::{BugKind, BugReport};
pub use use_after_free::UseAfterFreeDetector;

use ireplayer::Config;

/// Returns a configuration builder pre-set for the detection tools: the
/// paper's "iReplayer (OF+DP)" configuration with canaries and a freed-object
/// quarantine (Figure 5).
pub fn detection_config() -> ireplayer::ConfigBuilder {
    Config::builder().canaries(true).quarantine_bytes(256 * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_config_enables_canaries_and_quarantine() {
        let config = detection_config()
            .arena_size(1 << 20)
            .heap_block_size(64 << 10)
            .build()
            .unwrap();
        assert!(config.canaries);
        assert!(config.quarantine_bytes > 0);
    }
}
