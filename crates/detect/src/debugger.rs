//! Interactive replay debugging (paper §4.3).
//!
//! The original tool stops inside the signal handler on an abnormal exit so
//! that a developer attached with GDB can inspect the fault, set
//! watchpoints, and issue a `rollback` command that re-executes the last
//! epoch under those watchpoints.  The managed-substrate analogue is a
//! *programmatic* debugger: a callback (the "debugger session") is invoked
//! when a fault is intercepted; it can read memory, inspect the fault, and
//! request watchpoints, and is later handed the watch hits observed during
//! the diagnostic replay.

use parking_lot::Mutex;
use std::sync::Arc;

use ireplayer::{EpochView, FaultRecord, MemAddr, Span, ToolHook, WatchHitReport};

/// The state of one debugging session, passed to the user callback when a
/// fault is intercepted.
pub struct DebugSession<'a> {
    fault: &'a FaultRecord,
    view: &'a dyn EpochView,
    watchpoints: Vec<Span>,
}

impl<'a> DebugSession<'a> {
    /// The fault that triggered the session.
    pub fn fault(&self) -> &FaultRecord {
        self.fault
    }

    /// Current epoch number.
    pub fn epoch(&self) -> u64 {
        self.view.epoch()
    }

    /// Reads managed memory (like `x/` in GDB).
    pub fn read_bytes(&self, addr: MemAddr, len: usize) -> Vec<u8> {
        self.view.read_bytes(addr, len)
    }

    /// Reads a 64-bit little-endian value from managed memory.
    pub fn read_u64(&self, addr: MemAddr) -> u64 {
        let bytes = self.view.read_bytes(addr, 8);
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&bytes);
        u64::from_le_bytes(buf)
    }

    /// Source location of the allocation containing `addr`, if known.
    pub fn alloc_site(&self, addr: MemAddr) -> Option<ireplayer::Site> {
        self.view.alloc_site(addr)
    }

    /// Installs a watchpoint for the diagnostic replay (like `watch` in
    /// GDB).  At most four are honoured per replay.
    pub fn watch(&mut self, span: Span) {
        self.watchpoints.push(span);
    }
}

type SessionCallback = dyn Fn(&mut DebugSession<'_>) + Send + Sync;

/// The interactive debugger hook.
///
/// Register a session callback with [`ReplayDebugger::on_fault_session`];
/// it runs when a fault is intercepted and decides which addresses to watch
/// during the rollback.  After the replay, [`ReplayDebugger::hits`] returns
/// the watchpoint hits (the "GDB stopped at watchpoint" notifications), and
/// [`ReplayDebugger::sessions`] the number of faults handled.
#[derive(Default)]
pub struct ReplayDebugger {
    callback: Mutex<Option<Box<SessionCallback>>>,
    hits: Mutex<Vec<WatchHitReport>>,
    faults: Mutex<Vec<FaultRecord>>,
}

impl ReplayDebugger {
    /// Creates a debugger, ready to be attached with
    /// [`ireplayer::Runtime::add_hook`].
    pub fn new() -> Arc<Self> {
        Arc::new(ReplayDebugger::default())
    }

    /// Registers the session callback invoked on every intercepted fault.
    pub fn on_fault_session<F>(&self, callback: F)
    where
        F: Fn(&mut DebugSession<'_>) + Send + Sync + 'static,
    {
        *self.callback.lock() = Some(Box::new(callback));
    }

    /// Watchpoint hits observed during diagnostic replays.
    pub fn hits(&self) -> Vec<WatchHitReport> {
        self.hits.lock().clone()
    }

    /// Faults intercepted so far.
    pub fn faults(&self) -> Vec<FaultRecord> {
        self.faults.lock().clone()
    }

    /// Number of debugging sessions run.
    pub fn sessions(&self) -> usize {
        self.faults.lock().len()
    }
}

impl std::fmt::Debug for ReplayDebugger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplayDebugger")
            .field("sessions", &self.sessions())
            .finish_non_exhaustive()
    }
}

impl ToolHook for ReplayDebugger {
    fn name(&self) -> &str {
        "replay-debugger"
    }

    fn on_fault(&self, fault: &FaultRecord, view: &dyn EpochView) -> Vec<Span> {
        self.faults.lock().push(fault.clone());
        let mut session = DebugSession {
            fault,
            view,
            watchpoints: Vec::new(),
        };
        if let Some(callback) = self.callback.lock().as_ref() {
            callback(&mut session);
        }
        session.watchpoints
    }

    fn on_watch_hit(&self, hit: &WatchHitReport) {
        self.hits.lock().push(hit.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ireplayer::{Config, Program, Runtime, Step};

    #[test]
    fn debugger_session_runs_on_fault_and_receives_watch_hits() {
        let config = Config::builder()
            .arena_size(8 << 20)
            .heap_block_size(128 << 10)
            .build()
            .unwrap();
        let runtime = Runtime::new(config).unwrap();
        let debugger = ReplayDebugger::new();
        runtime.add_hook(debugger.clone());

        // The session watches the memory cell the program scribbles on right
        // before crashing; the rollback replays the epoch and the watchpoint
        // fires at the culprit write.
        let watched_cell = std::sync::Arc::new(Mutex::new(None));
        let watched_for_cb = watched_cell.clone();
        debugger.on_fault_session(move |session| {
            assert!(session.epoch() == 0 || session.epoch() > 0);
            let addr = MemAddr::new(session.fault().epoch + 1); // placeholder, replaced below
            let _ = addr;
            if let Some(cell) = *watched_for_cb.lock() {
                assert_ne!(session.read_u64(cell), 0);
                session.watch(Span::new(cell, 8));
            }
        });

        let cell_for_program = watched_cell.clone();
        let report = runtime
            .run(Program::new("debug-me", move |ctx| {
                let cell = ctx.alloc(16);
                *cell_for_program.lock() = Some(cell);
                ctx.write_u64(cell, 0xfeed);
                ctx.crash("simulated abnormal exit");
                #[allow(unreachable_code)]
                Step::Done
            }))
            .unwrap();

        assert!(!report.outcome.is_success());
        assert_eq!(debugger.sessions(), 1);
        assert_eq!(debugger.faults().len(), 1);
        // The replay re-executed the write to the watched cell.
        assert!(!debugger.hits().is_empty());
        assert!(!format!("{debugger:?}").is_empty());
    }
}
