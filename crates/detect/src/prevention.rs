//! Evidence-based failure prevention (paper §1, "enables evidence-based
//! approaches to prevent program failures").
//!
//! The paper points out that an in-situ, identical RnR system can do more
//! than diagnose: once a failure's root cause is known, the runtime can be
//! reconfigured so the *same* class of failure no longer corrupts state --
//! for example by delaying the re-allocation of objects freed at a
//! use-after-free site, or by padding allocations at an overflow site.
//! This module implements that workflow for the two memory-error classes
//! the detection tools cover:
//!
//! 1. attach a [`PreventionAdvisor`] alongside the detectors;
//! 2. it accumulates the evidence the runtime exposes at epoch boundaries
//!    (corrupted canaries, modified quarantined objects) into
//!    [`PreventionAction`]s;
//! 3. [`PreventionPlan::harden`] applies the plan to a configuration for
//!    the next deployment: larger quarantine budgets (so discovered
//!    use-after-free sites keep hitting poisoned-but-unreused memory
//!    instead of live objects) and canaries/padding for discovered
//!    overflow sites.
//!
//! The plan is deliberately conservative: it never turns protection off,
//! and applying an empty plan leaves the configuration unchanged.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use std::sync::Arc;

use ireplayer::{Config, EpochDecision, EpochView, Site, ToolHook};

/// One hardening measure derived from observed evidence.
#[derive(Debug, Clone, PartialEq)]
pub enum PreventionAction {
    /// Delay the reuse of objects freed at `free_site` by keeping at least
    /// `quarantine_bytes` of freed memory quarantined.
    DelayFrees {
        /// Where the prematurely reused object was freed, if known.
        free_site: Option<Site>,
        /// Advised minimum quarantine budget in bytes.
        quarantine_bytes: usize,
    },
    /// Keep canaries enabled and pad allocations made at `alloc_site` by
    /// `pad_bytes` so the next overflow of the same object lands in padding
    /// instead of a neighbouring object.
    PadAllocations {
        /// Where the overflowed object was allocated, if known.
        alloc_site: Option<Site>,
        /// Advised padding in bytes.
        pad_bytes: usize,
    },
}

/// The accumulated hardening plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PreventionPlan {
    actions: Vec<PreventionAction>,
}

impl PreventionPlan {
    /// Creates a plan from a list of actions (used by tools and tests that
    /// assemble plans outside the advisor hook).
    pub fn from_actions(actions: Vec<PreventionAction>) -> Self {
        PreventionPlan { actions }
    }

    /// The individual actions, in the order the evidence was observed.
    pub fn actions(&self) -> &[PreventionAction] {
        &self.actions
    }

    /// Returns `true` if no evidence has been observed.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// The quarantine budget the plan advises (the maximum over all
    /// delay-frees actions), if any.
    pub fn advised_quarantine_bytes(&self) -> Option<usize> {
        self.actions
            .iter()
            .filter_map(|action| match action {
                PreventionAction::DelayFrees { quarantine_bytes, .. } => Some(*quarantine_bytes),
                PreventionAction::PadAllocations { .. } => None,
            })
            .max()
    }

    /// The allocation padding the plan advises (the maximum over all
    /// pad-allocations actions), if any.
    pub fn advised_padding_bytes(&self) -> Option<usize> {
        self.actions
            .iter()
            .filter_map(|action| match action {
                PreventionAction::PadAllocations { pad_bytes, .. } => Some(*pad_bytes),
                PreventionAction::DelayFrees { .. } => None,
            })
            .max()
    }

    /// Applies the plan to a configuration for the next run: enables
    /// canaries when an overflow was observed and raises the quarantine
    /// budget to the advised value when a use-after-free was observed.
    /// Hardening is monotone -- it never disables a protection or shrinks a
    /// budget -- and an empty plan returns the configuration unchanged.
    pub fn harden(&self, mut config: Config) -> Config {
        if self.advised_padding_bytes().is_some() {
            config.canaries = true;
        }
        if let Some(bytes) = self.advised_quarantine_bytes() {
            config.quarantine_bytes = config.quarantine_bytes.max(bytes);
        }
        config
    }

    /// Sites implicated by the plan, grouped by file and line, for
    /// human-readable summaries.
    pub fn implicated_sites(&self) -> Vec<Site> {
        let mut sites: BTreeMap<(String, u32, u32), Site> = BTreeMap::new();
        for action in &self.actions {
            let site = match action {
                PreventionAction::DelayFrees { free_site, .. } => free_site,
                PreventionAction::PadAllocations { alloc_site, .. } => alloc_site,
            };
            if let Some(site) = site {
                sites.insert((site.file.clone(), site.line, site.column), site.clone());
            }
        }
        sites.into_values().collect()
    }
}

impl std::fmt::Display for PreventionPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.actions.is_empty() {
            return f.write_str("no hardening required (no evidence observed)");
        }
        for action in &self.actions {
            match action {
                PreventionAction::DelayFrees {
                    free_site,
                    quarantine_bytes,
                } => {
                    write!(f, "delay frees")?;
                    if let Some(site) = free_site {
                        write!(f, " at {site}")?;
                    }
                    writeln!(f, ": keep >= {quarantine_bytes} bytes quarantined")?;
                }
                PreventionAction::PadAllocations { alloc_site, pad_bytes } => {
                    write!(f, "pad allocations")?;
                    if let Some(site) = alloc_site {
                        write!(f, " at {site}")?;
                    }
                    writeln!(f, ": reserve {pad_bytes} guard bytes")?;
                }
            }
        }
        Ok(())
    }
}

/// Tool hook that converts detector evidence into a [`PreventionPlan`].
///
/// The advisor never requests replays itself (diagnosis belongs to the
/// detectors); it only observes the same evidence and accumulates the plan.
///
/// # Example
///
/// ```
/// use ireplayer::{Program, Runtime, Step};
/// use ireplayer_detect::{detection_config, PreventionAdvisor};
///
/// # fn main() -> Result<(), ireplayer::Error> {
/// let config = detection_config()
///     .arena_size(8 << 20)
///     .heap_block_size(128 << 10)
///     .build()?;
/// let runtime = Runtime::new(config)?;
/// let advisor = PreventionAdvisor::new();
/// runtime.add_hook(advisor.clone());
///
/// let report = runtime.run(Program::new("uaf", |ctx| {
///     let object = ctx.alloc(64);
///     ctx.free(object);
///     ctx.write_u64(object, 7); // use after free
///     Step::Done
/// }))?;
/// assert!(report.outcome.is_success());
/// let plan = advisor.plan();
/// assert!(plan.advised_quarantine_bytes().is_some());
/// // The next deployment starts from a hardened configuration.
/// let hardened = plan.harden(detection_config().build()?);
/// assert!(hardened.quarantine_bytes > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct PreventionAdvisor {
    plan: Mutex<PreventionPlan>,
}

/// Default quarantine budget advised per discovered use-after-free, chosen
/// to match AddressSanitizer's default per-thread quarantine ballpark.
const ADVISED_QUARANTINE_BYTES: usize = 1 << 20;

/// Default padding advised per discovered overflow: one cache line past the
/// requested size absorbs small off-by-N overwrites.
const ADVISED_PAD_BYTES: usize = 64;

impl PreventionAdvisor {
    /// Creates an advisor, ready to be attached with
    /// [`ireplayer::Runtime::add_hook`].
    pub fn new() -> Arc<Self> {
        Arc::new(PreventionAdvisor::default())
    }

    /// The plan accumulated so far.
    pub fn plan(&self) -> PreventionPlan {
        self.plan.lock().clone()
    }
}

impl ToolHook for PreventionAdvisor {
    fn name(&self) -> &str {
        "failure-prevention-advisor"
    }

    fn at_epoch_end(&self, view: &dyn EpochView) -> EpochDecision {
        let mut plan = self.plan.lock();
        for corruption in view.corrupted_canaries() {
            plan.actions.push(PreventionAction::PadAllocations {
                alloc_site: view.alloc_site(corruption.guarded),
                pad_bytes: ADVISED_PAD_BYTES.max(corruption.span.len as usize),
            });
        }
        for evidence in view.use_after_free_evidence() {
            plan.actions.push(PreventionAction::DelayFrees {
                free_site: view.free_site(evidence.entry.payload),
                quarantine_bytes: ADVISED_QUARANTINE_BYTES.max(evidence.entry.requested.saturating_mul(8)),
            });
        }
        // Diagnosis (and therefore the replay decision) is left to the
        // detection tools; the advisor only listens.
        EpochDecision::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn an_empty_plan_changes_nothing_and_says_so() {
        let plan = PreventionPlan::default();
        assert!(plan.is_empty());
        assert_eq!(plan.advised_quarantine_bytes(), None);
        assert_eq!(plan.advised_padding_bytes(), None);
        assert!(plan.to_string().contains("no hardening required"));
        let baseline = crate::detection_config().build().unwrap();
        let hardened = plan.harden(baseline.clone());
        assert_eq!(baseline, hardened);
    }

    #[test]
    fn plans_merge_evidence_into_conservative_advice() {
        let plan = PreventionPlan {
            actions: vec![
                PreventionAction::DelayFrees {
                    free_site: Some(Site {
                        file: "cache.rs".into(),
                        line: 10,
                        column: 5,
                    }),
                    quarantine_bytes: 4096,
                },
                PreventionAction::DelayFrees {
                    free_site: None,
                    quarantine_bytes: 1 << 20,
                },
                PreventionAction::PadAllocations {
                    alloc_site: Some(Site {
                        file: "parser.rs".into(),
                        line: 99,
                        column: 1,
                    }),
                    pad_bytes: 64,
                },
            ],
        };
        assert_eq!(plan.advised_quarantine_bytes(), Some(1 << 20));
        assert_eq!(plan.advised_padding_bytes(), Some(64));
        assert_eq!(plan.implicated_sites().len(), 2);
        let text = plan.to_string();
        assert!(text.contains("cache.rs:10:5"));
        assert!(text.contains("parser.rs:99:1"));
        let config = plan.harden(ireplayer::Config::default());
        assert!(config.canaries);
        assert_eq!(config.quarantine_bytes, 1 << 20);
    }
}
