//! Use-after-free detection (paper §4.2).
//!
//! The runtime quarantines freed objects (when configured) and poisons their
//! first 128 bytes.  This hook scans the quarantine at epoch boundaries; any
//! modified poison byte is evidence that freed memory was written.  The hook
//! replays the epoch with watchpoints on the modified addresses to identify
//! the faulting write, and reports the allocation site, the free site, and
//! the use-after-free site.

use parking_lot::Mutex;
use std::sync::Arc;

use ireplayer::{EpochDecision, EpochView, MemAddr, ReplayRequest, Span, ToolHook, WatchHitReport};

use crate::report::{BugKind, BugReport, Culprit};

/// The use-after-free detector hook.
///
/// # Example
///
/// ```
/// use ireplayer::{Program, Runtime, Step};
/// use ireplayer_detect::{detection_config, UseAfterFreeDetector};
///
/// # fn main() -> Result<(), ireplayer::Error> {
/// let config = detection_config()
///     .arena_size(8 << 20)
///     .heap_block_size(128 << 10)
///     .build()?;
/// let runtime = Runtime::new(config)?;
/// let detector = UseAfterFreeDetector::new();
/// runtime.add_hook(detector.clone());
///
/// let report = runtime.run(Program::new("uaf", |ctx| {
///     let buffer = ctx.alloc(64);
///     ctx.write_u64(buffer, 1);
///     ctx.free(buffer);
///     // The object is quarantined; this dangling write is a use-after-free.
///     ctx.write_u64(buffer + 8, 2);
///     Step::Done
/// }))?;
/// assert!(report.outcome.is_success());
/// assert_eq!(detector.reports().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct UseAfterFreeDetector {
    state: Mutex<DetectorState>,
}

#[derive(Debug, Default)]
struct DetectorState {
    pending: Vec<PendingBug>,
    hits: Vec<WatchHitReport>,
    reports: Vec<BugReport>,
    replays_requested: u64,
}

#[derive(Debug, Clone)]
struct PendingBug {
    corrupted: MemAddr,
    object: MemAddr,
    watched: Span,
    epoch: u64,
}

impl UseAfterFreeDetector {
    /// Creates a detector, ready to be attached with
    /// [`ireplayer::Runtime::add_hook`].
    pub fn new() -> Arc<Self> {
        Arc::new(UseAfterFreeDetector::default())
    }

    /// The bug reports assembled so far.
    pub fn reports(&self) -> Vec<BugReport> {
        self.state.lock().reports.clone()
    }

    /// Number of diagnostic replays this detector has requested.
    pub fn replays_requested(&self) -> u64 {
        self.state.lock().replays_requested
    }
}

impl ToolHook for UseAfterFreeDetector {
    fn name(&self) -> &str {
        "use-after-free-detector"
    }

    fn at_epoch_end(&self, view: &dyn EpochView) -> EpochDecision {
        let evidence = view.use_after_free_evidence();
        if evidence.is_empty() {
            return EpochDecision::Continue;
        }
        let mut state = self.state.lock();
        let mut request = ReplayRequest::because("use-after-free: modified quarantined object");
        for item in evidence {
            // Watch the start of the freed object's poisoned prefix around
            // the first modified byte.
            let watched = Span::new(item.first_bad_byte, 8);
            state.pending.push(PendingBug {
                corrupted: item.first_bad_byte,
                object: item.entry.payload,
                watched,
                epoch: view.epoch(),
            });
            request = request.watch(watched);
        }
        state.hits.clear();
        state.replays_requested += 1;
        EpochDecision::Replay(request)
    }

    fn on_watch_hit(&self, hit: &WatchHitReport) {
        self.state.lock().hits.push(hit.clone());
    }

    fn after_replay(&self, view: &dyn EpochView, _matched: bool, _attempts: u32) {
        let mut state = self.state.lock();
        let pending = std::mem::take(&mut state.pending);
        let hits = std::mem::take(&mut state.hits);
        for bug in pending {
            let culprit = hits
                .iter()
                .find(|hit| hit.watched.overlaps(&bug.watched) || hit.access.contains(bug.corrupted))
                .map(|hit| Culprit {
                    watched: hit.watched,
                    access: hit.access,
                    thread: hit.thread.0,
                    site: hit.site.clone(),
                });
            let report = BugReport {
                kind: BugKind::UseAfterFree,
                corrupted: bug.corrupted,
                object: bug.object,
                alloc_site: view.alloc_site(bug.object),
                free_site: view.free_site(bug.object),
                culprit,
                epoch: bug.epoch,
            };
            state.reports.push(report);
        }
    }
}
