//! Heap-overflow detection (paper §4.1).
//!
//! The runtime plants canaries after every allocation (when configured).
//! At each epoch boundary this hook scans the canaries; any overwritten
//! canary is incontrovertible evidence of an overflow.  The hook then
//! requests a replay of the epoch with watchpoints installed on the
//! corrupted addresses (at most four per replay, the hardware debug-register
//! limit), and assembles a [`BugReport`] naming the allocation site and the
//! faulting write.

use parking_lot::Mutex;
use std::sync::Arc;

use ireplayer::{EpochDecision, EpochView, MemAddr, ReplayRequest, Span, ToolHook, WatchHitReport};

use crate::report::{BugKind, BugReport, Culprit};

/// The heap-overflow detector hook.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use ireplayer::{Program, Runtime, Step};
/// use ireplayer_detect::{detection_config, OverflowDetector};
///
/// # fn main() -> Result<(), ireplayer::Error> {
/// let config = detection_config()
///     .arena_size(8 << 20)
///     .heap_block_size(128 << 10)
///     .build()?;
/// let runtime = Runtime::new(config)?;
/// let detector = OverflowDetector::new();
/// runtime.add_hook(detector.clone());
///
/// let report = runtime.run(Program::new("overflow", |ctx| {
///     let buffer = ctx.alloc(32);
///     // Write one element past the end of the 32-byte buffer.
///     ctx.write_u64(buffer + 32, 0xbad);
///     Step::Done
/// }))?;
/// assert!(report.outcome.is_success());
/// let bugs = detector.reports();
/// assert_eq!(bugs.len(), 1);
/// assert!(bugs[0].culprit.is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct OverflowDetector {
    state: Mutex<DetectorState>,
}

#[derive(Debug, Default)]
struct DetectorState {
    /// Corruption found at the last epoch end, waiting for the replay's
    /// watch hits.
    pending: Vec<PendingBug>,
    /// Watch hits observed during the current diagnostic replay.
    hits: Vec<WatchHitReport>,
    /// Finalized reports.
    reports: Vec<BugReport>,
    /// Number of diagnostic replays requested.
    replays_requested: u64,
}

#[derive(Debug, Clone)]
struct PendingBug {
    corrupted: MemAddr,
    span: Span,
    object: MemAddr,
    epoch: u64,
}

impl OverflowDetector {
    /// Creates a detector, ready to be attached with
    /// [`ireplayer::Runtime::add_hook`].
    pub fn new() -> Arc<Self> {
        Arc::new(OverflowDetector::default())
    }

    /// The bug reports assembled so far.
    pub fn reports(&self) -> Vec<BugReport> {
        self.state.lock().reports.clone()
    }

    /// Number of diagnostic replays this detector has requested.
    pub fn replays_requested(&self) -> u64 {
        self.state.lock().replays_requested
    }
}

impl ToolHook for OverflowDetector {
    fn name(&self) -> &str {
        "heap-overflow-detector"
    }

    fn at_epoch_end(&self, view: &dyn EpochView) -> EpochDecision {
        let corrupted = view.corrupted_canaries();
        if corrupted.is_empty() {
            return EpochDecision::Continue;
        }
        let mut state = self.state.lock();
        let mut request = ReplayRequest::because("heap overflow: corrupted allocation canary");
        for evidence in corrupted {
            state.pending.push(PendingBug {
                corrupted: evidence.first_bad_byte,
                span: evidence.span,
                object: evidence.guarded,
                epoch: view.epoch(),
            });
            request = request.watch(evidence.span);
        }
        state.hits.clear();
        state.replays_requested += 1;
        EpochDecision::Replay(request)
    }

    fn on_watch_hit(&self, hit: &WatchHitReport) {
        self.state.lock().hits.push(hit.clone());
    }

    fn after_replay(&self, view: &dyn EpochView, _matched: bool, _attempts: u32) {
        let mut state = self.state.lock();
        let pending = std::mem::take(&mut state.pending);
        let hits = std::mem::take(&mut state.hits);
        for bug in pending {
            let culprit = hits
                .iter()
                .find(|hit| hit.watched.overlaps(&bug.span) || hit.access.overlaps(&bug.span))
                .map(|hit| Culprit {
                    watched: hit.watched,
                    access: hit.access,
                    thread: hit.thread.0,
                    site: hit.site.clone(),
                });
            let report = BugReport {
                kind: BugKind::HeapOverflow,
                corrupted: bug.corrupted,
                object: bug.object,
                alloc_site: view.alloc_site(bug.object),
                free_site: None,
                culprit,
                epoch: bug.epoch,
            };
            state.reports.push(report);
        }
    }
}
