//! Bug reports produced by the detection tools.

use std::fmt;

use serde::{Deserialize, Serialize};

use ireplayer::{MemAddr, Site, Span};

/// The kind of memory error a report describes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BugKind {
    /// A write past the end of a heap allocation.
    HeapOverflow,
    /// A write to an object after it was freed.
    UseAfterFree,
}

impl fmt::Display for BugKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BugKind::HeapOverflow => f.write_str("heap buffer overflow"),
            BugKind::UseAfterFree => f.write_str("use after free"),
        }
    }
}

/// A diagnosed memory error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BugReport {
    /// What kind of error was found.
    pub kind: BugKind,
    /// The corrupted address (first overwritten canary / poison byte).
    pub corrupted: MemAddr,
    /// The allocation the corruption belongs to (payload address).
    pub object: MemAddr,
    /// Where the object was allocated, if known.
    pub alloc_site: Option<Site>,
    /// Where the object was freed (use-after-free only), if known.
    pub free_site: Option<Site>,
    /// The write that corrupted the memory, identified by a watchpoint hit
    /// during the diagnostic replay: the watched range, the access, and the
    /// source location of the faulting write.
    pub culprit: Option<Culprit>,
    /// Epoch in which the corruption was detected.
    pub epoch: u64,
}

/// The faulting write identified during the diagnostic replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Culprit {
    /// The watched (corrupted) range.
    pub watched: Span,
    /// The write access that hit it.
    pub access: Span,
    /// Thread that performed the write.
    pub thread: u32,
    /// Source location of the write.
    pub site: Option<Site>,
}

impl fmt::Display for BugReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on object {} (corrupted byte {})",
            self.kind, self.object, self.corrupted
        )?;
        if let Some(site) = &self.alloc_site {
            write!(f, "\n  allocated at {site}")?;
        }
        if let Some(site) = &self.free_site {
            write!(f, "\n  freed at     {site}")?;
        }
        match &self.culprit {
            Some(culprit) => {
                write!(
                    f,
                    "\n  corrupted by a {}-byte write at {} from thread {}",
                    culprit.access.len, culprit.access.addr, culprit.thread
                )?;
                if let Some(site) = &culprit.site {
                    write!(f, "\n  faulting statement: {site}")?;
                }
            }
            None => write!(f, "\n  culprit write not identified (no watch hit)")?,
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_render_all_known_information() {
        let report = BugReport {
            kind: BugKind::HeapOverflow,
            corrupted: MemAddr::new(0x140),
            object: MemAddr::new(0x100),
            alloc_site: Some(Site {
                file: "app.rs".into(),
                line: 10,
                column: 9,
            }),
            free_site: None,
            culprit: Some(Culprit {
                watched: Span::new(MemAddr::new(0x140), 8),
                access: Span::new(MemAddr::new(0x140), 8),
                thread: 2,
                site: Some(Site {
                    file: "app.rs".into(),
                    line: 42,
                    column: 13,
                }),
            }),
            epoch: 0,
        };
        let text = report.to_string();
        assert!(text.contains("heap buffer overflow"));
        assert!(text.contains("app.rs:10:9"));
        assert!(text.contains("app.rs:42:13"));
        assert!(text.contains("thread 2"));

        let without = BugReport {
            culprit: None,
            kind: BugKind::UseAfterFree,
            ..report
        };
        assert!(without.to_string().contains("use after free"));
        assert!(without.to_string().contains("not identified"));
    }
}
