//! Synchronization primitives: recording and replay of mutexes, try-locks,
//! condition variables, barriers, thread creation and joins (paper §3.2.1,
//! §3.5.1).
//!
//! Every operation has three paths selected **once** per operation (the
//! [`crate::sink::op_phase`] dispatch):
//!
//! * **passthrough** -- execute the primitive directly (baseline and
//!   IR-Alloc configurations);
//! * **recording** -- execute the primitive, then append the event to the
//!   thread's per-thread list and (for ordered operations) to the
//!   variable's per-variable list, both lock-free via
//!   [`crate::sink::RecordSink`];
//! * **replaying** -- verify that the operation matches the next recorded
//!   event of the thread (divergence otherwise), wait until the variable's
//!   per-variable list says it is this thread's turn, then perform the
//!   primitive and return the recorded result.
//!
//! Blocking waits spin briefly, then yield, then fall back to short
//! condition-variable waits with a growing slice ([`Backoff`]) so that
//! uncontended waits resolve in nanoseconds while pending abort and
//! epoch-end flags are still observed promptly.

use std::sync::atomic::Ordering;
use std::time::Duration;

use ireplayer_log::{Divergence, DivergenceKind, EventKind, SyncOp, ThreadId};

use crate::fault::{unwind_with, UnwindSignal};
use crate::sink::RecordSink;
use crate::state::{ExecPhase, RtInner, SyncVar, VThread};
use crate::stats::Counters;

/// Result value recorded for the serial thread of a barrier wait.
pub const BARRIER_SERIAL: i64 = 1;

// ---------------------------------------------------------------------------
// Spin-then-yield backoff for blocking waits.
// ---------------------------------------------------------------------------

/// Wait strategy for replay turns and blocked primitives: spin a few times
/// (an uncontended wait usually resolves within nanoseconds), then yield the
/// core, then sleep on the condition variable with a slice that grows from
/// 50 microseconds to 1 millisecond -- instead of unconditionally parking
/// for a whole 2 ms scheduler quantum as the old fixed `WAIT_SLICE` did.
pub(crate) struct Backoff {
    step: u32,
}

impl Backoff {
    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;
    const MIN_SLICE_US: u64 = 50;
    const MAX_SLICE_US: u64 = 1_000;

    pub fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Returns `true` once the busy (spin/yield) phase is over and the
    /// caller should sleep on a condition variable via [`Backoff::slice`].
    pub fn exhausted(&self) -> bool {
        self.step >= Self::YIELD_LIMIT
    }

    /// Busy phase: spins (doubling the pause each round), then yields.
    /// Returns `false` once the caller should fall back to sleeping on a
    /// condition variable via [`Backoff::slice`].
    pub fn snooze(&mut self) -> bool {
        if self.step < Self::SPIN_LIMIT {
            for _ in 0..(1 << self.step) {
                std::hint::spin_loop();
            }
            self.step += 1;
            true
        } else if self.step < Self::YIELD_LIMIT {
            std::thread::yield_now();
            self.step += 1;
            true
        } else {
            false
        }
    }

    /// Condvar wait slice for the current step: starts at 50 µs and doubles
    /// up to 1 ms, so a missed notification never costs more than a
    /// millisecond while late waiters stop burning CPU.
    pub fn slice(&mut self) -> Duration {
        let exp = self.step.saturating_sub(Self::YIELD_LIMIT).min(10);
        self.step = self.step.saturating_add(1);
        let us = (Self::MIN_SLICE_US << exp).min(Self::MAX_SLICE_US);
        Duration::from_micros(us)
    }
}

// ---------------------------------------------------------------------------
// Recording helpers.
// ---------------------------------------------------------------------------

/// Marks the current step as dirty: it has produced a side effect and can no
/// longer be re-parked for a pending epoch end.
pub(crate) fn mark_dirty(vt: &VThread) {
    vt.step_dirty.store(true, Ordering::Release);
}

// ---------------------------------------------------------------------------
// Replay helpers.
// ---------------------------------------------------------------------------

/// Verifies that the operation the thread is about to perform matches its
/// next recorded event; signals a divergence (and aborts the re-execution)
/// otherwise.  Returns the recorded event (one copy off the list -- callers
/// that need the full outcome use this instead of peeking twice).  Reads
/// the thread's own list lock-free.
pub(crate) fn replay_expect_event(rt: &RtInner, vt: &VThread, actual: &EventKind) -> ireplayer_log::Event {
    apply_planned_delay(rt, vt);
    match vt.list.peek() {
        Some(event) if event.kind.same_operation(actual) => event,
        Some(event) => {
            signal_divergence(
                rt,
                vt,
                DivergenceKind::WrongOperation {
                    expected: event.kind,
                    actual: actual.clone(),
                },
            );
        }
        None => {
            signal_divergence(rt, vt, DivergenceKind::ExtraOperation { actual: actual.clone() });
        }
    }
}

/// [`replay_expect_event`], reduced to the recorded result value.
pub(crate) fn replay_expect(rt: &RtInner, vt: &VThread, actual: &EventKind) -> i64 {
    match replay_expect_event(rt, vt, actual).kind {
        EventKind::Sync { result, .. } => result,
        EventKind::Syscall { outcome, .. } => outcome.ret,
    }
}

/// Registers a divergence, requests an abort of the current re-execution,
/// and unwinds.  When the thread is running a drain segment (its target was
/// already reached and it is only consuming trailing events), exhaustion of
/// the list is expected and the thread simply parks.
pub(crate) fn signal_divergence(rt: &RtInner, vt: &VThread, kind: DivergenceKind) -> ! {
    // A drain-mode thread that runs out of recorded events is done, not
    // divergent (see DESIGN.md on interrupted trailing steps).
    if matches!(kind, DivergenceKind::ExtraOperation { .. }) {
        let control = vt.control.lock();
        let past_target = control
            .command
            .map(|c| match c {
                crate::state::Command::Run { target: Some(t), .. } => control.segment_steps >= t,
                _ => false,
            })
            .unwrap_or(false);
        drop(control);
        if past_target && vt.list.replay_complete() {
            unwind_with(UnwindSignal::ReparkCleanStep);
        }
    }
    let at_index = vt.list.cursor();
    let attempt = rt.replay_attempt.load(Ordering::Acquire);
    crate::state::rt_trace!("{:?} divergence at index {at_index}: {kind:?}", vt.id);
    Counters::bump(&rt.counters.divergences);
    let record = Divergence {
        thread: vt.id,
        at_index,
        attempt,
        kind,
    };
    rt.emit_event(|| crate::events::SessionEvent::Diverged {
        divergence: record.clone(),
    });
    rt.epoch.lock().divergences.push(record);
    rt.abort_requested.store(true, Ordering::Release);
    rt.poke_world();
    unwind_with(UnwindSignal::EpochAbort)
}

/// Applies any planned divergence delay for the event the thread is about to
/// replay (§3.5.2: random sleeps at diverging points, without changing the
/// recorded order).  The common case -- no delays planned for this attempt
/// -- is a single atomic load.
fn apply_planned_delay(rt: &RtInner, vt: &VThread) {
    if !rt.delay_plan_active.load(Ordering::Acquire) {
        return;
    }
    let cursor = vt.list.cursor() as u32;
    let delay_us = rt.delay_plan.lock().get(&(vt.id, cursor)).copied();
    if let Some(us) = delay_us {
        if us > 0 {
            std::thread::sleep(Duration::from_micros(us));
        }
    }
}

/// Advances the thread-list cursor (after a successful replayed operation).
/// The event was already inspected via `replay_expect*`, so no copy is made.
pub(crate) fn replay_advance_thread(vt: &VThread) {
    vt.list.skip();
}

/// Blocks until the per-variable list says it is this thread's turn for
/// `var`, honouring aborts.  The turn check is lock-free, so the wait spins
/// and yields before falling back to the condition variable.
pub(crate) fn wait_for_turn(rt: &RtInner, vt: &VThread, var: &SyncVar) {
    let mut backoff = Backoff::new();
    loop {
        if rt.abort_pending() {
            unwind_with(UnwindSignal::EpochAbort);
        }
        if var.var_list.is_turn(vt.id) {
            return;
        }
        if backoff.snooze() {
            continue;
        }
        let slice = backoff.slice();
        let mut state = var.state.lock();
        // Re-check under the lock to avoid a missed notification.
        if var.var_list.is_turn(vt.id) {
            return;
        }
        var.cv.wait_for(&mut state, slice);
    }
}

// ---------------------------------------------------------------------------
// Abort / re-park checks used inside blocking primitives.
// ---------------------------------------------------------------------------

/// Called inside blocking waits: honours a pending abort, and re-parks a
/// still-pristine step when a continue-type epoch end is pending so that the
/// world can reach quiescence.
fn check_blocking_flags(rt: &RtInner, vt: &VThread) {
    if rt.abort_pending() {
        unwind_with(UnwindSignal::EpochAbort);
    }
    if rt.epoch_end_pending() && !rt.replaying() && !vt.step_is_dirty() {
        unwind_with(UnwindSignal::ReparkCleanStep);
    }
}

// ---------------------------------------------------------------------------
// Mutexes.
// ---------------------------------------------------------------------------

/// Acquires the raw mutex state (no recording).
fn raw_lock(rt: &RtInner, vt: &VThread, var: &SyncVar) {
    let mut backoff = Backoff::new();
    loop {
        {
            let mut state = var.state.lock();
            if !state.locked {
                state.locked = true;
                state.owner = Some(vt.id);
                return;
            }
            check_blocking_flags(rt, vt);
            if backoff.exhausted() {
                // Past the busy phase: sleep on the condition variable (the
                // wait releases the state lock) with a growing slice.
                let slice = backoff.slice();
                var.cv.wait_for(&mut state, slice);
                continue;
            }
        }
        // Busy phase: spin or yield *without* holding the state lock, so
        // the current holder can release unimpeded.
        backoff.snooze();
    }
}

/// Releases the raw mutex state (no recording).
fn raw_unlock(var: &SyncVar) {
    {
        let mut state = var.state.lock();
        state.locked = false;
        state.owner = None;
    }
    var.cv.notify_all();
}

/// Mutex acquisition.
pub(crate) fn mutex_lock(rt: &RtInner, vt: &VThread, var: &SyncVar) {
    match crate::sink::op_phase(rt) {
        ExecPhase::Replaying => {
            let actual = EventKind::Sync {
                var: var.id,
                op: SyncOp::MutexLock,
                result: 0,
            };
            replay_expect(rt, vt, &actual);
            wait_for_turn(rt, vt, var);
            raw_lock(rt, vt, var);
            replay_advance_thread(vt);
            var.var_list.advance();
            var.cv.notify_all();
        }
        phase => {
            // Waiting for the lock is side-effect free, so the dirty mark is
            // set only once the acquisition succeeds; a pristine step blocked
            // here can still be re-parked for a pending epoch end.
            raw_lock(rt, vt, var);
            mark_dirty(vt);
            if phase == ExecPhase::Recording {
                RecordSink::new(rt, vt).sync(var, SyncOp::MutexLock, 0);
            }
        }
    }
    // SAFETY: `vt` is the state of the thread executing this operation, the
    // sole writer of its own held-locks set; coordinator clears happen only
    // at quiescence, when no thread is inside an operation.
    #[allow(unsafe_code)]
    unsafe {
        vt.held_locks.push(var.id);
    }
}

/// Mutex try-acquisition; returns whether the lock was obtained.
pub(crate) fn mutex_trylock(rt: &RtInner, vt: &VThread, var: &SyncVar) -> bool {
    match crate::sink::op_phase(rt) {
        ExecPhase::Replaying => {
            let actual = EventKind::Sync {
                var: var.id,
                op: SyncOp::MutexTryLock,
                result: 0,
            };
            let recorded = replay_expect(rt, vt, &actual) != 0;
            if recorded {
                wait_for_turn(rt, vt, var);
                raw_lock(rt, vt, var);
                var.var_list.advance();
                var.cv.notify_all();
                // SAFETY: owner-thread append to its own held-locks set; no
                // concurrent clear outside quiescence.
                #[allow(unsafe_code)]
                unsafe {
                    vt.held_locks.push(var.id);
                }
            }
            replay_advance_thread(vt);
            recorded
        }
        phase => {
            mark_dirty(vt);
            let acquired = {
                let mut state = var.state.lock();
                if state.locked {
                    false
                } else {
                    state.locked = true;
                    state.owner = Some(vt.id);
                    true
                }
            };
            if phase == ExecPhase::Recording {
                // The attempt always enters the thread list; only successful
                // acquisitions enter the per-variable list (§3.2.1).
                let sink = RecordSink::new(rt, vt);
                let index = sink.thread_event(EventKind::Sync {
                    var: var.id,
                    op: SyncOp::MutexTryLock,
                    result: i64::from(acquired),
                });
                if acquired {
                    var.var_list.append(vt.id, SyncOp::MutexTryLock, index);
                }
            }
            if acquired {
                // SAFETY: owner-thread append to its own held-locks set; no
                // concurrent clear outside quiescence.
                #[allow(unsafe_code)]
                unsafe {
                    vt.held_locks.push(var.id);
                }
            }
            acquired
        }
    }
}

/// Mutex release.  Not recorded: within a thread the release order follows
/// program order, and across threads the next acquisition is what matters.
pub(crate) fn mutex_unlock(_rt: &RtInner, vt: &VThread, var: &SyncVar) {
    raw_unlock(var);
    // SAFETY: owner-thread removal from its own held-locks set; no
    // concurrent clear outside quiescence.
    #[allow(unsafe_code)]
    unsafe {
        vt.held_locks.release(var.id);
    }
}

// ---------------------------------------------------------------------------
// Condition variables.
// ---------------------------------------------------------------------------

/// Waits on condition variable `cv_var`, releasing and re-acquiring
/// `mutex_var` around the wait.  The wake-up is recorded (as a `CondWake`
/// event); the signal/broadcast themselves are not (§3.2.1).
pub(crate) fn cond_wait(rt: &RtInner, vt: &VThread, cv_var: &SyncVar, mutex_var: &SyncVar) {
    mutex_unlock(rt, vt, mutex_var);
    match crate::sink::op_phase(rt) {
        ExecPhase::Replaying => {
            let actual = EventKind::Sync {
                var: cv_var.id,
                op: SyncOp::CondWake,
                result: 0,
            };
            replay_expect(rt, vt, &actual);
            // Wait for the recorded wake-up turn and for a signal to have
            // been produced by the re-execution.
            {
                let mut backoff = Backoff::new();
                let mut state = cv_var.state.lock();
                state.waiters += 1;
                loop {
                    if rt.abort_pending() {
                        state.waiters -= 1;
                        drop(state);
                        unwind_with(UnwindSignal::EpochAbort);
                    }
                    let turn = cv_var.var_list.is_turn(vt.id);
                    if turn && state.pending_signals > 0 {
                        state.pending_signals -= 1;
                        state.waiters -= 1;
                        break;
                    }
                    let slice = backoff.slice();
                    cv_var.cv.wait_for(&mut state, slice);
                }
            }
            replay_advance_thread(vt);
            cv_var.var_list.advance();
            cv_var.cv.notify_all();
        }
        phase => {
            mark_dirty(vt);
            {
                let mut backoff = Backoff::new();
                let mut state = cv_var.state.lock();
                state.waiters += 1;
                loop {
                    if rt.abort_pending() {
                        state.waiters -= 1;
                        drop(state);
                        unwind_with(UnwindSignal::EpochAbort);
                    }
                    if state.pending_signals > 0 {
                        state.pending_signals -= 1;
                        state.waiters -= 1;
                        break;
                    }
                    let slice = backoff.slice();
                    cv_var.cv.wait_for(&mut state, slice);
                }
            }
            if phase == ExecPhase::Recording {
                RecordSink::new(rt, vt).sync(cv_var, SyncOp::CondWake, 0);
            }
        }
    }
    mutex_lock(rt, vt, mutex_var);
}

/// Signals one waiter of `cv_var`.  Not recorded.
pub(crate) fn cond_signal(rt: &RtInner, _vt: &VThread, cv_var: &SyncVar) {
    {
        let mut state = cv_var.state.lock();
        if rt.replaying() {
            // During replay signals are never lost, so that the recorded
            // wake order can always be satisfied even if the signal is
            // re-produced before the waiter re-blocks.
            state.pending_signals += 1;
        } else if state.pending_signals < state.waiters {
            state.pending_signals += 1;
        }
    }
    cv_var.cv.notify_all();
}

/// Wakes all waiters of `cv_var`.  Not recorded.
pub(crate) fn cond_broadcast(rt: &RtInner, _vt: &VThread, cv_var: &SyncVar) {
    {
        let mut state = cv_var.state.lock();
        if rt.replaying() {
            state.pending_signals += state.waiters.max(1);
        } else {
            state.pending_signals = state.waiters;
        }
    }
    cv_var.cv.notify_all();
}

// ---------------------------------------------------------------------------
// Barriers.
// ---------------------------------------------------------------------------

/// Waits on a barrier of `parties` threads.  Returns `true` for exactly one
/// (the "serial") thread per generation, mirroring
/// `PTHREAD_BARRIER_SERIAL_THREAD`.  The entry order is not recorded (§3.2.1:
/// "a thread waiting on a barrier will not change the state"); only the
/// return value is.
pub(crate) fn barrier_wait(rt: &RtInner, vt: &VThread, var: &SyncVar, parties: u32) -> bool {
    match crate::sink::op_phase(rt) {
        ExecPhase::Replaying => {
            let actual = EventKind::Sync {
                var: var.id,
                op: SyncOp::BarrierWait,
                result: 0,
            };
            let recorded = replay_expect(rt, vt, &actual);
            raw_barrier_wait(rt, vt, var, parties);
            replay_advance_thread(vt);
            recorded == BARRIER_SERIAL
        }
        phase => {
            mark_dirty(vt);
            let serial = raw_barrier_wait(rt, vt, var, parties);
            if phase == ExecPhase::Recording {
                let result = if serial { BARRIER_SERIAL } else { 0 };
                RecordSink::new(rt, vt).thread_event(EventKind::Sync {
                    var: var.id,
                    op: SyncOp::BarrierWait,
                    result,
                });
            }
            serial
        }
    }
}

fn raw_barrier_wait(rt: &RtInner, vt: &VThread, var: &SyncVar, parties: u32) -> bool {
    let mut state = var.state.lock();
    let generation = state.barrier_generation;
    state.barrier_count += 1;
    if state.barrier_count >= parties {
        state.barrier_count = 0;
        state.barrier_generation += 1;
        drop(state);
        var.cv.notify_all();
        true
    } else {
        let mut backoff = Backoff::new();
        while state.barrier_generation == generation {
            if rt.abort_pending() {
                // Leave the barrier consistent before unwinding: the whole
                // generation is going to be rolled back anyway.
                state.barrier_count = state.barrier_count.saturating_sub(1);
                drop(state);
                unwind_with(UnwindSignal::EpochAbort);
            }
            // A pristine-step re-park is *not* safe here: other threads may
            // already count on this arrival, so only aborts interrupt a
            // barrier wait.
            let slice = backoff.slice();
            var.cv.wait_for(&mut state, slice);
        }
        let _ = vt;
        false
    }
}

// ---------------------------------------------------------------------------
// Thread creation and joins (recording side; the runtime module owns the
// actual OS-thread management).
// ---------------------------------------------------------------------------

/// Records a thread-creation event on the global creation variable.
pub(crate) fn record_thread_create(rt: &RtInner, vt: &VThread, child: ThreadId) {
    let var = rt.sync_var(crate::state::CREATION_VAR);
    RecordSink::new(rt, vt).sync(&var, SyncOp::ThreadCreate, i64::from(child.0));
}

/// During replay, verifies and orders the thread-creation event, returning
/// the recorded child id.
pub(crate) fn replay_thread_create(rt: &RtInner, vt: &VThread) -> ThreadId {
    let var = rt.sync_var(crate::state::CREATION_VAR);
    let actual = EventKind::Sync {
        var: var.id,
        op: SyncOp::ThreadCreate,
        result: 0,
    };
    let recorded = replay_expect(rt, vt, &actual);
    wait_for_turn(rt, vt, &var);
    replay_advance_thread(vt);
    var.var_list.advance();
    var.cv.notify_all();
    ThreadId(recorded as u32)
}

/// Records a join of `child` on that thread's join variable.
pub(crate) fn record_thread_join(rt: &RtInner, vt: &VThread, child: &VThread) {
    let var = rt.sync_var(child.join_var);
    RecordSink::new(rt, vt).sync(&var, SyncOp::ThreadJoin, i64::from(child.id.0));
}

/// During replay, verifies and orders a join event.
pub(crate) fn replay_thread_join(rt: &RtInner, vt: &VThread, child: &VThread) {
    let var = rt.sync_var(child.join_var);
    let actual = EventKind::Sync {
        var: var.id,
        op: SyncOp::ThreadJoin,
        result: 0,
    };
    replay_expect(rt, vt, &actual);
    wait_for_turn(rt, vt, &var);
    replay_advance_thread(vt);
    var.var_list.advance();
}

/// Fetches a block from the super heap under the global block-fetch lock
/// (§2.2.4).  During recording, the acquisition order is logged on the
/// dedicated super-heap variable *while the lock is held*, so that the order
/// of the log entries equals the order of the fetches; during replay, each
/// thread waits for its recorded turn before fetching, which reproduces the
/// block-to-thread assignment exactly.
pub(crate) fn superheap_fetch_ordered(
    rt: &RtInner,
    vt: &VThread,
) -> Result<ireplayer_mem::Span, ireplayer_mem::MemError> {
    let var = rt.sync_var(crate::state::SUPERHEAP_VAR);
    match crate::sink::op_phase(rt) {
        ExecPhase::Replaying => {
            let actual = EventKind::Sync {
                var: var.id,
                op: SyncOp::SuperHeapFetch,
                result: 0,
            };
            replay_expect(rt, vt, &actual);
            wait_for_turn(rt, vt, &var);
            let block = rt.super_heap.fetch_block();
            replay_advance_thread(vt);
            var.var_list.advance();
            var.cv.notify_all();
            block
        }
        ExecPhase::Recording => {
            // Hold the variable's lock across "record + fetch" so the
            // recorded order matches the fetch order.
            let _guard = var.state.lock();
            RecordSink::new(rt, vt).sync(&var, SyncOp::SuperHeapFetch, 0);
            rt.super_heap.fetch_block()
        }
        ExecPhase::Passthrough => rt.super_heap.fetch_block(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_spins_then_yields_then_sleeps_with_growing_slices() {
        let mut backoff = Backoff::new();
        let mut busy_rounds = 0;
        while backoff.snooze() {
            busy_rounds += 1;
            assert!(busy_rounds <= Backoff::YIELD_LIMIT, "busy phase must terminate");
        }
        assert_eq!(busy_rounds, Backoff::YIELD_LIMIT);
        let first = backoff.slice();
        assert_eq!(first, Duration::from_micros(Backoff::MIN_SLICE_US));
        let mut last = first;
        for _ in 0..16 {
            let next = backoff.slice();
            assert!(next >= last);
            assert!(next <= Duration::from_micros(Backoff::MAX_SLICE_US));
            last = next;
        }
        assert_eq!(last, Duration::from_micros(Backoff::MAX_SLICE_US));
    }
}
