//! The per-thread execution loop.
//!
//! Every application thread is backed by one OS thread running
//! [`thread_main`]: it waits for a command from the coordinator, executes
//! steps of the application body until the segment ends (stop requested,
//! replay target reached, body finished, abort, or fault), parks, and
//! reports back.  Threads are kept alive across epoch boundaries -- and
//! across rollbacks -- exactly as the paper keeps threads alive to preserve
//! their identifiers and stacks (§3.2.1).

use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use crate::context::ThreadCtx;
use crate::fault::{FaultKind, UnwindSignal};
use crate::program::{BodyFn, Step};
use crate::state::{Command, RtInner, SegmentEnd, ThreadPhase, VThread};

/// Poll slice for command waits.
const COMMAND_WAIT: Duration = Duration::from_millis(5);

/// Entry point of every application OS thread.
pub(crate) fn thread_main(rt: Arc<RtInner>, vt: Arc<VThread>, mut body: BodyFn) {
    loop {
        let command = wait_for_command(&rt, &vt);
        match command {
            Command::Exit => {
                set_phase(&rt, &vt, ThreadPhase::Reclaimed);
                return;
            }
            Command::Run { target, expect_fault } => {
                set_phase(&rt, &vt, ThreadPhase::Running);
                crate::state::rt_trace!("{:?} running segment target={target:?}", vt.id);
                let end = run_segment(&rt, &vt, &mut body, target, expect_fault);
                crate::state::rt_trace!(
                    "{:?} segment end {:?} steps={}",
                    vt.id,
                    end,
                    vt.control.lock().segment_steps
                );
                let phase = match end {
                    SegmentEnd::Finished => ThreadPhase::Finished,
                    _ => ThreadPhase::Parked,
                };
                {
                    let mut control = vt.control.lock();
                    control.last_segment_end = Some(end);
                    control.command = None;
                    control.phase = phase;
                }
                vt.notify();
                rt.poke_world();
            }
        }
    }
}

/// Blocks until the coordinator issues a command (and, during replay, until
/// the thread's creation event has been replayed when applicable).
fn wait_for_command(rt: &RtInner, vt: &VThread) -> Command {
    let mut control = vt.control.lock();
    loop {
        if let Some(command) = control.command {
            if !control.awaiting_creation {
                return command;
            }
        }
        vt.control_cv.wait_for(&mut control, COMMAND_WAIT);
        let _ = rt;
    }
}

fn set_phase(rt: &RtInner, vt: &VThread, phase: ThreadPhase) {
    {
        let mut control = vt.control.lock();
        control.phase = phase;
    }
    vt.notify();
    rt.poke_world();
}

/// Runs steps until the segment ends.
fn run_segment(
    rt: &Arc<RtInner>,
    vt: &Arc<VThread>,
    body: &mut BodyFn,
    target: Option<u64>,
    expect_fault: bool,
) -> SegmentEnd {
    loop {
        // Step-boundary checks.
        {
            debug_assert!(
                vt.held_locks.is_empty(),
                "locks must not be held across step boundaries (thread {:?})",
                vt.id
            );
            let steps = vt.control.lock().segment_steps;
            if let Some(target) = target {
                if steps >= target {
                    // Replay: the recorded number of steps has been re-run.
                    // If recorded events remain, they belong to a step that
                    // was interrupted mid-way in the original epoch; drain
                    // them by running further (bounded) steps.
                    if vt.list.replay_complete() || !rt.replaying() {
                        return SegmentEnd::TargetReached;
                    }
                }
            }
        }
        if rt.abort_pending() {
            return SegmentEnd::Aborted;
        }
        if rt.epoch_end_pending() && !rt.replaying() {
            return SegmentEnd::Stopped;
        }

        // Execute one step.
        vt.step_dirty.store(false, Ordering::Release);
        let outcome = {
            let mut ctx = ThreadCtx::new(rt, vt);
            std::panic::catch_unwind(AssertUnwindSafe(|| (body)(&mut ctx)))
        };

        match outcome {
            Ok(Step::Yield) => {
                let mut control = vt.control.lock();
                control.segment_steps += 1;
                drop(control);
                vt.total_steps.fetch_add(1, Ordering::Relaxed);
            }
            Ok(Step::Done) => {
                let mut control = vt.control.lock();
                control.segment_steps += 1;
                drop(control);
                vt.total_steps.fetch_add(1, Ordering::Relaxed);
                return SegmentEnd::Finished;
            }
            Err(payload) => match payload.downcast_ref::<UnwindSignal>() {
                Some(UnwindSignal::EpochAbort) => return SegmentEnd::Aborted,
                Some(UnwindSignal::Fault) => {
                    if expect_fault {
                        // A diagnostic replay reproduced the original fault:
                        // this is the expected end of the segment.
                        return SegmentEnd::Faulted;
                    }
                    return SegmentEnd::Faulted;
                }
                Some(UnwindSignal::ReparkCleanStep) => {
                    // The step blocked before doing anything while an epoch
                    // end was pending; it will be re-run next epoch.
                    if rt.replaying() {
                        // During replay this signal is only produced by a
                        // drain-mode thread that consumed its whole log.
                        return SegmentEnd::TargetReached;
                    }
                    return SegmentEnd::Stopped;
                }
                None => {
                    // A genuine application panic: convert it into a fault.
                    let message = panic_message(payload.as_ref());
                    register_panic_fault(rt, vt, message);
                    return SegmentEnd::Faulted;
                }
            },
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with a non-string payload".to_owned()
    }
}

fn register_panic_fault(rt: &RtInner, vt: &VThread, message: String) {
    let record = crate::fault::FaultRecord {
        thread: vt.id,
        kind: FaultKind::Panic { message },
        site: None,
        epoch: rt.epoch_number(),
    };
    rt.epoch.lock().faults.push(record);
    rt.abort_requested.store(true, Ordering::Release);
    rt.poke_world();
}
