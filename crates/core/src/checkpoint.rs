//! Epoch checkpoints: capture at epoch begin (§3.1), restore on rollback
//! (§3.4).
//!
//! A checkpoint captures everything a re-execution needs to start from the
//! epoch begin:
//!
//! * the managed memory image (heap + globals), up to the super heap's
//!   high-water mark;
//! * allocator metadata (super-heap cursor, per-thread heap state, the
//!   global-lock heap in baseline mode);
//! * simulated-OS state that replay depends on (open-file positions, and
//!   the chaos engine's revocable-class counters -- the per-descriptor
//!   file-I/O and per-thread allocation indices whose calls are re-issued
//!   during replay and must re-derive the same injection verdicts);
//! * per-thread state: life-cycle phase, random-stream state, quarantine
//!   contents;
//! * detector state (canary map, site tables, pending evidence).
//!
//! Synchronization state needs no capture: checkpoints are taken at global
//! step-boundary quiescence, where no locks are held and no thread waits
//! inside a primitive, so every synchronization variable is in its default
//! state (see DESIGN.md).

use std::collections::HashMap;

use ireplayer_mem::{
    CanaryMap, CorruptedCanary, Globals, MemAddr, MemSnapshot, Quarantine, SuperHeapState, ThreadHeapState, UafEvidence,
};
use ireplayer_sys::OsSnapshot;

use crate::site::SiteId;
use crate::state::{RtInner, ThreadPhase};

/// Per-thread checkpointed state.
#[derive(Debug, Clone)]
pub(crate) struct ThreadCheckpoint {
    /// Life-cycle phase at the checkpoint.
    pub phase: ThreadPhase,
    /// Allocator metadata.
    pub heap: ThreadHeapState,
    /// Quarantined frees.
    pub quarantine: Quarantine,
    /// Random-stream state.
    pub rng_state: u64,
    /// Whether the thread had already been joined.
    pub joined: bool,
}

/// A complete epoch checkpoint.
#[derive(Debug, Clone)]
pub(crate) struct Checkpoint {
    /// Epoch this checkpoint begins.
    pub epoch: u64,
    /// Managed-memory image.
    pub memory: MemSnapshot,
    /// Super-heap allocation cursor.
    pub super_heap: SuperHeapState,
    /// Global-lock heap metadata (baseline allocator).
    pub global_heap: ThreadHeapState,
    /// Managed-globals name table.
    pub globals: Globals,
    /// Simulated-OS state (open-file positions).
    pub os: OsSnapshot,
    /// Canary placements.
    pub canaries: CanaryMap,
    /// Allocation-site table.
    pub alloc_sites: HashMap<MemAddr, SiteId>,
    /// Free-site table.
    pub free_sites: HashMap<MemAddr, SiteId>,
    /// Overflow evidence already pending at the checkpoint.
    pub pending_canary_evidence: Vec<CorruptedCanary>,
    /// Use-after-free evidence already pending at the checkpoint.
    pub pending_uaf_evidence: Vec<UafEvidence>,
    /// Per-thread state, indexed by thread id.
    pub threads: Vec<ThreadCheckpoint>,
}

/// Captures a checkpoint.  The caller guarantees step-boundary quiescence.
pub(crate) fn capture(rt: &RtInner) -> Checkpoint {
    let high_water = rt.super_heap.high_water().as_usize();
    let threads = rt
        .threads
        .read()
        .iter()
        .map(|vt| {
            let control = vt.control.lock();
            ThreadCheckpoint {
                phase: control.phase,
                heap: vt.heap.lock().state(),
                quarantine: vt.quarantine.lock().clone(),
                rng_state: vt.rng.lock().state(),
                joined: control.joined,
            }
        })
        .collect();
    Checkpoint {
        epoch: rt.epoch_number(),
        memory: MemSnapshot::capture(&rt.arena, high_water),
        super_heap: rt.super_heap.state(),
        global_heap: rt.global_heap.lock().state(),
        globals: rt.globals.lock().clone(),
        os: rt.os.snapshot(),
        canaries: rt.canaries.lock().clone(),
        alloc_sites: rt.alloc_sites.lock().clone(),
        free_sites: rt.free_sites.lock().clone(),
        pending_canary_evidence: rt.pending_canary_evidence.lock().clone(),
        pending_uaf_evidence: rt.pending_uaf_evidence.lock().clone(),
        threads,
    }
}

/// Restores runtime state from a checkpoint (rollback).  Thread lists and
/// per-variable lists are *not* cleared -- they hold the recorded schedule
/// that the re-execution will follow; their cursors are rewound by the
/// replay setup in the runtime module.
pub(crate) fn restore(rt: &RtInner, checkpoint: &Checkpoint) {
    // Zero the memory handed out after the checkpoint (blocks fetched during
    // the epoch being rolled back): the re-execution must observe the same
    // fresh, zeroed blocks the original execution did -- the analogue of the
    // paper zeroing the unused portion of restored stacks (§3.4).
    let old_high_water = checkpoint.memory.len();
    let new_high_water = rt.super_heap.high_water().as_usize();
    if new_high_water > old_high_water && old_high_water >= 1 {
        let _ = rt.arena.fill(
            ireplayer_mem::MemAddr::new(old_high_water as u64),
            new_high_water - old_high_water,
            0,
        );
    }
    checkpoint
        .memory
        .restore(&rt.arena)
        .expect("checkpoint restore: arena size cannot shrink during a run");
    rt.super_heap.restore(checkpoint.super_heap);
    rt.global_heap.lock().restore(checkpoint.global_heap.clone());
    *rt.globals.lock() = checkpoint.globals.clone();
    rt.os.restore(&checkpoint.os);
    *rt.canaries.lock() = checkpoint.canaries.clone();
    *rt.alloc_sites.lock() = checkpoint.alloc_sites.clone();
    *rt.free_sites.lock() = checkpoint.free_sites.clone();
    *rt.pending_canary_evidence.lock() = checkpoint.pending_canary_evidence.clone();
    *rt.pending_uaf_evidence.lock() = checkpoint.pending_uaf_evidence.clone();

    // Per-thread state.  Threads created after the checkpoint keep their
    // runtime records (they are revived by their parent's replayed creation
    // event); their heaps start empty exactly as they did originally.
    let threads = rt.threads.read();
    for (index, vt) in threads.iter().enumerate() {
        if let Some(saved) = checkpoint.threads.get(index) {
            vt.heap.lock().restore(saved.heap.clone());
            *vt.quarantine.lock() = saved.quarantine.clone();
            vt.rng.lock().restore(saved.rng_state);
            vt.control.lock().joined = saved.joined;
            // SAFETY: rollback runs on the coordinator at step-boundary
            // quiescence; the owner thread is parked, so the clear cannot
            // race its single-writer updates.
            #[allow(unsafe_code)]
            unsafe {
                vt.held_locks.clear();
            }
        } else {
            // Created during the epoch being replayed: reset to a pristine
            // state.
            vt.heap
                .lock()
                .restore(ireplayer_mem::ThreadHeap::new(vt.id.0, rt.heap_config()).state());
            *vt.quarantine.lock() = Quarantine::new(rt.config.quarantine_bytes);
            vt.rng.lock().restore(
                crate::rng::DetRng::new(rt.config.seed)
                    .derive(u64::from(vt.id.0))
                    .state(),
            );
            vt.control.lock().joined = false;
            // SAFETY: as above -- coordinator-only at quiescence.
            #[allow(unsafe_code)]
            unsafe {
                vt.held_locks.clear();
            }
        }
    }

    // Synchronization state: quiescence guarantees the default state.
    for var in rt.sync_table.read().iter() {
        var.state.lock().reset();
    }

    // The deferred-operation queue is rebuilt by the re-execution.
    rt.epoch.lock().deferred.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn small_rt() -> RtInner {
        RtInner::new(
            Config::builder()
                .arena_size(1 << 20)
                .heap_block_size(64 << 10)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn capture_and_restore_round_trip_memory_and_os_state() {
        let rt = small_rt();
        rt.os.create_file("f.txt", b"0123456789".to_vec());
        let fd = rt.os.open("f.txt").unwrap();
        rt.os.file_read(fd, 4).unwrap();
        rt.arena
            .write_bytes(ireplayer_mem::MemAddr::new(32), b"before")
            .unwrap();

        let checkpoint = capture(&rt);

        // Post-checkpoint mutations...
        rt.arena
            .write_bytes(ireplayer_mem::MemAddr::new(32), b"after!")
            .unwrap();
        rt.os.file_read(fd, 4).unwrap();
        rt.epoch.lock().deferred.push(crate::state::DeferredOp::Close(fd));

        // ...are undone by the rollback.
        restore(&rt, &checkpoint);
        let mut buf = [0u8; 6];
        rt.arena.read_bytes(ireplayer_mem::MemAddr::new(32), &mut buf).unwrap();
        assert_eq!(&buf, b"before");
        assert_eq!(rt.os.file_read(fd, 4).unwrap(), b"4567");
        assert!(rt.epoch.lock().deferred.is_empty());
    }

    #[test]
    fn restore_resets_sync_state() {
        let rt = small_rt();
        let var = rt.register_sync_var(crate::state::SyncVarKind::Mutex);
        let checkpoint = capture(&rt);
        var.state.lock().locked = true;
        restore(&rt, &checkpoint);
        assert!(!var.state.lock().locked);
    }
}
