//! The session observer API: filtered, bounded event streams.
//!
//! A [`crate::Session`] (or the [`crate::Runtime`] itself) can hand out any
//! number of [`EventStream`]s.  Each stream is a bounded channel: the
//! runtime *never blocks* on a slow consumer -- when a stream's buffer is
//! full the event is dropped for that stream (and that stream only), so
//! observation can never stall the record fast path.  When no stream is
//! subscribed the entire machinery costs one atomic load per emission
//! point.
//!
//! This is the passive complement to the active [`crate::ToolHook`] SPI:
//! hooks run *on* the coordinator and return decisions (continue/replay),
//! while event streams watch from outside -- dashboards, tests, and live
//! debuggers that steer the run through
//! [`crate::Session::request_replay`].

use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::time::Duration;

use ireplayer_log::Divergence;
use ireplayer_sys::FaultClass;

use crate::fault::FaultRecord;
use crate::stats::{RunOutcome, WatchHitReport};

/// Capacity of one subscriber's buffer; events past it are dropped for
/// that subscriber rather than blocking the runtime.
pub(crate) const EVENT_BUFFER: usize = 1024;

/// A moment in the life of a run, delivered through an [`EventStream`].
///
/// Marked `#[non_exhaustive]`: new event classes may be added; downstream
/// matches must keep a wildcard arm.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum SessionEvent {
    /// A new epoch began (checkpoint taken, threads released).
    EpochBegan {
        /// The 0-based epoch number.
        epoch: u64,
    },
    /// The world reached quiescence and the epoch closed.
    EpochEnded {
        /// The epoch that ended.
        epoch: u64,
    },
    /// The epoch's bookkeeping is complete: quiescence was reached *and*
    /// any replay cycle decided at the boundary has finished.  Emitted
    /// after [`SessionEvent::EpochEnded`] (and after the corresponding
    /// [`SessionEvent::ReplayFinished`], when one ran), carrying the
    /// epoch's own counters.
    EpochClosed {
        /// The epoch that closed.
        epoch: u64,
        /// Events recorded in the per-thread logs during this epoch.
        events_recorded: u64,
        /// Replay attempts performed at this epoch's boundary (0 when the
        /// epoch simply continued).
        replays_attempted: u64,
    },
    /// A rollback happened and a re-execution attempt is starting.
    ReplayStarted {
        /// The epoch being re-executed.
        epoch: u64,
        /// The 1-based attempt number.
        attempt: u32,
    },
    /// A replay cycle finished (matched or exhausted its attempts).
    ReplayFinished {
        /// The epoch that was re-executed.
        epoch: u64,
        /// Total attempts performed.
        attempts: u32,
        /// Whether a matching schedule was found.
        matched: bool,
    },
    /// A re-execution departed from the recorded schedule.
    Diverged {
        /// The divergence record.
        divergence: Divergence,
    },
    /// The application faulted.
    Faulted {
        /// The fault record.
        fault: FaultRecord,
    },
    /// A watched address range was written during a diagnostic replay.
    WatchHit {
        /// The watchpoint hit.
        hit: WatchHitReport,
    },
    /// The chaos plane injected a fault at the simulated-OS call boundary
    /// (original executions only: replayed re-executions re-derive or
    /// re-serve the same outcomes without re-announcing them).  Shares the
    /// fault event class, so [`EventFilter::faults`] delivers it.
    FaultInjected {
        /// The injected fault class.
        class: FaultClass,
        /// The class-local operation index the plan fired at.
        site: u64,
        /// The epoch during which the injection happened.
        epoch: u64,
    },
    /// The session has consumed at least three quarters of one of its
    /// per-tenant quotas ([`Config::max_epochs`](crate::Config) or
    /// [`Config::max_events`](crate::Config)).  Emitted at most once per
    /// resource per session, at the epoch close where the threshold was
    /// crossed; if the session keeps going until the quota is exhausted it
    /// ends with [`ErrorKind::QuotaExhausted`](crate::ErrorKind).
    QuotaWarning {
        /// The epoch at whose close the warning fired.
        epoch: u64,
        /// Which quota is running out: `"epochs"` or `"events"`.
        resource: &'static str,
        /// Usage the session has accumulated so far.
        used: u64,
        /// The configured limit.
        limit: u64,
    },
    /// The run finished; [`crate::Session::wait`] will return.  Exactly one
    /// is emitted per launch, even when the run terminates with a
    /// supervisor error -- or never ran at all (a failed dispatch or a
    /// poisoned-out queued launch) -- in which case `outcome` carries the
    /// program's last observed outcome and the error surfaces through
    /// [`crate::Session::wait`].
    Finished {
        /// How the run ended.
        outcome: RunOutcome,
    },
}

const EPOCHS: u8 = 1 << 0;
const REPLAYS: u8 = 1 << 1;
const DIVERGENCES: u8 = 1 << 2;
const FAULTS: u8 = 1 << 3;
const WATCH_HITS: u8 = 1 << 4;
const LIFECYCLE: u8 = 1 << 5;
const QUOTAS: u8 = 1 << 6;

impl SessionEvent {
    fn category(&self) -> u8 {
        match self {
            SessionEvent::EpochBegan { .. } | SessionEvent::EpochEnded { .. } | SessionEvent::EpochClosed { .. } => {
                EPOCHS
            }
            SessionEvent::ReplayStarted { .. } | SessionEvent::ReplayFinished { .. } => REPLAYS,
            SessionEvent::Diverged { .. } => DIVERGENCES,
            SessionEvent::Faulted { .. } | SessionEvent::FaultInjected { .. } => FAULTS,
            SessionEvent::WatchHit { .. } => WATCH_HITS,
            SessionEvent::QuotaWarning { .. } => QUOTAS,
            SessionEvent::Finished { .. } => LIFECYCLE,
        }
    }
}

/// Selects which [`SessionEvent`] classes a subscription receives.
///
/// Start from [`EventFilter::none`] and add classes, or take
/// [`EventFilter::all`]:
///
/// ```
/// use ireplayer::EventFilter;
///
/// let filter = EventFilter::none().faults().divergences();
/// let everything = EventFilter::all();
/// # let _ = (filter, everything);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventFilter {
    mask: u8,
}

impl EventFilter {
    /// Subscribes to every event class, including ones added in the future.
    pub fn all() -> Self {
        EventFilter { mask: u8::MAX }
    }

    /// Subscribes to nothing; combine with the class methods below.
    pub fn none() -> Self {
        EventFilter { mask: 0 }
    }

    /// Adds epoch begin/end events.
    pub fn epochs(mut self) -> Self {
        self.mask |= EPOCHS;
        self
    }

    /// Adds replay start/finish events.
    pub fn replays(mut self) -> Self {
        self.mask |= REPLAYS;
        self
    }

    /// Adds divergence events.
    pub fn divergences(mut self) -> Self {
        self.mask |= DIVERGENCES;
        self
    }

    /// Adds fault events.
    pub fn faults(mut self) -> Self {
        self.mask |= FAULTS;
        self
    }

    /// Adds watchpoint-hit events.
    pub fn watch_hits(mut self) -> Self {
        self.mask |= WATCH_HITS;
        self
    }

    /// Adds run-lifecycle events ([`SessionEvent::Finished`]).
    pub fn lifecycle(mut self) -> Self {
        self.mask |= LIFECYCLE;
        self
    }

    /// Adds per-tenant quota events ([`SessionEvent::QuotaWarning`]).
    pub fn quotas(mut self) -> Self {
        self.mask |= QUOTAS;
        self
    }

    fn accepts(&self, event: &SessionEvent) -> bool {
        self.mask & event.category() != 0
    }
}

impl Default for EventFilter {
    fn default() -> Self {
        EventFilter::all()
    }
}

/// One subscriber's registration inside the runtime.
pub(crate) struct ObserverSlot {
    filter: EventFilter,
    tx: SyncSender<SessionEvent>,
}

impl ObserverSlot {
    /// Offers `event` to this subscriber.  Returns `false` when the
    /// subscriber is gone (its [`EventStream`] was dropped) and the slot
    /// should be pruned; a full buffer drops the event but keeps the slot.
    pub(crate) fn offer(&self, event: &SessionEvent) -> bool {
        if !self.filter.accepts(event) {
            return true;
        }
        match self.tx.try_send(event.clone()) {
            Ok(()) | Err(TrySendError::Full(_)) => true,
            Err(TrySendError::Disconnected(_)) => false,
        }
    }
}

impl std::fmt::Debug for ObserverSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObserverSlot").field("filter", &self.filter).finish()
    }
}

/// Creates a subscription: the slot goes into the runtime's registry, the
/// stream goes to the caller.
pub(crate) fn subscription(filter: EventFilter) -> (ObserverSlot, EventStream) {
    let (mut slots, stream) = subscription_many(filter, 1);
    (slots.pop().expect("one slot was requested"), stream)
}

/// Creates one stream fed by `count` slots -- one per arena partition, so a
/// runtime-wide subscription observes every concurrent session's events
/// interleaved into a single channel (each partition's own events stay in
/// order; cross-partition order is arrival order).
pub(crate) fn subscription_many(filter: EventFilter, count: usize) -> (Vec<ObserverSlot>, EventStream) {
    // Scale the buffer with the partition count so a runtime-wide stream
    // keeps the same per-partition headroom a single-partition stream has
    // (offers into a full buffer drop the event for this stream).
    let (tx, rx) = sync_channel(EVENT_BUFFER * count.max(1));
    let slots = (0..count).map(|_| ObserverSlot { filter, tx: tx.clone() }).collect();
    (slots, EventStream { rx })
}

/// A bounded stream of [`SessionEvent`]s from one runtime.
///
/// Obtained from [`crate::Session::subscribe`] (or
/// [`crate::Runtime::subscribe`], where it survives across runs).  Dropping
/// the stream unsubscribes.  Each stream buffers up to a fixed number of
/// events; if the consumer falls behind, excess events are silently dropped
/// for this stream -- the runtime never blocks on observers.
#[derive(Debug)]
pub struct EventStream {
    rx: Receiver<SessionEvent>,
}

impl EventStream {
    /// Returns the next buffered event without blocking, or `None` when the
    /// buffer is empty (or the runtime is gone).
    pub fn try_next(&self) -> Option<SessionEvent> {
        self.rx.try_recv().ok()
    }

    /// Waits up to `timeout` for the next event.
    pub fn next_timeout(&self, timeout: Duration) -> Option<SessionEvent> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Drains every currently buffered event.
    pub fn drain(&self) -> Vec<SessionEvent> {
        let mut events = Vec::new();
        while let Some(event) = self.try_next() {
            events.push(event);
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch_event() -> SessionEvent {
        SessionEvent::EpochBegan { epoch: 3 }
    }

    #[test]
    fn filters_select_categories() {
        assert!(EventFilter::all().accepts(&epoch_event()));
        assert!(!EventFilter::none().accepts(&epoch_event()));
        assert!(EventFilter::none().epochs().accepts(&epoch_event()));
        assert!(!EventFilter::none().faults().accepts(&epoch_event()));
        assert!(EventFilter::none().lifecycle().accepts(&SessionEvent::Finished {
            outcome: crate::stats::RunOutcome::Completed,
        }));
        assert_eq!(EventFilter::default(), EventFilter::all());
    }

    #[test]
    fn streams_deliver_and_bound() {
        let (slot, stream) = subscription(EventFilter::none().epochs());
        assert!(slot.offer(&epoch_event()));
        // Filtered-out events are not delivered but keep the slot alive.
        assert!(slot.offer(&SessionEvent::Finished {
            outcome: crate::stats::RunOutcome::Completed,
        }));
        assert!(matches!(stream.try_next(), Some(SessionEvent::EpochBegan { epoch: 3 })));
        assert!(stream.try_next().is_none());
        // Overflow drops events instead of blocking.
        for _ in 0..(EVENT_BUFFER + 10) {
            assert!(slot.offer(&epoch_event()));
        }
        assert_eq!(stream.drain().len(), EVENT_BUFFER);
        // A dropped stream prunes the slot.
        drop(stream);
        assert!(!slot.offer(&epoch_event()));
    }

    #[test]
    fn epoch_closed_is_an_epoch_class_event() {
        let closed = SessionEvent::EpochClosed {
            epoch: 2,
            events_recorded: 10,
            replays_attempted: 1,
        };
        assert!(EventFilter::none().epochs().accepts(&closed));
        assert!(!EventFilter::none().replays().accepts(&closed));
    }

    #[test]
    fn injected_faults_share_the_fault_event_class() {
        let injected = SessionEvent::FaultInjected {
            class: FaultClass::NetEagain,
            site: 4,
            epoch: 1,
        };
        assert!(EventFilter::none().faults().accepts(&injected));
        assert!(!EventFilter::none().epochs().accepts(&injected));
        assert!(EventFilter::all().accepts(&injected));
    }

    #[test]
    fn quota_warnings_are_their_own_event_class() {
        let warning = SessionEvent::QuotaWarning {
            epoch: 5,
            resource: "epochs",
            used: 6,
            limit: 8,
        };
        assert!(EventFilter::none().quotas().accepts(&warning));
        assert!(!EventFilter::none().epochs().accepts(&warning));
        assert!(EventFilter::all().accepts(&warning));
    }

    #[test]
    fn multi_slot_subscriptions_feed_one_stream() {
        let (slots, stream) = subscription_many(EventFilter::none().epochs(), 3);
        assert_eq!(slots.len(), 3);
        for (i, slot) in slots.iter().enumerate() {
            assert!(slot.offer(&SessionEvent::EpochBegan { epoch: i as u64 }));
        }
        let drained = stream.drain();
        assert_eq!(drained.len(), 3, "every partition's slot reaches the stream");
        // A dropped stream prunes every slot independently.
        drop(stream);
        for slot in &slots {
            assert!(!slot.offer(&epoch_event()));
        }
    }

    #[test]
    fn next_timeout_returns_buffered_events() {
        let (slot, stream) = subscription(EventFilter::all());
        assert!(slot.offer(&epoch_event()));
        assert!(stream.next_timeout(Duration::from_millis(10)).is_some());
        assert!(stream.next_timeout(Duration::from_millis(1)).is_none());
    }
}
