//! Allocation dispatch: the deterministic per-thread heap (paper §2.2.4),
//! the global-lock baseline allocator, allocation canaries (§4.1), and the
//! free quarantine (§4.2).

use ireplayer_mem::{Allocation, MemAddr, MemError, QuarantineEntry};

use crate::fault::FaultKind;
use crate::site::SiteId;
use crate::state::{RtInner, VThread};
use crate::stats::Counters;
use crate::sync::{mark_dirty, superheap_fetch_ordered};

/// Allocates `size` bytes of managed memory for `vt`.
///
/// Out-of-memory and oversized requests become faults (the analogue of an
/// aborting `malloc` failure), so the application-facing signature stays a
/// plain address.
pub(crate) fn alloc(rt: &RtInner, vt: &VThread, size: usize, site: SiteId) -> MemAddr {
    mark_dirty(vt);
    let result = if rt.per_thread_alloc() {
        alloc_per_thread(rt, vt, size)
    } else {
        alloc_global(rt, vt, size)
    };
    let allocation = match result {
        Ok(a) => a,
        Err(MemError::AllocationTooLarge { requested, .. }) | Err(MemError::OutOfMemory { requested }) => {
            rt.raise_fault(vt, FaultKind::OutOfMemory { requested }, Some(site))
        }
        Err(other) => rt.raise_fault(
            vt,
            FaultKind::Panic {
                message: format!("allocator error: {other}"),
            },
            Some(site),
        ),
    };

    if let Some(canary) = allocation.canary {
        // Record the placement so the overflow detector can scan it at the
        // epoch boundary (§4.1).  The heap already filled the bytes.
        let mut canaries = rt.canaries.lock();
        let _ = canaries.plant(&rt.arena, canary.addr, canary.len as usize, allocation.payload);
    }

    rt.alloc_sites.lock().insert(allocation.payload, site);
    Counters::bump(&rt.counters.allocations);
    Counters::add(&rt.counters.bytes_allocated, size as u64);
    if let Some(instrument) = rt.instrument.read().clone() {
        instrument.on_alloc(vt.id, allocation.payload, size);
    }
    allocation.payload
}

fn alloc_per_thread(rt: &RtInner, vt: &VThread, size: usize) -> Result<Allocation, MemError> {
    // Fetch any needed block under the recorded global lock so that block
    // assignment is identical during replay.
    loop {
        let needs = vt.heap.lock().needs_block(size)?;
        if !needs {
            break;
        }
        let block = superheap_fetch_ordered(rt, vt)?;
        vt.heap.lock().add_block(block);
    }
    vt.heap.lock().alloc(&rt.arena, &rt.super_heap, size)
}

fn alloc_global(rt: &RtInner, _vt: &VThread, size: usize) -> Result<Allocation, MemError> {
    // The baseline allocator: one heap, one lock, layout dependent on
    // scheduling (Table 1's "Orig" column and Table 3's baseline).
    rt.global_heap.lock().alloc(&rt.arena, &rt.super_heap, size)
}

/// Frees the allocation whose payload starts at `addr`.
///
/// With the quarantine enabled (use-after-free detection), the object is
/// poisoned and parked instead of being returned to a free list; quarantined
/// objects are recycled once the quarantine exceeds its budget, checking
/// their poison bytes on the way out.
pub(crate) fn free(rt: &RtInner, vt: &VThread, addr: MemAddr, site: SiteId) {
    mark_dirty(vt);
    Counters::bump(&rt.counters.frees);
    rt.free_sites.lock().insert(addr, site);

    // If this object carries a canary, check it before the slot is recycled
    // so overflow evidence is not lost to reuse.
    if rt.config.canaries {
        if let Some(size) = allocation_size(rt, vt, addr) {
            let canary_addr = addr + size as u64;
            if let Ok(Some(corrupted)) = rt.canaries.lock().check_and_remove(&rt.arena, canary_addr) {
                rt.pending_canary_evidence.lock().push(corrupted);
            }
        }
    }

    if let Some(instrument) = rt.instrument.read().clone() {
        if let Some(size) = allocation_size(rt, vt, addr) {
            instrument.on_free(vt.id, addr, size);
        } else {
            instrument.on_free(vt.id, addr, 0);
        }
    }

    let quarantine_enabled = rt.config.quarantine_bytes > 0;
    let result = if quarantine_enabled {
        free_to_quarantine(rt, vt, addr, site)
    } else if rt.per_thread_alloc() {
        vt.heap.lock().free(&rt.arena, addr).map(|_| ())
    } else {
        rt.global_heap.lock().free(&rt.arena, addr).map(|_| ())
    };

    match result {
        Ok(()) => {}
        Err(MemError::DoubleFree { addr }) => rt.raise_fault(vt, FaultKind::DoubleFree { addr }, Some(site)),
        Err(MemError::InvalidFree { addr }) => rt.raise_fault(vt, FaultKind::InvalidFree { addr }, Some(site)),
        Err(other) => rt.raise_fault(
            vt,
            FaultKind::Panic {
                message: format!("allocator error: {other}"),
            },
            Some(site),
        ),
    }
}

fn free_to_quarantine(rt: &RtInner, vt: &VThread, addr: MemAddr, site: SiteId) -> Result<(), MemError> {
    let (record, slot_start) = if rt.per_thread_alloc() {
        vt.heap.lock().retire(&rt.arena, addr)?
    } else {
        rt.global_heap.lock().retire(&rt.arena, addr)?
    };
    let entry = QuarantineEntry {
        payload: record.payload,
        slot_start,
        class: record.class,
        requested: record.requested,
        free_site: u64::from(site.0),
    };
    let mut quarantine = vt.quarantine.lock();
    quarantine.push(&rt.arena, entry)?;
    let (evicted, evidence) = quarantine.evict_to_budget(&rt.arena)?;
    drop(quarantine);
    if !evidence.is_empty() {
        rt.pending_uaf_evidence.lock().extend(evidence);
    }
    for old in evicted {
        if rt.per_thread_alloc() {
            vt.heap.lock().recycle(old.class, old.slot_start);
        } else {
            rt.global_heap.lock().recycle(old.class, old.slot_start);
        }
    }
    Ok(())
}

/// Finds the live allocation containing `addr`, searching every heap.  Used
/// by tools to attribute a corrupted address to an allocation.
pub(crate) fn containing_allocation(rt: &RtInner, addr: MemAddr) -> Option<ireplayer_mem::AllocRecord> {
    if let Some(record) = rt.global_heap.lock().containing_allocation(addr) {
        return Some(record);
    }
    for vt in rt.threads.read().iter() {
        if let Some(record) = vt.heap.lock().containing_allocation(addr) {
            return Some(record);
        }
    }
    None
}

/// Size of the live allocation whose payload starts at `addr`, if known.
pub(crate) fn allocation_size(rt: &RtInner, vt: &VThread, addr: MemAddr) -> Option<usize> {
    if rt.per_thread_alloc() {
        if let Some(record) = vt.heap.lock().lookup(addr) {
            return Some(record.requested);
        }
    } else if let Some(record) = rt.global_heap.lock().lookup(addr) {
        return Some(record.requested);
    }
    // Cross-thread lookups: the allocation may belong to another thread's
    // heap (a thread may free or measure objects it did not allocate).
    for other in rt.threads.read().iter() {
        if let Some(record) = other.heap.lock().lookup(addr) {
            return Some(record.requested);
        }
    }
    None
}
