//! Application faults and the unwinding signals the runtime uses internally.
//!
//! In the original system, faults are POSIX signals (`SIGSEGV`, `SIGABRT`)
//! intercepted by installed handlers; iReplayer stops the epoch, and either
//! terminates with a report or rolls back and replays for diagnosis (§3.4,
//! §4.3).  In the managed substrate, faults are produced by the runtime
//! itself -- an out-of-bounds managed access is the analogue of a
//! segmentation fault -- or explicitly by the application.
//!
//! Internally, faults (and the "abort this re-execution" signal) travel out
//! of application code by unwinding with a typed payload, which the
//! per-thread step loop catches.  This plays the role of the signal handler
//! plus `setcontext` dance of §3.4: the half-executed step's effects on
//! managed memory are discarded by the rollback's memory restore.

use std::fmt;

use serde::{Deserialize, Serialize};

use ireplayer_log::ThreadId;
use ireplayer_mem::MemAddr;

use crate::site::Site;

/// The kinds of application faults the runtime recognizes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// An access outside the managed arena or through a null/dangling
    /// address -- the analogue of `SIGSEGV`.
    SegFault {
        /// Faulting address.
        addr: MemAddr,
        /// Length of the faulting access.
        len: usize,
        /// Whether the access was a write.
        is_write: bool,
    },
    /// `free` of an address that is not a live allocation.
    InvalidFree {
        /// The address passed to `free`.
        addr: MemAddr,
    },
    /// A second `free` of the same allocation.
    DoubleFree {
        /// The address passed to `free`.
        addr: MemAddr,
    },
    /// The managed heap is exhausted -- the analogue of an aborting
    /// allocation failure.
    OutOfMemory {
        /// Size of the failing request.
        requested: usize,
    },
    /// The application called [`crate::ThreadCtx::crash`] (assertion
    /// failure / `abort()` analogue).
    ExplicitCrash {
        /// Message supplied by the application.
        message: String,
    },
    /// The application's step closure panicked.
    Panic {
        /// The panic message, if it was a string.
        message: String,
    },
    /// An application-level assertion failed
    /// ([`crate::ThreadCtx::assert_that`]).
    AssertionFailure {
        /// Message supplied by the application.
        message: String,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::SegFault { addr, len, is_write } => {
                let op = if *is_write { "write" } else { "read" };
                write!(f, "segmentation fault: {op} of {len} bytes at {addr}")
            }
            FaultKind::InvalidFree { addr } => write!(f, "invalid free of {addr}"),
            FaultKind::DoubleFree { addr } => write!(f, "double free of {addr}"),
            FaultKind::OutOfMemory { requested } => {
                write!(f, "out of managed memory allocating {requested} bytes")
            }
            FaultKind::ExplicitCrash { message } => write!(f, "abort: {message}"),
            FaultKind::Panic { message } => write!(f, "panic: {message}"),
            FaultKind::AssertionFailure { message } => write!(f, "assertion failed: {message}"),
        }
    }
}

/// A fault observed during an execution, with the context needed for
/// reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// Thread that faulted.
    pub thread: ThreadId,
    /// What happened.
    pub kind: FaultKind,
    /// Source location of the faulting operation, when known.
    pub site: Option<Site>,
    /// Epoch in which the fault occurred.
    pub epoch: u64,
}

impl fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} in epoch {}: {}", self.thread, self.epoch, self.kind)?;
        if let Some(site) = &self.site {
            write!(f, " at {site}")?;
        }
        Ok(())
    }
}

/// The payload carried by runtime-initiated unwinds of application steps.
///
/// The per-thread step loop downcasts panic payloads to this type; anything
/// else is a genuine application panic and becomes a [`FaultKind::Panic`].
#[derive(Debug, Clone)]
pub enum UnwindSignal {
    /// The step faulted; the record has already been registered with the
    /// runtime.
    Fault,
    /// The coordinator aborted the current re-execution (divergence or a new
    /// rollback); the step's partial effects will be discarded by the
    /// memory restore.
    EpochAbort,
    /// The step blocked before performing any side effect while an epoch
    /// end was pending; it is safe to re-run it from the start in the next
    /// epoch, so the thread parks at the step boundary without counting the
    /// step.
    ReparkCleanStep,
}

/// Unwinds the current application step with the given runtime signal.
///
/// # Panics
///
/// Always panics (by design); the panic is caught by the runtime's step
/// loop.
pub(crate) fn unwind_with(signal: UnwindSignal) -> ! {
    std::panic::panic_any(signal)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_kinds_display_meaningfully() {
        let kinds = [
            FaultKind::SegFault {
                addr: MemAddr::new(0),
                len: 8,
                is_write: true,
            },
            FaultKind::InvalidFree { addr: MemAddr::new(64) },
            FaultKind::DoubleFree { addr: MemAddr::new(64) },
            FaultKind::OutOfMemory { requested: 128 },
            FaultKind::ExplicitCrash {
                message: "bad state".into(),
            },
            FaultKind::Panic {
                message: "index out of bounds".into(),
            },
            FaultKind::AssertionFailure {
                message: "x == y".into(),
            },
        ];
        for kind in kinds {
            assert!(!kind.to_string().is_empty());
        }
    }

    #[test]
    fn records_mention_thread_epoch_and_site() {
        let record = FaultRecord {
            thread: ThreadId(2),
            kind: FaultKind::ExplicitCrash { message: "boom".into() },
            site: Some(Site {
                file: "app.rs".into(),
                line: 10,
                column: 5,
            }),
            epoch: 3,
        };
        let text = record.to_string();
        assert!(text.contains("T2"));
        assert!(text.contains("epoch 3"));
        assert!(text.contains("app.rs:10:5"));

        let without_site = FaultRecord { site: None, ..record };
        assert!(!without_site.to_string().contains("app.rs"));
    }

    #[test]
    fn unwind_signal_is_catchable() {
        let result = std::panic::catch_unwind(|| unwind_with(UnwindSignal::EpochAbort));
        let payload = result.unwrap_err();
        let signal = payload.downcast_ref::<UnwindSignal>().unwrap();
        assert!(matches!(signal, UnwindSignal::EpochAbort));
    }
}
