//! The shared supervisor pool: per-session coordinator actors over a small
//! set of reusable OS threads.
//!
//! Before multi-tenancy every [`crate::Runtime::launch`] spawned (and later
//! discarded) a dedicated supervisor thread.  With several concurrent
//! sessions that becomes one thread-create/destroy pair per launch *per
//! tenant*; the pool amortizes them: workers are spawned lazily up to one
//! per arena partition, park between runs, and each picks up whole
//! supervision jobs -- so a supervisor is still an exclusive actor for its
//! session from launch to report, just hosted on a recycled thread.
//!
//! The pool never blocks a launch on a busy worker beyond the transient
//! window where a finishing supervisor has already released its partition
//! but not yet returned from its job: at most one job per partition can be
//! live, and the worker count equals the partition count.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::error::Error;

/// One queued supervision job: the whole life of a session, from spawning
/// the main application thread to delivering the final report.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    /// Queued jobs, tagged with an id so a failed worker spawn can
    /// withdraw exactly the job it was meant to serve.
    queue: VecDeque<(u64, Job)>,
    next_job: u64,
    /// Workers alive (parked or running a job).
    workers: usize,
    /// Workers parked waiting for a job.
    idle: usize,
    /// Set by [`SupervisorPool::shutdown`]; parked workers exit, active
    /// workers finish their current job first.
    shutdown: bool,
}

/// A lazily-grown, bounded pool of supervisor threads shared by every
/// session of one [`crate::Runtime`].
pub(crate) struct SupervisorPool {
    state: Mutex<PoolState>,
    cv: Condvar,
    /// Upper bound on workers; the runtime passes its partition count.
    max_workers: usize,
}

impl SupervisorPool {
    /// Creates an empty pool that will grow up to `max_workers` threads.
    pub fn new(max_workers: usize) -> Arc<Self> {
        Arc::new(SupervisorPool {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                next_job: 0,
                workers: 0,
                idle: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            max_workers: max_workers.max(1),
        })
    }

    /// Submits a job, growing the pool when the queue outnumbers the idle
    /// workers and the bound allows.  The grow decision is taken under the
    /// same lock as the enqueue, so "an idle worker exists" can never refer
    /// to a worker already owed to an earlier submission.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::ThreadSpawn`](crate::ErrorKind) when the OS
    /// refuses a worker thread and no live worker exists to serve the job
    /// (the job is withdrawn first, so nothing is stranded).
    pub fn execute(self: &Arc<Self>, job: Job) -> Result<(), Error> {
        let (id, needs_worker) = {
            let mut state = self.state.lock();
            let id = state.next_job;
            state.next_job += 1;
            state.queue.push_back((id, job));
            let needs = state.queue.len() > state.idle && state.workers < self.max_workers;
            if needs {
                // Reserve the worker slot under the lock; spawn outside it.
                state.workers += 1;
            }
            (id, needs)
        };
        self.cv.notify_one();
        if !needs_worker {
            return Ok(());
        }
        let pool = Arc::clone(self);
        let spawned = std::thread::Builder::new()
            .name("ireplayer-supervisor".to_owned())
            .spawn(move || pool.worker_loop());
        if let Err(io) = spawned {
            let mut state = self.state.lock();
            state.workers -= 1;
            if let Some(position) = state.queue.iter().position(|(queued, _)| *queued == id) {
                // The job is still queued.  It is guaranteed prompt service
                // only when the idle workers outnumber the jobs ahead of it;
                // a merely *alive* worker may be driving an arbitrarily
                // long session, which would strand the caller's wait()
                // behind it.  Withdraw the job and fail the launch instead.
                if state.idle <= position {
                    state.queue.remove(position);
                    return Err(Error::thread_spawn(io));
                }
            }
            // Otherwise a worker already picked the job up (or enough idle
            // workers are parked to reach it); the launch proceeds.
        }
        Ok(())
    }

    /// Tells every parked worker to exit; active workers exit after their
    /// current job.  Called from the runtime's `Drop`: detached sessions
    /// keep running to completion (their worker holds everything it needs
    /// by `Arc`), but no thread outlives the last job.
    pub fn shutdown(&self) {
        self.state.lock().shutdown = true;
        self.cv.notify_all();
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut state = self.state.lock();
                loop {
                    if let Some((_, job)) = state.queue.pop_front() {
                        break job;
                    }
                    if state.shutdown {
                        state.workers -= 1;
                        return;
                    }
                    state.idle += 1;
                    self.cv.wait(&mut state);
                    state.idle -= 1;
                }
            };
            job();
        }
    }
}

impl std::fmt::Debug for SupervisorPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("SupervisorPool")
            .field("workers", &state.workers)
            .field("idle", &state.idle)
            .field("queued", &state.queue.len())
            .field("max_workers", &self.max_workers)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn jobs_run_and_workers_are_reused() {
        let pool = SupervisorPool::new(2);
        let (tx, rx) = mpsc::channel::<std::thread::ThreadId>();
        for _ in 0..6 {
            let tx = tx.clone();
            pool.execute(Box::new(move || {
                tx.send(std::thread::current().id()).unwrap();
            }))
            .unwrap();
            // Sequential submissions reuse the parked worker.
            let _ = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        let workers = pool.state.lock().workers;
        assert!(workers <= 2, "sequential jobs must not grow the pool: {workers}");
        pool.shutdown();
    }

    #[test]
    fn concurrent_jobs_get_concurrent_workers() {
        let pool = SupervisorPool::new(3);
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel::<()>();
        for _ in 0..3 {
            let live = Arc::clone(&live);
            let peak = Arc::clone(&peak);
            let tx = tx.clone();
            pool.execute(Box::new(move || {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(50));
                live.fetch_sub(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            }))
            .unwrap();
        }
        for _ in 0..3 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert_eq!(peak.load(Ordering::SeqCst), 3, "three jobs must overlap");
        pool.shutdown();
    }

    #[test]
    fn shutdown_retires_parked_workers() {
        let pool = SupervisorPool::new(1);
        let (tx, rx) = mpsc::channel::<()>();
        pool.execute(Box::new(move || tx.send(()).unwrap())).unwrap();
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        pool.shutdown();
        // The worker exits once it observes the flag; poll briefly.
        for _ in 0..200 {
            if pool.state.lock().workers == 0 {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("parked worker did not exit after shutdown");
    }
}
