//! [`ThreadCtx`]: the application-facing API.
//!
//! Application code receives a `&mut ThreadCtx` in every step and performs
//! *all* externally visible actions through it: managed-memory accesses,
//! allocation, synchronization, thread management, and system calls.  This
//! is the analogue of the original system's `LD_PRELOAD` interposition
//! boundary -- the set of operations iReplayer can observe, record, and
//! replay.
//!
//! Managed memory accesses that fault (out-of-bounds, null) terminate the
//! step like a segmentation fault and are handled by the runtime's fault
//! machinery, so the accessors return plain values rather than `Result`s.

use std::panic::Location;
use std::sync::Arc;
use std::time::Duration;

use ireplayer_log::{EventKind, SyncOp, SyscallOutcome, ThreadId, VarId};
use ireplayer_mem::{MemAddr, Span};
use ireplayer_sys::{SysError, SyscallKind, Whence};

use crate::alloc;
use crate::fault::{unwind_with, FaultKind, UnwindSignal};
use crate::hooks::Instrument;
use crate::program::{BodyFn, Step};
use crate::site::SiteId;
use crate::state::{Command, ExecPhase, RtInner, SyncVarKind, ThreadPhase, VThread, REGISTRATION_VAR};
use crate::stats::WatchHitReport;
use crate::sync;
use crate::syscall;

/// Handle to a managed mutex created with [`ThreadCtx::mutex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MutexHandle(pub(crate) VarId);

/// Handle to a managed condition variable created with
/// [`ThreadCtx::condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CondvarHandle(pub(crate) VarId);

/// Handle to a managed barrier created with [`ThreadCtx::barrier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BarrierHandle {
    pub(crate) var: VarId,
    pub(crate) parties: u32,
}

/// Handle to a spawned thread, used with [`ThreadCtx::join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JoinHandle(pub(crate) ThreadId);

impl JoinHandle {
    /// Identifier of the spawned thread.
    pub fn thread(&self) -> ThreadId {
        self.0
    }
}

/// The per-thread execution context handed to every step of a thread body.
pub struct ThreadCtx<'a> {
    pub(crate) rt: &'a Arc<RtInner>,
    pub(crate) vt: &'a Arc<VThread>,
    /// Cached instrument pointer (baseline instrumentation), refreshed once
    /// per step so the hot path avoids the registry lock.
    pub(crate) instrument: Option<Arc<dyn Instrument>>,
}

impl<'a> ThreadCtx<'a> {
    pub(crate) fn new(rt: &'a Arc<RtInner>, vt: &'a Arc<VThread>) -> Self {
        let instrument = rt.instrument.read().clone();
        ThreadCtx { rt, vt, instrument }
    }

    fn site(&self, location: &Location<'_>) -> SiteId {
        self.rt.sites.intern(location)
    }

    // ------------------------------------------------------------------
    // Identity, time, and miscellaneous.
    // ------------------------------------------------------------------

    /// Identifier of the current thread (identical across re-executions).
    pub fn thread_id(&self) -> ThreadId {
        self.vt.id
    }

    /// Name given to this thread at spawn time.
    pub fn thread_name(&self) -> &str {
        &self.vt.name
    }

    /// Current epoch number (lock-free).
    pub fn epoch(&self) -> u64 {
        self.rt.epoch_number()
    }

    /// Returns `true` while the runtime is re-executing the last epoch.
    /// Applications normally do not need this; tools and tests use it.
    pub fn is_replaying(&self) -> bool {
        self.rt.replaying()
    }

    /// Deterministic per-thread random 64-bit value.  The generator state is
    /// part of the epoch checkpoint, so replays observe the same stream.
    pub fn rand_u64(&mut self) -> u64 {
        self.vt.rng.lock().next_u64()
    }

    /// Deterministic per-thread random value below `bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn rand_below(&mut self, bound: u64) -> u64 {
        self.vt.rng.lock().next_below(bound)
    }

    /// Deterministic per-thread random `f64` in `[0, 1)`.
    pub fn rand_f64(&mut self) -> f64 {
        self.vt.rng.lock().next_f64()
    }

    /// Burns CPU deterministically for `iterations` rounds of integer work
    /// and returns a checksum.  Workloads use this to model computation that
    /// does not touch shared state.
    ///
    /// When an instrumentation baseline is installed (CLAP path recording,
    /// rr-style serialization), the loop reports one branch event per eight
    /// iterations -- the analogue of compile-time instrumentation of the
    /// application's hot loops.  The iReplayer configurations install no
    /// instrument and pay only for a pointer check.
    pub fn work(&self, iterations: u64) -> u64 {
        let mut acc: u64 = 0x9e37_79b9 ^ iterations;
        match &self.instrument {
            None => {
                for i in 0..iterations {
                    acc = acc.rotate_left(13).wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(i);
                }
            }
            Some(instrument) => {
                for i in 0..iterations {
                    acc = acc.rotate_left(13).wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(i);
                    if i % 8 == 0 {
                        instrument.on_branch(self.vt.id, (acc & 0xffff) as u32);
                    }
                }
            }
        }
        std::hint::black_box(acc)
    }

    /// Sleeps for the given duration.  Used by synthetic racy programs (the
    /// Crasher benchmark intentionally widens its race window with sleeps).
    pub fn sleep(&self, duration: Duration) {
        std::thread::sleep(duration);
    }

    /// Requests an epoch boundary at the next quiescent point (the paper's
    /// "user-defined criteria" for closing an epoch).
    pub fn end_epoch(&self) {
        self.rt.request_epoch_end(crate::state::EpochEndReason::Explicit);
    }

    /// Reports a branch (Ball-Larus edge) to the instrumentation baseline,
    /// if one is installed.  The iReplayer configurations pay only for the
    /// `None` check.
    pub fn branch(&self, edge: u32) {
        if let Some(instrument) = &self.instrument {
            instrument.on_branch(self.vt.id, edge);
        }
    }

    /// Reports a function entry/exit to the instrumentation baseline.
    pub fn function(&self, func: u32, enter: bool) {
        if let Some(instrument) = &self.instrument {
            instrument.on_function(self.vt.id, func, enter);
        }
    }

    /// Aborts the program with a message (assertion failure / `abort()`
    /// analogue).  The runtime intercepts the abort, optionally replays the
    /// epoch for diagnosis, and reports.
    #[track_caller]
    pub fn crash(&mut self, message: impl Into<String>) -> ! {
        let site = self.site(Location::caller());
        self.rt.raise_fault(
            self.vt,
            FaultKind::ExplicitCrash {
                message: message.into(),
            },
            Some(site),
        )
    }

    /// Checks an application invariant; a failure is treated like an
    /// assertion failure (fault, diagnosis, report).
    #[track_caller]
    pub fn assert_that(&mut self, condition: bool, message: impl Into<String>) {
        if !condition {
            let site = self.site(Location::caller());
            self.rt.raise_fault(
                self.vt,
                FaultKind::AssertionFailure {
                    message: message.into(),
                },
                Some(site),
            )
        }
    }

    // ------------------------------------------------------------------
    // Managed memory.
    // ------------------------------------------------------------------

    /// Allocates `size` bytes from the managed heap and returns the address
    /// of the first byte.
    #[track_caller]
    pub fn alloc(&mut self, size: usize) -> MemAddr {
        let site = self.site(Location::caller());
        alloc::alloc(self.rt, self.vt, size, site)
    }

    /// Fallible allocation: consults the chaos plan's allocation-failure
    /// schedule and returns `None` at the denied sites,
    /// `Some(`[`ThreadCtx::alloc`]`)` otherwise (always `Some` with no
    /// plan installed).  The verdict is not recorded: the per-thread
    /// allocation counter behind it travels in the epoch checkpoint, so a
    /// replayed re-execution recomputes the same answer.
    #[track_caller]
    pub fn try_alloc(&mut self, size: usize) -> Option<MemAddr> {
        if self.rt.os.chaos_alloc_denied(self.vt.id.0) {
            return None;
        }
        Some(self.alloc(size))
    }

    /// Frees an allocation returned by [`ThreadCtx::alloc`].
    #[track_caller]
    pub fn free(&mut self, addr: MemAddr) {
        let site = self.site(Location::caller());
        alloc::free(self.rt, self.vt, addr, site);
    }

    /// Defines (or looks up) a named managed global of `size` bytes and
    /// returns its address.  Globals live in the arena and are covered by
    /// epoch checkpoints.
    #[track_caller]
    pub fn global(&mut self, name: &str, size: u64) -> MemAddr {
        let result = self.rt.globals.lock().define(name, size);
        match result {
            Ok(addr) => addr,
            Err(_) => {
                let site = self.site(Location::caller());
                self.rt.raise_fault(
                    self.vt,
                    FaultKind::OutOfMemory {
                        requested: size as usize,
                    },
                    Some(site),
                )
            }
        }
    }

    fn fault_mem(&self, addr: MemAddr, len: usize, is_write: bool, site: SiteId) -> ! {
        self.rt
            .raise_fault(self.vt, FaultKind::SegFault { addr, len, is_write }, Some(site))
    }

    fn observe_store(&mut self, addr: MemAddr, len: usize, site: SiteId) {
        sync::mark_dirty(self.vt);
        if let Some(instrument) = &self.instrument {
            instrument.on_store(self.vt.id, addr, len);
        }
        if self.rt.watch_active.load(std::sync::atomic::Ordering::Acquire) {
            let hit = self.rt.watch.lock().check_write_at(addr, len);
            if let Some(hit) = hit {
                let report = WatchHitReport {
                    watched: hit.watchpoint.span,
                    access: Span::new(addr, len as u64),
                    thread: self.vt.id,
                    site: self.rt.sites.resolve(site),
                    attempt: self.rt.replay_attempt.load(std::sync::atomic::Ordering::Acquire),
                };
                for hook in self.rt.hooks.read().iter() {
                    hook.on_watch_hit(&report);
                }
                self.rt.epoch.lock().watch_hits.push(report);
            }
        }
    }

    fn observe_load(&self, addr: MemAddr, len: usize) {
        if let Some(instrument) = &self.instrument {
            instrument.on_load(self.vt.id, addr, len);
        }
    }

    /// Writes raw bytes to managed memory.
    #[track_caller]
    pub fn write_bytes(&mut self, addr: MemAddr, data: &[u8]) {
        let site = self.site(Location::caller());
        self.observe_store(addr, data.len(), site);
        if self.rt.arena.write_bytes(addr, data).is_err() {
            self.fault_mem(addr, data.len(), true, site);
        }
    }

    /// Reads raw bytes from managed memory into `buf`.
    #[track_caller]
    pub fn read_bytes(&mut self, addr: MemAddr, buf: &mut [u8]) {
        let site = self.site(Location::caller());
        self.observe_load(addr, buf.len());
        if self.rt.arena.read_bytes(addr, buf).is_err() {
            self.fault_mem(addr, buf.len(), false, site);
        }
    }

    /// Fills `len` bytes of managed memory with `value`.
    #[track_caller]
    pub fn fill(&mut self, addr: MemAddr, len: usize, value: u8) {
        let site = self.site(Location::caller());
        self.observe_store(addr, len, site);
        if self.rt.arena.fill(addr, len, value).is_err() {
            self.fault_mem(addr, len, true, site);
        }
    }

    /// Copies `len` bytes within managed memory.
    #[track_caller]
    pub fn copy(&mut self, src: MemAddr, dst: MemAddr, len: usize) {
        let site = self.site(Location::caller());
        self.observe_load(src, len);
        self.observe_store(dst, len, site);
        if self.rt.arena.copy(src, dst, len).is_err() {
            self.fault_mem(dst, len, true, site);
        }
    }
}

macro_rules! mem_accessors {
    ($($read:ident / $write:ident: $ty:ty [$n:expr]),* $(,)?) => {
        impl<'a> ThreadCtx<'a> {
            $(
                /// Reads a value of this width from managed memory.
                #[track_caller]
                pub fn $read(&mut self, addr: MemAddr) -> $ty {
                    let site = self.site(Location::caller());
                    self.observe_load(addr, $n);
                    match self.rt.arena.$read(addr) {
                        Ok(value) => value,
                        Err(_) => self.fault_mem(addr, $n, false, site),
                    }
                }

                /// Writes a value of this width to managed memory.
                #[track_caller]
                pub fn $write(&mut self, addr: MemAddr, value: $ty) {
                    let site = self.site(Location::caller());
                    self.observe_store(addr, $n, site);
                    if self.rt.arena.$write(addr, value).is_err() {
                        self.fault_mem(addr, $n, true, site);
                    }
                }
            )*
        }
    };
}

mem_accessors! {
    read_u8 / write_u8: u8 [1],
    read_u16 / write_u16: u16 [2],
    read_u32 / write_u32: u32 [4],
    read_u64 / write_u64: u64 [8],
    read_i64 / write_i64: i64 [8],
    read_f64 / write_f64: f64 [8],
    read_addr / write_addr: MemAddr [8],
}

impl<'a> ThreadCtx<'a> {
    // ------------------------------------------------------------------
    // Synchronization objects.
    // ------------------------------------------------------------------

    /// Resolves a synchronization handle to its shadow object, surfacing a
    /// handle that names no registered variable (for example one minted by
    /// a different runtime) as a divergence-grade diagnostic instead of
    /// unwinding an index panic through user code.
    fn resolve_var(&mut self, id: VarId) -> Arc<crate::state::SyncVar> {
        match self.rt.try_sync_var(id) {
            Some(var) => var,
            None => {
                let err = ireplayer_log::UnknownSyncVar {
                    addr: ireplayer_log::SyncAddr(u64::from(id.0)),
                };
                if self.rt.replaying() {
                    sync::signal_divergence(self.rt, self.vt, err.into())
                } else {
                    self.rt.raise_fault(
                        self.vt,
                        FaultKind::Panic {
                            message: err.to_string(),
                        },
                        None,
                    )
                }
            }
        }
    }

    fn register_var(&mut self, kind: SyncVarKind) -> VarId {
        let reg = self.rt.sync_var(REGISTRATION_VAR);
        match self.rt.phase() {
            ExecPhase::Passthrough => self.rt.register_sync_var(kind).id,
            ExecPhase::Recording => {
                // Hold the registration variable's lock across "assign id +
                // record" so the recorded order equals the assignment order.
                let _guard = reg.state.lock();
                let var = self.rt.register_sync_var(kind);
                crate::sink::RecordSink::new(self.rt, self.vt).sync(&reg, SyncOp::VarRegister, i64::from(var.id.0));
                var.id
            }
            ExecPhase::Replaying => {
                let actual = EventKind::Sync {
                    var: REGISTRATION_VAR,
                    op: SyncOp::VarRegister,
                    result: 0,
                };
                let recorded = sync::replay_expect(self.rt, self.vt, &actual);
                // Order registrations exactly as recorded (the record side
                // serialized them under the registration variable's lock),
                // then reuse the variable created during the original
                // execution.
                sync::wait_for_turn(self.rt, self.vt, &reg);
                let id = VarId(recorded as u32);
                sync::replay_advance_thread(self.vt);
                reg.var_list.advance();
                reg.cv.notify_all();
                id
            }
        }
    }

    /// Creates a managed mutex.
    pub fn mutex(&mut self) -> MutexHandle {
        MutexHandle(self.register_var(SyncVarKind::Mutex))
    }

    /// Acquires a managed mutex.
    pub fn lock(&mut self, handle: MutexHandle) {
        let var = self.resolve_var(handle.0);
        sync::mutex_lock(self.rt, self.vt, &var);
    }

    /// Attempts to acquire a managed mutex without blocking; returns whether
    /// the lock was obtained.  The result is recorded and reproduced during
    /// replay (§3.2.1).
    pub fn try_lock(&mut self, handle: MutexHandle) -> bool {
        let var = self.resolve_var(handle.0);
        sync::mutex_trylock(self.rt, self.vt, &var)
    }

    /// Releases a managed mutex.
    pub fn unlock(&mut self, handle: MutexHandle) {
        let var = self.resolve_var(handle.0);
        sync::mutex_unlock(self.rt, self.vt, &var);
    }

    /// Runs `body` while holding the mutex.
    pub fn with_lock<R>(&mut self, handle: MutexHandle, body: impl FnOnce(&mut Self) -> R) -> R {
        self.lock(handle);
        let result = body(self);
        self.unlock(handle);
        result
    }

    /// Creates a managed condition variable.
    pub fn condvar(&mut self) -> CondvarHandle {
        CondvarHandle(self.register_var(SyncVarKind::Condvar))
    }

    /// Waits on a condition variable, releasing and re-acquiring the mutex
    /// around the wait.
    pub fn wait(&mut self, condvar: CondvarHandle, mutex: MutexHandle) {
        let cv_var = self.resolve_var(condvar.0);
        let mutex_var = self.resolve_var(mutex.0);
        sync::cond_wait(self.rt, self.vt, &cv_var, &mutex_var);
    }

    /// Wakes one waiter of the condition variable.
    pub fn signal(&mut self, condvar: CondvarHandle) {
        let cv_var = self.resolve_var(condvar.0);
        sync::cond_signal(self.rt, self.vt, &cv_var);
    }

    /// Wakes all waiters of the condition variable.
    pub fn broadcast(&mut self, condvar: CondvarHandle) {
        let cv_var = self.resolve_var(condvar.0);
        sync::cond_broadcast(self.rt, self.vt, &cv_var);
    }

    /// Creates a managed barrier for `parties` threads.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn barrier(&mut self, parties: u32) -> BarrierHandle {
        assert!(parties > 0, "a barrier needs at least one party");
        BarrierHandle {
            var: self.register_var(SyncVarKind::Barrier { parties }),
            parties,
        }
    }

    /// Waits on a barrier; returns `true` for exactly one (serial) thread
    /// per generation.  The return value is recorded and reproduced during
    /// replay.
    pub fn barrier_wait(&mut self, handle: BarrierHandle) -> bool {
        let var = self.resolve_var(handle.var);
        sync::barrier_wait(self.rt, self.vt, &var, handle.parties)
    }

    // ------------------------------------------------------------------
    // Threads.
    // ------------------------------------------------------------------

    /// Spawns a new application thread running `body` and returns a handle
    /// for joining it.
    ///
    /// Thread creation is serialized by a global lock and recorded, so the
    /// child receives the same identifier, heap, and random stream in every
    /// re-execution.  During replay, the existing (kept-alive) thread is
    /// revived instead of creating a new one (§3.5.1).
    pub fn spawn<F>(&mut self, name: impl Into<String>, body: F) -> JoinHandle
    where
        F: FnMut(&mut ThreadCtx<'_>) -> Step + Send + 'static,
    {
        self.spawn_boxed(name.into(), Box::new(body))
    }

    fn spawn_boxed(&mut self, name: String, body: BodyFn) -> JoinHandle {
        if self.rt.replaying() {
            let child_id = sync::replay_thread_create(self.rt, self.vt);
            let child = self.rt.thread(child_id);
            {
                let mut control = child.control.lock();
                control.awaiting_creation = false;
            }
            child.notify();
            self.rt.poke_world();
            return JoinHandle(child_id);
        }

        sync::mark_dirty(self.vt);
        let _guard = self.rt.creation_lock.lock();
        let vt = self.rt.build_vthread(
            name,
            Some(Command::Run {
                target: None,
                expect_fault: false,
            }),
        );
        let id = vt.id;
        let rt2 = Arc::clone(self.rt);
        let vt2 = Arc::clone(&vt);
        let spawned = std::thread::Builder::new()
            .name(format!("ireplayer-{}", id.0))
            .spawn(move || crate::exec::thread_main(rt2, vt2, body));
        let handle = match spawned {
            Ok(handle) => handle,
            Err(error) => {
                // Roll the registration back before surfacing the failure
                // as a fault: the creation lock is still held (no
                // concurrent registration), the child never ran, and the
                // creation event has not been recorded yet, so the log
                // stays consistent with reality.
                drop(vt);
                self.rt.threads.write().pop();
                self.rt.raise_fault(
                    self.vt,
                    FaultKind::Panic {
                        message: format!("the OS refused to spawn an application thread: {error}"),
                    },
                    None,
                )
            }
        };
        // Record the creation only once the child demonstrably exists.
        if self.rt.recording() {
            sync::record_thread_create(self.rt, self.vt, id);
        }
        self.rt.os_threads.lock().push(handle);
        JoinHandle(id)
    }

    /// Waits for the thread behind `handle` to finish.
    pub fn join(&mut self, handle: JoinHandle) {
        let child = self.rt.thread(handle.0);
        // Wait until the child's body has returned `Done` (in replay it will
        // do so again after re-executing its recorded steps).
        {
            let mut backoff = sync::Backoff::new();
            let mut control = child.control.lock();
            loop {
                if matches!(control.phase, ThreadPhase::Finished | ThreadPhase::Reclaimed) {
                    break;
                }
                if self.rt.abort_pending() {
                    drop(control);
                    unwind_with(UnwindSignal::EpochAbort);
                }
                if self.rt.epoch_end_pending() && !self.rt.replaying() && !self.vt.step_is_dirty() {
                    drop(control);
                    unwind_with(UnwindSignal::ReparkCleanStep);
                }
                child.control_cv.wait_for(&mut control, backoff.slice());
            }
        }
        if self.rt.replaying() {
            sync::replay_thread_join(self.rt, self.vt, &child);
        } else if self.rt.recording() {
            sync::mark_dirty(self.vt);
            sync::record_thread_join(self.rt, self.vt, &child);
        }
        child.control.lock().joined = true;
    }

    // ------------------------------------------------------------------
    // System calls.
    // ------------------------------------------------------------------

    /// `getpid()` -- repeatable, never recorded.
    pub fn getpid(&mut self) -> u32 {
        syscall::syscall_prologue(self.rt, self.vt);
        self.rt.os.getpid()
    }

    /// `gettimeofday()` in nanoseconds -- recordable.
    pub fn now_ns(&mut self) -> u64 {
        syscall::syscall_prologue(self.rt, self.vt);
        match self.rt.phase() {
            ExecPhase::Passthrough => self.rt.os.gettime_ns(),
            ExecPhase::Recording => {
                let now = self.rt.os.gettime_ns();
                syscall::record_syscall(self.rt, self.vt, SyscallKind::GetTime, SyscallOutcome::ret(now as i64));
                now
            }
            ExecPhase::Replaying => syscall::replay_syscall(self.rt, self.vt, SyscallKind::GetTime).ret as u64,
        }
    }

    fn recordable_fd_call(
        &mut self,
        kind: SyscallKind,
        exec: impl FnOnce(&RtInner) -> Result<i32, ireplayer_sys::SysError>,
    ) -> Option<i32> {
        syscall::syscall_prologue(self.rt, self.vt);
        match self.rt.phase() {
            ExecPhase::Passthrough => exec(self.rt.as_ref()).ok(),
            ExecPhase::Recording => {
                let result = exec(self.rt.as_ref());
                let ret = match &result {
                    Ok(fd) => i64::from(*fd),
                    Err(_) => -1,
                };
                syscall::record_syscall(self.rt, self.vt, kind, SyscallOutcome::ret(ret));
                result.ok()
            }
            ExecPhase::Replaying => {
                let outcome = syscall::replay_syscall(self.rt, self.vt, kind);
                if outcome.ret < 0 {
                    None
                } else {
                    Some(outcome.ret as i32)
                }
            }
        }
    }

    /// `open(path)` -- recordable.  Returns the descriptor, or `None` if the
    /// file does not exist.
    pub fn open(&mut self, path: &str) -> Option<i32> {
        let path = path.to_owned();
        self.recordable_fd_call(SyscallKind::Open, move |rt| rt.os.open(&path))
    }

    /// `open`-or-create -- recordable.
    pub fn open_create(&mut self, path: &str) -> Option<i32> {
        let path = path.to_owned();
        self.recordable_fd_call(SyscallKind::Open, move |rt| rt.os.open_create(&path))
    }

    /// `dup(fd)` -- recordable.
    pub fn dup(&mut self, fd: i32) -> Option<i32> {
        self.recordable_fd_call(SyscallKind::Dup, move |rt| rt.os.dup(fd))
    }

    /// `connect(address)` -- recordable.
    pub fn connect(&mut self, address: &str) -> Option<i32> {
        let address = address.to_owned();
        self.recordable_fd_call(SyscallKind::SocketConnect, move |rt| rt.os.socket_connect(&address))
    }

    /// `accept(address)` on a listening endpoint -- recordable.  Returns
    /// `None` when no client is pending.
    pub fn accept(&mut self, address: &str) -> Option<i32> {
        let address = address.to_owned();
        self.recordable_fd_call(SyscallKind::SocketAccept, move |rt| rt.os.socket_accept(&address))
    }

    /// `read(fd, len)` on a regular file -- revocable: re-issued during
    /// replay after file positions are restored.
    #[track_caller]
    pub fn read(&mut self, fd: i32, len: usize) -> Vec<u8> {
        let site = self.site(Location::caller());
        syscall::syscall_prologue(self.rt, self.vt);
        if self.rt.replaying() {
            // Verify the marker, then re-issue the call against the restored
            // file position.
            let _ = syscall::replay_syscall(self.rt, self.vt, SyscallKind::FileRead);
            return self.rt.os.file_read(fd, len).unwrap_or_default();
        }
        match self.rt.os.file_read(fd, len) {
            Ok(data) => {
                if self.rt.recording() {
                    syscall::record_syscall(
                        self.rt,
                        self.vt,
                        SyscallKind::FileRead,
                        SyscallOutcome::ret(data.len() as i64),
                    );
                }
                data
            }
            Err(e) => self.sys_fault(e, site),
        }
    }

    /// `write(fd, data)` on a regular file -- revocable.
    #[track_caller]
    pub fn write(&mut self, fd: i32, data: &[u8]) -> usize {
        let site = self.site(Location::caller());
        syscall::syscall_prologue(self.rt, self.vt);
        if self.rt.replaying() {
            let _ = syscall::replay_syscall(self.rt, self.vt, SyscallKind::FileWrite);
            return self.rt.os.file_write(fd, data).unwrap_or(0);
        }
        match self.rt.os.file_write(fd, data) {
            Ok(written) => {
                if self.rt.recording() {
                    syscall::record_syscall(
                        self.rt,
                        self.vt,
                        SyscallKind::FileWrite,
                        SyscallOutcome::ret(written as i64),
                    );
                }
                written
            }
            Err(e) => self.sys_fault(e, site),
        }
    }

    /// `recv(fd, len)` on a socket -- recordable: the bytes are logged and
    /// served from the log during replay.
    #[track_caller]
    pub fn recv(&mut self, fd: i32, len: usize) -> Vec<u8> {
        let site = self.site(Location::caller());
        syscall::syscall_prologue(self.rt, self.vt);
        match self.rt.phase() {
            ExecPhase::Passthrough => self.rt.os.socket_read(fd, len).unwrap_or_default(),
            ExecPhase::Recording => match self.rt.os.socket_read(fd, len) {
                Ok(data) => {
                    syscall::record_syscall(
                        self.rt,
                        self.vt,
                        SyscallKind::SocketRead,
                        SyscallOutcome::with_data(data.len() as i64, data.clone()),
                    );
                    data
                }
                Err(e) => self.sys_fault(e, site),
            },
            ExecPhase::Replaying => syscall::replay_syscall(self.rt, self.vt, SyscallKind::SocketRead).data,
        }
    }

    /// `send(fd, data)` on a socket -- recordable: the bytes are not
    /// re-transmitted during replay.
    #[track_caller]
    pub fn send(&mut self, fd: i32, data: &[u8]) -> usize {
        let site = self.site(Location::caller());
        syscall::syscall_prologue(self.rt, self.vt);
        match self.rt.phase() {
            ExecPhase::Passthrough => self.rt.os.socket_write(fd, data).unwrap_or(0),
            ExecPhase::Recording => match self.rt.os.socket_write(fd, data) {
                Ok(sent) => {
                    syscall::record_syscall(
                        self.rt,
                        self.vt,
                        SyscallKind::SocketWrite,
                        SyscallOutcome::ret(sent as i64),
                    );
                    sent
                }
                Err(e) => self.sys_fault(e, site),
            },
            ExecPhase::Replaying => syscall::replay_syscall(self.rt, self.vt, SyscallKind::SocketWrite).ret as usize,
        }
    }

    /// Fallible `recv` -- recordable like [`ThreadCtx::recv`], but
    /// surfaces transient failures (`EAGAIN`, a reset connection -- the
    /// outcomes a chaos plan injects) as typed errors instead of faulting
    /// the run.  The error is logged exactly like a successful outcome, so
    /// replay serves it from the log without re-invoking the kernel.
    pub fn try_recv(&mut self, fd: i32, len: usize) -> Result<Vec<u8>, SysError> {
        syscall::syscall_prologue(self.rt, self.vt);
        match self.rt.phase() {
            ExecPhase::Passthrough => self.rt.os.socket_read(fd, len),
            ExecPhase::Recording => {
                let result = self.rt.os.socket_read(fd, len);
                let outcome = match &result {
                    Ok(data) => SyscallOutcome::with_data(data.len() as i64, data.clone()),
                    Err(e) => SyscallOutcome::with_data(-e.wire_code(), e.wire_payload()),
                };
                syscall::record_syscall(self.rt, self.vt, SyscallKind::SocketRead, outcome);
                result
            }
            ExecPhase::Replaying => {
                let outcome = syscall::replay_syscall(self.rt, self.vt, SyscallKind::SocketRead);
                if outcome.ret < 0 {
                    Err(SysError::from_wire(-outcome.ret, &outcome.data))
                } else {
                    Ok(outcome.data)
                }
            }
        }
    }

    /// Fallible `send` -- recordable; see [`ThreadCtx::try_recv`].
    pub fn try_send(&mut self, fd: i32, data: &[u8]) -> Result<usize, SysError> {
        syscall::syscall_prologue(self.rt, self.vt);
        match self.rt.phase() {
            ExecPhase::Passthrough => self.rt.os.socket_write(fd, data),
            ExecPhase::Recording => {
                let result = self.rt.os.socket_write(fd, data);
                let outcome = match &result {
                    Ok(sent) => SyscallOutcome::ret(*sent as i64),
                    Err(e) => SyscallOutcome::with_data(-e.wire_code(), e.wire_payload()),
                };
                syscall::record_syscall(self.rt, self.vt, SyscallKind::SocketWrite, outcome);
                result
            }
            ExecPhase::Replaying => {
                let outcome = syscall::replay_syscall(self.rt, self.vt, SyscallKind::SocketWrite);
                if outcome.ret < 0 {
                    Err(SysError::from_wire(-outcome.ret, &outcome.data))
                } else {
                    Ok(outcome.ret as usize)
                }
            }
        }
    }

    /// `epoll_wait`-style readiness query -- recordable.
    pub fn poll(&mut self, fds: &[i32]) -> Vec<i32> {
        syscall::syscall_prologue(self.rt, self.vt);
        match self.rt.phase() {
            ExecPhase::Passthrough => self.rt.os.poll_readable(fds),
            ExecPhase::Recording => {
                let ready = self.rt.os.poll_readable(fds);
                let data: Vec<u8> = ready.iter().flat_map(|fd| fd.to_le_bytes()).collect();
                syscall::record_syscall(
                    self.rt,
                    self.vt,
                    SyscallKind::PollWait,
                    SyscallOutcome::with_data(ready.len() as i64, data),
                );
                ready
            }
            ExecPhase::Replaying => {
                let outcome = syscall::replay_syscall(self.rt, self.vt, SyscallKind::PollWait);
                outcome
                    .data
                    .chunks_exact(4)
                    .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect()
            }
        }
    }

    /// `lseek(fd, offset, whence)`.  A repositioning seek is irrevocable and
    /// closes the current epoch (§2.2.3); a position query is repeatable.
    #[track_caller]
    pub fn lseek(&mut self, fd: i32, offset: i64, whence: Whence) -> u64 {
        let site = self.site(Location::caller());
        syscall::syscall_prologue(self.rt, self.vt);
        let repositions = !(offset == 0 && whence == Whence::Cur);
        if repositions && self.rt.recording() {
            syscall::irrevocable(self.rt, "lseek");
        }
        match self.rt.os.lseek(fd, offset, whence) {
            Ok(pos) => pos,
            Err(e) => self.sys_fault(e, site),
        }
    }

    /// `close(fd)` -- deferrable: the descriptor is only really closed at
    /// the next epoch begin so that descriptor values stay reproducible.
    pub fn close(&mut self, fd: i32) {
        syscall::syscall_prologue(self.rt, self.vt);
        match self.rt.phase() {
            ExecPhase::Passthrough => {
                let _ = self.rt.os.close(fd);
            }
            ExecPhase::Recording => {
                syscall::defer(self.rt, crate::state::DeferredOp::Close(fd));
                syscall::record_syscall(self.rt, self.vt, SyscallKind::Close, SyscallOutcome::ret(0));
            }
            ExecPhase::Replaying => {
                // The original close was deferred; replay only checks the
                // marker and re-defers nothing (the deferred queue was
                // restored by the rollback).
                let _ = syscall::replay_syscall(self.rt, self.vt, SyscallKind::Close);
                syscall::defer(self.rt, crate::state::DeferredOp::Close(fd));
            }
        }
    }

    /// `mmap(len)` -- recordable; returns the simulated base address.
    #[track_caller]
    pub fn mmap(&mut self, len: u64) -> u64 {
        let site = self.site(Location::caller());
        syscall::syscall_prologue(self.rt, self.vt);
        match self.rt.phase() {
            ExecPhase::Passthrough => self.rt.os.mmap(len).unwrap_or(0),
            ExecPhase::Recording => match self.rt.os.mmap(len) {
                Ok(addr) => {
                    syscall::record_syscall(self.rt, self.vt, SyscallKind::Mmap, SyscallOutcome::ret(addr as i64));
                    addr
                }
                Err(e) => self.sys_fault(e, site),
            },
            ExecPhase::Replaying => syscall::replay_syscall(self.rt, self.vt, SyscallKind::Mmap).ret as u64,
        }
    }

    /// Fallible `mmap` -- recordable; mapping-space exhaustion (the
    /// outcome a chaos plan's mmap schedule injects) comes back as a typed
    /// error instead of faulting the run.
    pub fn try_mmap(&mut self, len: u64) -> Result<u64, SysError> {
        syscall::syscall_prologue(self.rt, self.vt);
        match self.rt.phase() {
            ExecPhase::Passthrough => self.rt.os.mmap(len),
            ExecPhase::Recording => {
                let result = self.rt.os.mmap(len);
                let outcome = match &result {
                    Ok(addr) => SyscallOutcome::ret(*addr as i64),
                    Err(e) => SyscallOutcome::with_data(-e.wire_code(), e.wire_payload()),
                };
                syscall::record_syscall(self.rt, self.vt, SyscallKind::Mmap, outcome);
                result
            }
            ExecPhase::Replaying => {
                let outcome = syscall::replay_syscall(self.rt, self.vt, SyscallKind::Mmap);
                if outcome.ret < 0 {
                    Err(SysError::from_wire(-outcome.ret, &outcome.data))
                } else {
                    Ok(outcome.ret as u64)
                }
            }
        }
    }

    /// `munmap(addr)` -- deferrable.
    pub fn munmap(&mut self, addr: u64) {
        syscall::syscall_prologue(self.rt, self.vt);
        match self.rt.phase() {
            ExecPhase::Passthrough => {
                let _ = self.rt.os.munmap(addr);
            }
            ExecPhase::Recording => {
                syscall::defer(self.rt, crate::state::DeferredOp::Munmap(addr));
                syscall::record_syscall(self.rt, self.vt, SyscallKind::Munmap, SyscallOutcome::ret(0));
            }
            ExecPhase::Replaying => {
                let _ = syscall::replay_syscall(self.rt, self.vt, SyscallKind::Munmap);
                syscall::defer(self.rt, crate::state::DeferredOp::Munmap(addr));
            }
        }
    }

    /// `fcntl(fd, F_GETFL)` -- repeatable.
    pub fn fcntl_get(&mut self, fd: i32) -> i64 {
        syscall::syscall_prologue(self.rt, self.vt);
        self.rt.os.fcntl_get(fd).unwrap_or(-1)
    }

    /// `fork()` -- irrevocable: executes, then closes the current epoch.
    pub fn fork(&mut self) -> u32 {
        syscall::syscall_prologue(self.rt, self.vt);
        if self.rt.recording() {
            syscall::irrevocable(self.rt, "fork");
        }
        self.rt.os.fork()
    }

    #[track_caller]
    fn sys_fault(&mut self, error: ireplayer_sys::SysError, site: SiteId) -> ! {
        self.rt.raise_fault(
            self.vt,
            FaultKind::Panic {
                message: format!("system call failed: {error}"),
            },
            Some(site),
        )
    }
}

impl std::fmt::Debug for ThreadCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadCtx")
            .field("thread", &self.vt.id)
            .field("phase", &self.rt.phase())
            .finish_non_exhaustive()
    }
}
