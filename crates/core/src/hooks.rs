//! Tool hooks: the extension points used by the detection and debugging
//! tools of paper §4, and the instrumentation interface used by the
//! comparison baselines (CLAP path recording, AddressSanitizer-style
//! checking).

use ireplayer_log::ThreadId;
use ireplayer_mem::{CorruptedCanary, MemAddr, Span, UafEvidence};

use crate::fault::FaultRecord;
use crate::site::Site;
use crate::stats::WatchHitReport;

/// What a tool asks the runtime to do at an epoch boundary.
///
/// Marked `#[non_exhaustive]`: further decisions (e.g. checkpoint-only) may
/// be added; downstream matches must keep a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EpochDecision {
    /// Proceed to the next epoch.
    Continue,
    /// Roll back and replay the last epoch for diagnosis.
    Replay(ReplayRequest),
}

/// A request for a diagnostic replay.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplayRequest {
    /// Address ranges to watch during the replay (at most four are
    /// installed per replay, as with hardware debug registers; the rest are
    /// deferred to further replays).
    pub watch: Vec<Span>,
    /// Human-readable reason, included in reports.
    pub reason: String,
}

impl ReplayRequest {
    /// Creates a request with a reason and no watchpoints.
    pub fn because(reason: impl Into<String>) -> Self {
        ReplayRequest {
            watch: Vec::new(),
            reason: reason.into(),
        }
    }

    /// Adds a watched range.
    pub fn watch(mut self, span: Span) -> Self {
        self.watch.push(span);
        self
    }
}

/// Read-only view of the runtime state offered to tools at epoch boundaries
/// and during replays.
///
/// The concrete type lives in the runtime module; tools receive it as a
/// trait object so that the runtime's internals stay private.
pub trait EpochView {
    /// Epoch number (0-based).
    fn epoch(&self) -> u64;

    /// Scans all allocation canaries and returns the corrupted ones
    /// (overflow evidence, §4.1).  Canaries must have been enabled in the
    /// configuration.
    fn corrupted_canaries(&self) -> Vec<CorruptedCanary>;

    /// Scans the quarantine and returns modified freed objects
    /// (use-after-free evidence, §4.2).  The quarantine must have been
    /// enabled in the configuration.
    fn use_after_free_evidence(&self) -> Vec<UafEvidence>;

    /// Reads managed memory (for tools that inspect application data).
    fn read_bytes(&self, addr: MemAddr, len: usize) -> Vec<u8>;

    /// Source location of the allocation containing `addr`, if the runtime
    /// knows it.
    fn alloc_site(&self, addr: MemAddr) -> Option<Site>;

    /// Source location of the free of the quarantined object at `payload`.
    fn free_site(&self, payload: MemAddr) -> Option<Site>;

    /// Faults recorded so far in this epoch.
    fn faults(&self) -> Vec<FaultRecord>;

    /// Watchpoint hits observed so far (meaningful after a replay).
    fn watch_hits(&self) -> Vec<WatchHitReport>;
}

/// A tool that participates in epoch boundaries and replays.
///
/// All methods have default implementations so a tool only overrides what
/// it needs.  Tools use interior mutability for their own state; hook
/// methods may be called from the coordinator thread at any epoch boundary.
pub trait ToolHook: Send + Sync {
    /// Name used in reports.
    fn name(&self) -> &str;

    /// Called at the end of every epoch, before the continue/replay
    /// decision.  The first hook returning [`EpochDecision::Replay`] wins;
    /// watch requests from all hooks are merged.
    fn at_epoch_end(&self, view: &dyn EpochView) -> EpochDecision {
        let _ = view;
        EpochDecision::Continue
    }

    /// Called when a fault is intercepted, before the diagnostic replay.
    /// Returns additional address ranges to watch during that replay.
    fn on_fault(&self, fault: &FaultRecord, view: &dyn EpochView) -> Vec<Span> {
        let _ = (fault, view);
        Vec::new()
    }

    /// Called for every watchpoint hit during a replay.
    fn on_watch_hit(&self, hit: &WatchHitReport) {
        let _ = hit;
    }

    /// Called after a replay finishes (matched or not).
    fn after_replay(&self, view: &dyn EpochView, matched: bool, attempts: u32) {
        let _ = (view, matched, attempts);
    }
}

/// Low-level execution instrumentation, used by the comparison baselines:
/// the CLAP recorder consumes branch/function events, the
/// AddressSanitizer-style checker consumes loads and stores.
///
/// The default implementation of every method is empty, and the runtime
/// only consults the instrument when one is installed, so the iReplayer
/// configurations pay nothing for this interface.
pub trait Instrument: Send + Sync {
    /// A branch (Ball-Larus edge) was taken by `thread`.
    fn on_branch(&self, thread: ThreadId, edge: u32) {
        let _ = (thread, edge);
    }

    /// A function was entered (`enter = true`) or left.
    fn on_function(&self, thread: ThreadId, func: u32, enter: bool) {
        let _ = (thread, func, enter);
    }

    /// A managed store of `len` bytes at `addr`.
    fn on_store(&self, thread: ThreadId, addr: MemAddr, len: usize) {
        let _ = (thread, addr, len);
    }

    /// A managed load of `len` bytes at `addr`.
    fn on_load(&self, thread: ThreadId, addr: MemAddr, len: usize) {
        let _ = (thread, addr, len);
    }

    /// An allocation of `size` bytes returned `payload`.
    fn on_alloc(&self, thread: ThreadId, payload: MemAddr, size: usize) {
        let _ = (thread, payload, size);
    }

    /// The allocation at `payload` (of `size` bytes) was freed.
    fn on_free(&self, thread: ThreadId, payload: MemAddr, size: usize) {
        let _ = (thread, payload, size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NullTool;
    impl ToolHook for NullTool {
        fn name(&self) -> &str {
            "null"
        }
    }

    struct NullInstrument;
    impl Instrument for NullInstrument {}

    struct FakeView;
    impl EpochView for FakeView {
        fn epoch(&self) -> u64 {
            7
        }
        fn corrupted_canaries(&self) -> Vec<CorruptedCanary> {
            Vec::new()
        }
        fn use_after_free_evidence(&self) -> Vec<UafEvidence> {
            Vec::new()
        }
        fn read_bytes(&self, _addr: MemAddr, len: usize) -> Vec<u8> {
            vec![0; len]
        }
        fn alloc_site(&self, _addr: MemAddr) -> Option<Site> {
            None
        }
        fn free_site(&self, _payload: MemAddr) -> Option<Site> {
            None
        }
        fn faults(&self) -> Vec<FaultRecord> {
            Vec::new()
        }
        fn watch_hits(&self) -> Vec<WatchHitReport> {
            Vec::new()
        }
    }

    #[test]
    fn default_hook_continues_and_requests_nothing() {
        let tool = NullTool;
        let view = FakeView;
        assert_eq!(tool.name(), "null");
        assert_eq!(tool.at_epoch_end(&view), EpochDecision::Continue);
        let fault = FaultRecord {
            thread: ThreadId(0),
            kind: crate::fault::FaultKind::ExplicitCrash { message: "x".into() },
            site: None,
            epoch: 0,
        };
        assert!(tool.on_fault(&fault, &view).is_empty());
        // Default no-op notifications do not panic.
        tool.after_replay(&view, true, 1);
        let instrument = NullInstrument;
        instrument.on_branch(ThreadId(0), 1);
        instrument.on_store(ThreadId(0), MemAddr::new(8), 8);
        instrument.on_alloc(ThreadId(0), MemAddr::new(8), 8);
        instrument.on_free(ThreadId(0), MemAddr::new(8), 8);
        instrument.on_load(ThreadId(0), MemAddr::new(8), 8);
        instrument.on_function(ThreadId(0), 1, true);
    }

    #[test]
    fn replay_requests_accumulate_watches() {
        let request = ReplayRequest::because("canary corrupted")
            .watch(Span::new(MemAddr::new(100), 8))
            .watch(Span::new(MemAddr::new(200), 8));
        assert_eq!(request.watch.len(), 2);
        assert_eq!(request.reason, "canary corrupted");
        assert_eq!(EpochDecision::Replay(request.clone()), EpochDecision::Replay(request));
    }

    #[test]
    fn view_defaults_expose_epoch() {
        let view = FakeView;
        assert_eq!(view.epoch(), 7);
        assert_eq!(view.read_bytes(MemAddr::new(1), 4), vec![0; 4]);
    }
}
