//! Shared runtime state: the inner runtime object and per-thread state.
//!
//! These types are crate-private; the public surface is
//! [`crate::Runtime`] and [`crate::ThreadCtx`].

use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex, RwLock};

use ireplayer_log::{Divergence, ThreadId, ThreadList, VarId, VarList};
use ireplayer_mem::{
    Arena, CanaryMap, Globals, HeapConfig, MemAddr, Quarantine, Span, SuperHeap, SuperHeapState, ThreadHeap,
    WatchRegistry,
};
use ireplayer_sys::SimOs;

use crate::config::{AllocatorMode, Config, RunMode};
use crate::events::{subscription, EventFilter, EventStream, ObserverSlot, SessionEvent};
use crate::fault::FaultRecord;
use crate::hooks::{Instrument, ReplayRequest, ToolHook};
use crate::rng::DetRng;
use crate::site::{SiteId, SiteRegistry};
use crate::stats::{Counters, WatchHitReport};

/// Execution phase of the whole runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ExecPhase {
    /// No recording (passthrough mode).
    Passthrough,
    /// Recording the original execution.
    Recording,
    /// Re-executing the last epoch.
    Replaying,
}

/// Why the coordinator asked the world to stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EpochEndReason {
    /// A per-thread event list reached its soft capacity.
    LogFull,
    /// An irrevocable system call was executed.
    Irrevocable,
    /// The application asked for an epoch boundary
    /// ([`crate::ThreadCtx::end_epoch`]).
    Explicit,
}

/// Life-cycle phase of an application thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ThreadPhase {
    /// Created but not yet released (or, during replay, waiting for its
    /// creation event to be replayed by its parent).
    Idle,
    /// Executing steps.
    Running,
    /// Parked at a step boundary, waiting for a command.
    Parked,
    /// The body returned [`crate::Step::Done`]; kept alive until the next
    /// epoch boundary.
    Finished,
    /// Reclaimed; the OS thread has been told to exit.
    Reclaimed,
}

/// How the last segment of a thread ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SegmentEnd {
    /// Stop was requested and the thread parked at a step boundary.
    Stopped,
    /// The replay target number of steps was reached.
    TargetReached,
    /// The body returned [`crate::Step::Done`].
    Finished,
    /// The segment was aborted (divergence or rollback).
    Aborted,
    /// The thread faulted.
    Faulted,
}

/// Command issued by the coordinator to a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Command {
    /// Run steps until stop/target/done.
    Run {
        /// Stop after completing this many steps in the segment (replay).
        target: Option<u64>,
        /// Expect the final (partial) step to fault (diagnostic replay of a
        /// faulting thread).
        expect_fault: bool,
    },
    /// Exit the OS thread.
    Exit,
}

/// Mutable control block of a thread, protected by [`VThread::control`].
#[derive(Debug)]
pub(crate) struct ThreadControl {
    pub phase: ThreadPhase,
    pub command: Option<Command>,
    pub last_segment_end: Option<SegmentEnd>,
    /// Steps completed in the current segment (i.e. since the last epoch
    /// boundary).
    pub segment_steps: u64,
    /// During replay, a thread created inside the replayed epoch waits for
    /// its creation event to be replayed by its parent before running.
    pub awaiting_creation: bool,
    /// Whether the parent has joined this thread.
    pub joined: bool,
}

impl ThreadControl {
    fn new() -> Self {
        ThreadControl {
            phase: ThreadPhase::Idle,
            command: None,
            last_segment_end: None,
            segment_steps: 0,
            awaiting_creation: false,
            joined: false,
        }
    }
}

/// The set of locks a thread currently holds (discipline check: must be
/// empty at step boundaries).
///
/// This used to live inside [`ThreadControl`], which put a control-mutex
/// acquisition on every `lock`/`unlock` fast path.  It is now a
/// **single-writer** structure with the same discipline as [`ThreadList`]:
/// only the owning thread pushes and releases (during its own operations),
/// the coordinator clears at step-boundary quiescence (rollback, reset),
/// and anyone may read the published count lock-free.
pub(crate) struct HeldLocks {
    locks: UnsafeCell<Vec<VarId>>,
    /// Published length of `locks`, so `is_empty` checks stay lock-free.
    count: AtomicUsize,
}

// SAFETY: the vector is only mutated by the owning thread during its own
// operations, or by the coordinator at step-boundary quiescence; the
// park/release handshake through the thread's control mutex orders those
// accesses.  Concurrent readers only load the atomic count.
#[allow(unsafe_code)]
unsafe impl Sync for HeldLocks {}

impl HeldLocks {
    fn new() -> Self {
        HeldLocks {
            locks: UnsafeCell::new(Vec::new()),
            count: AtomicUsize::new(0),
        }
    }

    /// Returns `true` when no locks are held (lock-free; safe from any
    /// thread).
    pub fn is_empty(&self) -> bool {
        self.count.load(Ordering::Acquire) == 0
    }

    /// Records an acquisition of `var`.
    ///
    /// # Safety
    ///
    /// Only the owning thread may call this, and no [`HeldLocks::clear`]
    /// may run concurrently (the coordinator clears only at quiescence).
    #[allow(unsafe_code)]
    pub unsafe fn push(&self, var: VarId) {
        // SAFETY: sole mutator per the function contract.
        #[allow(unsafe_code)]
        let locks = unsafe { &mut *self.locks.get() };
        locks.push(var);
        self.count.store(locks.len(), Ordering::Release);
    }

    /// Removes the most recent acquisition of `var`, if any.
    ///
    /// # Safety
    ///
    /// Same contract as [`HeldLocks::push`]: owning thread only, no
    /// concurrent clear.
    #[allow(unsafe_code)]
    pub unsafe fn release(&self, var: VarId) {
        // SAFETY: sole mutator per the function contract.
        #[allow(unsafe_code)]
        let locks = unsafe { &mut *self.locks.get() };
        if let Some(position) = locks.iter().rposition(|held| *held == var) {
            locks.remove(position);
        }
        self.count.store(locks.len(), Ordering::Release);
    }

    /// Drops every recorded acquisition.
    ///
    /// # Safety
    ///
    /// Coordinator-only at step-boundary quiescence: the owning thread must
    /// be parked (the park handshake happened-before this call).
    #[allow(unsafe_code)]
    pub unsafe fn clear(&self) {
        // SAFETY: exclusive access per the function contract.
        #[allow(unsafe_code)]
        let locks = unsafe { &mut *self.locks.get() };
        locks.clear();
        self.count.store(0, Ordering::Release);
    }
}

impl std::fmt::Debug for HeldLocks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeldLocks")
            .field("count", &self.count.load(Ordering::Acquire))
            .finish()
    }
}

/// Per-thread runtime state.
pub(crate) struct VThread {
    pub id: ThreadId,
    pub name: String,
    pub control: Mutex<ThreadControl>,
    pub control_cv: Condvar,
    pub heap: Mutex<ThreadHeap>,
    pub quarantine: Mutex<Quarantine>,
    /// The thread's event list.  Single-writer lock-free: only this thread
    /// appends (and only while recording); the coordinator resets it at
    /// quiescence; anyone may read the published prefix.  See the
    /// [`ThreadList`] docs for the full discipline.
    pub list: ThreadList,
    pub rng: Mutex<DetRng>,
    /// Identifier of this thread's join variable in the sync table.
    pub join_var: VarId,
    /// Total steps completed since thread start (monotonic; never rolled
    /// back).
    pub total_steps: AtomicU64,
    /// The current step performed a side effect (event, write, allocation,
    /// system call); a blocked pristine step may be re-parked safely.
    pub step_dirty: AtomicBool,
    /// Locks currently held by this thread (single-writer; see
    /// [`HeldLocks`]).
    pub held_locks: HeldLocks,
}

impl VThread {
    pub fn new(
        id: ThreadId,
        name: String,
        heap: ThreadHeap,
        rng: DetRng,
        join_var: VarId,
        list: ThreadList,
        quarantine_budget: usize,
    ) -> Self {
        VThread {
            id,
            name,
            control: Mutex::new(ThreadControl::new()),
            control_cv: Condvar::new(),
            heap: Mutex::new(heap),
            quarantine: Mutex::new(Quarantine::new(quarantine_budget)),
            list,
            rng: Mutex::new(rng),
            join_var,
            total_steps: AtomicU64::new(0),
            step_dirty: AtomicBool::new(false),
            held_locks: HeldLocks::new(),
        }
    }

    /// Returns `true` if the current step has already produced a side
    /// effect.
    pub fn step_is_dirty(&self) -> bool {
        self.step_dirty.load(Ordering::Acquire)
    }

    /// Notifies anyone waiting on this thread's control block.
    pub fn notify(&self) {
        self.control_cv.notify_all();
    }
}

impl std::fmt::Debug for VThread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VThread")
            .field("id", &self.id)
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// Kind of a synchronization variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SyncVarKind {
    Mutex,
    Condvar,
    Barrier {
        parties: u32,
    },
    /// Runtime-internal lock (thread creation, super-heap fetch) or a
    /// per-thread join variable.
    Internal,
}

/// State of a synchronization variable, protected by [`SyncVar::state`].
#[derive(Debug, Default)]
pub(crate) struct SyncState {
    // Mutex state.
    pub locked: bool,
    pub owner: Option<ThreadId>,
    // Condition-variable state.
    pub waiters: usize,
    pub pending_signals: usize,
    // Barrier state.
    pub barrier_count: u32,
    pub barrier_generation: u64,
}

impl SyncState {
    /// Resets to the quiescent (epoch-boundary) state.  Valid because the
    /// bounded-step discipline guarantees no locks are held and no thread is
    /// blocked inside a wait at any checkpoint.
    pub fn reset(&mut self) {
        *self = SyncState::default();
    }
}

/// A shadow synchronization object (paper §3.2): the real synchronization
/// state plus the per-variable event list, reached through one level of
/// indirection (the application's handle carries the [`VarId`]).
pub(crate) struct SyncVar {
    pub id: VarId,
    pub kind: SyncVarKind,
    pub state: Mutex<SyncState>,
    pub cv: Condvar,
    /// The per-variable list.  Lock-free appends (reserve-then-publish);
    /// read-only during replay.  See the [`VarList`] docs.
    pub var_list: VarList,
}

impl SyncVar {
    pub fn new(id: VarId, kind: SyncVarKind) -> Self {
        SyncVar::with_list(id, kind, VarList::new())
    }

    /// Builds a sync variable around a recycled [`VarList`], reusing its
    /// already-allocated chunks (the warm-relaunch pool).
    pub fn with_list(id: VarId, kind: SyncVarKind, var_list: VarList) -> Self {
        SyncVar {
            id,
            kind,
            state: Mutex::new(SyncState::default()),
            cv: Condvar::new(),
            var_list,
        }
    }
}

impl std::fmt::Debug for SyncVar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyncVar")
            .field("id", &self.id)
            .field("kind", &self.kind)
            .finish_non_exhaustive()
    }
}

/// A deferred system call, issued at the next epoch begin (§2.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DeferredOp {
    Close(i32),
    Munmap(u64),
}

/// Coordinator-owned epoch bookkeeping.
///
/// Only coordinator-written, rarely-read state lives here; the fields every
/// recorded event used to consult under this mutex (epoch number, taint
/// flag, end-requested) are atomics on [`RtInner`] so the record fast path
/// never touches a lock.
#[derive(Debug, Default)]
pub(crate) struct EpochShared {
    pub end_reason: Option<EpochEndReason>,
    /// Name of the irrevocable syscall that tainted the current epoch, if
    /// any (such an epoch cannot be replayed).  The *fact* of the taint is
    /// mirrored in [`RtInner::tainted`] for lock-free checks; this field
    /// only supplies the name for reports.
    pub tainted_by: Option<&'static str>,
    pub deferred: Vec<DeferredOp>,
    pub faults: Vec<FaultRecord>,
    pub divergences: Vec<Divergence>,
    pub watch_hits: Vec<WatchHitReport>,
    /// Reclaimed (joined + finished) threads pending OS-thread exit.
    pub pending_reclaim: Vec<ThreadId>,
}

/// The inner, shared runtime object.
///
/// Since the multi-tenancy refactor this is the complete state of **one
/// arena partition**: a [`crate::Runtime`] owns one `RtInner` per
/// configured partition, each with its own arena view, simulated-OS
/// namespace, sync table (the per-partition shard of what used to be one
/// global `RwLock`), epoch/taint atomics, and warm pools.  Concurrent
/// sessions therefore share *no* mutable state -- neither locks nor
/// lock-free structures -- and a partition's reset releases only its own
/// slice of the world.
pub(crate) struct RtInner {
    pub config: Config,
    /// Index of this partition within its runtime (0 for single-tenant).
    pub partition: u32,
    pub arena: Arena,
    pub super_heap: SuperHeap,
    pub globals: Mutex<Globals>,
    /// Shared heap used in [`AllocatorMode::GlobalLock`] mode.
    pub global_heap: Mutex<ThreadHeap>,
    pub os: SimOs,
    pub sites: SiteRegistry,
    pub counters: Counters,

    phase: AtomicU8,
    /// Current epoch number (0-based).  Written by the coordinator at epoch
    /// begin, read lock-free everywhere.
    epoch_number: AtomicU64,
    /// Mirrors `EpochShared::tainted_by.is_some()` so per-event replayability
    /// checks stay lock-free.
    tainted: AtomicBool,
    pub epoch_end_requested: AtomicBool,
    pub abort_requested: AtomicBool,
    /// Incremented on every thread phase change; the supervisor waits on it.
    pub world_version: AtomicU64,
    pub world_lock: Mutex<()>,
    pub world_cv: Condvar,

    pub threads: RwLock<Vec<Arc<VThread>>>,
    pub sync_table: RwLock<Vec<Arc<SyncVar>>>,
    /// Serializes thread creation (§3.2.1).
    pub creation_lock: Mutex<()>,
    /// OS thread handles, joined at the end of the run.
    pub os_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,

    pub epoch: Mutex<EpochShared>,
    pub canaries: Mutex<CanaryMap>,
    /// Canary corruption discovered outside the epoch-end scan (e.g. when a
    /// corrupted object is freed mid-epoch).
    pub pending_canary_evidence: Mutex<Vec<ireplayer_mem::CorruptedCanary>>,
    /// Use-after-free evidence discovered when objects leave the quarantine
    /// mid-epoch.
    pub pending_uaf_evidence: Mutex<Vec<ireplayer_mem::UafEvidence>>,
    pub watch: Mutex<WatchRegistry>,
    pub watch_active: AtomicBool,
    pub alloc_sites: Mutex<HashMap<MemAddr, SiteId>>,
    pub free_sites: Mutex<HashMap<MemAddr, SiteId>>,

    pub hooks: RwLock<Vec<Arc<dyn ToolHook>>>,
    pub instrument: RwLock<Option<Arc<dyn Instrument>>>,

    /// Extra delays (in microseconds) injected before specific recorded
    /// events on later replay attempts (§3.5.2).
    pub delay_plan: Mutex<HashMap<(ThreadId, u32), u64>>,
    /// Whether `delay_plan` currently holds any entries, so the per-event
    /// replay check skips the map lock on first attempts.
    pub delay_plan_active: AtomicBool,
    pub replay_attempt: AtomicU32,
    pub replay_rng: Mutex<DetRng>,

    // -- session / multi-run state --------------------------------------
    /// Whether a [`crate::Session`] is currently driving this runtime.
    pub session_active: AtomicBool,
    /// Threads a failed teardown could not reclaim; non-empty means the
    /// runtime refuses further launches.
    pub poisoned_threads: Mutex<Vec<u32>>,
    pub poisoned: AtomicBool,
    /// A replay request queued by [`crate::Session::request_replay`],
    /// consumed by the coordinator at the next epoch boundary.
    pub pending_replay: Mutex<Option<ReplayRequest>>,
    /// Bitmask of per-tenant quotas the current session has already been
    /// warned about (bit 0: epochs, bit 1: events), so each
    /// [`SessionEvent::QuotaWarning`] fires at most once per resource per
    /// session.
    pub quota_warned: AtomicU8,
    /// Event-stream subscribers; `observers_active` mirrors non-emptiness
    /// so emission points cost one atomic load when nobody listens.
    pub observers: Mutex<Vec<ObserverSlot>>,
    pub observers_active: AtomicBool,

    // -- warm-relaunch pools and reset anchors --------------------------
    /// Super-heap cursor at construction, restored by the reset path.
    super_heap_initial: SuperHeapState,
    /// The managed-globals region, re-anchored by the reset path.
    globals_region: Span,
    /// Retired per-thread lists, reused (storage and all) by the next run.
    pub list_pool: Mutex<Vec<ThreadList>>,
    /// Retired per-variable lists, reused (chunks and all) by the next run.
    pub var_pool: Mutex<Vec<VarList>>,
    /// Reuse/allocation diagnostics (see [`crate::DiagnosticsSnapshot`]).
    pub diag: DiagCounters,
}

/// Allocation and wake-up diagnostics, exposed through
/// [`crate::Runtime::diagnostics`] so tests and benches can assert the
/// warm-relaunch and poke-batching guarantees.
#[derive(Debug, Default)]
pub(crate) struct DiagCounters {
    /// Times the world condition variable was poked (one lock + broadcast).
    pub world_pokes: AtomicU64,
    /// Arena backing allocations (bumped once per arena construction;
    /// growing it would bump again, which the warm-relaunch tests forbid).
    pub arena_allocations: AtomicU64,
    /// Per-thread event lists allocated from scratch.
    pub thread_lists_created: AtomicU64,
    /// Per-thread event lists recycled from the warm pool.
    pub thread_lists_reused: AtomicU64,
    /// Per-variable event lists allocated from scratch.
    pub var_lists_created: AtomicU64,
    /// Per-variable event lists recycled from the warm pool.
    pub var_lists_reused: AtomicU64,
    /// Chaos faults injected into *original* executions, indexed by
    /// [`FaultClass::code`](ireplayer_sys::FaultClass::code).  Replayed
    /// re-executions re-serve the same outcomes without re-counting, so
    /// these monotonically track the fault stream the program experienced.
    pub faults_injected: [AtomicU64; ireplayer_sys::FaultClass::ALL.len()],
}

/// Prints a diagnostic line when the `IREPLAYER_TRACE` environment variable
/// is set.  Used to debug runtime hangs and replay mismatches.
macro_rules! rt_trace {
    ($($arg:tt)*) => {
        if std::env::var_os("IREPLAYER_TRACE").is_some() {
            eprintln!("[ireplayer] {}", format_args!($($arg)*));
        }
    };
}
pub(crate) use rt_trace;

/// Reserved sync-variable ids for runtime-internal locks.
pub(crate) const CREATION_VAR: VarId = VarId(0);
pub(crate) const SUPERHEAP_VAR: VarId = VarId(1);
pub(crate) const REGISTRATION_VAR: VarId = VarId(2);
/// Number of pre-registered internal sync variables, kept across resets.
pub(crate) const INTERNAL_SYNC_VARS: usize = 3;
/// Open-file limit the runtime raises the simulated OS to (§2.2.3).
pub(crate) const RUNTIME_FD_LIMIT: usize = 1 << 16;

impl RtInner {
    /// Builds a single-tenant runtime core with its own arena backing
    /// (production code goes through [`RtInner::with_arena`] so partitions
    /// share one backing allocation; tests build standalone cores).
    #[cfg(test)]
    pub fn new(config: Config) -> Self {
        let arena = Arena::new(config.arena_size);
        RtInner::with_arena(0, arena, config)
    }

    /// Builds the runtime core of partition `partition` over the given
    /// arena view (one slice of a [`Arena::partitioned`] family, or a whole
    /// arena for partition 0 of a single-tenant runtime).  Everything else
    /// -- the simulated OS, sync table, pools, atomics -- is constructed
    /// fresh and owned exclusively by this partition.
    pub fn with_arena(partition: u32, arena: Arena, config: Config) -> Self {
        debug_assert_eq!(arena.size(), config.arena_size);
        let heap_config = HeapConfig {
            block_size: config.heap_block_size,
            canaries: config.canaries,
            canary_len: 8,
        };
        let globals_region = ireplayer_mem::Span::new(ireplayer_mem::MemAddr::new(16), config.globals_size as u64);
        let heap_region = ireplayer_mem::Span::new(
            ireplayer_mem::MemAddr::new(16 + config.globals_size as u64),
            (config.arena_size - config.globals_size - 32) as u64,
        );
        let super_heap = SuperHeap::new(heap_region, heap_config.clone());
        let global_heap = ThreadHeap::new(u32::MAX, heap_config);
        let phase = match config.mode {
            RunMode::Passthrough => ExecPhase::Passthrough,
            RunMode::Record => ExecPhase::Recording,
        };
        let sync_table = vec![
            Arc::new(SyncVar::new(CREATION_VAR, SyncVarKind::Internal)),
            Arc::new(SyncVar::new(SUPERHEAP_VAR, SyncVarKind::Internal)),
            Arc::new(SyncVar::new(REGISTRATION_VAR, SyncVarKind::Internal)),
        ];
        // Every partition's kernel reports the same pid: the namespace tag
        // keeps the instances distinguishable without letting the partition
        // index leak into simulated results (solo and multi-tenant runs of
        // one program must stay byte-identical).
        let os = SimOs::with_namespace(1000, partition);
        os.raise_fd_limit(RUNTIME_FD_LIMIT);
        // Every partition runs the same plan through its own engine (own
        // counters), so tenants are isolated without the partition index
        // shaping injections -- solo and concurrent runs stay identical.
        if let Some(plan) = &config.chaos {
            os.install_chaos(plan.clone());
        }
        let seed = config.seed;
        let super_heap_initial = super_heap.state();
        RtInner {
            partition,
            arena,
            super_heap,
            globals: Mutex::new(Globals::new(globals_region)),
            global_heap: Mutex::new(global_heap),
            os,
            sites: SiteRegistry::new(),
            counters: Counters::default(),
            phase: AtomicU8::new(phase as u8),
            epoch_number: AtomicU64::new(0),
            tainted: AtomicBool::new(false),
            epoch_end_requested: AtomicBool::new(false),
            abort_requested: AtomicBool::new(false),
            world_version: AtomicU64::new(0),
            world_lock: Mutex::new(()),
            world_cv: Condvar::new(),
            threads: RwLock::new(Vec::new()),
            sync_table: RwLock::new(sync_table),
            creation_lock: Mutex::new(()),
            os_threads: Mutex::new(Vec::new()),
            epoch: Mutex::new(EpochShared::default()),
            canaries: Mutex::new(CanaryMap::new()),
            pending_canary_evidence: Mutex::new(Vec::new()),
            pending_uaf_evidence: Mutex::new(Vec::new()),
            watch: Mutex::new(WatchRegistry::new()),
            watch_active: AtomicBool::new(false),
            alloc_sites: Mutex::new(HashMap::new()),
            free_sites: Mutex::new(HashMap::new()),
            hooks: RwLock::new(Vec::new()),
            instrument: RwLock::new(None),
            delay_plan: Mutex::new(HashMap::new()),
            delay_plan_active: AtomicBool::new(false),
            replay_attempt: AtomicU32::new(0),
            replay_rng: Mutex::new(DetRng::new(seed ^ 0xdddd)),
            session_active: AtomicBool::new(false),
            poisoned_threads: Mutex::new(Vec::new()),
            poisoned: AtomicBool::new(false),
            pending_replay: Mutex::new(None),
            quota_warned: AtomicU8::new(0),
            observers: Mutex::new(Vec::new()),
            observers_active: AtomicBool::new(false),
            super_heap_initial,
            globals_region,
            list_pool: Mutex::new(Vec::new()),
            var_pool: Mutex::new(Vec::new()),
            diag: DiagCounters::default(),
            config,
        }
    }

    /// Current execution phase.
    pub fn phase(&self) -> ExecPhase {
        match self.phase.load(Ordering::Acquire) {
            x if x == ExecPhase::Passthrough as u8 => ExecPhase::Passthrough,
            x if x == ExecPhase::Recording as u8 => ExecPhase::Recording,
            _ => ExecPhase::Replaying,
        }
    }

    /// Switches the execution phase.
    pub fn set_phase(&self, phase: ExecPhase) {
        self.phase.store(phase as u8, Ordering::Release);
    }

    /// Returns `true` when recording is active (not passthrough).
    pub fn recording(&self) -> bool {
        self.phase() == ExecPhase::Recording
    }

    /// Returns `true` during a re-execution.
    pub fn replaying(&self) -> bool {
        self.phase() == ExecPhase::Replaying
    }

    /// Returns `true` when an abort (rollback or divergence) is pending.
    pub fn abort_pending(&self) -> bool {
        self.abort_requested.load(Ordering::Acquire)
    }

    /// Current epoch number, lock-free.
    pub fn epoch_number(&self) -> u64 {
        self.epoch_number.load(Ordering::Acquire)
    }

    /// Advances to the next epoch (coordinator-only, at epoch begin).
    pub fn bump_epoch_number(&self) {
        self.epoch_number.fetch_add(1, Ordering::AcqRel);
    }

    /// Returns `true` when the current epoch was tainted by an irrevocable
    /// system call (lock-free; the syscall's name lives in the epoch mutex).
    pub fn tainted(&self) -> bool {
        self.tainted.load(Ordering::Acquire)
    }

    /// Marks the current epoch unreplayable because of `syscall`.
    pub fn taint(&self, syscall: &'static str) {
        self.epoch.lock().tainted_by = Some(syscall);
        self.tainted.store(true, Ordering::Release);
    }

    /// Clears the taint at epoch begin (the epoch mutex is held by the
    /// caller clearing `tainted_by`).
    pub fn clear_taint(&self) {
        self.tainted.store(false, Ordering::Release);
    }

    /// Returns `true` when a continue-type epoch end is pending.
    pub fn epoch_end_pending(&self) -> bool {
        self.epoch_end_requested.load(Ordering::Acquire)
    }

    /// Requests a continue-type epoch end (log full, irrevocable syscall,
    /// explicit request).
    ///
    /// Batched: once a stop is pending, further requests return after one
    /// atomic swap -- no epoch-mutex acquisition and no world poke.  A
    /// thread recording past its list capacity used to re-request (and
    /// re-poke) on *every* event until it reached its step boundary; now
    /// only the first request pays for the wake-up.
    pub fn request_epoch_end(&self, reason: EpochEndReason) {
        if self.epoch_end_requested.swap(true, Ordering::AcqRel) {
            return;
        }
        {
            let mut epoch = self.epoch.lock();
            if epoch.end_reason.is_none() {
                epoch.end_reason = Some(reason);
            }
        }
        self.poke_world();
    }

    /// Wakes the supervisor and any thread parked on a sync variable so
    /// that pending flags are observed promptly.
    pub fn poke_world(&self) {
        Counters::bump(&self.diag.world_pokes);
        self.world_version.fetch_add(1, Ordering::AcqRel);
        let _guard = self.world_lock.lock();
        self.world_cv.notify_all();
    }

    /// Looks up a thread by id.
    pub fn thread(&self, id: ThreadId) -> Arc<VThread> {
        self.threads.read()[id.index()].clone()
    }

    /// Looks up a sync variable by id.
    ///
    /// # Panics
    ///
    /// Panics on an unregistered id; runtime-internal callers only pass ids
    /// they registered.  Application-supplied handles go through
    /// [`RtInner::try_sync_var`].
    pub fn sync_var(&self, id: VarId) -> Arc<SyncVar> {
        self.sync_table.read()[id.index()].clone()
    }

    /// Looks up a sync variable by id, returning `None` for an id that was
    /// never registered (an invalid application handle).
    pub fn try_sync_var(&self, id: VarId) -> Option<Arc<SyncVar>> {
        self.sync_table.read().get(id.index()).cloned()
    }

    /// Registers a new sync variable and returns it, recycling a pooled
    /// [`VarList`] (chunks and all) when the warm pool has one.
    pub fn register_sync_var(&self, kind: SyncVarKind) -> Arc<SyncVar> {
        let recycled = self.var_pool.lock().pop();
        let mut table = self.sync_table.write();
        let id = VarId(table.len() as u32);
        let var = match recycled {
            Some(list) => {
                Counters::bump(&self.diag.var_lists_reused);
                Arc::new(SyncVar::with_list(id, kind, list))
            }
            None => {
                Counters::bump(&self.diag.var_lists_created);
                Arc::new(SyncVar::new(id, kind))
            }
        };
        table.push(var.clone());
        var
    }

    /// Builds and registers a new application thread, recycling a pooled
    /// [`ThreadList`] when the warm pool has one.  The caller spawns the
    /// backing OS thread; `initial_command` seeds the control block before
    /// the thread becomes visible (dynamic spawns start running
    /// immediately, the main thread waits for the first epoch release).
    pub fn build_vthread(&self, name: String, initial_command: Option<Command>) -> Arc<VThread> {
        let id = ThreadId(self.threads.read().len() as u32);
        let join_var = self.register_sync_var(SyncVarKind::Internal).id;
        let heap = ThreadHeap::new(id.0, self.heap_config());
        let rng = DetRng::new(self.config.seed).derive(u64::from(id.0));
        let list = match self.list_pool.lock().pop() {
            Some(mut list) if list.capacity() == self.config.events_per_thread => {
                Counters::bump(&self.diag.thread_lists_reused);
                list.reset_for(id);
                list
            }
            _ => {
                Counters::bump(&self.diag.thread_lists_created);
                ThreadList::new(id, self.config.events_per_thread)
            }
        };
        let vt = Arc::new(VThread::new(
            id,
            name,
            heap,
            rng,
            join_var,
            list,
            self.config.quarantine_bytes,
        ));
        if let Some(command) = initial_command {
            vt.control.lock().command = Some(command);
        }
        self.threads.write().push(vt.clone());
        vt
    }

    /// Heap configuration derived from the runtime configuration.
    pub fn heap_config(&self) -> HeapConfig {
        HeapConfig {
            block_size: self.config.heap_block_size,
            canaries: self.config.canaries,
            canary_len: 8,
        }
    }

    /// Whether the per-thread (deterministic) allocator is active.
    pub fn per_thread_alloc(&self) -> bool {
        self.config.allocator == AllocatorMode::PerThread
    }

    /// Subscribes an event stream with the given filter.  Subscriptions
    /// live on the runtime, so a stream obtained between runs keeps
    /// delivering events for subsequent launches until it is dropped.
    pub fn subscribe_events(&self, filter: EventFilter) -> EventStream {
        let (slot, stream) = subscription(filter);
        self.register_observer(slot);
        stream
    }

    /// Registers an already-built observer slot (used by the runtime-wide
    /// subscription, which feeds one stream from every partition).
    pub fn register_observer(&self, slot: ObserverSlot) {
        self.observers.lock().push(slot);
        self.observers_active.store(true, Ordering::Release);
    }

    /// Offers an event to every subscriber.  When nobody is subscribed the
    /// cost is a single atomic load; the closure builds the event only if
    /// at least one subscriber exists.
    pub fn emit_event(&self, make: impl FnOnce() -> SessionEvent) {
        if !self.observers_active.load(Ordering::Acquire) {
            return;
        }
        let mut observers = self.observers.lock();
        if observers.is_empty() {
            self.observers_active.store(false, Ordering::Release);
            return;
        }
        let event = make();
        observers.retain(|slot| slot.offer(&event));
        if observers.is_empty() {
            self.observers_active.store(false, Ordering::Release);
        }
    }

    /// Marks the runtime unusable because `stuck_threads` never settled.
    pub fn poison(&self, stuck_threads: Vec<u32>) {
        *self.poisoned_threads.lock() = stuck_threads;
        self.poisoned.store(true, Ordering::Release);
    }

    /// Resets every run-scoped structure back to the state a freshly
    /// constructed runtime would have, *without* re-allocating warm
    /// storage: the arena keeps its backing memory (its used prefix is
    /// wiped), retired [`ThreadList`]s and [`VarList`]s go into pools the
    /// next run draws from, and the simulated OS keeps its object but
    /// reboots its tables.
    ///
    /// Coordinator-only, after every application OS thread has been joined
    /// -- the same quiescence contract as the epoch-begin reset, extended
    /// to the whole run (the end-of-run teardown *is* a reset to
    /// quiescence).
    pub fn reset_to_quiescence(&self) {
        // Harvest per-thread lists into the warm pool.  After the join
        // barrier the `threads` vector holds the only reference to each
        // VThread, so the unwrap normally succeeds; a straggling reference
        // just forfeits that list's storage.
        let threads: Vec<Arc<VThread>> = std::mem::take(&mut *self.threads.write());
        {
            let mut pool = self.list_pool.lock();
            for vt in threads {
                if let Ok(vt) = Arc::try_unwrap(vt) {
                    pool.push(vt.list);
                }
            }
        }

        // Keep the pre-registered internal sync variables (reset in place),
        // harvest the rest's var-lists into the warm pool.
        let retired: Vec<Arc<SyncVar>> = {
            let mut table = self.sync_table.write();
            let retired = table.split_off(INTERNAL_SYNC_VARS);
            for var in table.iter() {
                var.state.lock().reset();
                var.var_list.clear();
            }
            retired
        };
        {
            let mut pool = self.var_pool.lock();
            for var in retired {
                if let Ok(var) = Arc::try_unwrap(var) {
                    var.var_list.clear();
                    pool.push(var.var_list);
                }
            }
        }

        // Managed memory: wipe the prefix the finished run touched and
        // rewind the allocators.  No backing storage is re-allocated.
        let globals_end = self.globals_region.addr.as_usize() + self.globals_region.len as usize;
        let upto = self.super_heap.high_water().as_usize().max(globals_end);
        self.arena.wipe(upto);
        self.super_heap.restore(self.super_heap_initial);
        *self.global_heap.lock() = ThreadHeap::new(u32::MAX, self.heap_config());
        *self.globals.lock() = Globals::new(self.globals_region);

        // Simulated OS: reboot the kernel tables, keep the object.
        self.os.reset();
        self.os.raise_fd_limit(RUNTIME_FD_LIMIT);

        // Detector and diagnosis state.
        *self.canaries.lock() = CanaryMap::new();
        self.alloc_sites.lock().clear();
        self.free_sites.lock().clear();
        self.pending_canary_evidence.lock().clear();
        self.pending_uaf_evidence.lock().clear();
        self.watch.lock().clear();
        self.watch_active.store(false, Ordering::Release);

        // Epoch and replay machinery.
        *self.epoch.lock() = EpochShared::default();
        self.epoch_number.store(0, Ordering::Release);
        self.tainted.store(false, Ordering::Release);
        self.epoch_end_requested.store(false, Ordering::Release);
        self.abort_requested.store(false, Ordering::Release);
        self.replay_attempt.store(0, Ordering::Release);
        self.delay_plan.lock().clear();
        self.delay_plan_active.store(false, Ordering::Release);
        *self.pending_replay.lock() = None;
        self.quota_warned.store(0, Ordering::Release);
        *self.replay_rng.lock() = DetRng::new(self.config.seed ^ 0xdddd);

        // Per-run statistics restart from zero so every launch reports the
        // same numbers a fresh runtime would.
        self.counters.reset();

        self.set_phase(match self.config.mode {
            RunMode::Passthrough => ExecPhase::Passthrough,
            RunMode::Record => ExecPhase::Recording,
        });
    }

    /// Registers a fault, requests an abort of the current execution, and
    /// unwinds the faulting step.  This is the analogue of a signal handler
    /// intercepting `SIGSEGV`/`SIGABRT` (§3.4): the coordinator decides
    /// whether to replay for diagnosis or terminate with a report.
    pub fn raise_fault(&self, vt: &VThread, kind: crate::fault::FaultKind, site: Option<SiteId>) -> ! {
        let record = crate::fault::FaultRecord {
            thread: vt.id,
            kind,
            site: site.and_then(|s| self.sites.resolve(s)),
            epoch: self.epoch_number(),
        };
        // During a diagnostic replay, the thread that faulted originally is
        // *expected* to fault again; its fault ends its own segment without
        // aborting the other threads, which still need to finish replaying
        // their recorded events.  Any other fault aborts the attempt.
        let expected = self.replaying()
            && vt
                .control
                .lock()
                .command
                .map(|c| matches!(c, Command::Run { expect_fault: true, .. }))
                .unwrap_or(false);
        // The expected re-occurrence is the *same* logical fault, not a new
        // one: it still enters the epoch record (the replay-success check
        // counts it), but the status counter and observers see one fault.
        if !expected {
            Counters::bump(&self.counters.faults);
            self.emit_event(|| SessionEvent::Faulted { fault: record.clone() });
        }
        self.epoch.lock().faults.push(record);
        if !expected {
            self.abort_requested.store(true, Ordering::Release);
        }
        self.poke_world();
        crate::fault::unwind_with(crate::fault::UnwindSignal::Fault)
    }
}

impl std::fmt::Debug for RtInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtInner")
            .field("config", &self.config)
            .field("phase", &self.phase())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> Config {
        Config::builder()
            .arena_size(1 << 20)
            .heap_block_size(64 << 10)
            .build()
            .unwrap()
    }

    #[test]
    fn phase_round_trips() {
        let rt = RtInner::new(small_config());
        assert_eq!(rt.phase(), ExecPhase::Recording);
        assert!(rt.recording());
        rt.set_phase(ExecPhase::Replaying);
        assert!(rt.replaying());
        rt.set_phase(ExecPhase::Passthrough);
        assert_eq!(rt.phase(), ExecPhase::Passthrough);
    }

    #[test]
    fn internal_sync_vars_are_preregistered() {
        let rt = RtInner::new(small_config());
        assert_eq!(rt.sync_var(CREATION_VAR).id, CREATION_VAR);
        assert_eq!(rt.sync_var(SUPERHEAP_VAR).id, SUPERHEAP_VAR);
        assert_eq!(rt.sync_var(REGISTRATION_VAR).id, REGISTRATION_VAR);
        let extra = rt.register_sync_var(SyncVarKind::Mutex);
        assert_eq!(extra.id, VarId(3));
        assert!(!format!("{rt:?}").is_empty());
        assert!(!format!("{:?}", rt.sync_var(CREATION_VAR)).is_empty());
    }

    #[test]
    fn epoch_end_request_records_the_first_reason() {
        let rt = RtInner::new(small_config());
        assert!(!rt.epoch_end_pending());
        rt.request_epoch_end(EpochEndReason::LogFull);
        rt.request_epoch_end(EpochEndReason::Explicit);
        assert!(rt.epoch_end_pending());
        assert_eq!(rt.epoch.lock().end_reason, Some(EpochEndReason::LogFull));
    }

    #[test]
    fn sync_state_reset_clears_everything() {
        let mut state = SyncState {
            locked: true,
            owner: Some(ThreadId(3)),
            waiters: 2,
            pending_signals: 1,
            barrier_count: 4,
            barrier_generation: 9,
        };
        state.reset();
        assert!(!state.locked);
        assert_eq!(state.owner, None);
        assert_eq!(state.waiters, 0);
        assert_eq!(state.barrier_count, 0);
    }
}
