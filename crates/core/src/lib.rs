//! # iReplayer-rs: in-situ and identical record-and-replay
//!
//! A Rust reproduction of *iReplayer: In-situ and Identical
//! Record-and-Replay for Multithreaded Applications* (Liu et al., PLDI
//! 2018).
//!
//! The runtime executes a multithreaded [`Program`] while recording only the
//! order of synchronizations and the results of non-repeatable system calls,
//! dividing the execution into epochs.  On demand -- evidence of a memory
//! error, a fault, or an explicit request -- it rolls the *same* process
//! back to the beginning of the last epoch and re-executes it **in situ**,
//! enforcing the recorded order, detecting divergence caused by data races,
//! and retrying with randomized delays until the re-execution matches.  The
//! replay is **identical**: same thread identifiers, same heap layout, same
//! file descriptors, same system-call results.
//!
//! ## Architecture
//!
//! * application memory lives in a managed arena with a deterministic
//!   per-thread heap ([`ireplayer_mem`]);
//! * synchronization and system-call events are recorded in per-thread and
//!   per-variable lists ([`ireplayer_log`]);
//! * system calls run against a simulated OS ([`ireplayer_sys`]) and are
//!   classified as repeatable / recordable / revocable / deferrable /
//!   irrevocable;
//! * threads are step-structured (see [`Program`] and DESIGN.md): the
//!   runtime checkpoints managed state at step-boundary quiescence and
//!   re-invokes the step closures after a rollback, the safe-Rust analogue
//!   of the original system's stack checkpointing.
//!
//! ## Quick start
//!
//! ```
//! use ireplayer::{Config, Program, Runtime, Step};
//!
//! # fn main() -> Result<(), ireplayer::RuntimeError> {
//! let config = Config::builder()
//!     .arena_size(8 << 20)
//!     .heap_block_size(256 << 10)
//!     .build()?;
//! let runtime = Runtime::new(config)?;
//!
//! let program = Program::new("sum", |ctx| {
//!     let total = ctx.global("total", 8);
//!     let lock = ctx.mutex();
//!     let mut workers = Vec::new();
//!     for _ in 0..4 {
//!         workers.push(ctx.spawn("adder", move |ctx| {
//!             ctx.lock(lock);
//!             let value = ctx.read_u64(total);
//!             ctx.write_u64(total, value + 1);
//!             ctx.unlock(lock);
//!             Step::Done
//!         }));
//!     }
//!     for worker in workers {
//!         ctx.join(worker);
//!     }
//!     Step::Done
//! });
//!
//! let report = runtime.run(program)?;
//! assert!(report.outcome.is_success());
//! # Ok(())
//! # }
//! ```

mod alloc;
mod checkpoint;
mod config;
mod context;
mod error;
mod exec;
mod fault;
mod hooks;
mod program;
mod rng;
mod runtime;
mod sink;
mod site;
mod state;
mod stats;
mod sync;
mod syscall;

pub use config::{AllocatorMode, Config, ConfigBuilder, FaultPolicy, RunMode};
pub use context::{BarrierHandle, CondvarHandle, JoinHandle, MutexHandle, ThreadCtx};
pub use error::RuntimeError;
pub use fault::{FaultKind, FaultRecord};
pub use hooks::{EpochDecision, EpochView, Instrument, ReplayRequest, ToolHook};
pub use program::{BodyFn, Program, Step};
pub use rng::DetRng;
pub use runtime::Runtime;
pub use site::{Site, SiteId};
pub use stats::{ReplayValidation, RunOutcome, RunReport, WatchHitReport};

// Re-export the substrate types that appear in the public API so downstream
// users only need this crate.
pub use ireplayer_log::{Divergence, DivergenceKind, SyncOp, SyscallClass, ThreadId, VarId};
pub use ireplayer_mem::{DiffStats, MemAddr, Span};
pub use ireplayer_sys::{PeerScript, SimOs, SyscallKind, Whence};
