//! # iReplayer-rs: in-situ and identical record-and-replay
//!
//! A Rust reproduction of *iReplayer: In-situ and Identical
//! Record-and-Replay for Multithreaded Applications* (Liu et al., PLDI
//! 2018).
//!
//! The runtime executes a multithreaded [`Program`] while recording only the
//! order of synchronizations and the results of non-repeatable system calls,
//! dividing the execution into epochs.  On demand -- evidence of a memory
//! error, a fault, or an explicit request -- it rolls the *same* process
//! back to the beginning of the last epoch and re-executes it **in situ**,
//! enforcing the recorded order, detecting divergence caused by data races,
//! and retrying with randomized delays until the re-execution matches.  The
//! replay is **identical**: same thread identifiers, same heap layout, same
//! file descriptors, same system-call results.
//!
//! ## Architecture
//!
//! * application memory lives in a managed arena with a deterministic
//!   per-thread heap ([`ireplayer_mem`]);
//! * synchronization and system-call events are recorded in per-thread and
//!   per-variable lists ([`ireplayer_log`]);
//! * system calls run against a simulated OS ([`ireplayer_sys`]) and are
//!   classified as repeatable / recordable / revocable / deferrable /
//!   irrevocable;
//! * threads are step-structured (see [`Program`] and DESIGN.md): the
//!   runtime checkpoints managed state at step-boundary quiescence and
//!   re-invokes the step closures after a rollback, the safe-Rust analogue
//!   of the original system's stack checkpointing.
//!
//! ## Quick start: sessions on a reusable runtime
//!
//! A [`Runtime`] is a long-lived host.  [`Runtime::launch`] starts a
//! [`Program`] and returns a [`Session`] -- a live handle with a lock-free
//! [`Session::status`], a bounded observer stream
//! ([`Session::subscribe`]), live replay control
//! ([`Session::request_replay`]), and [`Session::wait`] for the final
//! [`RunReport`].  Between launches the runtime resets to quiescence while
//! keeping its warm state, so back-to-back runs reuse the arena, the log
//! storage, and the simulated OS:
//!
//! ```
//! use ireplayer::{Config, EventFilter, Program, Runtime, SessionEvent, Step};
//!
//! # fn main() -> Result<(), ireplayer::Error> {
//! let config = Config::builder()
//!     .arena_size(8 << 20)
//!     .heap_block_size(256 << 10)
//!     .build()?;
//! let runtime = Runtime::new(config)?;
//!
//! // One warm runtime serves many programs back to back.
//! for round in 0..2u64 {
//!     let program = Program::new("sum", move |ctx| {
//!         let total = ctx.global("total", 8);
//!         let lock = ctx.mutex();
//!         let mut workers = Vec::new();
//!         for _ in 0..4 {
//!             workers.push(ctx.spawn("adder", move |ctx| {
//!                 ctx.lock(lock);
//!                 let value = ctx.read_u64(total);
//!                 ctx.write_u64(total, value + 1);
//!                 ctx.unlock(lock);
//!                 Step::Done
//!             }));
//!         }
//!         for worker in workers {
//!             ctx.join(worker);
//!         }
//!         let _ = round;
//!         Step::Done
//!     });
//!
//!     // Subscribe before launching: the first epoch can begin within
//!     // microseconds of the launch.
//!     let events = runtime.subscribe(EventFilter::none().epochs());
//!     let session = runtime.launch(program)?;
//!     let report = session.wait()?;
//!     assert!(report.outcome.is_success());
//!     assert!(matches!(events.try_next(), Some(SessionEvent::EpochBegan { .. })));
//! }
//! # Ok(())
//! # }
//! ```
//!
//! ## Multi-tenant sessions
//!
//! With [`Config::partitions`] set above 1 a runtime hosts that many
//! **simultaneous** sessions, one per arena partition.  Each partition is a
//! complete, isolated world -- its own slice of the shared arena backing
//! (partition-relative addresses, independent wipe), its own simulated-OS
//! namespace, its own sync table and epoch machinery -- so a session's
//! [`RunReport::fingerprint`] is byte-identical to the same program run
//! solo on a fresh runtime.  [`Runtime::launch`] claims the lowest free
//! partition; [`Runtime::diagnostics`] reports per-partition occupancy.
//!
//! ## Scheduling and per-tenant quotas
//!
//! The runtime admits *arbitrary* load, not just one launch per
//! partition: when every partition is busy, [`Runtime::launch`] queues
//! the program on a bounded FIFO **admission queue**
//! ([`Config::admission_queue_depth`]) and a freed partition immediately
//! claims the oldest queued launch -- launches complete in launch order,
//! with reports identical to uncontended runs.  [`Runtime::try_launch`]
//! is the load-shedding variant that never waits.  [`Session::wait_async`]
//! turns a session into an executor-agnostic future, so thousands of
//! pending tenants can be awaited from a single polling thread.  Per-tenant
//! quotas ([`Config::max_epochs`], [`Config::max_events`]) bound what one
//! greedy session may consume: a [`SessionEvent::QuotaWarning`] fires at
//! three quarters of a quota and
//! [`ErrorKind::QuotaExhausted`](ErrorKind) cuts the session off at the
//! epoch boundary where the quota runs out -- its neighbours are
//! untouched.  See `docs/ARCHITECTURE.md` for the scheduler lifecycle.
//!
//! Every fallible call returns the crate-wide [`Error`], classified by a
//! stable, `#[non_exhaustive]` [`ErrorKind`].

#![deny(missing_docs)]

mod alloc;
mod checkpoint;
mod config;
mod context;
mod error;
mod events;
mod exec;
mod explore;
mod fault;
mod fingerprint;
mod hooks;
mod pool;
mod program;
mod rng;
mod runtime;
mod scheduler;
mod session;
mod sink;
mod site;
mod state;
mod stats;
mod sync;
mod syscall;
mod trace;

pub use config::{AllocatorMode, Config, ConfigBuilder, FaultPolicy, RunMode};
pub use context::{BarrierHandle, CondvarHandle, JoinHandle, MutexHandle, ThreadCtx};
pub use error::{Error, ErrorKind};
pub use events::{EventFilter, EventStream, SessionEvent};
pub use explore::{
    ChaosExplorer, ExploreReport, ExploreSubject, FailureFingerprint, MinimizedFind, OutcomeClass, PlanOutcome,
};
pub use fault::{FaultKind, FaultRecord};
pub use fingerprint::Fingerprint;
pub use hooks::{EpochDecision, EpochView, Instrument, ReplayRequest, ToolHook};
pub use program::{BodyFn, Program, Step};
pub use rng::DetRng;
#[allow(deprecated)]
pub use runtime::RuntimeDiagnostics;
pub use runtime::{DiagnosticsSnapshot, LaunchOptions, PartitionDiagnostics, Runtime, StageFn};
pub use session::{RunPhase, Session, SessionFuture, SessionStatus};
pub use site::{Site, SiteId};
pub use stats::{ReplayValidation, RunOutcome, RunReport, WatchHitReport};
pub use trace::{Trace, TraceFormat};

// Re-export the substrate types that appear in the public API so downstream
// users only need this crate.  `MemError` and `SysError` are the substrate
// errors [`Error`] wraps (kinds [`ErrorKind::Memory`] / [`ErrorKind::Sys`]);
// they are re-exported so `source()` downcasts need no extra dependency.
pub use ireplayer_log::{Divergence, DivergenceKind, SyncOp, SyscallClass, ThreadId, VarId};
pub use ireplayer_mem::{DiffStats, MemAddr, MemError, Span};
pub use ireplayer_sys::{
    shrink_candidates, ChaosPlan, ChaosPlanError, ChaosProfile, FaultClass, PeerScript, ShrinkStep, SimOs, SysError,
    SyscallKind, Whence,
};
