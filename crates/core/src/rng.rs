//! Deterministic per-thread random number generation.
//!
//! Applications frequently use pseudo-randomness (workload generators,
//! randomized algorithms).  For identical replay, a thread's random stream
//! must restart from the value it had at the epoch begin, so the generator
//! state is part of the per-thread checkpoint.  The runtime also uses a
//! generator of its own for the random delays inserted at diverging points
//! (§3.5.2).

use serde::{Deserialize, Serialize};

/// A small, fast, checkpointable PRNG (SplitMix64).
///
/// Not cryptographically secure; quality is more than sufficient for
/// workload generation and delay jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Derives an independent generator for a labelled sub-stream (for
    /// example one per thread).
    pub fn derive(&self, label: u64) -> Self {
        let mut child = DetRng {
            state: self.state ^ label.wrapping_mul(0xa24b_aed4_963e_e407),
        };
        child.next_u64();
        child
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly distributed in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Multiplicative range reduction; bias is negligible for the bounds
        // used by workloads and delay jitter.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Returns the raw state, stored in checkpoints.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Restores a state captured with [`DetRng::state`].
    pub fn restore(&mut self, state: u64) {
        self.state = state;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_produce_identical_streams() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn derived_streams_are_independent() {
        let root = DetRng::new(1);
        let mut t0 = root.derive(0);
        let mut t1 = root.derive(1);
        let s0: Vec<u64> = (0..10).map(|_| t0.next_u64()).collect();
        let s1: Vec<u64> = (0..10).map(|_| t1.next_u64()).collect();
        assert_ne!(s0, s1);
    }

    #[test]
    fn state_checkpoint_restores_the_stream() {
        let mut rng = DetRng::new(9);
        rng.next_u64();
        let saved = rng.state();
        let expected: Vec<u64> = (0..5).map(|_| rng.next_u64()).collect();
        rng.restore(saved);
        let replayed: Vec<u64> = (0..5).map(|_| rng.next_u64()).collect();
        assert_eq!(expected, replayed);
    }

    #[test]
    fn bounded_values_stay_in_range() {
        let mut rng = DetRng::new(5);
        for bound in [1u64, 2, 7, 100, 1 << 40] {
            for _ in 0..50 {
                assert!(rng.next_below(bound) < bound);
            }
        }
        for _ in 0..100 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bound_panics() {
        DetRng::new(1).next_below(0);
    }
}
