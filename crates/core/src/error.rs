//! Error type of the runtime.

use std::fmt;

use ireplayer_mem::MemError;
use ireplayer_sys::SysError;

use crate::fault::FaultRecord;

/// Errors returned by [`crate::Runtime`] operations.
#[derive(Debug, Clone)]
pub enum RuntimeError {
    /// The runtime configuration is invalid.
    InvalidConfig(String),
    /// A managed-memory operation failed in a context where it cannot be
    /// turned into an application fault (e.g. while checkpointing).
    Memory(MemError),
    /// A simulated system call failed in a context where the failure cannot
    /// be surfaced to the application.
    Sys(SysError),
    /// The program faulted (memory error, explicit crash, panic, assertion)
    /// and the run was terminated after diagnosis.
    Faulted(FaultRecord),
    /// The coordinator could not bring all threads to a step-boundary
    /// quiescent state within the configured timeout.  This indicates the
    /// program violates the bounded-step discipline described in the crate
    /// documentation (for example, a thread blocks forever on a wait that no
    /// concurrently running step will satisfy).
    QuiescenceTimeout {
        /// Threads that never reached a step boundary.
        stuck_threads: Vec<u32>,
    },
    /// The recorded epoch could not be reproduced within the configured
    /// maximum number of replay attempts.
    ReplayBudgetExhausted {
        /// Number of attempts performed.
        attempts: u32,
    },
    /// A replay was requested for an epoch containing an irrevocable system
    /// call, which cannot be rolled back.
    UnreplayableEpoch {
        /// Name of the irrevocable call.
        syscall: &'static str,
    },
    /// The program requested a replay but the runtime is in passthrough
    /// mode, where nothing is recorded.
    RecordingDisabled,
    /// An application thread panicked with a payload the runtime does not
    /// understand (a genuine application panic, not a runtime signal).
    ApplicationPanic(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            RuntimeError::Memory(e) => write!(f, "managed memory error: {e}"),
            RuntimeError::Sys(e) => write!(f, "simulated OS error: {e}"),
            RuntimeError::Faulted(fault) => write!(f, "program faulted: {fault}"),
            RuntimeError::QuiescenceTimeout { stuck_threads } => write!(
                f,
                "threads {stuck_threads:?} never reached a step boundary (bounded-step discipline violated)"
            ),
            RuntimeError::ReplayBudgetExhausted { attempts } => {
                write!(f, "no matching schedule found after {attempts} replay attempts")
            }
            RuntimeError::UnreplayableEpoch { syscall } => write!(
                f,
                "the current epoch contains the irrevocable system call {syscall} and cannot be replayed"
            ),
            RuntimeError::RecordingDisabled => {
                write!(f, "replay requested but recording is disabled (passthrough mode)")
            }
            RuntimeError::ApplicationPanic(msg) => write!(f, "application panicked: {msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<MemError> for RuntimeError {
    fn from(e: MemError) -> Self {
        RuntimeError::Memory(e)
    }
}

impl From<SysError> for RuntimeError {
    fn from(e: SysError) -> Self {
        RuntimeError::Sys(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultRecord};
    use ireplayer_log::ThreadId;

    #[test]
    fn display_is_nonempty_for_every_variant() {
        let variants: Vec<RuntimeError> = vec![
            RuntimeError::InvalidConfig("x".into()),
            RuntimeError::Memory(MemError::NoWatchpointSlot),
            RuntimeError::Sys(SysError::WouldBlock),
            RuntimeError::Faulted(FaultRecord {
                thread: ThreadId(1),
                kind: FaultKind::ExplicitCrash { message: "boom".into() },
                site: None,
                epoch: 0,
            }),
            RuntimeError::QuiescenceTimeout { stuck_threads: vec![2] },
            RuntimeError::ReplayBudgetExhausted { attempts: 5 },
            RuntimeError::UnreplayableEpoch { syscall: "fork" },
            RuntimeError::RecordingDisabled,
            RuntimeError::ApplicationPanic("oops".into()),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn conversions_from_substrate_errors() {
        let mem: RuntimeError = MemError::NoWatchpointSlot.into();
        assert!(matches!(mem, RuntimeError::Memory(_)));
        let sys: RuntimeError = SysError::WouldBlock.into();
        assert!(matches!(sys, RuntimeError::Sys(_)));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RuntimeError>();
    }
}
