//! The unified error taxonomy of the `ireplayer` facade.
//!
//! Every fallible operation on the public surface -- configuration
//! validation, [`crate::Runtime::launch`], [`crate::Session`] control, and
//! the conversions from the substrate crates' errors
//! ([`ireplayer_mem::MemError`], [`ireplayer_sys::SysError`]) -- returns
//! one [`Error`] type.  Callers that only need to branch inspect the
//! [`ErrorKind`] (a `#[non_exhaustive]` enum, stable across releases);
//! callers that need details use the structured accessors or the `Display`
//! rendering, and [`std::error::Error::source`] exposes the substrate
//! error a conversion wrapped.

use std::fmt;

use ireplayer_mem::MemError;
use ireplayer_sys::SysError;

use crate::fault::FaultRecord;

/// Coarse classification of an [`Error`].
///
/// Marked `#[non_exhaustive]`: new kinds may be added as the runtime grows,
/// and downstream matches must keep a wildcard arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// The runtime configuration is invalid; the error names the offending
    /// field and the rejected value.
    InvalidConfig,
    /// A managed-memory operation failed in a context where it cannot be
    /// turned into an application fault (e.g. while checkpointing).
    Memory,
    /// A simulated system call failed in a context where the failure cannot
    /// be surfaced to the application.
    Sys,
    /// The program faulted (memory error, explicit crash, panic, assertion).
    Faulted,
    /// The coordinator could not bring all threads to a step-boundary
    /// quiescent state within the configured timeout (bounded-step
    /// discipline violation).
    QuiescenceTimeout,
    /// The recorded epoch could not be reproduced within the configured
    /// maximum number of replay attempts.
    ReplayBudgetExhausted,
    /// A replay was requested for an epoch containing an irrevocable system
    /// call, which cannot be rolled back.
    UnreplayableEpoch,
    /// A replay was requested but the runtime is in passthrough mode, where
    /// nothing is recorded.
    RecordingDisabled,
    /// An application thread panicked with a payload the runtime does not
    /// understand (a genuine application panic, not a runtime signal).
    ApplicationPanic,
    /// No partition was free and the launch could not be queued: either
    /// every partition was busy and the admission queue was full (or
    /// [`Config::admission_queue_depth`](crate::Config) is 0), or
    /// [`crate::Runtime::try_launch`] was called while no partition was
    /// free (it never queues).
    SessionActive,
    /// The session consumed its per-tenant quota
    /// ([`Config::max_epochs`](crate::Config) or
    /// [`Config::max_events`](crate::Config)) and its program still wanted
    /// to run; see [`Error::quota_usage`].
    QuotaExhausted,
    /// A previous run left threads the runtime could not reclaim; the
    /// runtime refuses further launches because its warm state can no
    /// longer be trusted.
    Poisoned,
    /// The operating system refused to spawn a thread the runtime needs.
    ThreadSpawn,
    /// Reading or writing a durable trace file failed at the i/o or
    /// decoding layer (missing file, truncated or corrupted contents).
    TraceIo,
    /// A trace file's header names a format or version this build does not
    /// understand, or the file is not a trace at all.
    TraceVersion,
    /// A trace is incompatible with the replay request -- wrong program,
    /// wrong configuration fingerprint, or the re-execution diverged from
    /// the recorded order; see [`Error::trace_divergence`].
    TraceMismatch,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorKind::InvalidConfig => "invalid configuration",
            ErrorKind::Memory => "managed memory error",
            ErrorKind::Sys => "simulated OS error",
            ErrorKind::Faulted => "program faulted",
            ErrorKind::QuiescenceTimeout => "quiescence timeout",
            ErrorKind::ReplayBudgetExhausted => "replay budget exhausted",
            ErrorKind::UnreplayableEpoch => "unreplayable epoch",
            ErrorKind::RecordingDisabled => "recording disabled",
            ErrorKind::ApplicationPanic => "application panic",
            ErrorKind::SessionActive => "session already active",
            ErrorKind::QuotaExhausted => "tenant quota exhausted",
            ErrorKind::Poisoned => "runtime poisoned",
            ErrorKind::ThreadSpawn => "thread spawn failure",
            ErrorKind::TraceIo => "trace i/o failure",
            ErrorKind::TraceVersion => "unsupported trace version",
            ErrorKind::TraceMismatch => "trace mismatch",
        };
        f.write_str(name)
    }
}

/// The detailed payload behind an [`Error`]; one variant per [`ErrorKind`].
#[derive(Debug, Clone)]
enum Repr {
    InvalidConfig {
        field: &'static str,
        value: String,
        reason: &'static str,
    },
    Memory(MemError),
    Sys(SysError),
    Faulted(FaultRecord),
    QuiescenceTimeout {
        stuck_threads: Vec<u32>,
    },
    ReplayBudgetExhausted {
        attempts: u32,
    },
    UnreplayableEpoch {
        syscall: &'static str,
    },
    RecordingDisabled,
    ApplicationPanic(String),
    SessionActive,
    QuotaExhausted {
        resource: &'static str,
        used: u64,
        limit: u64,
    },
    Poisoned {
        stuck_threads: Vec<u32>,
    },
    ThreadSpawn(String),
    TraceIo {
        action: &'static str,
        path: String,
        detail: String,
    },
    TraceVersion {
        found: String,
        supported: u32,
    },
    TraceMismatch {
        what: &'static str,
        detail: String,
    },
}

/// Error returned by every fallible operation of the `ireplayer` facade.
///
/// # Example
///
/// ```
/// use ireplayer::{Config, ErrorKind};
///
/// let error = Config::builder().arena_size(1024).build().unwrap_err();
/// assert_eq!(error.kind(), ErrorKind::InvalidConfig);
/// // The message names the offending field and the rejected value.
/// let message = error.to_string();
/// assert!(message.contains("arena_size"));
/// assert!(message.contains("1024"));
/// ```
#[derive(Debug, Clone)]
pub struct Error {
    repr: Box<Repr>,
}

impl Error {
    fn new(repr: Repr) -> Self {
        Error { repr: Box::new(repr) }
    }

    /// The kind of this error, for coarse-grained handling.
    pub fn kind(&self) -> ErrorKind {
        match &*self.repr {
            Repr::InvalidConfig { .. } => ErrorKind::InvalidConfig,
            Repr::Memory(_) => ErrorKind::Memory,
            Repr::Sys(_) => ErrorKind::Sys,
            Repr::Faulted(_) => ErrorKind::Faulted,
            Repr::QuiescenceTimeout { .. } => ErrorKind::QuiescenceTimeout,
            Repr::ReplayBudgetExhausted { .. } => ErrorKind::ReplayBudgetExhausted,
            Repr::UnreplayableEpoch { .. } => ErrorKind::UnreplayableEpoch,
            Repr::RecordingDisabled => ErrorKind::RecordingDisabled,
            Repr::ApplicationPanic(_) => ErrorKind::ApplicationPanic,
            Repr::SessionActive => ErrorKind::SessionActive,
            Repr::QuotaExhausted { .. } => ErrorKind::QuotaExhausted,
            Repr::Poisoned { .. } => ErrorKind::Poisoned,
            Repr::ThreadSpawn(_) => ErrorKind::ThreadSpawn,
            Repr::TraceIo { .. } => ErrorKind::TraceIo,
            Repr::TraceVersion { .. } => ErrorKind::TraceVersion,
            Repr::TraceMismatch { .. } => ErrorKind::TraceMismatch,
        }
    }

    /// The fault record, when [`ErrorKind::Faulted`].
    pub fn fault(&self) -> Option<&FaultRecord> {
        match &*self.repr {
            Repr::Faulted(record) => Some(record),
            _ => None,
        }
    }

    /// The threads that never reached a step boundary, when
    /// [`ErrorKind::QuiescenceTimeout`] or [`ErrorKind::Poisoned`].
    pub fn stuck_threads(&self) -> Option<&[u32]> {
        match &*self.repr {
            Repr::QuiescenceTimeout { stuck_threads } | Repr::Poisoned { stuck_threads } => Some(stuck_threads),
            _ => None,
        }
    }

    /// The replay attempts spent before giving up, when
    /// [`ErrorKind::ReplayBudgetExhausted`] (0 when the diagnostic replay
    /// could not even start, e.g. the faulting epoch was tainted by an
    /// irrevocable system call).
    pub fn replay_attempts(&self) -> Option<u32> {
        match &*self.repr {
            Repr::ReplayBudgetExhausted { attempts } => Some(*attempts),
            _ => None,
        }
    }

    /// The exhausted resource (`"epochs"` or `"events"`), the usage the
    /// session reached, and the configured limit, when
    /// [`ErrorKind::QuotaExhausted`].
    pub fn quota_usage(&self) -> Option<(&'static str, u64, u64)> {
        match &*self.repr {
            Repr::QuotaExhausted { resource, used, limit } => Some((resource, *used, *limit)),
            _ => None,
        }
    }

    /// The configuration field an [`ErrorKind::InvalidConfig`] error is
    /// about.
    pub fn config_field(&self) -> Option<&'static str> {
        match &*self.repr {
            Repr::InvalidConfig { field, .. } => Some(field),
            _ => None,
        }
    }

    /// The trace file an [`ErrorKind::TraceIo`] error is about.
    pub fn trace_path(&self) -> Option<&str> {
        match &*self.repr {
            Repr::TraceIo { path, .. } => Some(path),
            _ => None,
        }
    }

    /// What diverged and how, when [`ErrorKind::TraceMismatch`]: a short
    /// category (`"program"`, `"config"`, `"epoch count"`, `"order log"`,
    /// `"fingerprint"`, ...) and a human-readable detail naming the failing
    /// epoch, thread, and sequence index where applicable.
    pub fn trace_divergence(&self) -> Option<(&'static str, &str)> {
        match &*self.repr {
            Repr::TraceMismatch { what, detail } => Some((what, detail)),
            _ => None,
        }
    }

    // -- crate-internal constructors ------------------------------------

    pub(crate) fn invalid_config(field: &'static str, value: impl fmt::Display, reason: &'static str) -> Self {
        Error::new(Repr::InvalidConfig {
            field,
            value: value.to_string(),
            reason,
        })
    }

    pub(crate) fn faulted(record: FaultRecord) -> Self {
        Error::new(Repr::Faulted(record))
    }

    pub(crate) fn quiescence_timeout(stuck_threads: Vec<u32>) -> Self {
        Error::new(Repr::QuiescenceTimeout { stuck_threads })
    }

    pub(crate) fn replay_budget_exhausted(attempts: u32) -> Self {
        Error::new(Repr::ReplayBudgetExhausted { attempts })
    }

    pub(crate) fn unreplayable_epoch(syscall: &'static str) -> Self {
        Error::new(Repr::UnreplayableEpoch { syscall })
    }

    pub(crate) fn recording_disabled() -> Self {
        Error::new(Repr::RecordingDisabled)
    }

    pub(crate) fn application_panic(message: impl Into<String>) -> Self {
        Error::new(Repr::ApplicationPanic(message.into()))
    }

    pub(crate) fn session_active() -> Self {
        Error::new(Repr::SessionActive)
    }

    pub(crate) fn quota_exhausted(resource: &'static str, used: u64, limit: u64) -> Self {
        Error::new(Repr::QuotaExhausted { resource, used, limit })
    }

    pub(crate) fn poisoned(stuck_threads: Vec<u32>) -> Self {
        Error::new(Repr::Poisoned { stuck_threads })
    }

    pub(crate) fn thread_spawn(inner: impl fmt::Display) -> Self {
        Error::new(Repr::ThreadSpawn(inner.to_string()))
    }

    pub(crate) fn trace_io(action: &'static str, path: impl fmt::Display, detail: impl fmt::Display) -> Self {
        Error::new(Repr::TraceIo {
            action,
            path: path.to_string(),
            detail: detail.to_string(),
        })
    }

    pub(crate) fn trace_version(found: impl Into<String>, supported: u32) -> Self {
        Error::new(Repr::TraceVersion {
            found: found.into(),
            supported,
        })
    }

    pub(crate) fn trace_mismatch(what: &'static str, detail: impl Into<String>) -> Self {
        Error::new(Repr::TraceMismatch {
            what,
            detail: detail.into(),
        })
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &*self.repr {
            Repr::InvalidConfig { field, value, reason } => {
                write!(f, "invalid configuration: {field} = {value}: {reason}")
            }
            Repr::Memory(e) => write!(f, "managed memory error: {e}"),
            Repr::Sys(e) => write!(f, "simulated OS error: {e}"),
            Repr::Faulted(fault) => write!(f, "program faulted: {fault}"),
            Repr::QuiescenceTimeout { stuck_threads } => write!(
                f,
                "threads {stuck_threads:?} never reached a step boundary (bounded-step discipline violated)"
            ),
            Repr::ReplayBudgetExhausted { attempts } => {
                write!(f, "no matching schedule found after {attempts} replay attempts")
            }
            Repr::UnreplayableEpoch { syscall } => write!(
                f,
                "the current epoch contains the irrevocable system call {syscall} and cannot be replayed"
            ),
            Repr::RecordingDisabled => {
                write!(f, "replay requested but recording is disabled (passthrough mode)")
            }
            Repr::ApplicationPanic(msg) => write!(f, "application panicked: {msg}"),
            Repr::SessionActive => {
                write!(
                    f,
                    "every partition is busy and the admission queue is full; wait for a session to finish before launching again"
                )
            }
            Repr::QuotaExhausted { resource, used, limit } => write!(
                f,
                "the session exhausted its {resource} quota ({used} of {limit} used) and was cut off at the epoch boundary"
            ),
            Repr::Poisoned { stuck_threads } => write!(
                f,
                "a previous run left threads {stuck_threads:?} unreclaimed; the runtime refuses further launches"
            ),
            Repr::ThreadSpawn(inner) => write!(f, "the OS refused to spawn a runtime thread: {inner}"),
            Repr::TraceIo { action, path, detail } => {
                write!(f, "trace i/o failure: could not {action} {path}: {detail}")
            }
            Repr::TraceVersion { found, supported } => {
                write!(f, "unsupported trace version: {found} (this build reads version {supported})")
            }
            Repr::TraceMismatch { what, detail } => {
                write!(f, "trace does not match this run: {what}: {detail}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &*self.repr {
            Repr::Memory(e) => Some(e),
            Repr::Sys(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for Error {
    fn from(e: MemError) -> Self {
        Error::new(Repr::Memory(e))
    }
}

impl From<SysError> for Error {
    fn from(e: SysError) -> Self {
        Error::new(Repr::Sys(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultRecord};
    use ireplayer_log::ThreadId;

    fn sample_fault() -> FaultRecord {
        FaultRecord {
            thread: ThreadId(1),
            kind: FaultKind::ExplicitCrash { message: "boom".into() },
            site: None,
            epoch: 0,
        }
    }

    #[test]
    fn display_and_kind_agree_for_every_variant() {
        let variants: Vec<(Error, ErrorKind)> = vec![
            (
                Error::invalid_config("arena_size", 1024, "too small"),
                ErrorKind::InvalidConfig,
            ),
            (Error::from(MemError::NoWatchpointSlot), ErrorKind::Memory),
            (Error::from(SysError::WouldBlock), ErrorKind::Sys),
            (Error::faulted(sample_fault()), ErrorKind::Faulted),
            (Error::quiescence_timeout(vec![2]), ErrorKind::QuiescenceTimeout),
            (Error::replay_budget_exhausted(5), ErrorKind::ReplayBudgetExhausted),
            (Error::unreplayable_epoch("fork"), ErrorKind::UnreplayableEpoch),
            (Error::recording_disabled(), ErrorKind::RecordingDisabled),
            (Error::application_panic("oops"), ErrorKind::ApplicationPanic),
            (Error::session_active(), ErrorKind::SessionActive),
            (Error::quota_exhausted("epochs", 8, 8), ErrorKind::QuotaExhausted),
            (Error::poisoned(vec![3]), ErrorKind::Poisoned),
            (Error::thread_spawn("EAGAIN"), ErrorKind::ThreadSpawn),
            (
                Error::trace_io("read", "run.trace", "unexpected end of file"),
                ErrorKind::TraceIo,
            ),
            (Error::trace_version("version 9", 1), ErrorKind::TraceVersion),
            (
                Error::trace_mismatch("order log", "epoch 2, thread T1, index 5"),
                ErrorKind::TraceMismatch,
            ),
        ];
        for (error, kind) in variants {
            assert_eq!(error.kind(), kind);
            assert!(!error.to_string().is_empty());
            assert!(!kind.to_string().is_empty());
        }
    }

    #[test]
    fn invalid_config_names_field_and_value() {
        let error = Error::invalid_config("heap_block_size", 4 << 20, "exceeds the arena");
        assert_eq!(error.config_field(), Some("heap_block_size"));
        let message = error.to_string();
        assert!(message.contains("heap_block_size"));
        assert!(message.contains(&(4 << 20).to_string()));
    }

    #[test]
    fn substrate_sources_are_chained() {
        let error = Error::from(MemError::NoWatchpointSlot);
        assert!(std::error::Error::source(&error).is_some());
        let error = Error::from(SysError::WouldBlock);
        assert!(std::error::Error::source(&error).is_some());
        assert!(std::error::Error::source(&Error::recording_disabled()).is_none());
    }

    #[test]
    fn structured_accessors_expose_payloads() {
        assert!(Error::faulted(sample_fault()).fault().is_some());
        assert_eq!(Error::quiescence_timeout(vec![7, 9]).stuck_threads(), Some(&[7, 9][..]));
        assert_eq!(Error::poisoned(vec![1]).stuck_threads(), Some(&[1][..]));
        assert!(Error::session_active().fault().is_none());
        let quota = Error::quota_exhausted("events", 130, 128);
        assert_eq!(quota.quota_usage(), Some(("events", 130, 128)));
        assert!(quota.to_string().contains("events") && quota.to_string().contains("128"));
        assert!(Error::session_active().quota_usage().is_none());
    }

    #[test]
    fn trace_accessors_expose_payloads() {
        let io = Error::trace_io("open", "corpus/run.trace", "no such file");
        assert_eq!(io.trace_path(), Some("corpus/run.trace"));
        assert!(io.to_string().contains("corpus/run.trace"));
        assert!(io.trace_divergence().is_none());

        let version = Error::trace_version("magic \"IRTX\"", 1);
        assert!(version.to_string().contains("IRTX"));
        assert!(version.to_string().contains('1'));

        let mismatch = Error::trace_mismatch("order log", "epoch 2, thread T1, index 5");
        assert_eq!(
            mismatch.trace_divergence(),
            Some(("order log", "epoch 2, thread T1, index 5"))
        );
        assert!(mismatch.to_string().contains("epoch 2"));
        assert!(mismatch.trace_path().is_none());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
        assert_send_sync::<ErrorKind>();
    }
}
