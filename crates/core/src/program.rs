//! The program model: step-structured thread bodies.
//!
//! The original iReplayer checkpoints native stacks and registers
//! (`getcontext`/`setcontext`) so that a rollback can resume arbitrary code.
//! Safe Rust cannot snapshot native stacks, so this reproduction uses
//! *step-structured* threads instead (see DESIGN.md): a thread body is a
//! closure the runtime invokes repeatedly; each invocation is a **step**.
//! All state that must survive a rollback lives in managed memory (the
//! deterministic heap, managed globals, or per-thread managed slots), and
//! epoch checkpoints are taken only when every thread sits at a step
//! boundary -- so re-invoking the closure after a rollback is the exact
//! analogue of restoring the stack and resuming.
//!
//! Within a step the application may freely block on runtime
//! synchronization, perform system calls, allocate and write managed
//! memory; the runtime records or replays all of it.  Two rules apply
//! (checked at runtime where feasible):
//!
//! 1. locks acquired in a step are released in the same step;
//! 2. a blocking wait must be satisfiable by the *currently running* steps
//!    of other threads (the bounded-step discipline), so that the world can
//!    reach a quiescent state.

use crate::context::ThreadCtx;

/// Result of one step of a thread body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The thread has more work: the runtime will invoke the body again.
    Yield,
    /// The thread is finished.  Its resources are kept alive until the next
    /// epoch boundary (so that a rollback can revive it), then reclaimed.
    Done,
}

/// A thread body: a closure invoked once per step.
pub type BodyFn = Box<dyn FnMut(&mut ThreadCtx<'_>) -> Step + Send + 'static>;

/// A program to be executed by the [`crate::Runtime`]: a name (used in
/// reports) and the body of its main thread.  Additional threads are spawned
/// dynamically through [`ThreadCtx::spawn`].
pub struct Program {
    name: String,
    main: BodyFn,
}

impl Program {
    /// Creates a program from its main thread body.
    ///
    /// # Example
    ///
    /// ```
    /// use ireplayer::{Program, Step};
    ///
    /// let program = Program::new("hello", |ctx| {
    ///     let cell = ctx.alloc(8);
    ///     ctx.write_u64(cell, 42);
    ///     assert_eq!(ctx.read_u64(cell), 42);
    ///     Step::Done
    /// });
    /// assert_eq!(program.name(), "hello");
    /// ```
    pub fn new<F>(name: impl Into<String>, main: F) -> Self
    where
        F: FnMut(&mut ThreadCtx<'_>) -> Step + Send + 'static,
    {
        Program {
            name: name.into(),
            main: Box::new(main),
        }
    }

    /// Name of the program.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Consumes the program, returning its parts.
    pub(crate) fn into_parts(self) -> (String, BodyFn) {
        (self.name, self.main)
    }
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Program")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_reports_its_name_and_debug_is_nonempty() {
        let program = Program::new("unit", |_ctx| Step::Done);
        assert_eq!(program.name(), "unit");
        assert!(!format!("{program:?}").is_empty());
        let (name, _body) = program.into_parts();
        assert_eq!(name, "unit");
    }

    #[test]
    fn step_values_compare() {
        assert_eq!(Step::Yield, Step::Yield);
        assert_ne!(Step::Yield, Step::Done);
    }
}
