//! Run statistics and the final report returned by [`crate::Runtime::run`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde::{Deserialize, Serialize};

use ireplayer_log::ThreadId;
use ireplayer_mem::{DiffStats, Span};

use crate::fault::FaultRecord;
use crate::fingerprint::Fingerprint;
use crate::site::Site;

/// Validation record of one rollback/replay cycle (the §5.2 experiment).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayValidation {
    /// Epoch that was replayed.
    pub epoch: u64,
    /// Number of re-execution attempts needed to find a matching schedule.
    pub attempts: u32,
    /// Whether a matching schedule was found.
    pub matched: bool,
    /// Byte-level difference between the heap image at the end of the
    /// original epoch and at the end of the matching replay.  Identical
    /// replay means zero differing bytes (Table 1).
    pub image_diff: Option<DiffStats>,
}

/// A watchpoint hit observed during a diagnostic replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WatchHitReport {
    /// The watched address range.
    pub watched: Span,
    /// The write access that triggered the hit.
    pub access: Span,
    /// Thread that performed the write.
    pub thread: ThreadId,
    /// Source location of the write, when known.
    pub site: Option<Site>,
    /// Replay attempt during which the hit was observed.
    pub attempt: u32,
}

/// How the run ended.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// The program ran to completion.
    Completed,
    /// The program faulted; the record describes the first fault.
    Faulted(FaultRecord),
}

impl RunOutcome {
    /// Returns `true` if the program completed without faulting.
    pub fn is_success(&self) -> bool {
        matches!(self, RunOutcome::Completed)
    }
}

/// Aggregate statistics and diagnostics of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Program name.
    pub program: String,
    /// Wall-clock duration of the run.
    pub wall_time: Duration,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Number of epochs executed.
    pub epochs: u64,
    /// Number of application threads created (including the main thread).
    pub threads: u32,
    /// Synchronization events recorded.
    pub sync_events: u64,
    /// System calls issued (recorded or not).
    pub syscalls: u64,
    /// Allocations served.
    pub allocations: u64,
    /// Frees served.
    pub frees: u64,
    /// Total bytes requested from the allocator.
    pub bytes_allocated: u64,
    /// Total replay attempts across all rollbacks.
    pub replay_attempts: u64,
    /// Divergences observed during replays.
    pub divergences: u64,
    /// FNV hash of the heap image at the end of the run (used by tests to
    /// compare executions).
    pub final_heap_hash: u64,
    /// Per-rollback validation results.
    pub replay_validations: Vec<ReplayValidation>,
    /// Watchpoint hits observed during diagnostic replays.
    pub watch_hits: Vec<WatchHitReport>,
    /// All faults observed.
    pub faults: Vec<FaultRecord>,
    /// Chaos faults injected into this run's original execution, indexed
    /// by [`FaultClass::code`](ireplayer_sys::FaultClass::code); all zeros
    /// when the launch ran without a plan.  Deliberately **excluded** from
    /// [`RunReport::fingerprint`]: the fingerprint predates this field and
    /// frozen trace fixtures pin it, and the injections' *effects* are
    /// already fingerprinted through the syscall and outcome fields.
    pub faults_injected: Vec<u64>,
}

impl RunReport {
    /// Returns `true` if every rollback found a matching schedule and every
    /// validated image was identical.
    pub fn replays_identical(&self) -> bool {
        self.replay_validations
            .iter()
            .all(|v| v.matched && v.image_diff.map(|d| d.is_identical()).unwrap_or(true))
    }

    /// A digest over every *deterministic* field of the report -- all of
    /// them except `wall_time`.  Two runs of the same program under the
    /// same configuration and seed produce the same fingerprint, whether
    /// they ran on a fresh runtime or back-to-back on a reused one; tests
    /// use this to assert that warm relaunches are observationally
    /// identical to cold runs, and durable traces store it so
    /// [`crate::Runtime::replay_trace`] can prove byte-identical
    /// reproduction in another process.
    pub fn fingerprint(&self) -> Fingerprint {
        let deterministic = (
            (&self.program, &self.outcome, self.epochs, self.threads),
            (
                self.sync_events,
                self.syscalls,
                self.allocations,
                self.frees,
                self.bytes_allocated,
            ),
            (self.replay_attempts, self.divergences, self.final_heap_hash),
            (&self.replay_validations, &self.watch_hits, &self.faults),
        );
        Fingerprint::of_debug(&deterministic)
    }

    /// Converts a faulted outcome into an [`crate::Error`] of kind
    /// [`crate::ErrorKind::Faulted`], passing completed runs through.
    pub fn into_result(self) -> Result<RunReport, crate::error::Error> {
        match &self.outcome {
            RunOutcome::Completed => Ok(self),
            RunOutcome::Faulted(fault) => Err(crate::error::Error::faulted(fault.clone())),
        }
    }
}

/// Internal atomic counters, aggregated into a [`RunReport`] at the end of a
/// run.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub sync_events: AtomicU64,
    pub syscalls: AtomicU64,
    pub allocations: AtomicU64,
    pub frees: AtomicU64,
    pub bytes_allocated: AtomicU64,
    pub replay_attempts: AtomicU64,
    pub divergences: AtomicU64,
    pub epochs: AtomicU64,
    pub faults: AtomicU64,
    /// Per-thread log events accumulated at each epoch close (the figure
    /// the `max_events` quota is enforced against, and the one
    /// `PartitionDiagnostics::quota_events_used` reports).
    pub events_recorded: AtomicU64,
}

impl Counters {
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add(counter: &AtomicU64, value: u64) {
        counter.fetch_add(value, Ordering::Relaxed);
    }

    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Restarts every per-run statistic (the warm-relaunch reset, run at
    /// end-of-run quiescence).
    pub fn reset(&self) {
        for counter in [
            &self.sync_events,
            &self.syscalls,
            &self.allocations,
            &self.frees,
            &self.bytes_allocated,
            &self.replay_attempts,
            &self.divergences,
            &self.epochs,
            &self.faults,
            &self.events_recorded,
        ] {
            counter.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        RunReport {
            program: "sample".into(),
            wall_time: Duration::from_millis(5),
            outcome: RunOutcome::Completed,
            epochs: 2,
            threads: 4,
            sync_events: 100,
            syscalls: 10,
            allocations: 50,
            frees: 40,
            bytes_allocated: 4096,
            replay_attempts: 1,
            divergences: 0,
            final_heap_hash: 0xabc,
            replay_validations: vec![ReplayValidation {
                epoch: 1,
                attempts: 1,
                matched: true,
                image_diff: Some(DiffStats {
                    bytes_compared: 1000,
                    bytes_different: 0,
                }),
            }],
            watch_hits: Vec::new(),
            faults: Vec::new(),
            faults_injected: Vec::new(),
        }
    }

    #[test]
    fn fingerprint_ignores_injection_counts() {
        let mut report = sample_report();
        let baseline = report.fingerprint();
        report.faults_injected = vec![3; 9];
        assert_eq!(report.fingerprint(), baseline);
        report.wall_time = Duration::from_millis(50);
        assert_eq!(report.fingerprint(), baseline);
        report.epochs += 1;
        assert_ne!(report.fingerprint(), baseline);
    }

    #[test]
    fn identical_replays_are_recognized() {
        let mut report = sample_report();
        assert!(report.outcome.is_success());
        assert!(report.replays_identical());

        report.replay_validations[0].image_diff = Some(DiffStats {
            bytes_compared: 1000,
            bytes_different: 3,
        });
        assert!(!report.replays_identical());

        report.replay_validations[0].image_diff = None;
        report.replay_validations[0].matched = false;
        assert!(!report.replays_identical());
    }

    #[test]
    fn counters_accumulate() {
        let counters = Counters::default();
        Counters::bump(&counters.sync_events);
        Counters::add(&counters.sync_events, 4);
        assert_eq!(Counters::get(&counters.sync_events), 5);
    }
}
