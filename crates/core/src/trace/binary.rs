//! Compact binary trace encoding.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    b"IRTR"
//! version  u32
//! checksum u64            FNV-1a over the payload bytes below
//! payload:
//!   program            string            (u32 length + UTF-8 bytes)
//!   config_fingerprint u64
//!   seed               u64
//!   chaos_digest       u64               (0 = no plan installed)
//!   inputs:
//!     files    u32 count, then per file: name string, contents blob
//!     peers    u32 count, then per peer: address string, script tag u8
//!              (0=Download seed u64 + total u64; 1=Echo len u64;
//!               2=Client seed u64 + requests u64 + len u64)
//!     backlog  u32 count, then per entry: address string, clients u64
//!     fd_limit u64
//!   epochs   u32 count, then per epoch:
//!     number        u64
//!     end_heap_hash u64
//!     threads  u32 count, then per thread: id u32, name string,
//!              order log (see below)
//!     vars     u32 count, then per var: id u32, kind u8, parties u32,
//!              order log (see below)
//!   summary  u8 present flag, then if present: fingerprint u64,
//!            epochs u64, threads u32, final_heap_hash u64, completed u8
//! ```
//!
//! The order-log encoding is what the version selects:
//!
//! * **version 3** (current): one self-delimiting delta/varint block per
//!   log ([`ireplayer_log::compress`]) -- an internal event/entry count
//!   followed by run frames, so an uncontended epoch costs a few bytes per
//!   run instead of ~22 bytes per event.
//! * **version 2** (still decoded, and re-encoded byte-identically for
//!   traces opened at that version): a u32 count followed by fixed-width
//!   events ([`ireplayer_log::wire::put_event`]) or entries
//!   (`wire::put_var_entry`).
//!
//! The checksum makes bit corruption anywhere in the payload a typed
//! [`ErrorKind::TraceIo`](crate::ErrorKind) failure instead of a silently
//! different replay.

use ireplayer_log::{
    compress,
    wire::{self, Reader, WireError},
};
use ireplayer_sys::{OsInputs, PeerScript};

use crate::error::Error;
use crate::fingerprint::{fnv1a, Fingerprint};
use crate::trace::{TraceData, TraceEpoch, TraceSummary, TraceThreadLog, TraceVarLog, MAGIC, OLDEST_VERSION, VERSION};

const SCRIPT_DOWNLOAD: u8 = 0;
const SCRIPT_ECHO: u8 = 1;
const SCRIPT_CLIENT: u8 = 2;

/// Serializes `data` into the binary trace format, honoring the version it
/// was opened at (a version-2 trace re-encodes with the legacy fixed-width
/// order logs, byte-identically).
///
/// # Errors
///
/// [`ErrorKind::TraceIo`](crate::ErrorKind) if a string, payload, or count
/// exceeds the format's `u32` framing -- refused instead of silently
/// truncated.
pub(crate) fn encode(data: &TraceData) -> Result<Vec<u8>, Error> {
    let payload = encode_payload(data)
        .map_err(|error| Error::trace_io("encode", format!("trace of {:?}", data.program), error))?;
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(&MAGIC);
    wire::put_u32(&mut out, data.version);
    wire::put_u64(&mut out, fnv1a(&payload));
    out.extend_from_slice(&payload);
    Ok(out)
}

fn encode_payload(data: &TraceData) -> Result<Vec<u8>, WireError> {
    let mut payload = Vec::new();
    wire::put_string(&mut payload, &data.program)?;
    wire::put_u64(&mut payload, data.config_fingerprint.as_u64());
    wire::put_u64(&mut payload, data.seed);
    wire::put_u64(&mut payload, data.chaos_digest);
    put_inputs(&mut payload, &data.inputs)?;
    wire::put_u32(&mut payload, wire::length_u32(data.epochs.len(), "epoch count")?);
    for epoch in &data.epochs {
        put_epoch(&mut payload, epoch, data.version)?;
    }
    match &data.summary {
        None => payload.push(0),
        Some(summary) => {
            payload.push(1);
            wire::put_u64(&mut payload, summary.fingerprint.as_u64());
            wire::put_u64(&mut payload, summary.epochs);
            wire::put_u32(&mut payload, summary.threads);
            wire::put_u64(&mut payload, summary.final_heap_hash);
            payload.push(u8::from(summary.completed));
        }
    }
    Ok(payload)
}

fn put_inputs(buf: &mut Vec<u8>, inputs: &OsInputs) -> Result<(), WireError> {
    wire::put_u32(buf, wire::length_u32(inputs.files.len(), "file count")?);
    for (name, contents) in &inputs.files {
        wire::put_string(buf, name)?;
        wire::put_blob(buf, contents)?;
    }
    wire::put_u32(buf, wire::length_u32(inputs.peers.len(), "peer count")?);
    for (address, script) in &inputs.peers {
        wire::put_string(buf, address)?;
        match script {
            PeerScript::Download { seed, total_bytes } => {
                buf.push(SCRIPT_DOWNLOAD);
                wire::put_u64(buf, *seed);
                wire::put_u64(buf, *total_bytes as u64);
            }
            PeerScript::Echo { response_len } => {
                buf.push(SCRIPT_ECHO);
                wire::put_u64(buf, *response_len as u64);
            }
            PeerScript::Client {
                seed,
                requests,
                request_len,
            } => {
                buf.push(SCRIPT_CLIENT);
                wire::put_u64(buf, *seed);
                wire::put_u64(buf, *requests as u64);
                wire::put_u64(buf, *request_len as u64);
            }
        }
    }
    wire::put_u32(buf, wire::length_u32(inputs.backlog.len(), "backlog count")?);
    for (address, clients) in &inputs.backlog {
        wire::put_string(buf, address)?;
        wire::put_u64(buf, *clients as u64);
    }
    wire::put_u64(buf, inputs.fd_limit as u64);
    Ok(())
}

fn put_epoch(buf: &mut Vec<u8>, epoch: &TraceEpoch, version: u32) -> Result<(), WireError> {
    wire::put_u64(buf, epoch.number);
    wire::put_u64(buf, epoch.end_heap_hash);
    wire::put_u32(buf, wire::length_u32(epoch.threads.len(), "thread log count")?);
    for thread in &epoch.threads {
        wire::put_u32(buf, thread.thread);
        wire::put_string(buf, &thread.name)?;
        if version >= VERSION {
            buf.extend_from_slice(&compress::compress_events(&thread.events));
        } else {
            wire::put_u32(buf, wire::length_u32(thread.events.len(), "event count")?);
            for event in &thread.events {
                wire::put_event(buf, event)?;
            }
        }
    }
    wire::put_u32(buf, wire::length_u32(epoch.vars.len(), "var log count")?);
    for var in &epoch.vars {
        wire::put_u32(buf, var.var);
        buf.push(var.kind);
        wire::put_u32(buf, var.parties);
        if version >= VERSION {
            buf.extend_from_slice(&compress::compress_var_entries(&var.entries));
        } else {
            wire::put_u32(buf, wire::length_u32(var.entries.len(), "var entry count")?);
            for entry in &var.entries {
                wire::put_var_entry(buf, entry);
            }
        }
    }
    Ok(())
}

/// Decodes a binary trace file; `origin` names the source in errors.
///
/// # Errors
///
/// [`ErrorKind::TraceVersion`](crate::ErrorKind) for a foreign version,
/// [`ErrorKind::TraceIo`](crate::ErrorKind) for truncation or corruption
/// (including checksum mismatches).
pub(crate) fn decode(bytes: &[u8], origin: &str) -> Result<TraceData, Error> {
    let corrupt = |error: WireError| Error::trace_io("decode", origin, error);
    let mut reader = Reader::new(bytes);
    let magic = reader.bytes(4, "trace magic").map_err(corrupt)?;
    debug_assert_eq!(magic, MAGIC, "caller dispatches on the magic");
    let version = reader.u32("trace version").map_err(corrupt)?;
    if !(OLDEST_VERSION..=VERSION).contains(&version) {
        return Err(Error::trace_version(
            format!("binary version {version} in {origin}"),
            VERSION,
        ));
    }
    let checksum = reader.u64("trace checksum").map_err(corrupt)?;
    let payload = &bytes[16..];
    if fnv1a(payload) != checksum {
        return Err(Error::trace_io(
            "decode",
            origin,
            "payload checksum mismatch (file is corrupted or truncated)",
        ));
    }

    let mut reader = Reader::new(payload);
    let program = reader.string("program name").map_err(corrupt)?;
    let config_fingerprint = Fingerprint::from_raw(reader.u64("config fingerprint").map_err(corrupt)?);
    let seed = reader.u64("seed").map_err(corrupt)?;
    let chaos_digest = reader.u64("chaos digest").map_err(corrupt)?;
    let inputs = read_inputs(&mut reader).map_err(corrupt)?;

    let epoch_count = reader.u32("epoch count").map_err(corrupt)?;
    let mut epochs = Vec::new();
    for _ in 0..epoch_count {
        epochs.push(read_epoch(&mut reader, version).map_err(corrupt)?);
    }

    let summary = match reader.u8("summary flag").map_err(corrupt)? {
        0 => None,
        1 => Some(TraceSummary {
            fingerprint: Fingerprint::from_raw(reader.u64("summary fingerprint").map_err(corrupt)?),
            epochs: reader.u64("summary epochs").map_err(corrupt)?,
            threads: reader.u32("summary threads").map_err(corrupt)?,
            final_heap_hash: reader.u64("summary heap hash").map_err(corrupt)?,
            completed: reader.u8("summary completed flag").map_err(corrupt)? != 0,
        }),
        _ => {
            return Err(corrupt(WireError {
                context: "summary flag",
            }))
        }
    };
    if reader.remaining() != 0 {
        return Err(corrupt(WireError {
            context: "trailing bytes after trace payload",
        }));
    }

    Ok(TraceData {
        version,
        program,
        config_fingerprint,
        seed,
        chaos_digest,
        inputs,
        epochs,
        summary,
    })
}

fn read_inputs(reader: &mut Reader<'_>) -> Result<OsInputs, WireError> {
    let mut inputs = OsInputs::default();
    for _ in 0..reader.u32("file count")? {
        let name = reader.string("file name")?;
        let contents = reader.blob("file contents")?;
        inputs.files.push((name, contents));
    }
    for _ in 0..reader.u32("peer count")? {
        let address = reader.string("peer address")?;
        let script = match reader.u8("peer script tag")? {
            SCRIPT_DOWNLOAD => PeerScript::Download {
                seed: reader.u64("download seed")?,
                total_bytes: reader.u64("download size")? as usize,
            },
            SCRIPT_ECHO => PeerScript::Echo {
                response_len: reader.u64("echo response length")? as usize,
            },
            SCRIPT_CLIENT => PeerScript::Client {
                seed: reader.u64("client seed")?,
                requests: reader.u64("client request count")? as usize,
                request_len: reader.u64("client request length")? as usize,
            },
            _ => {
                return Err(WireError {
                    context: "peer script tag",
                })
            }
        };
        inputs.peers.push((address, script));
    }
    for _ in 0..reader.u32("backlog count")? {
        let address = reader.string("backlog address")?;
        let clients = reader.u64("backlog clients")? as usize;
        inputs.backlog.push((address, clients));
    }
    inputs.fd_limit = reader.u64("fd limit")? as usize;
    Ok(inputs)
}

fn read_epoch(reader: &mut Reader<'_>, version: u32) -> Result<TraceEpoch, WireError> {
    let number = reader.u64("epoch number")?;
    let end_heap_hash = reader.u64("epoch heap hash")?;
    let mut threads = Vec::new();
    for _ in 0..reader.u32("thread log count")? {
        let thread = reader.u32("thread id")?;
        let name = reader.string("thread name")?;
        let events = if version >= VERSION {
            compress::decompress_events(reader)?
        } else {
            let mut events = Vec::new();
            for _ in 0..reader.u32("event count")? {
                events.push(wire::read_event(reader)?);
            }
            events
        };
        threads.push(TraceThreadLog { thread, name, events });
    }
    let mut vars = Vec::new();
    for _ in 0..reader.u32("var log count")? {
        let var = reader.u32("var id")?;
        let kind = reader.u8("var kind")?;
        let parties = reader.u32("barrier parties")?;
        let entries = if version >= VERSION {
            compress::decompress_var_entries(reader)?
        } else {
            let mut entries = Vec::new();
            for _ in 0..reader.u32("var entry count")? {
                entries.push(wire::read_var_entry(reader)?);
            }
            entries
        };
        vars.push(TraceVarLog {
            var,
            kind,
            parties,
            entries,
        });
    }
    Ok(TraceEpoch {
        number,
        end_heap_hash,
        threads,
        vars,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::tests::sample_data;
    use crate::ErrorKind;

    #[test]
    fn truncation_anywhere_is_a_typed_error() {
        for version in [OLDEST_VERSION, VERSION] {
            let mut data = sample_data();
            data.version = version;
            let bytes = encode(&data).unwrap();
            for cut in 0..bytes.len() {
                if bytes[..cut].starts_with(&MAGIC) {
                    let error = decode(&bytes[..cut], "test").unwrap_err();
                    assert!(
                        matches!(error.kind(), ErrorKind::TraceIo | ErrorKind::TraceVersion),
                        "v{version} cut at {cut}: {error}"
                    );
                }
            }
        }
    }

    #[test]
    fn bit_corruption_fails_the_checksum() {
        let mut bytes = encode(&sample_data()).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        let error = decode(&bytes, "test").unwrap_err();
        assert_eq!(error.kind(), ErrorKind::TraceIo);
        assert!(error.to_string().contains("checksum"), "{error}");
    }

    #[test]
    fn foreign_versions_are_refused() {
        let mut bytes = encode(&sample_data()).unwrap();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        let error = decode(&bytes, "test").unwrap_err();
        assert_eq!(error.kind(), ErrorKind::TraceVersion);
        assert!(error.to_string().contains("version 99"), "{error}");

        // Versions before the compatibility floor are foreign too.
        let mut bytes = encode(&sample_data()).unwrap();
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        let error = decode(&bytes, "test").unwrap_err();
        assert_eq!(error.kind(), ErrorKind::TraceVersion);
    }

    #[test]
    fn version_2_traces_still_decode_and_reencode_byte_identically() {
        let mut data = sample_data();
        data.version = OLDEST_VERSION;
        let legacy = encode(&data).unwrap();
        let reopened = decode(&legacy, "test").unwrap();
        assert_eq!(reopened, data);
        // A trace opened at version 2 stays version 2 on re-encode, so
        // binary -> decode -> binary is the identity.
        assert_eq!(encode(&reopened).unwrap(), legacy);
    }

    #[test]
    fn compressed_epochs_shrink_the_file_and_decode_identically() {
        use ireplayer_log::{Event, EventKind, SyncOp, ThreadId, VarEntry, VarId};
        let mut data = sample_data();
        data.epochs[0].threads[0].events = (0..10_000)
            .map(|i| Event {
                thread: ThreadId(0),
                index: i,
                kind: EventKind::Sync {
                    var: VarId(if i % 4 == 0 { 0 } else { 3 }),
                    op: SyncOp::MutexLock,
                    result: 0,
                },
            })
            .collect();
        data.epochs[0].vars[0].entries = (0..10_000)
            .map(|i| VarEntry {
                thread: ThreadId(0),
                op: SyncOp::MutexLock,
                thread_index: i,
            })
            .collect();
        let compressed = encode(&data).unwrap();
        let mut legacy = data.clone();
        legacy.version = OLDEST_VERSION;
        let legacy_bytes = encode(&legacy).unwrap();
        assert!(
            legacy_bytes.len() >= compressed.len() * 4,
            "legacy {} vs compressed {}",
            legacy_bytes.len(),
            compressed.len()
        );
        assert_eq!(decode(&compressed, "test").unwrap(), data);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut data = sample_data();
        data.summary = None;
        let mut bytes = encode(&data).unwrap();
        bytes.push(0);
        // Re-stamp the checksum so only the framing is at fault.
        let checksum = fnv1a(&bytes[16..]);
        bytes[8..16].copy_from_slice(&checksum.to_le_bytes());
        let error = decode(&bytes, "test").unwrap_err();
        assert_eq!(error.kind(), ErrorKind::TraceIo);
    }
}
