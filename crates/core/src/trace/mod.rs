//! Durable, versioned on-disk traces (the out-of-process replay layer).
//!
//! An in-situ recording normally dies with its [`crate::Runtime`].  This
//! module gives it a life after the process: a launch configured with
//! [`crate::Config::record_to`] streams every epoch's order logs, the
//! simulated-OS inputs staged before the run, and the configuration
//! fingerprint to a trace file *as each epoch closes*, so even a run that
//! crashes mid-epoch leaves every closed epoch on disk.  [`Trace::open`]
//! validates the header and checksum into a typed handle, and
//! [`crate::Runtime::replay_trace`] reproduces the run byte-identically --
//! proven by recomputing the [`crate::Fingerprint`] from a fresh execution
//! in a process that never saw the original.
//!
//! # Formats
//!
//! Two encodings of the same data, convertible losslessly in both
//! directions ([`Trace::save`]):
//!
//! * [`TraceFormat::Binary`] -- compact little-endian framing behind a
//!   `IRTR` magic + version header and an FNV-1a payload checksum; the
//!   event encoding itself lives in [`ireplayer_log::wire`].
//! * [`TraceFormat::Json`] -- a pretty-printed JSON sibling for human
//!   inspection and for checked-in regression fixtures
//!   ([`Trace::emit_test`]).
//!
//! [`Trace::open`] auto-detects the format: files beginning with the
//! binary magic parse as binary, files beginning with `{` parse as JSON,
//! anything else is rejected with
//! [`ErrorKind::TraceVersion`](crate::ErrorKind).  Malformed input of
//! either format surfaces as typed [`crate::Error`]s, never a panic.

mod binary;
mod job;
pub(crate) mod json;

pub(crate) use job::TraceJob;
pub(crate) use job::TraceVerifier;

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use ireplayer_log::{Event, VarEntry};
use ireplayer_sys::OsInputs;

use crate::error::Error;
use crate::fingerprint::Fingerprint;

/// Magic bytes opening every binary trace file.
pub(crate) const MAGIC: [u8; 4] = *b"IRTR";
/// The trace format version this build writes.  Version 2 added the
/// chaos-plan digest to the header; version 3 replaced the fixed-width
/// per-event order logs with delta/varint-compressed run blocks
/// ([`ireplayer_log::compress`]).
pub(crate) const VERSION: u32 = 3;
/// The oldest version this build still decodes.  A trace opened at an older
/// version keeps it: re-encoding uses the version's own framing, so
/// format conversion never silently upgrades a file.
pub(crate) const OLDEST_VERSION: u32 = 2;

/// On-disk encoding of a durable trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceFormat {
    /// Compact little-endian binary framing (magic `IRTR`).
    Binary,
    /// Pretty-printed JSON for human inspection and fixtures.
    Json,
}

impl std::fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TraceFormat::Binary => "binary",
            TraceFormat::Json => "json",
        })
    }
}

/// One thread's per-epoch order log, as serialized into a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct TraceThreadLog {
    /// Thread id (creation order; identical across re-executions).
    pub thread: u32,
    /// Thread name, for human-readable divergence reports.
    pub name: String,
    /// The thread's events, in program order.
    pub events: Vec<Event>,
}

/// One synchronization variable's per-epoch order log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct TraceVarLog {
    /// Variable id.
    pub var: u32,
    /// Stable code of the variable's kind (mutex/condvar/barrier/internal).
    pub kind: u8,
    /// Barrier parties (0 for non-barriers).
    pub parties: u32,
    /// Cross-thread operation order on this variable.
    pub entries: Vec<VarEntry>,
}

/// One closed epoch as serialized into a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct TraceEpoch {
    /// Epoch number (0-based, as reported by session events).
    pub number: u64,
    /// FNV hash of the in-use arena prefix at the epoch close.
    pub end_heap_hash: u64,
    /// Per-thread order logs, in thread-id order.
    pub threads: Vec<TraceThreadLog>,
    /// Per-variable order logs, in variable-id order.
    pub vars: Vec<TraceVarLog>,
}

/// The recorded run's final outcome, appended when the run completes.  A
/// trace without a summary is a *partial* recording -- the process died
/// before the run finished -- and still replays epoch by epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct TraceSummary {
    /// The recording run's [`crate::RunReport::fingerprint`].
    pub fingerprint: Fingerprint,
    /// Epochs the run executed.
    pub epochs: u64,
    /// Application threads the run created.
    pub threads: u32,
    /// Final heap hash of the run.
    pub final_heap_hash: u64,
    /// Whether the program completed without faulting.
    pub completed: bool,
}

/// Everything a trace file stores, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct TraceData {
    /// Format version the file was written with.
    pub version: u32,
    /// Name of the recorded program.
    pub program: String,
    /// [`crate::Config::fingerprint`] of the recording runtime.
    pub config_fingerprint: Fingerprint,
    /// The recording configuration's seed (informational; the seed is
    /// already covered by `config_fingerprint`).
    pub seed: u64,
    /// [`ChaosPlan::digest`](ireplayer_sys::ChaosPlan::digest) of the
    /// fault-injection plan the run recorded under, or `0` when no plan
    /// was installed.  Replay refuses a runtime whose plan digest differs:
    /// injected faults are part of the recorded nondeterminism, so a
    /// different plan could never reproduce the trace.
    pub chaos_digest: u64,
    /// Simulated-OS inputs staged before the recorded run.
    pub inputs: OsInputs,
    /// Every epoch closed before the recording ended.
    pub epochs: Vec<TraceEpoch>,
    /// Final outcome, absent if the recording process died mid-run.
    pub summary: Option<TraceSummary>,
}

impl TraceData {
    /// An empty recording shell, filled in by the recorder at run begin.
    pub(crate) fn new(
        program: String,
        config_fingerprint: Fingerprint,
        seed: u64,
        chaos_digest: u64,
        inputs: OsInputs,
    ) -> Self {
        TraceData {
            version: VERSION,
            program,
            config_fingerprint,
            seed,
            chaos_digest,
            inputs,
            epochs: Vec::new(),
            summary: None,
        }
    }
}

/// A validated, typed handle to a durable trace.
///
/// Obtained from [`Trace::open`]; consumed by
/// [`crate::Runtime::replay_trace`] to reproduce the recorded run in a
/// fresh process, by [`Trace::save`] to convert between formats, and by
/// [`Trace::emit_test`] to promote a recording into a checked-in
/// regression fixture.
///
/// # Example
///
/// ```no_run
/// use ireplayer::{Config, Program, Runtime, Step, Trace};
///
/// # fn main() -> Result<(), ireplayer::Error> {
/// // Record durably...
/// let config = Config::builder().record_to("run.trace").build()?;
/// let runtime = Runtime::new(config.clone())?;
/// let program = || Program::new("workload", |_| Step::Done);
/// let recorded = runtime.run(program())?;
/// // ...then (possibly in another process entirely) replay from disk.
/// let trace = Trace::open("run.trace")?;
/// let fresh = Runtime::new(Config { record_to: None, ..config })?;
/// let replayed = fresh.replay_trace(program(), &trace)?;
/// assert_eq!(replayed.fingerprint(), recorded.fingerprint());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Trace {
    data: TraceData,
    format: TraceFormat,
}

impl PartialEq for Trace {
    /// Two traces are equal when they describe the same recording,
    /// regardless of the format they were loaded from.
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Trace {
    /// Opens and validates a trace file, auto-detecting the format.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::TraceIo`](crate::ErrorKind) if the file cannot be read
    /// or its contents are truncated/corrupted;
    /// [`ErrorKind::TraceVersion`](crate::ErrorKind) if the file is not a
    /// trace or was written by an unsupported format version.
    pub fn open(path: impl AsRef<Path>) -> Result<Trace, Error> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|error| Error::trace_io("read", path.display(), error))?;
        Trace::from_bytes(&bytes, &path.display().to_string())
    }

    /// Decodes trace bytes, auto-detecting the format; `origin` names the
    /// source in error messages.
    pub(crate) fn from_bytes(bytes: &[u8], origin: &str) -> Result<Trace, Error> {
        if bytes.starts_with(&MAGIC) {
            let data = binary::decode(bytes, origin)?;
            return Ok(Trace {
                data,
                format: TraceFormat::Binary,
            });
        }
        let first = bytes.iter().copied().find(|b| !b.is_ascii_whitespace());
        if first == Some(b'{') {
            let data = json::decode(bytes, origin)?;
            return Ok(Trace {
                data,
                format: TraceFormat::Json,
            });
        }
        let found = match first {
            Some(_) if bytes.len() >= 4 => format!("magic {:?}", String::from_utf8_lossy(&bytes[..4.min(bytes.len())])),
            Some(byte) => format!("leading byte 0x{byte:02x}"),
            None => "an empty file".to_owned(),
        };
        Err(Error::trace_version(format!("{found} in {origin}"), VERSION))
    }

    /// Serializes the trace in the given format.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::TraceIo`](crate::ErrorKind) if a log exceeds the binary
    /// format's `u32` framing (refused instead of silently truncated).
    pub(crate) fn to_bytes(&self, format: TraceFormat) -> Result<Vec<u8>, Error> {
        match format {
            TraceFormat::Binary => binary::encode(&self.data),
            TraceFormat::Json => Ok(json::encode(&self.data)),
        }
    }

    /// Writes the trace to `path` in `format` (atomically: the file is
    /// staged next to the target and renamed into place).  Converting a
    /// trace between the two formats is lossless: saving and re-opening
    /// yields an equal `Trace`.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::TraceIo`](crate::ErrorKind) if the file cannot be
    /// written.
    pub fn save(&self, path: impl AsRef<Path>, format: TraceFormat) -> Result<(), Error> {
        write_atomically(path.as_ref(), &self.to_bytes(format)?)
    }

    /// Promotes this trace into a regression fixture: writes the JSON form
    /// (the reviewable one) to `path`, conventionally under
    /// `tests/fixtures/`.  The fixture replays with
    /// [`crate::Runtime::replay_trace`] like any other trace.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::TraceIo`](crate::ErrorKind) if the file cannot be
    /// written.
    pub fn emit_test(&self, path: impl AsRef<Path>) -> Result<(), Error> {
        self.save(path, TraceFormat::Json)
    }

    /// The format this trace was loaded from (or recorded in).
    pub fn format(&self) -> TraceFormat {
        self.format
    }

    /// The trace format version of the file.
    pub fn version(&self) -> u32 {
        self.data.version
    }

    /// Name of the recorded program.
    pub fn program(&self) -> &str {
        &self.data.program
    }

    /// The recording runtime's configuration fingerprint; replay refuses
    /// runtimes whose [`crate::Config::fingerprint`] differs.
    pub fn config_fingerprint(&self) -> Fingerprint {
        self.data.config_fingerprint
    }

    /// Digest of the chaos plan the run recorded under (`0` when the
    /// recording runtime had no plan installed).  Replay refuses a runtime
    /// whose own plan digest differs.
    pub fn chaos_digest(&self) -> u64 {
        self.data.chaos_digest
    }

    /// The recorded run's report fingerprint, or `None` for a partial
    /// trace whose recording process died before the run finished.
    pub fn fingerprint(&self) -> Option<Fingerprint> {
        self.data.summary.as_ref().map(|s| s.fingerprint)
    }

    /// Number of epochs the trace holds.
    pub fn epoch_count(&self) -> usize {
        self.data.epochs.len()
    }

    /// Total recorded events across all epochs and threads.
    pub fn event_count(&self) -> usize {
        self.data
            .epochs
            .iter()
            .flat_map(|e| e.threads.iter())
            .map(|t| t.events.len())
            .sum()
    }

    /// `true` if the recorded run finished and completed without faulting.
    pub fn completed(&self) -> bool {
        self.data.summary.as_ref().map(|s| s.completed).unwrap_or(false)
    }

    pub(crate) fn data(&self) -> &TraceData {
        &self.data
    }

    #[cfg(test)]
    pub(crate) fn from_data(data: TraceData, format: TraceFormat) -> Trace {
        Trace { data, format }
    }
}

/// Writes `bytes` to `path` via a staged sibling + rename, so readers (and
/// crashes) never observe a half-written trace.
pub(crate) fn write_atomically(path: &Path, bytes: &[u8]) -> Result<(), Error> {
    let mut staged: PathBuf = path.to_path_buf();
    let mut name = staged.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    staged.set_file_name(name);
    std::fs::write(&staged, bytes).map_err(|error| Error::trace_io("write", staged.display(), error))?;
    std::fs::rename(&staged, path).map_err(|error| Error::trace_io("rename into place", path.display(), error))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ireplayer_log::{EventKind, SyncOp, SyscallOutcome, ThreadId, VarId};
    use ireplayer_sys::PeerScript;

    pub(super) fn sample_data() -> TraceData {
        let inputs = OsInputs {
            files: vec![("data.txt".into(), b"abc\x00\xff".to_vec())],
            peers: vec![(
                "mirror:80".into(),
                PeerScript::Download {
                    seed: 7,
                    total_bytes: 1000,
                },
            )],
            backlog: vec![("httpd:80".into(), 2)],
            fd_limit: 65536,
        };
        let mut data = TraceData::new(
            "sample \"program\"\n".into(),
            Fingerprint::from_raw(0xdead_beef_0123_4567),
            0x5eed_2018,
            0xc4a0_5b1e_77d2_0f93,
            inputs,
        );
        data.epochs.push(TraceEpoch {
            number: 0,
            end_heap_hash: u64::MAX,
            threads: vec![TraceThreadLog {
                thread: 0,
                name: "main".into(),
                events: vec![
                    Event {
                        thread: ThreadId(0),
                        index: 0,
                        kind: EventKind::Sync {
                            var: VarId(3),
                            op: SyncOp::MutexLock,
                            result: -1,
                        },
                    },
                    Event {
                        thread: ThreadId(0),
                        index: 1,
                        kind: EventKind::Syscall {
                            code: 14,
                            outcome: SyscallOutcome::with_data(5, vec![0, 1, 255]),
                        },
                    },
                ],
            }],
            vars: vec![TraceVarLog {
                var: 3,
                kind: 0,
                parties: 0,
                entries: vec![VarEntry {
                    thread: ThreadId(0),
                    op: SyncOp::MutexLock,
                    thread_index: 0,
                }],
            }],
        });
        data.summary = Some(TraceSummary {
            fingerprint: Fingerprint::from_raw(42),
            epochs: 1,
            threads: 1,
            final_heap_hash: 9,
            completed: true,
        });
        data
    }

    #[test]
    fn binary_and_json_roundtrip_losslessly() {
        let data = sample_data();
        let trace = Trace::from_data(data.clone(), TraceFormat::Binary);

        let binary = trace.to_bytes(TraceFormat::Binary).unwrap();
        let reopened = Trace::from_bytes(&binary, "test").unwrap();
        assert_eq!(reopened.format(), TraceFormat::Binary);
        assert_eq!(reopened.data, data);

        let json = trace.to_bytes(TraceFormat::Json).unwrap();
        let reopened = Trace::from_bytes(&json, "test").unwrap();
        assert_eq!(reopened.format(), TraceFormat::Json);
        assert_eq!(reopened.data, data, "json roundtrip is lossless");
    }

    #[test]
    fn version_2_traces_convert_between_formats_losslessly() {
        // A trace opened at the previous version keeps that version across
        // format conversions, so binary -> json -> binary is the identity.
        let mut data = sample_data();
        data.version = OLDEST_VERSION;
        let trace = Trace::from_data(data.clone(), TraceFormat::Binary);
        let binary = trace.to_bytes(TraceFormat::Binary).unwrap();
        let json = trace.to_bytes(TraceFormat::Json).unwrap();
        let via_json = Trace::from_bytes(&json, "test").unwrap();
        assert_eq!(via_json.version(), OLDEST_VERSION);
        assert_eq!(via_json.to_bytes(TraceFormat::Binary).unwrap(), binary);
    }

    #[test]
    fn partial_traces_roundtrip_without_a_summary() {
        let mut data = sample_data();
        data.summary = None;
        let trace = Trace::from_data(data.clone(), TraceFormat::Binary);
        for format in [TraceFormat::Binary, TraceFormat::Json] {
            let reopened = Trace::from_bytes(&trace.to_bytes(format).unwrap(), "test").unwrap();
            assert_eq!(reopened.data, data);
            assert!(reopened.fingerprint().is_none());
            assert!(!reopened.completed());
        }
    }

    #[test]
    fn unknown_bytes_are_rejected_with_a_version_error() {
        for bytes in [&b"GIF89a"[..], b"x", b""] {
            let error = Trace::from_bytes(bytes, "test").unwrap_err();
            assert_eq!(error.kind(), crate::ErrorKind::TraceVersion);
        }
    }

    #[test]
    fn accessors_expose_the_header() {
        let trace = Trace::from_data(sample_data(), TraceFormat::Json);
        assert_eq!(trace.program(), "sample \"program\"\n");
        assert_eq!(trace.version(), VERSION);
        assert_eq!(trace.epoch_count(), 1);
        assert_eq!(trace.event_count(), 2);
        assert!(trace.completed());
        assert_eq!(trace.fingerprint(), Some(Fingerprint::from_raw(42)));
        assert_eq!(trace.config_fingerprint(), Fingerprint::from_raw(0xdead_beef_0123_4567));
    }
}
