//! The per-launch trace job: durable recording and trace verification.
//!
//! A [`TraceJob`] travels with one launched program through the scheduler
//! into the supervisor, which drives it at three points:
//!
//! * [`TraceJob::begin`] -- before the main thread starts.  A recorder
//!   snapshots the staged simulated-OS inputs and writes the (still
//!   epoch-less) trace file, so even a run that crashes in its first epoch
//!   leaves a valid header behind.  A verifier does the inverse: it resets
//!   the kernel and restores the recorded inputs, which is what makes
//!   replay work in a fresh process that never staged anything.
//! * [`TraceJob::on_epoch_close`] -- at every epoch close (including the
//!   partial epoch of a faulting run).  A recorder appends the epoch's
//!   order logs and atomically rewrites the file; a verifier in strict
//!   mode compares the observed epoch against the recorded one and stops
//!   the run at the first divergence.
//! * [`TraceJob::finish`] -- after the run report is built.  A recorder
//!   seals the trace with a summary (fingerprint, outcome); a verifier
//!   checks that the re-execution produced every recorded epoch and the
//!   recorded fingerprint.
//!
//! Time is the one sanctioned nondeterminism: `gettimeofday` outcomes
//! incorporate real elapsed nanoseconds, so strict comparison matches
//! `GetTime` events by position and code but exempts their outcome.  All
//! other recorded outcomes are deterministic and must match exactly.

use std::path::PathBuf;

use ireplayer_log::{Event, EventKind};
use ireplayer_sys::SyscallKind;

use crate::config::Config;
use crate::error::Error;
use crate::state::{RtInner, SyncVarKind};
use crate::stats::RunReport;
use crate::trace::{
    binary, json, write_atomically, TraceData, TraceEpoch, TraceFormat, TraceSummary, TraceThreadLog, TraceVarLog,
};

/// Stable wire codes for [`SyncVarKind`], stored per variable log.
const KIND_MUTEX: u8 = 0;
const KIND_CONDVAR: u8 = 1;
const KIND_BARRIER: u8 = 2;
const KIND_INTERNAL: u8 = 3;

fn kind_code(kind: SyncVarKind) -> (u8, u32) {
    match kind {
        SyncVarKind::Mutex => (KIND_MUTEX, 0),
        SyncVarKind::Condvar => (KIND_CONDVAR, 0),
        SyncVarKind::Barrier { parties } => (KIND_BARRIER, parties),
        SyncVarKind::Internal => (KIND_INTERNAL, 0),
    }
}

/// Captures the closing epoch's order logs from runtime state.
fn capture_epoch(rt: &RtInner) -> TraceEpoch {
    let threads = rt
        .threads
        .read()
        .iter()
        .map(|vt| TraceThreadLog {
            thread: vt.id.0,
            name: vt.name.clone(),
            events: vt.list.snapshot(),
        })
        .collect();
    let vars = rt
        .sync_table
        .read()
        .iter()
        .map(|sv| {
            let (kind, parties) = kind_code(sv.kind);
            TraceVarLog {
                var: sv.id.0,
                kind,
                parties,
                entries: sv.var_list.entries(),
            }
        })
        .collect();
    TraceEpoch {
        number: rt.epoch_number(),
        end_heap_hash: rt.arena.hash_prefix(rt.super_heap.high_water().as_usize()),
        threads,
        vars,
    }
}

/// The trace work attached to one launch.
#[derive(Debug)]
pub(crate) enum TraceJob {
    /// Stream the run durably to a trace file.
    Record(TraceRecorder),
    /// Verify the run against a loaded trace.
    Verify(TraceVerifier),
}

impl TraceJob {
    /// The recording job implied by `config`, if any.
    pub(crate) fn recorder_for(config: &Config) -> Option<TraceJob> {
        config.record_to.as_ref().map(|path| {
            TraceJob::Record(TraceRecorder {
                path: path.clone(),
                format: config.trace_format,
                data: None,
            })
        })
    }

    /// Runs before the program's main thread starts.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorKind::TraceIo`] if the trace file cannot be written.
    pub(crate) fn begin(&mut self, rt: &RtInner, program: &str) -> Result<(), Error> {
        match self {
            TraceJob::Record(recorder) => {
                recorder.data = Some(TraceData::new(
                    program.to_owned(),
                    rt.config.fingerprint(),
                    rt.config.seed,
                    rt.config.chaos.as_ref().map(|plan| plan.digest()).unwrap_or(0),
                    rt.os.staged_inputs(),
                ));
                recorder.rewrite()
            }
            TraceJob::Verify(verifier) => {
                rt.os.restore_inputs(&verifier.data.inputs);
                Ok(())
            }
        }
    }

    /// Runs at each epoch close (and once for the partial epoch of a
    /// faulting run), while the closing epoch's logs are still live.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorKind::TraceIo`] if the recorder cannot rewrite the
    /// file; [`crate::ErrorKind::TraceMismatch`] if a strict verifier
    /// observes a divergence from the recorded epoch.
    pub(crate) fn on_epoch_close(&mut self, rt: &RtInner) -> Result<(), Error> {
        let observed = capture_epoch(rt);
        match self {
            TraceJob::Record(recorder) => {
                if let Some(data) = recorder.data.as_mut() {
                    data.epochs.push(observed);
                }
                recorder.rewrite()
            }
            TraceJob::Verify(verifier) => verifier.check_epoch(observed),
        }
    }

    /// Runs after the supervisor built the run report.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorKind::TraceIo`] if the sealed trace cannot be
    /// written; [`crate::ErrorKind::TraceMismatch`] if the verified run
    /// fell short of the recorded epochs or produced a different
    /// fingerprint.
    pub(crate) fn finish(&mut self, report: &RunReport) -> Result<(), Error> {
        match self {
            TraceJob::Record(recorder) => {
                if let Some(data) = recorder.data.as_mut() {
                    data.summary = Some(TraceSummary {
                        fingerprint: report.fingerprint(),
                        epochs: report.epochs,
                        threads: report.threads,
                        final_heap_hash: report.final_heap_hash,
                        completed: report.outcome.is_success(),
                    });
                }
                recorder.rewrite()
            }
            TraceJob::Verify(verifier) => verifier.finish(report),
        }
    }
}

/// Streams a run to a trace file, rewriting it atomically at every epoch
/// close so the file on disk is always a valid (possibly partial) trace.
#[derive(Debug)]
pub(crate) struct TraceRecorder {
    path: PathBuf,
    format: TraceFormat,
    /// Populated at [`TraceJob::begin`]; `None` only before the run starts.
    data: Option<TraceData>,
}

impl TraceRecorder {
    fn rewrite(&self) -> Result<(), Error> {
        let Some(data) = self.data.as_ref() else {
            return Ok(());
        };
        let bytes = match self.format {
            TraceFormat::Binary => binary::encode(data)?,
            TraceFormat::Json => json::encode(data),
        };
        write_atomically(&self.path, &bytes)
    }
}

/// Replays a loaded trace against a fresh execution, epoch by epoch.
#[derive(Debug)]
pub(crate) struct TraceVerifier {
    data: TraceData,
    strict: bool,
    seen_epochs: usize,
}

impl TraceVerifier {
    /// A verifier for `data`; `strict` compares every epoch's order logs
    /// and stops at the first divergence, non-strict only checks the final
    /// fingerprint.
    pub(crate) fn new(data: TraceData, strict: bool) -> TraceVerifier {
        TraceVerifier {
            data,
            strict,
            seen_epochs: 0,
        }
    }

    fn check_epoch(&mut self, observed: TraceEpoch) -> Result<(), Error> {
        let index = self.seen_epochs;
        self.seen_epochs += 1;
        if !self.strict {
            return Ok(());
        }
        let Some(expected) = self.data.epochs.get(index) else {
            return Err(Error::trace_mismatch(
                "epoch count",
                format!(
                    "re-execution produced epoch {} but the trace records only {}",
                    observed.number,
                    self.data.epochs.len()
                ),
            ));
        };
        compare_epochs(expected, &observed)
    }

    fn finish(&mut self, report: &RunReport) -> Result<(), Error> {
        if self.seen_epochs != self.data.epochs.len() {
            return Err(Error::trace_mismatch(
                "epoch count",
                format!(
                    "trace records {} epochs but the re-execution closed {}",
                    self.data.epochs.len(),
                    self.seen_epochs
                ),
            ));
        }
        if let Some(summary) = &self.data.summary {
            let observed = report.fingerprint();
            if observed != summary.fingerprint {
                return Err(Error::trace_mismatch(
                    "run fingerprint",
                    format!(
                        "recorded {} but the re-execution produced {observed}",
                        summary.fingerprint
                    ),
                ));
            }
        }
        Ok(())
    }
}

/// `true` when the recorded and observed events agree, allowing the
/// sanctioned time nondeterminism: `GetTime` outcomes differ run to run,
/// so those events match on position/thread/code alone.
fn events_agree(expected: &Event, observed: &Event) -> bool {
    if expected.thread != observed.thread || expected.index != observed.index {
        return false;
    }
    match (&expected.kind, &observed.kind) {
        (EventKind::Syscall { code: a, .. }, EventKind::Syscall { code: b, .. })
            if *a == SyscallKind::GetTime.code() =>
        {
            a == b
        }
        (a, b) => a == b,
    }
}

fn compare_epochs(expected: &TraceEpoch, observed: &TraceEpoch) -> Result<(), Error> {
    let diverged = |detail: String| {
        Err(Error::trace_mismatch(
            "epoch order log",
            format!("epoch {}: {detail}", expected.number),
        ))
    };
    if expected.number != observed.number {
        return diverged(format!("re-execution closed epoch {}", observed.number));
    }
    if expected.threads.len() != observed.threads.len() {
        return diverged(format!(
            "recorded {} thread logs, observed {}",
            expected.threads.len(),
            observed.threads.len()
        ));
    }
    for (exp, obs) in expected.threads.iter().zip(&observed.threads) {
        if exp.thread != obs.thread || exp.name != obs.name {
            return diverged(format!(
                "thread log {} ({:?}) became {} ({:?})",
                exp.thread, exp.name, obs.thread, obs.name
            ));
        }
        if exp.events.len() != obs.events.len() {
            return diverged(format!(
                "thread {} recorded {} events, observed {}",
                exp.thread,
                exp.events.len(),
                obs.events.len()
            ));
        }
        for (i, (e, o)) in exp.events.iter().zip(&obs.events).enumerate() {
            if !events_agree(e, o) {
                return diverged(format!(
                    "thread {} event {i}: recorded {e:?}, observed {o:?}",
                    exp.thread
                ));
            }
        }
    }
    if expected.vars.len() != observed.vars.len() {
        return diverged(format!(
            "recorded {} variable logs, observed {}",
            expected.vars.len(),
            observed.vars.len()
        ));
    }
    for (exp, obs) in expected.vars.iter().zip(&observed.vars) {
        if exp.var != obs.var || exp.kind != obs.kind || exp.parties != obs.parties {
            return diverged(format!("variable {} changed identity or kind", exp.var));
        }
        if exp.entries != obs.entries {
            return diverged(format!("variable {} recorded a different cross-thread order", exp.var));
        }
    }
    if expected.end_heap_hash != observed.end_heap_hash {
        return diverged(format!(
            "heap image hash diverged ({:#x} recorded, {:#x} observed)",
            expected.end_heap_hash, observed.end_heap_hash
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ireplayer_log::{SyncOp, SyscallOutcome, ThreadId, VarId};

    fn sync_event(index: u32, result: i64) -> Event {
        Event {
            thread: ThreadId(0),
            index,
            kind: EventKind::Sync {
                var: VarId(1),
                op: SyncOp::MutexLock,
                result,
            },
        }
    }

    fn time_event(index: u32, now: i64) -> Event {
        Event {
            thread: ThreadId(0),
            index,
            kind: EventKind::Syscall {
                code: SyscallKind::GetTime.code(),
                outcome: SyscallOutcome::ret(now),
            },
        }
    }

    fn epoch_with(events: Vec<Event>) -> TraceEpoch {
        TraceEpoch {
            number: 0,
            end_heap_hash: 7,
            threads: vec![TraceThreadLog {
                thread: 0,
                name: "main".into(),
                events,
            }],
            vars: Vec::new(),
        }
    }

    #[test]
    fn gettime_outcomes_are_exempt_from_strict_comparison() {
        let recorded = epoch_with(vec![sync_event(0, 1), time_event(1, 111)]);
        let observed = epoch_with(vec![sync_event(0, 1), time_event(1, 999)]);
        compare_epochs(&recorded, &observed).unwrap();
    }

    #[test]
    fn other_divergences_are_reported_with_context() {
        let recorded = epoch_with(vec![sync_event(0, 1)]);
        let observed = epoch_with(vec![sync_event(0, 2)]);
        let error = compare_epochs(&recorded, &observed).unwrap_err();
        assert_eq!(error.kind(), crate::ErrorKind::TraceMismatch);
        assert!(error.to_string().contains("thread 0 event 0"), "{error}");

        let observed = epoch_with(vec![sync_event(0, 1), sync_event(1, 1)]);
        let error = compare_epochs(&recorded, &observed).unwrap_err();
        assert!(error.to_string().contains("recorded 1 events, observed 2"), "{error}");

        let mut observed = epoch_with(vec![sync_event(0, 1)]);
        observed.end_heap_hash = 8;
        let error = compare_epochs(&recorded, &observed).unwrap_err();
        assert!(error.to_string().contains("heap image hash"), "{error}");
    }

    #[test]
    fn verifier_tracks_epoch_counts() {
        let mut data = TraceData::new("p".into(), crate::Fingerprint::from_raw(0), 0, 0, Default::default());
        data.epochs.push(epoch_with(vec![]));
        let mut verifier = TraceVerifier::new(data, true);
        verifier.check_epoch(epoch_with(vec![])).unwrap();
        let error = verifier.check_epoch(epoch_with(vec![])).unwrap_err();
        assert_eq!(error.kind(), crate::ErrorKind::TraceMismatch);
    }
}
