//! JSON trace encoding and the minimal JSON engine behind it.
//!
//! The workspace vendors a dependency-free `serde` facade, so this module
//! carries its own small JSON [`Value`] model, pretty writer, and
//! recursive-descent parser.  The dialect is deliberately narrow: integers
//! only (no floats -- every recorded quantity is integral, and floats
//! would make the binary/JSON roundtrip lossy), objects keep their key
//! order, and byte payloads are lower-case hex strings (`contents_hex`,
//! `data_hex`).  Fingerprints render as their sixteen-digit hex `Display`
//! form.
//!
//! The same [`Value`] model backs
//! [`crate::DiagnosticsSnapshot::to_json`], so diagnostics and traces
//! share one serialization surface.

use std::fmt::Write as _;

use ireplayer_log::{Event, EventKind, SyncOp, SyscallOutcome, ThreadId, VarEntry, VarId};
use ireplayer_sys::{OsInputs, PeerScript};

use crate::error::Error;
use crate::fingerprint::Fingerprint;
use crate::trace::{TraceData, TraceEpoch, TraceSummary, TraceThreadLog, TraceVarLog, OLDEST_VERSION, VERSION};

/// The `format` marker naming trace JSON documents.
const FORMAT_MARKER: &str = "ireplayer-trace";

/// A JSON value in the narrow dialect traces use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer; `i128` so the full `u64` and `i64` ranges both fit.
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object.
    fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A required object member, by key.
    fn field(&self, key: &'static str) -> Result<&Value, String> {
        self.get(key).ok_or_else(|| format!("missing key {key:?}"))
    }

    fn as_int(&self, what: &str) -> Result<i128, String> {
        match self {
            Value::Int(value) => Ok(*value),
            other => Err(format!("{what}: expected an integer, got {}", other.kind_name())),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, String> {
        u64::try_from(self.as_int(what)?).map_err(|_| format!("{what}: out of range for u64"))
    }

    fn as_u32(&self, what: &str) -> Result<u32, String> {
        u32::try_from(self.as_int(what)?).map_err(|_| format!("{what}: out of range for u32"))
    }

    fn as_i64(&self, what: &str) -> Result<i64, String> {
        i64::try_from(self.as_int(what)?).map_err(|_| format!("{what}: out of range for i64"))
    }

    fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Value::Str(value) => Ok(value),
            other => Err(format!("{what}: expected a string, got {}", other.kind_name())),
        }
    }

    fn as_bool(&self, what: &str) -> Result<bool, String> {
        match self {
            Value::Bool(value) => Ok(*value),
            other => Err(format!("{what}: expected a boolean, got {}", other.kind_name())),
        }
    }

    fn as_arr(&self, what: &str) -> Result<&[Value], String> {
        match self {
            Value::Arr(items) => Ok(items),
            other => Err(format!("{what}: expected an array, got {}", other.kind_name())),
        }
    }

    fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Int(_) => "an integer",
            Value::Str(_) => "a string",
            Value::Arr(_) => "an array",
            Value::Obj(_) => "an object",
        }
    }

    /// Renders the value as pretty-printed JSON (two-space indent).
    pub(crate) fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, 0);
        out.push('\n');
        out
    }
}

/// Shorthand for building object values in declaration order.
pub(crate) fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn int(value: impl Into<i128>) -> Value {
    Value::Int(value.into())
}

fn usize_int(value: usize) -> Value {
    Value::Int(value as i128)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) if items.is_empty() => out.push_str("[]"),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_value(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Obj(fields) if fields.is_empty() => out.push_str("{}"),
        Value::Obj(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_string(out, key);
                out.push_str(": ");
                write_value(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, text: &str) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Parser { bytes, pos: 0 }
    }

    fn error(&self, message: &str) -> String {
        format!("{message} at byte {}", self.pos)
    }

    fn skip_whitespace(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_whitespace();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() != Some(byte) {
            return Err(self.error(&format!("expected {:?}", byte as char)));
        }
        self.pos += 1;
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(&format!("unexpected character {:?}", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, String> {
        self.skip_whitespace();
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {keyword:?}")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        self.skip_whitespace();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if matches!(self.bytes.get(self.pos), Some(b'.' | b'e' | b'E')) {
            return Err(self.error("floating-point numbers are not part of the trace dialect"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<i128>()
            .map(Value::Int)
            .map_err(|_| self.error("integer out of range"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let byte = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.error("unterminated string"))?;
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let escape = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => out.push(self.parse_unicode_escape()?),
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (the input is validated as
                    // UTF-8 before parsing begins).
                    let text = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let ch = text.chars().next().expect("non-empty by peek");
                    if (ch as u32) < 0x20 {
                        return Err(self.error("unescaped control character in string"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_unicode_escape(&mut self) -> Result<char, String> {
        let first = self.parse_hex4()?;
        let code = if (0xd800..0xdc00).contains(&first) {
            // High surrogate: a low surrogate escape must follow.
            if self.bytes.get(self.pos) != Some(&b'\\') || self.bytes.get(self.pos + 1) != Some(&b'u') {
                return Err(self.error("unpaired surrogate escape"));
            }
            self.pos += 2;
            let second = self.parse_hex4()?;
            if !(0xdc00..0xe000).contains(&second) {
                return Err(self.error("invalid low surrogate"));
            }
            0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00)
        } else {
            first
        };
        char::from_u32(code).ok_or_else(|| self.error("escape is not a scalar value"))
    }

    fn parse_hex4(&mut self) -> Result<u32, String> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let text = std::str::from_utf8(digits).map_err(|_| self.error("invalid \\u escape"))?;
        let value = u32::from_str_radix(text, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(value)
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub(crate) fn parse(bytes: &[u8]) -> Result<Value, String> {
    std::str::from_utf8(bytes).map_err(|_| "trace JSON is not valid UTF-8".to_owned())?;
    let mut parser = Parser::new(bytes);
    let value = parser.parse_value()?;
    if parser.peek().is_some() {
        return Err(parser.error("trailing data after JSON document"));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Hex payloads
// ---------------------------------------------------------------------------

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for byte in bytes {
        let _ = write!(out, "{byte:02x}");
    }
    out
}

fn hex_decode(text: &str, what: &str) -> Result<Vec<u8>, String> {
    if text.len() % 2 != 0 {
        return Err(format!("{what}: odd-length hex string"));
    }
    (0..text.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&text[i..i + 2], 16).map_err(|_| format!("{what}: invalid hex digit")))
        .collect()
}

fn fingerprint_value(fp: Fingerprint) -> Value {
    Value::Str(fp.to_string())
}

fn fingerprint_from(value: &Value, what: &str) -> Result<Fingerprint, String> {
    Fingerprint::parse_hex(value.as_str(what)?).ok_or_else(|| format!("{what}: expected sixteen hex digits"))
}

// ---------------------------------------------------------------------------
// Trace <-> Value
// ---------------------------------------------------------------------------

/// Serializes `data` as pretty-printed trace JSON.
pub(crate) fn encode(data: &TraceData) -> Vec<u8> {
    trace_to_value(data).to_pretty_string().into_bytes()
}

fn trace_to_value(data: &TraceData) -> Value {
    obj(vec![
        ("format", Value::Str(FORMAT_MARKER.to_owned())),
        ("version", int(data.version)),
        ("program", Value::Str(data.program.clone())),
        ("config_fingerprint", fingerprint_value(data.config_fingerprint)),
        ("seed", int(data.seed)),
        ("chaos_digest", int(data.chaos_digest)),
        ("inputs", inputs_to_value(&data.inputs)),
        ("epochs", Value::Arr(data.epochs.iter().map(epoch_to_value).collect())),
        (
            "summary",
            match &data.summary {
                None => Value::Null,
                Some(summary) => summary_to_value(summary),
            },
        ),
    ])
}

fn inputs_to_value(inputs: &OsInputs) -> Value {
    obj(vec![
        (
            "files",
            Value::Arr(
                inputs
                    .files
                    .iter()
                    .map(|(name, contents)| {
                        obj(vec![
                            ("name", Value::Str(name.clone())),
                            ("contents_hex", Value::Str(hex_encode(contents))),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "peers",
            Value::Arr(
                inputs
                    .peers
                    .iter()
                    .map(|(address, script)| {
                        obj(vec![
                            ("address", Value::Str(address.clone())),
                            ("script", script_to_value(script)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "backlog",
            Value::Arr(
                inputs
                    .backlog
                    .iter()
                    .map(|(address, clients)| {
                        obj(vec![
                            ("address", Value::Str(address.clone())),
                            ("clients", usize_int(*clients)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("fd_limit", usize_int(inputs.fd_limit)),
    ])
}

fn script_to_value(script: &PeerScript) -> Value {
    match script {
        PeerScript::Download { seed, total_bytes } => obj(vec![
            ("kind", Value::Str("download".to_owned())),
            ("seed", int(*seed)),
            ("total_bytes", usize_int(*total_bytes)),
        ]),
        PeerScript::Echo { response_len } => obj(vec![
            ("kind", Value::Str("echo".to_owned())),
            ("response_len", usize_int(*response_len)),
        ]),
        PeerScript::Client {
            seed,
            requests,
            request_len,
        } => obj(vec![
            ("kind", Value::Str("client".to_owned())),
            ("seed", int(*seed)),
            ("requests", usize_int(*requests)),
            ("request_len", usize_int(*request_len)),
        ]),
    }
}

fn epoch_to_value(epoch: &TraceEpoch) -> Value {
    obj(vec![
        ("number", int(epoch.number)),
        ("end_heap_hash", int(epoch.end_heap_hash)),
        (
            "threads",
            Value::Arr(
                epoch
                    .threads
                    .iter()
                    .map(|log| {
                        obj(vec![
                            ("thread", int(log.thread)),
                            ("name", Value::Str(log.name.clone())),
                            ("events", Value::Arr(log.events.iter().map(event_to_value).collect())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "vars",
            Value::Arr(
                epoch
                    .vars
                    .iter()
                    .map(|log| {
                        obj(vec![
                            ("var", int(log.var)),
                            ("kind", int(log.kind)),
                            ("parties", int(log.parties)),
                            (
                                "entries",
                                Value::Arr(log.entries.iter().map(var_entry_to_value).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn event_to_value(event: &Event) -> Value {
    let mut fields = vec![("thread", int(event.thread.0)), ("index", int(event.index))];
    match &event.kind {
        EventKind::Sync { var, op, result } => fields.push((
            "sync",
            obj(vec![
                ("var", int(var.0)),
                ("op", int(op.code())),
                ("result", int(*result)),
            ]),
        )),
        EventKind::Syscall { code, outcome } => fields.push((
            "syscall",
            obj(vec![
                ("code", int(*code)),
                ("ret", int(outcome.ret)),
                ("data_hex", Value::Str(hex_encode(&outcome.data))),
            ]),
        )),
    }
    obj(fields)
}

fn var_entry_to_value(entry: &VarEntry) -> Value {
    obj(vec![
        ("thread", int(entry.thread.0)),
        ("op", int(entry.op.code())),
        ("thread_index", int(entry.thread_index)),
    ])
}

fn summary_to_value(summary: &TraceSummary) -> Value {
    obj(vec![
        ("fingerprint", fingerprint_value(summary.fingerprint)),
        ("epochs", int(summary.epochs)),
        ("threads", int(summary.threads)),
        ("final_heap_hash", int(summary.final_heap_hash)),
        ("completed", Value::Bool(summary.completed)),
    ])
}

// ---------------------------------------------------------------------------
// Value -> Trace
// ---------------------------------------------------------------------------

/// Decodes a JSON trace document; `origin` names the source in errors.
///
/// # Errors
///
/// [`ErrorKind::TraceVersion`](crate::ErrorKind) for a foreign version or
/// format marker, [`ErrorKind::TraceIo`](crate::ErrorKind) for malformed
/// JSON or schema violations.
pub(crate) fn decode(bytes: &[u8], origin: &str) -> Result<TraceData, Error> {
    let corrupt = |detail: String| Error::trace_io("decode", origin, detail);
    let root = parse(bytes).map_err(corrupt)?;

    // A well-formed JSON document without the marker is some other JSON
    // file, not a corrupted trace: report it as a format problem.
    let format = match root.field("format").and_then(|v| v.as_str("format").map(str::to_owned)) {
        Ok(format) => format,
        Err(_) => {
            return Err(Error::trace_version(
                format!("JSON without a \"format\" marker in {origin}"),
                VERSION,
            ))
        }
    };
    if format != FORMAT_MARKER {
        return Err(Error::trace_version(
            format!("JSON format {format:?} in {origin}"),
            VERSION,
        ));
    }
    let version = root
        .field("version")
        .and_then(|v| v.as_u32("version"))
        .map_err(corrupt)?;
    // The JSON schema is identical across the supported versions (only the
    // binary order-log framing changed in version 3), so decoding just
    // records the stamp; re-encoding to binary uses the version's framing.
    if !(OLDEST_VERSION..=VERSION).contains(&version) {
        return Err(Error::trace_version(
            format!("JSON version {version} in {origin}"),
            VERSION,
        ));
    }

    trace_from_value(&root, version).map_err(corrupt)
}

fn trace_from_value(root: &Value, version: u32) -> Result<TraceData, String> {
    let program = root.field("program")?.as_str("program")?.to_owned();
    let config_fingerprint = fingerprint_from(root.field("config_fingerprint")?, "config_fingerprint")?;
    let seed = root.field("seed")?.as_u64("seed")?;
    let chaos_digest = root.field("chaos_digest")?.as_u64("chaos_digest")?;
    let inputs = inputs_from_value(root.field("inputs")?)?;
    let epochs = root
        .field("epochs")?
        .as_arr("epochs")?
        .iter()
        .map(epoch_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    let summary = match root.field("summary")? {
        Value::Null => None,
        value => Some(summary_from_value(value)?),
    };
    Ok(TraceData {
        version,
        program,
        config_fingerprint,
        seed,
        chaos_digest,
        epochs,
        inputs,
        summary,
    })
}

fn inputs_from_value(value: &Value) -> Result<OsInputs, String> {
    let mut inputs = OsInputs::default();
    for file in value.field("files")?.as_arr("files")? {
        let name = file.field("name")?.as_str("file name")?.to_owned();
        let contents = hex_decode(file.field("contents_hex")?.as_str("contents_hex")?, "contents_hex")?;
        inputs.files.push((name, contents));
    }
    for peer in value.field("peers")?.as_arr("peers")? {
        let address = peer.field("address")?.as_str("peer address")?.to_owned();
        inputs.peers.push((address, script_from_value(peer.field("script")?)?));
    }
    for entry in value.field("backlog")?.as_arr("backlog")? {
        let address = entry.field("address")?.as_str("backlog address")?.to_owned();
        let clients = entry.field("clients")?.as_u64("backlog clients")? as usize;
        inputs.backlog.push((address, clients));
    }
    inputs.fd_limit = value.field("fd_limit")?.as_u64("fd_limit")? as usize;
    Ok(inputs)
}

fn script_from_value(value: &Value) -> Result<PeerScript, String> {
    match value.field("kind")?.as_str("script kind")? {
        "download" => Ok(PeerScript::Download {
            seed: value.field("seed")?.as_u64("download seed")?,
            total_bytes: value.field("total_bytes")?.as_u64("total_bytes")? as usize,
        }),
        "echo" => Ok(PeerScript::Echo {
            response_len: value.field("response_len")?.as_u64("response_len")? as usize,
        }),
        "client" => Ok(PeerScript::Client {
            seed: value.field("seed")?.as_u64("client seed")?,
            requests: value.field("requests")?.as_u64("requests")? as usize,
            request_len: value.field("request_len")?.as_u64("request_len")? as usize,
        }),
        other => Err(format!("unknown peer script kind {other:?}")),
    }
}

fn epoch_from_value(value: &Value) -> Result<TraceEpoch, String> {
    let number = value.field("number")?.as_u64("epoch number")?;
    let end_heap_hash = value.field("end_heap_hash")?.as_u64("end_heap_hash")?;
    let threads = value
        .field("threads")?
        .as_arr("threads")?
        .iter()
        .map(thread_log_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    let vars = value
        .field("vars")?
        .as_arr("vars")?
        .iter()
        .map(var_log_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(TraceEpoch {
        number,
        end_heap_hash,
        threads,
        vars,
    })
}

fn thread_log_from_value(value: &Value) -> Result<TraceThreadLog, String> {
    let thread = value.field("thread")?.as_u32("thread id")?;
    let name = value.field("name")?.as_str("thread name")?.to_owned();
    let events = value
        .field("events")?
        .as_arr("events")?
        .iter()
        .map(event_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(TraceThreadLog { thread, name, events })
}

fn event_from_value(value: &Value) -> Result<Event, String> {
    let thread = ThreadId(value.field("thread")?.as_u32("event thread")?);
    let index = value.field("index")?.as_u32("event index")?;
    let kind = if let Some(sync) = value.get("sync") {
        let var = VarId(sync.field("var")?.as_u32("sync var")?);
        let code =
            u8::try_from(sync.field("op")?.as_int("sync op")?).map_err(|_| "sync op: out of range".to_owned())?;
        let op = SyncOp::from_code(code).ok_or_else(|| format!("unknown sync op code {code}"))?;
        let result = sync.field("result")?.as_i64("sync result")?;
        EventKind::Sync { var, op, result }
    } else if let Some(syscall) = value.get("syscall") {
        let code = u16::try_from(syscall.field("code")?.as_int("syscall code")?)
            .map_err(|_| "syscall code: out of range".to_owned())?;
        let ret = syscall.field("ret")?.as_i64("syscall ret")?;
        let data = hex_decode(syscall.field("data_hex")?.as_str("data_hex")?, "data_hex")?;
        EventKind::Syscall {
            code,
            outcome: SyscallOutcome { ret, data },
        }
    } else {
        return Err("event has neither \"sync\" nor \"syscall\"".to_owned());
    };
    Ok(Event { thread, index, kind })
}

fn var_log_from_value(value: &Value) -> Result<TraceVarLog, String> {
    let var = value.field("var")?.as_u32("var id")?;
    let kind =
        u8::try_from(value.field("kind")?.as_int("var kind")?).map_err(|_| "var kind: out of range".to_owned())?;
    let parties = value.field("parties")?.as_u32("barrier parties")?;
    let entries = value
        .field("entries")?
        .as_arr("entries")?
        .iter()
        .map(var_entry_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(TraceVarLog {
        var,
        kind,
        parties,
        entries,
    })
}

fn var_entry_from_value(value: &Value) -> Result<VarEntry, String> {
    let thread = ThreadId(value.field("thread")?.as_u32("entry thread")?);
    let code = u8::try_from(value.field("op")?.as_int("entry op")?).map_err(|_| "entry op: out of range".to_owned())?;
    let op = SyncOp::from_code(code).ok_or_else(|| format!("unknown sync op code {code}"))?;
    let thread_index = value.field("thread_index")?.as_u32("entry thread index")?;
    Ok(VarEntry {
        thread,
        op,
        thread_index,
    })
}

fn summary_from_value(value: &Value) -> Result<TraceSummary, String> {
    Ok(TraceSummary {
        fingerprint: fingerprint_from(value.field("fingerprint")?, "summary fingerprint")?,
        epochs: value.field("epochs")?.as_u64("summary epochs")?,
        threads: value.field("threads")?.as_u32("summary threads")?,
        final_heap_hash: value.field("final_heap_hash")?.as_u64("final_heap_hash")?,
        completed: value.field("completed")?.as_bool("completed")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::tests::sample_data;
    use crate::ErrorKind;

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let value = parse(br#"{"a": [1, -2, "x\u00e9\n\"\\", true, null], "b": {}}"#).unwrap();
        let items = value.field("a").unwrap().as_arr("a").unwrap();
        assert_eq!(items[0], Value::Int(1));
        assert_eq!(items[1], Value::Int(-2));
        assert_eq!(items[2], Value::Str("xé\n\"\\".to_owned()));
        assert_eq!(items[3], Value::Bool(true));
        assert_eq!(items[4], Value::Null);
        assert_eq!(value.field("b").unwrap(), &Value::Obj(Vec::new()));
    }

    #[test]
    fn parser_handles_surrogate_pairs() {
        let value = parse(br#""\ud83e\udd80""#).unwrap();
        assert_eq!(value, Value::Str("🦀".to_owned()));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            &b"{"[..],
            b"[1, 2",
            b"1.5",
            b"1e3",
            b"\"unterminated",
            b"{\"a\": }",
            b"[1] trailing",
            b"\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "{:?}", String::from_utf8_lossy(bad));
        }
    }

    #[test]
    fn writer_output_reparses_identically() {
        let data = sample_data();
        let value = trace_to_value(&data);
        let text = value.to_pretty_string();
        assert_eq!(parse(text.as_bytes()).unwrap(), value);
    }

    #[test]
    fn schema_violations_are_typed_errors() {
        let error = decode(b"{\"format\": \"ireplayer-trace\"}", "test").unwrap_err();
        assert_eq!(error.kind(), ErrorKind::TraceIo);
        assert!(error.to_string().contains("version"), "{error}");

        let error = decode(b"{\"format\": \"something-else\", \"version\": 2}", "test").unwrap_err();
        assert_eq!(error.kind(), ErrorKind::TraceVersion);

        let error = decode(b"{\"format\": \"ireplayer-trace\", \"version\": 99}", "test").unwrap_err();
        assert_eq!(error.kind(), ErrorKind::TraceVersion);
        assert!(error.to_string().contains("version 99"), "{error}");

        let error = decode(b"{\"format\": \"ireplayer-trace\", \"version\": 1}", "test").unwrap_err();
        assert_eq!(error.kind(), ErrorKind::TraceVersion);
    }

    #[test]
    fn supported_versions_share_one_schema() {
        // The same document decodes at both supported version stamps; only
        // the recorded version differs.
        for version in [OLDEST_VERSION, VERSION] {
            let mut data = sample_data();
            data.version = version;
            let decoded = decode(&encode(&data), "test").unwrap();
            assert_eq!(decoded, data);
        }
    }

    #[test]
    fn hex_payloads_roundtrip() {
        assert_eq!(hex_encode(&[0, 15, 255]), "000fff");
        assert_eq!(hex_decode("000fff", "t").unwrap(), vec![0, 15, 255]);
        assert!(hex_decode("0g", "t").is_err());
        assert!(hex_decode("abc", "t").is_err());
    }
}
