//! Typed run and configuration fingerprints.
//!
//! A [`Fingerprint`] is a 64-bit FNV-1a digest with a stable rendering:
//! `Display` prints the sixteen-digit lower-case hex form, which is also the
//! encoding used inside JSON traces, and the binary trace format stores the
//! raw little-endian value.  Replacing the former bare `u64` with a newtype
//! keeps report digests, trace headers, and config identities from being
//! compared across kinds by accident.

use std::fmt;

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` with 64-bit FNV-1a.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A stable 64-bit digest identifying a deterministic execution (or the
/// deterministic portion of a [`crate::Config`]).
///
/// Two runs of the same program under the same configuration and seed
/// produce equal fingerprints; a trace records the fingerprint of the run
/// that produced it, and [`crate::Runtime::replay_trace`] proves
/// byte-identical reproduction by recomputing it from a fresh execution.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// Wraps a raw digest value (e.g. one decoded from a trace file).
    pub fn from_raw(value: u64) -> Self {
        Fingerprint(value)
    }

    /// The raw 64-bit digest.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Digest of the `Debug` rendering of `value`.  The rendering of the
    /// hashed types is part of the trace format's compatibility surface.
    pub(crate) fn of_debug<T: fmt::Debug>(value: &T) -> Self {
        Fingerprint(fnv1a(format!("{value:?}").as_bytes()))
    }

    /// Parses the sixteen-digit hex form produced by `Display`.
    pub(crate) fn parse_hex(text: &str) -> Option<Self> {
        if text.len() != 16 {
            return None;
        }
        u64::from_str_radix(text, 16).ok().map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl fmt::Debug for Fingerprint {
    /// Prints the hex form so assertion failures are readable.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_sixteen_hex_digits() {
        let fp = Fingerprint::from_raw(0x1a2b);
        assert_eq!(fp.to_string(), "0000000000001a2b");
        assert_eq!(Fingerprint::parse_hex(&fp.to_string()), Some(fp));
        assert_eq!(format!("{fp:?}"), "Fingerprint(0000000000001a2b)");
    }

    #[test]
    fn parse_rejects_malformed_text() {
        assert_eq!(Fingerprint::parse_hex("xyz"), None);
        assert_eq!(Fingerprint::parse_hex("1a2b"), None);
        assert_eq!(Fingerprint::parse_hex("zzzzzzzzzzzzzzzz"), None);
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a("a") from the reference implementation.
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b""), FNV_OFFSET);
    }

    #[test]
    fn of_debug_is_stable_per_value() {
        assert_eq!(Fingerprint::of_debug(&(1, "x")), Fingerprint::of_debug(&(1, "x")));
        assert_ne!(Fingerprint::of_debug(&(1, "x")), Fingerprint::of_debug(&(2, "x")));
    }
}
