//! System-call dispatch helpers implementing the record/replay policy of
//! each classification (paper §2.2.3).
//!
//! * **Repeatable** calls execute directly in every phase.
//! * **Recordable** calls execute and have their outcome logged during
//!   recording; during replay the logged outcome is returned without
//!   executing the call.
//! * **Revocable** calls execute in every phase; a marker event is logged so
//!   that divergence checking covers them, and the file positions restored
//!   at rollback make the re-issued call return the same data.
//! * **Deferrable** calls are queued and issued at the next epoch begin; a
//!   marker event is logged.
//! * **Irrevocable** calls execute, taint the current epoch (it can no
//!   longer be replayed) and schedule an epoch end.

use ireplayer_log::{EventKind, SyscallOutcome};
use ireplayer_sys::SyscallKind;

use crate::state::{DeferredOp, EpochEndReason, RtInner, VThread};
use crate::stats::Counters;
use crate::sync::{mark_dirty, record_thread_event, replay_advance_thread, replay_expect};

/// Records the outcome of a recordable call (or the marker of a revocable /
/// deferrable call).
pub(crate) fn record_syscall(rt: &RtInner, vt: &VThread, kind: SyscallKind, outcome: SyscallOutcome) {
    record_thread_event(
        rt,
        vt,
        EventKind::Syscall {
            code: kind.code(),
            outcome,
        },
    );
}

/// During replay, verifies that the next recorded event of the thread is
/// this system call and returns the recorded outcome.
pub(crate) fn replay_syscall(rt: &RtInner, vt: &VThread, kind: SyscallKind) -> SyscallOutcome {
    let actual = EventKind::Syscall {
        code: kind.code(),
        outcome: SyscallOutcome::default(),
    };
    // `replay_expect` validates the operation; the full outcome (which may
    // carry data) is then cloned from the event under the cursor.
    replay_expect(rt, vt, &actual);
    let outcome = {
        let list = vt.list.lock();
        match list.peek() {
            Some(event) => match &event.kind {
                EventKind::Syscall { outcome, .. } => outcome.clone(),
                _ => SyscallOutcome::default(),
            },
            None => SyscallOutcome::default(),
        }
    };
    replay_advance_thread(vt);
    outcome
}

/// Marks the beginning of a system call: bumps counters, marks the step
/// dirty, and notifies the instrumentation baseline if one is installed.
pub(crate) fn syscall_prologue(rt: &RtInner, vt: &VThread) {
    mark_dirty(vt);
    Counters::bump(&rt.counters.syscalls);
}

/// Queues a deferrable operation for the next epoch begin.
pub(crate) fn defer(rt: &RtInner, op: DeferredOp) {
    rt.epoch.lock().deferred.push(op);
}

/// Handles an irrevocable call: taints the epoch and schedules an epoch end
/// so that a fresh, replayable epoch starts as soon as the world reaches
/// quiescence.
pub(crate) fn irrevocable(rt: &RtInner, name: &'static str) {
    rt.epoch.lock().tainted_by = Some(name);
    rt.request_epoch_end(EpochEndReason::Irrevocable);
}
