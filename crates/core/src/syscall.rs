//! System-call dispatch helpers implementing the record/replay policy of
//! each classification (paper §2.2.3).
//!
//! * **Repeatable** calls execute directly in every phase.
//! * **Recordable** calls execute and have their outcome logged during
//!   recording; during replay the logged outcome is returned without
//!   executing the call.
//! * **Revocable** calls execute in every phase; a marker event is logged so
//!   that divergence checking covers them, and the file positions restored
//!   at rollback make the re-issued call return the same data.
//! * **Deferrable** calls are queued and issued at the next epoch begin; a
//!   marker event is logged.
//! * **Irrevocable** calls execute, taint the current epoch (it can no
//!   longer be replayed) and schedule an epoch end.
//!
//! Recording goes through the lock-free [`RecordSink`]; the phase is
//! selected once per call by the callers in [`crate::context`].

use ireplayer_log::{EventKind, SyscallOutcome};
use ireplayer_sys::SyscallKind;

use crate::sink::RecordSink;
use crate::state::{DeferredOp, EpochEndReason, RtInner, VThread};
use crate::stats::Counters;
use crate::sync::{mark_dirty, replay_advance_thread, replay_expect_event};

/// Records the outcome of a recordable call (or the marker of a revocable /
/// deferrable call).  Lock-free.
pub(crate) fn record_syscall(rt: &RtInner, vt: &VThread, kind: SyscallKind, outcome: SyscallOutcome) {
    RecordSink::new(rt, vt).syscall(kind, outcome);
}

/// During replay, verifies that the next recorded event of the thread is
/// this system call and returns the recorded outcome.
pub(crate) fn replay_syscall(rt: &RtInner, vt: &VThread, kind: SyscallKind) -> SyscallOutcome {
    let actual = EventKind::Syscall {
        code: kind.code(),
        outcome: SyscallOutcome::default(),
    };
    // `replay_expect_event` validates the operation and hands back the one
    // copy of the event, whose outcome may carry data.
    let event = replay_expect_event(rt, vt, &actual);
    let outcome = match event.kind {
        EventKind::Syscall { outcome, .. } => outcome,
        _ => SyscallOutcome::default(),
    };
    replay_advance_thread(vt);
    outcome
}

/// Marks the beginning of a system call: bumps counters, marks the step
/// dirty, and notifies the instrumentation baseline if one is installed.
pub(crate) fn syscall_prologue(rt: &RtInner, vt: &VThread) {
    mark_dirty(vt);
    Counters::bump(&rt.counters.syscalls);
}

/// Queues a deferrable operation for the next epoch begin.
pub(crate) fn defer(rt: &RtInner, op: DeferredOp) {
    rt.epoch.lock().deferred.push(op);
}

/// Handles an irrevocable call: taints the epoch and schedules an epoch end
/// so that a fresh, replayable epoch starts as soon as the world reaches
/// quiescence.
pub(crate) fn irrevocable(rt: &RtInner, name: &'static str) {
    rt.taint(name);
    rt.request_epoch_end(EpochEndReason::Irrevocable);
}
