//! Runtime configuration.

use std::path::PathBuf;

use ireplayer_sys::{ChaosPlan, ChaosPlanError};
use serde::{Deserialize, Serialize};

use crate::error::Error;
use crate::fingerprint::Fingerprint;
use crate::trace::TraceFormat;

/// How the runtime treats the execution.
///
/// Marked `#[non_exhaustive]`: further modes (e.g. always-on replay
/// validation) may be added; downstream matches must keep a wildcard arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum RunMode {
    /// No recording at all: synchronization and system calls execute
    /// directly.  Replay is unavailable.  This is the "IR-Alloc"
    /// configuration of Table 3 (the custom allocator without recording)
    /// and, combined with [`AllocatorMode::GlobalLock`], the plain baseline.
    Passthrough,
    /// Record synchronization order and system-call results, enabling
    /// rollback and identical replay of the last epoch.  This is the full
    /// iReplayer configuration.
    Record,
}

/// Which allocator serves application allocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocatorMode {
    /// The paper's deterministic per-thread heap (§2.2.4): identical layout
    /// across re-executions, no lock per allocation.
    PerThread,
    /// A single heap shared by all threads behind one lock, imitating a
    /// default `malloc`: layout depends on scheduling, so re-executions see
    /// different addresses.  Used for the "Orig" column of Table 1 and the
    /// baseline of Table 3.
    GlobalLock,
}

/// What the runtime does when an application fault is detected.
///
/// Marked `#[non_exhaustive]`: further policies (e.g. replay-and-continue)
/// may be added; downstream matches must keep a wildcard arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FaultPolicy {
    /// Roll back and replay the last epoch so that tools (watchpoints,
    /// detectors, the interactive debugger) can diagnose the fault, then
    /// terminate with a report.
    DiagnoseAndReport,
    /// Terminate immediately with a report, without replaying.
    ReportOnly,
}

/// Configuration of a [`crate::Runtime`], built with
/// [`Config::builder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Recording mode.
    pub mode: RunMode,
    /// Allocator used for application allocations.
    pub allocator: AllocatorMode,
    /// Number of arena partitions, i.e. the number of **simultaneous**
    /// sessions one [`crate::Runtime`] can drive.  Each partition gets its
    /// own `arena_size` bytes of the shared backing allocation, its own
    /// simulated-OS namespace, its own sync table, and its own warm pools,
    /// so tenants never share mutable state.  The default of 1 is the
    /// classic single-tenant runtime.
    pub partitions: usize,
    /// Size of the managed arena in bytes, **per partition**.
    pub arena_size: usize,
    /// Bytes reserved at the start of the arena for managed globals.
    pub globals_size: usize,
    /// Size of a super-heap block.
    pub heap_block_size: u64,
    /// Soft limit on recorded events per thread per epoch; reaching it
    /// schedules an epoch end.
    pub events_per_thread: usize,
    /// Plant canaries after every allocation (used by the overflow
    /// detector).
    pub canaries: bool,
    /// Quarantine budget in bytes for freed objects (0 disables the
    /// quarantine; used by the use-after-free detector).
    pub quarantine_bytes: usize,
    /// Maximum number of replay attempts when searching for a matching
    /// schedule (the paper supports an unlimited number; a bound keeps
    /// pathological tests finite).
    pub max_replay_attempts: u32,
    /// Upper bound, in microseconds, of the random delays inserted at
    /// diverging points on later replay attempts.
    pub max_divergence_delay_us: u64,
    /// How faults are handled.
    pub fault_policy: FaultPolicy,
    /// Seed for the runtime's deterministic random sources (per-thread
    /// application RNGs and divergence delays).
    pub seed: u64,
    /// Time budget for reaching step-boundary quiescence before reporting a
    /// bounded-step violation, in milliseconds.
    pub quiescence_timeout_ms: u64,
    /// Validate the final heap image of a matching replay against the image
    /// recorded at the end of the original epoch (the §5.2 validation).
    pub validate_replay_image: bool,
    /// When `true`, a diagnostic replay that can never match -- the fault
    /// happened in an epoch tainted by an irrevocable system call, or every
    /// attempt within `max_replay_attempts` diverged -- surfaces
    /// [`ErrorKind::ReplayBudgetExhausted`](crate::ErrorKind) from
    /// [`crate::Session::wait`] instead of silently reporting an unmatched
    /// validation.  Off by default: racy programs legitimately exhaust
    /// their budget sometimes, and the report alone is the right surface
    /// for exploratory runs.
    pub strict_replay_budget: bool,
    /// Per-tenant quota: the maximum number of **epochs** one session may
    /// execute (0 = unlimited, the default).  Enforced at each epoch close:
    /// a session whose program still wants to run after consuming its last
    /// budgeted epoch ends with
    /// [`ErrorKind::QuotaExhausted`](crate::ErrorKind) from
    /// [`crate::Session::wait`]; a
    /// [`SessionEvent::QuotaWarning`](crate::SessionEvent) is emitted once
    /// the session has consumed three quarters of the quota.  A session
    /// that *finishes* during its final budgeted epoch completes normally.
    ///
    /// # Example
    ///
    /// ```
    /// use ireplayer::{Config, ErrorKind, Program, Runtime, Step};
    ///
    /// # fn main() -> Result<(), ireplayer::Error> {
    /// let config = Config::builder()
    ///     .arena_size(4 << 20)
    ///     .heap_block_size(128 << 10)
    ///     .max_epochs(3)
    ///     .build()?;
    /// let runtime = Runtime::new(config)?;
    /// // A greedy tenant that asks for a new epoch on every step runs its
    /// // three budgeted epochs, then is cut off at the next epoch close.
    /// let error = runtime
    ///     .run(Program::new("greedy", |ctx| {
    ///         ctx.end_epoch();
    ///         Step::Yield
    ///     }))
    ///     .unwrap_err();
    /// assert_eq!(error.kind(), ErrorKind::QuotaExhausted);
    /// assert_eq!(error.quota_usage(), Some(("epochs", 3, 3)));
    /// // The teardown was orderly: the runtime stays launchable.
    /// let report = runtime.run(Program::new("frugal", |_| Step::Done))?;
    /// assert!(report.outcome.is_success());
    /// # Ok(())
    /// # }
    /// ```
    pub max_epochs: u64,
    /// Per-tenant quota: the maximum number of **recorded events** (summed
    /// over every thread's per-thread log, accumulated across epochs) one
    /// session may produce (0 = unlimited, the default).  Like
    /// [`Config::max_epochs`] it is enforced at each epoch close with
    /// [`ErrorKind::QuotaExhausted`](crate::ErrorKind), after a
    /// [`SessionEvent::QuotaWarning`](crate::SessionEvent) at three
    /// quarters of the quota.
    ///
    /// # Example
    ///
    /// ```
    /// use ireplayer::{Config, ErrorKind, Program, Runtime, Step};
    ///
    /// # fn main() -> Result<(), ireplayer::Error> {
    /// let config = Config::builder()
    ///     .arena_size(4 << 20)
    ///     .heap_block_size(128 << 10)
    ///     .max_events(64)
    ///     .build()?;
    /// let runtime = Runtime::new(config)?;
    /// // An event-heavy tenant (every lock/unlock is a recorded event)
    /// // exhausts a 64-event budget long before it finishes.
    /// let error = runtime
    ///     .run(Program::new("chatty", |ctx| {
    ///         let lock = ctx.mutex();
    ///         for _ in 0..16 {
    ///             ctx.lock(lock);
    ///             ctx.unlock(lock);
    ///         }
    ///         ctx.end_epoch();
    ///         Step::Yield
    ///     }))
    ///     .unwrap_err();
    /// assert_eq!(error.kind(), ErrorKind::QuotaExhausted);
    /// let (resource, used, limit) = error.quota_usage().unwrap();
    /// assert_eq!((resource, limit), ("events", 64));
    /// assert!(used >= 64);
    /// # Ok(())
    /// # }
    /// ```
    pub max_events: u64,
    /// Bound on the **admission queue**: how many launches may wait for a
    /// partition when every partition is busy.  While the queue has room,
    /// [`crate::Runtime::launch`] on a fully occupied runtime *queues* the
    /// program (FIFO) instead of failing; once `admission_queue_depth`
    /// launches are already waiting, further launches are refused with
    /// [`ErrorKind::SessionActive`](crate::ErrorKind).  Set to 0 to restore
    /// the pre-scheduler behaviour where a full runtime refuses launches
    /// immediately.  [`crate::Runtime::try_launch`] never queues regardless
    /// of this setting.
    pub admission_queue_depth: usize,
    /// Durable recording sink: when set, every launch streams its epochs to
    /// this trace file as they close, so the recording survives the process
    /// (see [`crate::Trace`]).  The file is rewritten atomically at each
    /// epoch close; a run that crashes mid-epoch leaves the trace of every
    /// *closed* epoch on disk.  Requires [`RunMode::Record`] and a
    /// single-partition runtime (concurrent sessions would race on the one
    /// sink path).  `None` (the default) keeps recordings in-memory only.
    pub record_to: Option<PathBuf>,
    /// On-disk encoding used by [`Config::record_to`]: compact binary by
    /// default, or JSON for human inspection.  Ignored when `record_to` is
    /// `None`.
    pub trace_format: TraceFormat,
    /// Deterministic fault-injection plan, compiled with
    /// [`ChaosPlan::compile`] and applied at the simulated-OS call boundary
    /// of **every** partition (each partition runs its own engine with
    /// independent counters, so plans are isolated per session while solo
    /// and multi-tenant runs of the same program stay byte-identical).
    /// Injected outcomes are recorded like any other system-call
    /// nondeterminism, so a chaos run replays fingerprint-identically; the
    /// plan's digest joins [`Config::fingerprint`] and travels in durable
    /// traces, which refuse to replay under a different plan.  `None` (the
    /// default) disables injection entirely.
    ///
    /// # Example
    ///
    /// ```
    /// use ireplayer::{ChaosPlan, ChaosProfile, Config, Program, Runtime, Step};
    ///
    /// # fn main() -> Result<(), ireplayer::Error> {
    /// let plan = ChaosPlan::compile(42, ChaosProfile::light());
    /// let config = Config::builder()
    ///     .arena_size(4 << 20)
    ///     .heap_block_size(128 << 10)
    ///     .chaos(plan)
    ///     .build()?;
    /// let runtime = Runtime::new(config)?;
    /// // The clock-jump class fires on recorded time readings; everything
    /// // stays deterministic, so the run completes normally.
    /// let report = runtime.run(Program::new("steady", |ctx| {
    ///     let _ = ctx.now_ns();
    ///     Step::Done
    /// }))?;
    /// assert!(report.outcome.is_success());
    /// # Ok(())
    /// # }
    /// ```
    pub chaos: Option<ChaosPlan>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            mode: RunMode::Record,
            allocator: AllocatorMode::PerThread,
            partitions: 1,
            arena_size: 64 << 20,
            globals_size: 64 << 10,
            heap_block_size: 1 << 20,
            events_per_thread: 1 << 16,
            canaries: false,
            quarantine_bytes: 0,
            max_replay_attempts: 64,
            max_divergence_delay_us: 500,
            fault_policy: FaultPolicy::DiagnoseAndReport,
            seed: 0x5eed_2018,
            quiescence_timeout_ms: 30_000,
            validate_replay_image: true,
            strict_replay_budget: false,
            max_epochs: 0,
            max_events: 0,
            admission_queue_depth: 64,
            record_to: None,
            trace_format: TraceFormat::Binary,
            chaos: None,
        }
    }
}

impl Config {
    /// Starts building a configuration from the defaults.
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder {
            config: Config::default(),
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns an [`ErrorKind::InvalidConfig`](crate::ErrorKind) error
    /// naming the offending field and the rejected value if sizes are
    /// inconsistent (for example a globals region larger than the arena).
    pub fn validate(&self) -> Result<(), Error> {
        if self.partitions == 0 {
            return Err(Error::invalid_config(
                "partitions",
                self.partitions,
                "at least one arena partition is required",
            ));
        }
        if self.partitions > 256 {
            return Err(Error::invalid_config(
                "partitions",
                self.partitions,
                "more than 256 partitions is almost certainly a misconfiguration",
            ));
        }
        if self.arena_size.checked_mul(self.partitions).is_none() {
            return Err(Error::invalid_config(
                "partitions",
                self.partitions,
                "arena_size * partitions overflows the address space",
            ));
        }
        if self.arena_size < (1 << 16) {
            return Err(Error::invalid_config(
                "arena_size",
                self.arena_size,
                "the arena must be at least 65536 bytes (64 KiB)",
            ));
        }
        if self.globals_size >= self.arena_size {
            return Err(Error::invalid_config(
                "globals_size",
                self.globals_size,
                "the globals region must fit inside arena_size",
            ));
        }
        if self.globals_size + (self.heap_block_size as usize) > self.arena_size {
            return Err(Error::invalid_config(
                "heap_block_size",
                self.heap_block_size,
                "globals_size plus one heap block must fit inside arena_size",
            ));
        }
        if self.events_per_thread == 0 {
            return Err(Error::invalid_config(
                "events_per_thread",
                self.events_per_thread,
                "at least one recorded event per thread per epoch is required",
            ));
        }
        if self.max_replay_attempts == 0 {
            return Err(Error::invalid_config(
                "max_replay_attempts",
                self.max_replay_attempts,
                "at least one replay attempt is required",
            ));
        }
        if self.quiescence_timeout_ms == 0 {
            return Err(Error::invalid_config(
                "quiescence_timeout_ms",
                self.quiescence_timeout_ms,
                "a zero timeout would report every run as a bounded-step violation",
            ));
        }
        if self.admission_queue_depth > 65_536 {
            return Err(Error::invalid_config(
                "admission_queue_depth",
                self.admission_queue_depth,
                "more than 65536 queued launches is almost certainly a misconfiguration",
            ));
        }
        if let Some(path) = &self.record_to {
            if self.mode != RunMode::Record {
                return Err(Error::invalid_config(
                    "record_to",
                    path.display(),
                    "durable recording requires RunMode::Record",
                ));
            }
            if self.partitions != 1 {
                return Err(Error::invalid_config(
                    "record_to",
                    path.display(),
                    "durable recording requires a single-partition runtime (concurrent sessions would race on one sink path)",
                ));
            }
            if path.as_os_str().is_empty() {
                return Err(Error::invalid_config(
                    "record_to",
                    path.display(),
                    "the trace path must not be empty",
                ));
            }
            let parent = path.parent().filter(|p| !p.as_os_str().is_empty());
            if let Some(parent) = parent {
                if !parent.is_dir() {
                    return Err(Error::invalid_config(
                        "record_to",
                        path.display(),
                        "the trace path's parent directory does not exist",
                    ));
                }
            }
            if path.is_dir() {
                return Err(Error::invalid_config(
                    "record_to",
                    path.display(),
                    "the trace path names a directory, not a file",
                ));
            }
        }
        if let Some(plan) = &self.chaos {
            match plan.verify() {
                Ok(()) => {}
                Err(ChaosPlanError::ZeroIntensitySchedule { class }) => {
                    return Err(Error::invalid_config(
                        "chaos",
                        format!("class {class} of the plan for seed {}", plan.seed),
                        "a zero-intensity class carries a non-empty schedule; rebuild the plan with ChaosPlan::compile",
                    ));
                }
                Err(ChaosPlanError::SeedProfileMismatch { class }) => {
                    return Err(Error::invalid_config(
                        "chaos",
                        format!("class {class} of the plan for seed {}", plan.seed),
                        "a class schedule disagrees with compile(seed, profile); the plan was edited after compilation",
                    ));
                }
            }
        }
        Ok(())
    }

    /// A digest over the configuration fields that determine execution:
    /// mode, allocator, sizes, quotas, and the seed -- everything except
    /// deployment knobs (partition count, queue depth, timeouts, the trace
    /// sink itself).  A trace stores this fingerprint so
    /// [`crate::Trace::open`] and [`crate::Runtime::replay_trace`] can
    /// refuse to replay a recording against a runtime whose configuration
    /// would execute the program differently.
    pub fn fingerprint(&self) -> Fingerprint {
        let deterministic = (
            (&self.mode, &self.allocator, &self.fault_policy),
            (
                self.arena_size,
                self.globals_size,
                self.heap_block_size,
                self.events_per_thread,
            ),
            (self.canaries, self.quarantine_bytes, self.seed),
            (
                self.max_replay_attempts,
                self.max_divergence_delay_us,
                self.validate_replay_image,
                self.max_epochs,
                self.max_events,
            ),
            // The chaos plan shapes every injected outcome, so it is an
            // execution knob; its digest covers seed, profile, and schedule.
            self.chaos.as_ref().map(|plan| plan.digest()),
        );
        Fingerprint::of_debug(&deterministic)
    }
}

/// Builder for [`Config`].
///
/// # Example
///
/// ```
/// use ireplayer::{AllocatorMode, Config, RunMode};
///
/// let config = Config::builder()
///     .mode(RunMode::Record)
///     .allocator(AllocatorMode::PerThread)
///     .arena_size(16 << 20)
///     .canaries(true)
///     .build()
///     .unwrap();
/// assert!(config.canaries);
/// ```
#[derive(Debug, Clone)]
pub struct ConfigBuilder {
    config: Config,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(mut self, value: $ty) -> Self {
                self.config.$name = value;
                self
            }
        )*
    };
}

impl ConfigBuilder {
    builder_setters! {
        /// Sets the recording mode.
        mode: RunMode,
        /// Sets the allocator.
        allocator: AllocatorMode,
        /// Sets the number of arena partitions (simultaneous sessions).
        partitions: usize,
        /// Sets the arena size in bytes (per partition).
        arena_size: usize,
        /// Sets the managed-globals region size in bytes.
        globals_size: usize,
        /// Sets the super-heap block size in bytes.
        heap_block_size: u64,
        /// Sets the per-thread event soft limit.
        events_per_thread: usize,
        /// Enables or disables allocation canaries.
        canaries: bool,
        /// Sets the quarantine budget in bytes (0 disables it).
        quarantine_bytes: usize,
        /// Sets the maximum number of replay attempts.
        max_replay_attempts: u32,
        /// Sets the maximum divergence delay in microseconds.
        max_divergence_delay_us: u64,
        /// Sets the fault policy.
        fault_policy: FaultPolicy,
        /// Sets the deterministic seed.
        seed: u64,
        /// Sets the quiescence timeout in milliseconds.
        quiescence_timeout_ms: u64,
        /// Enables or disables final-image validation of matching replays.
        validate_replay_image: bool,
        /// Makes an exhausted diagnostic-replay budget a hard error.
        strict_replay_budget: bool,
        /// Sets the per-tenant epoch quota (0 = unlimited).
        max_epochs: u64,
        /// Sets the per-tenant recorded-event quota (0 = unlimited).
        max_events: u64,
        /// Sets the admission-queue bound (0 = refuse when full).
        admission_queue_depth: usize,
        /// Sets the on-disk encoding used by the durable recording sink.
        trace_format: TraceFormat,
    }

    /// Streams every launch's epochs durably to `path` as they close (see
    /// [`Config::record_to`]).
    pub fn record_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.record_to = Some(path.into());
        self
    }

    /// Installs a deterministic fault-injection plan (see [`Config::chaos`]).
    pub fn chaos(mut self, plan: ChaosPlan) -> Self {
        self.config.chaos = Some(plan);
        self
    }

    /// Finishes the builder.
    ///
    /// # Errors
    ///
    /// Returns an [`ErrorKind::InvalidConfig`](crate::ErrorKind) error
    /// naming the offending field if the configuration is inconsistent.
    pub fn build(self) -> Result<Config, Error> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(Config::default().validate().is_ok());
        let built = Config::builder().build().unwrap();
        assert_eq!(built, Config::default());
        assert_eq!(built.partitions, 1, "single-tenant by default");
        assert!(!built.strict_replay_budget);
        assert_eq!(built.max_epochs, 0, "unlimited epochs by default");
        assert_eq!(built.max_events, 0, "unlimited events by default");
        assert_eq!(built.admission_queue_depth, 64, "launches queue by default");
        assert_eq!(built.record_to, None, "recordings stay in memory by default");
        assert_eq!(built.trace_format, TraceFormat::Binary);
    }

    #[test]
    fn trace_sink_configurations_validate() {
        let config = Config::builder()
            .arena_size(1 << 20)
            .heap_block_size(64 << 10)
            .record_to("run.trace")
            .trace_format(TraceFormat::Json)
            .build()
            .unwrap();
        assert_eq!(config.record_to.as_deref(), Some(std::path::Path::new("run.trace")));
        assert_eq!(config.trace_format, TraceFormat::Json);
    }

    #[test]
    fn config_fingerprint_covers_execution_knobs_only() {
        let base = Config::default();
        // Deployment knobs do not change the fingerprint...
        let mut deployment = base.clone();
        deployment.partitions = 4;
        deployment.admission_queue_depth = 0;
        deployment.quiescence_timeout_ms = 1;
        deployment.record_to = Some("elsewhere.trace".into());
        assert_eq!(base.fingerprint(), deployment.fingerprint());
        // ...but execution knobs do.
        let mut reseeded = base.clone();
        reseeded.seed = 1;
        assert_ne!(base.fingerprint(), reseeded.fingerprint());
        let mut resized = base;
        resized.arena_size = 32 << 20;
        assert_ne!(resized.fingerprint(), reseeded.fingerprint());
    }

    #[test]
    fn chaos_plans_are_execution_knobs() {
        use ireplayer_sys::ChaosProfile;
        let base = Config::default();
        let mut chaotic = base.clone();
        chaotic.chaos = Some(ChaosPlan::compile(1, ChaosProfile::light()));
        assert_ne!(base.fingerprint(), chaotic.fingerprint());
        let mut reseeded = chaotic.clone();
        reseeded.chaos = Some(ChaosPlan::compile(2, ChaosProfile::light()));
        assert_ne!(chaotic.fingerprint(), reseeded.fingerprint());
        assert!(chaotic.validate().is_ok());
    }

    #[test]
    fn tampered_chaos_plans_are_rejected_naming_the_field() {
        use ireplayer_sys::ChaosProfile;
        // A schedule under a zeroed-out intensity: the plan was edited.
        let mut zeroed = ChaosPlan::compile(9, ChaosProfile::heavy());
        zeroed.profile.short_read_per_mille = 0;
        let error = Config::builder().chaos(zeroed).build().unwrap_err();
        assert_eq!(error.kind(), crate::ErrorKind::InvalidConfig);
        assert_eq!(error.config_field(), Some("chaos"));
        assert!(error.to_string().contains("short-read"), "{error} must name the class");
        assert!(error.to_string().contains("zero-intensity"));
        // A reseeded plan whose schedules no longer match.
        let mut reseeded = ChaosPlan::compile(9, ChaosProfile::heavy());
        reseeded.seed = 10;
        let error = Config::builder().chaos(reseeded).build().unwrap_err();
        assert_eq!(error.config_field(), Some("chaos"));
        assert!(error.to_string().contains("disagrees with compile"));
        // An untampered plan builds fine.
        let config = Config::builder()
            .chaos(ChaosPlan::compile(9, ChaosProfile::heavy()))
            .build()
            .unwrap();
        assert!(config.chaos.is_some());
    }

    #[test]
    fn quota_and_queue_configurations_validate() {
        let config = Config::builder()
            .arena_size(1 << 20)
            .heap_block_size(64 << 10)
            .max_epochs(8)
            .max_events(1 << 20)
            .admission_queue_depth(0)
            .build()
            .unwrap();
        assert_eq!(config.max_epochs, 8);
        assert_eq!(config.max_events, 1 << 20);
        assert_eq!(config.admission_queue_depth, 0, "0 restores refuse-when-full");
    }

    #[test]
    fn multi_partition_configurations_validate() {
        let config = Config::builder()
            .partitions(4)
            .arena_size(1 << 20)
            .heap_block_size(64 << 10)
            .strict_replay_budget(true)
            .build()
            .unwrap();
        assert_eq!(config.partitions, 4);
        assert!(config.strict_replay_budget);
    }

    #[test]
    fn builder_overrides_fields() {
        let config = Config::builder()
            .mode(RunMode::Passthrough)
            .allocator(AllocatorMode::GlobalLock)
            .arena_size(1 << 20)
            .heap_block_size(64 << 10)
            .canaries(true)
            .quarantine_bytes(4096)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(config.mode, RunMode::Passthrough);
        assert_eq!(config.allocator, AllocatorMode::GlobalLock);
        assert!(config.canaries);
        assert_eq!(config.quarantine_bytes, 4096);
        assert_eq!(config.seed, 7);
    }

    #[test]
    fn invalid_configurations_are_rejected_naming_the_field() {
        let cases: Vec<(crate::error::Error, &str, String)> = vec![
            (
                Config::builder().arena_size(1024).build().unwrap_err(),
                "arena_size",
                "1024".to_string(),
            ),
            (
                Config::builder()
                    .arena_size(1 << 20)
                    .heap_block_size(4 << 20)
                    .build()
                    .unwrap_err(),
                "heap_block_size",
                (4u64 << 20).to_string(),
            ),
            (
                Config::builder()
                    .arena_size(1 << 20)
                    .globals_size(2 << 20)
                    .build()
                    .unwrap_err(),
                "globals_size",
                (2u64 << 20).to_string(),
            ),
            (
                Config::builder().events_per_thread(0).build().unwrap_err(),
                "events_per_thread",
                "0".to_string(),
            ),
            (
                Config::builder().max_replay_attempts(0).build().unwrap_err(),
                "max_replay_attempts",
                "0".to_string(),
            ),
            (
                Config::builder().quiescence_timeout_ms(0).build().unwrap_err(),
                "quiescence_timeout_ms",
                "0".to_string(),
            ),
            (
                Config::builder().partitions(0).build().unwrap_err(),
                "partitions",
                "0".to_string(),
            ),
            (
                Config::builder().partitions(1000).build().unwrap_err(),
                "partitions",
                "1000".to_string(),
            ),
            (
                Config::builder().admission_queue_depth(100_000).build().unwrap_err(),
                "admission_queue_depth",
                "100000".to_string(),
            ),
            (
                Config::builder()
                    .mode(RunMode::Passthrough)
                    .record_to("run.trace")
                    .build()
                    .unwrap_err(),
                "record_to",
                "run.trace".to_string(),
            ),
            (
                Config::builder()
                    .partitions(2)
                    .record_to("run.trace")
                    .build()
                    .unwrap_err(),
                "record_to",
                "run.trace".to_string(),
            ),
            (
                Config::builder()
                    .record_to("no-such-dir/deep/run.trace")
                    .build()
                    .unwrap_err(),
                "record_to",
                "no-such-dir/deep/run.trace".to_string(),
            ),
            (
                Config::builder().record_to("").build().unwrap_err(),
                "record_to",
                "the trace path must not be empty".to_string(),
            ),
        ];
        for (error, field, value) in cases {
            assert_eq!(error.kind(), crate::ErrorKind::InvalidConfig);
            assert_eq!(error.config_field(), Some(field));
            let message = error.to_string();
            assert!(message.contains(field), "{message} must name {field}");
            assert!(message.contains(&value), "{message} must show the value {value}");
        }
    }
}
