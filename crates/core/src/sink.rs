//! The record-path seam: per-operation phase dispatch plus the lock-free
//! event sink.
//!
//! Every interposed operation (synchronization primitive, system call)
//! selects its behaviour **once** by loading the execution phase a single
//! time ([`op_phase`]) and then commits to the passthrough, record, or
//! replay arm -- instead of re-checking `recording()` / `replaying()`
//! (each an atomic load) at several points, some of which used to happen
//! under locks.
//!
//! [`RecordSink`] is the write side of that seam: the only way runtime code
//! appends to the logging layer.  Its methods are lock-free on the
//! uncontended fast path -- a per-thread list append is one slot write plus
//! one release store, a per-variable append is one fetch-add plus one
//! release store -- and the epoch-end scheduling that follows a full list is
//! the only path that may take a lock (it runs at most once per epoch).

use ireplayer_log::{EventKind, SyncOp, SyscallOutcome};
use ireplayer_sys::SyscallKind;

use crate::state::{EpochEndReason, ExecPhase, RtInner, SyncVar, VThread};
use crate::stats::Counters;

/// Loads the execution phase once for the current operation.  Callers match
/// on the result and must not re-load the phase mid-operation: an epoch
/// transition cannot happen while any thread is inside an operation (the
/// coordinator waits for step-boundary quiescence first), so the snapshot
/// stays valid for the whole operation.
#[inline]
pub(crate) fn op_phase(rt: &RtInner) -> ExecPhase {
    rt.phase()
}

/// The write side of the logging layer: appends events on behalf of one
/// thread.  Constructed per operation (it is two references; construction
/// is free) so the borrow of the thread state stays explicit.
#[derive(Clone, Copy)]
pub(crate) struct RecordSink<'a> {
    rt: &'a RtInner,
    vt: &'a VThread,
}

impl<'a> RecordSink<'a> {
    pub fn new(rt: &'a RtInner, vt: &'a VThread) -> Self {
        RecordSink { rt, vt }
    }

    /// Appends an event to the thread's own list (owner-thread, lock-free)
    /// and schedules an epoch end if the soft capacity is reached.  Returns
    /// the index of the event within the thread list.
    pub fn thread_event(&self, kind: EventKind) -> u32 {
        Counters::bump(&self.rt.counters.sync_events);
        if self.vt.list.is_full() {
            // An epoch end is already scheduled, but the event must still
            // be recorded so the epoch stays replayable (cold path, may
            // allocate and lock).  `request_epoch_end` is batched: only the
            // first request per epoch locks and pokes the world, so a step
            // that records far past capacity costs one wake-up, not one per
            // event.
            //
            // SAFETY: `self.vt` is the state of the thread executing this
            // call (a RecordSink is only constructed for the current
            // thread), so this is the owner-thread append the contract
            // requires; clears happen only at quiescence, when no thread
            // is inside an operation.
            #[allow(unsafe_code)]
            let index = unsafe { self.vt.list.append_past_capacity(kind) };
            self.rt.request_epoch_end(EpochEndReason::LogFull);
            return index;
        }
        // SAFETY: as above -- sole appender (the owning thread), no
        // concurrent clear outside quiescence.
        #[allow(unsafe_code)]
        let index = unsafe { self.vt.list.append(kind) }
            .expect("single-writer list cannot fill between the owner's check and append");
        if self.vt.list.is_full() {
            self.rt.request_epoch_end(EpochEndReason::LogFull);
        }
        index
    }

    /// Records an ordered synchronization event: thread list plus
    /// per-variable list (Figure 4).  Both appends are lock-free.
    pub fn sync(&self, var: &SyncVar, op: SyncOp, result: i64) {
        let index = self.thread_event(EventKind::Sync {
            var: var.id,
            op,
            result,
        });
        var.var_list.append(self.vt.id, op, index);
    }

    /// Records the outcome of a recordable system call (or the marker of a
    /// revocable / deferrable call); per-thread list only.
    pub fn syscall(&self, kind: SyscallKind, outcome: SyscallOutcome) {
        self.thread_event(EventKind::Syscall {
            code: kind.code(),
            outcome,
        });
    }
}
