//! The cross-partition admission scheduler: queued launches over a
//! bounded FIFO.
//!
//! Before this module, an overcommitted [`crate::Runtime`] -- more
//! launches than arena partitions -- refused the excess with
//! [`ErrorKind::SessionActive`](crate::ErrorKind) and pushed the retry
//! loop onto every caller.  The scheduler turns that refusal into
//! *admission control*: [`crate::Runtime::launch`] on a fully occupied
//! runtime enqueues the program on a bounded FIFO (the **admission
//! queue**, bounded by [`Config::admission_queue_depth`](crate::Config)),
//! and a partition freed by a finishing session immediately claims the
//! oldest queued launch -- on the same supervisor-pool worker that just
//! went idle, so admission costs no thread churn.
//!
//! Invariants:
//!
//! * **FIFO admission.**  Every partition claim happens under the
//!   scheduler lock, and a direct claim is only attempted when the queue
//!   is empty -- a launch can never overtake one that queued before it.
//! * **Release-then-pump.**  A finishing supervisor releases its
//!   partition and drains the queue head under one lock acquisition
//!   ([`Scheduler::release_and_pump`]), so no interloper can slip between
//!   the release and the hand-off, and the result is delivered to
//!   [`crate::Session::wait`] only *after* the partition has been passed
//!   on (the same "release before deliver" ordering the single-tenant
//!   runtime had).
//! * **Nothing queues forever.**  A queued launch is admitted by the next
//!   free partition, failed with
//!   [`ErrorKind::Poisoned`](crate::ErrorKind) once every partition is
//!   poisoned, or dropped (detached) when the runtime itself is dropped.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::Error;
use crate::events::SessionEvent;
use crate::pool::SupervisorPool;
use crate::program::{BodyFn, Program};
use crate::runtime::LaunchOptions;
use crate::session::SessionShared;
use crate::state::RtInner;
use crate::stats::RunOutcome;
use crate::trace::TraceJob;

/// One launch waiting for a partition.
struct Pending {
    shared: Arc<SessionShared>,
    program_name: String,
    main_body: BodyFn,
    /// Durable-trace work travelling with this launch (recording sink or
    /// trace verification), driven by the supervisor.
    trace: Option<TraceJob>,
    /// Per-launch overrides (chaos plan, kernel staging), applied by the
    /// supervisor on whatever partition the launch lands on.
    options: LaunchOptions,
}

/// One admission decided by the pump: this pending launch now owns this
/// partition (its `session_active` flag is already set).
struct Admission {
    pending: Pending,
    rt: Arc<RtInner>,
    partition: usize,
}

#[derive(Default)]
struct SchedState {
    queue: VecDeque<Pending>,
    /// Launches that went through the queue (cumulative).
    queued_total: u64,
    /// Launches admitted onto a partition (cumulative; queued or direct).
    admitted_total: u64,
    /// Set by [`Scheduler::shutdown`]: no further admissions.
    shutdown: bool,
}

/// How a launch behaves when no partition is free right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdmitMode {
    /// Queue on the admission queue while it has room
    /// ([`crate::Runtime::launch`]).
    QueueWhenFull,
    /// Fail with [`ErrorKind::SessionActive`](crate::ErrorKind)
    /// immediately ([`crate::Runtime::try_launch`]).
    Immediate,
}

/// The admission scheduler shared by every partition of one
/// [`crate::Runtime`].
pub(crate) struct Scheduler {
    partitions: Vec<Arc<RtInner>>,
    pool: Arc<SupervisorPool>,
    state: Mutex<SchedState>,
    queue_depth: usize,
}

impl Scheduler {
    pub fn new(partitions: Vec<Arc<RtInner>>, pool: Arc<SupervisorPool>, queue_depth: usize) -> Arc<Self> {
        Arc::new(Scheduler {
            partitions,
            pool,
            state: Mutex::new(SchedState::default()),
            queue_depth,
        })
    }

    /// Launches `program`: admits it onto a free partition, or queues it
    /// per `mode`.  Returns the per-launch shared state the
    /// [`crate::Session`] handle wraps.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::SessionActive`](crate::ErrorKind) when nothing is free
    /// and the launch may not wait (queue full, depth 0, or
    /// [`AdmitMode::Immediate`]); [`ErrorKind::Poisoned`](crate::ErrorKind)
    /// once every partition is poisoned;
    /// [`ErrorKind::ThreadSpawn`](crate::ErrorKind) when the supervisor
    /// pool cannot serve the job.
    pub fn submit(
        self: &Arc<Self>,
        program: Program,
        mode: AdmitMode,
        trace: Option<TraceJob>,
        options: LaunchOptions,
    ) -> Result<Arc<SessionShared>, Error> {
        let (program_name, main_body) = program.into_parts();
        let shared = SessionShared::new(self.partitions[0].config.mode);
        let pending = Pending {
            shared: Arc::clone(&shared),
            program_name,
            main_body,
            trace,
            options,
        };
        let admissions = {
            let mut state = self.state.lock();
            if self.partitions.iter().all(|rt| rt.poisoned.load(Ordering::Acquire)) {
                let stuck: Vec<u32> = self
                    .partitions
                    .iter()
                    .flat_map(|rt| rt.poisoned_threads.lock().clone())
                    .collect();
                return Err(Error::poisoned(stuck));
            }
            // Enqueue behind everything already waiting, then pump: the
            // pump admits strictly from the front, so FIFO admission falls
            // out by construction even on the (transient) states where a
            // partition freed while the queue was non-empty.
            state.queue.push_back(pending);
            let admissions = self.pump_locked(&mut state);
            let still_queued = state
                .queue
                .back()
                .is_some_and(|pending| Arc::ptr_eq(&pending.shared, &shared));
            if still_queued {
                let may_wait = mode == AdmitMode::QueueWhenFull && state.queue.len() <= self.queue_depth;
                if !may_wait {
                    state.queue.pop_back();
                    return Err(Error::session_active());
                }
                state.queued_total += 1;
            }
            admissions
        };
        // An error dispatching an *earlier* queued launch must not fail
        // this submission: its session observes it through its own wait().
        self.dispatch(admissions);
        // But a failure serving *this* launch's own admission fails the
        // launch call itself, as it did before the scheduler existed.
        if let Some(error) = shared.take_startup_failure() {
            return Err(error);
        }
        Ok(shared)
    }

    /// Returns `partition` to the free pool and immediately admits the
    /// oldest queued launch onto it (and onto any other partition that is
    /// free, self-healing after dispatch failures).  Called by a finishing
    /// supervisor right before it delivers its own result.
    pub fn release_and_pump(self: &Arc<Self>, rt: &RtInner) {
        let mut poisoned_out: Vec<Pending> = Vec::new();
        let admissions = {
            let mut state = self.state.lock();
            rt.session_active.store(false, Ordering::Release);
            if rt.poisoned.load(Ordering::Acquire) && self.partitions.iter().all(|p| p.poisoned.load(Ordering::Acquire))
            {
                // No partition will ever free again: fail the whole queue
                // rather than stranding its waiters.  Collected here,
                // failed below -- delivery runs arbitrary waker code and
                // must not happen under the scheduler lock.
                poisoned_out = state.queue.drain(..).collect();
                Vec::new()
            } else {
                self.pump_locked(&mut state)
            }
        };
        if !poisoned_out.is_empty() {
            let stuck: Vec<u32> = self
                .partitions
                .iter()
                .flat_map(|p| p.poisoned_threads.lock().clone())
                .collect();
            for pending in poisoned_out {
                pending
                    .shared
                    .finish_without_running(Err(Error::poisoned(stuck.clone())));
            }
            return;
        }
        self.dispatch(admissions);
    }

    /// Admits queued launches onto free healthy partitions, oldest first,
    /// until one side runs out.  Caller holds the scheduler lock.
    fn pump_locked(self: &Arc<Self>, state: &mut SchedState) -> Vec<Admission> {
        let mut admissions = Vec::new();
        if state.shutdown {
            return admissions;
        }
        while !state.queue.is_empty() {
            let Some((partition, rt)) = self.claim_free_partition() else {
                break;
            };
            let pending = state.queue.pop_front().expect("checked non-empty");
            state.admitted_total += 1;
            admissions.push(Admission { pending, rt, partition });
        }
        admissions
    }

    /// Claims the lowest-indexed partition that is neither poisoned nor
    /// occupied.  Only called under the scheduler lock, so the claim order
    /// is deterministic and FIFO-safe.
    fn claim_free_partition(&self) -> Option<(usize, Arc<RtInner>)> {
        for (index, rt) in self.partitions.iter().enumerate() {
            if rt.poisoned.load(Ordering::Acquire) {
                continue;
            }
            if rt
                .session_active
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some((index, Arc::clone(rt)));
            }
        }
        None
    }

    /// Binds each admission's session to its partition and hands the
    /// supervision job to the pool, oldest first (so FIFO holds for pool
    /// service order too).  A job the pool cannot serve fails its own
    /// session, releases the partition, and lets the queue pump again --
    /// later admissions are unaffected, and re-pumped ones are served
    /// after the batch's remaining (older) admissions.
    fn dispatch(self: &Arc<Self>, admissions: Vec<Admission>) {
        let mut admissions: VecDeque<Admission> = admissions.into();
        while let Some(Admission { pending, rt, partition }) = admissions.pop_front() {
            pending.shared.attach(&rt, partition);
            let job = supervision_job(
                Arc::clone(self),
                Arc::clone(&rt),
                Arc::clone(&pending.shared),
                pending.program_name,
                pending.main_body,
                pending.trace,
                pending.options,
            );
            if let Err(error) = self.pool.execute(job) {
                // Release the partition (and re-pump) *before* delivering
                // the failure: a caller woken by the delivery must be able
                // to relaunch without a spurious `SessionActive`.
                let more = {
                    let mut state = self.state.lock();
                    rt.session_active.store(false, Ordering::Release);
                    self.pump_locked(&mut state)
                };
                pending.shared.finish_without_running(Err(error));
                admissions.extend(more);
            }
        }
    }

    /// Launches currently waiting on the admission queue.
    pub fn queue_len(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Cumulative (queued, admitted) launch counts.
    pub fn admission_counts(&self) -> (u64, u64) {
        let state = self.state.lock();
        (state.queued_total, state.admitted_total)
    }

    /// Stops admitting and abandons the queue.  Called from
    /// [`crate::Runtime`]'s `Drop`: a queued launch can only still exist
    /// there if its `Session` handle was dropped (detached), so the
    /// delivered error is unobservable -- but stashed event subscriptions
    /// can outlive the handle, and failing each entry keeps the
    /// one-`Finished`-per-launch contract for them.
    pub fn shutdown(&self) {
        let abandoned: Vec<Pending> = {
            let mut state = self.state.lock();
            state.shutdown = true;
            state.queue.drain(..).collect()
        };
        for pending in abandoned {
            pending.shared.finish_without_running(Err(Error::session_active()));
        }
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("Scheduler")
            .field("queued", &state.queue.len())
            .field("queued_total", &state.queued_total)
            .field("admitted_total", &state.admitted_total)
            .field("queue_depth", &self.queue_depth)
            .finish()
    }
}

/// Builds the whole-session supervision job: run the supervisor, then
/// release the partition (handing it straight to the queue head, if any),
/// then deliver the result to `wait()`/`wait_async()`.
fn supervision_job(
    scheduler: Arc<Scheduler>,
    rt: Arc<RtInner>,
    shared: Arc<SessionShared>,
    program_name: String,
    main_body: BodyFn,
    trace: Option<TraceJob>,
    options: LaunchOptions,
) -> Box<dyn FnOnce() + Send + 'static> {
    Box::new(move || {
        // The unwind guard keeps the runtime honest even if the supervisor
        // itself panics: the partition is released (so it is not bricked
        // into occupancy forever) and poisoned (its state can no longer be
        // trusted mid-run).
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe({
            let rt = Arc::clone(&rt);
            let shared = Arc::clone(&shared);
            move || crate::runtime::supervise(rt, shared, program_name, main_body, trace, options)
        }));
        let result = match result {
            Ok(result) => result,
            Err(_) => {
                rt.poison(Vec::new());
                // Keep the lifecycle invariants even on this path: seal
                // whatever status the runtime shows and send the one
                // `Finished` event observers expect per launch.
                crate::session::seal_final_status(&rt, &shared);
                rt.emit_event(|| SessionEvent::Finished {
                    outcome: RunOutcome::Completed,
                });
                Err(Error::application_panic(
                    "the supervisor panicked; the partition is poisoned",
                ))
            }
        };
        shared.finished.store(true, Ordering::Release);
        // Release (or hand off) the partition before delivering: `wait()`
        // is the hard synchronization point, so a caller woken by the
        // delivery must be able to relaunch -- or find its queued launch
        // already admitted -- without a spurious `SessionActive`.
        scheduler.release_and_pump(&rt);
        shared.deliver(result);
    })
}
