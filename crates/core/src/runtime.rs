//! The public [`Runtime`] and its coordinator ("supervisor") loop.
//!
//! The original iReplayer promotes the thread that triggers an epoch end to
//! "coordinator" (§3.3).  In this reproduction the coordination duties --
//! waiting for quiescence, housekeeping, checkpointing, deciding between
//! continue and rollback, and orchestrating replay attempts -- run on a
//! dedicated supervisor thread spawned by [`Runtime::launch`], which
//! supervises the application threads while the caller holds a live
//! [`crate::Session`] handle.  The protocol it implements is the paper's:
//! epochs begin with a checkpoint (§3.1), end at a safe stop of all threads
//! (§3.3), and can be rolled back (§3.4) and re-executed under the recorded
//! order with divergence detection and randomized retry (§3.5).
//!
//! A `Runtime` is **reusable**: the end-of-run teardown is a
//! *reset-to-quiescence* path ([`RtInner::reset_to_quiescence`]) that wipes
//! run-scoped state while keeping warm storage -- the arena's backing
//! memory, retired per-thread and per-variable event lists, and the
//! simulated-OS object -- so back-to-back launches pay no construction
//! cost and produce reports identical to fresh-runtime runs.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ireplayer_log::ThreadId;
use ireplayer_mem::{CorruptedCanary, MemAddr, MemSnapshot, Span, UafEvidence};
use ireplayer_sys::{ChaosPlan, SimOs};

use ireplayer_mem::Arena;

use crate::checkpoint::{self, Checkpoint};
use crate::config::{Config, FaultPolicy, RunMode};
use crate::error::Error;
use crate::events::{EventFilter, EventStream, SessionEvent};
use crate::exec;
use crate::fault::{FaultRecord, UnwindSignal};
use crate::hooks::{EpochDecision, EpochView, Instrument, ReplayRequest, ToolHook};
use crate::pool::SupervisorPool;
use crate::program::{BodyFn, Program};
use crate::scheduler::{AdmitMode, Scheduler};
use crate::session::{Session, SessionShared};
use crate::state::{Command, EpochEndReason, ExecPhase, RtInner, SegmentEnd, ThreadPhase, VThread, INTERNAL_SYNC_VARS};
use crate::stats::{Counters, ReplayValidation, RunOutcome, RunReport, WatchHitReport};
use crate::trace::{json, Trace, TraceJob, TraceVerifier};

/// How long the supervisor waits between scans of the world state.
const SUPERVISOR_SLICE: Duration = Duration::from_millis(5);

/// The in-situ record-and-replay runtime.
///
/// A `Runtime` is a long-lived, reusable host: construct it once, then
/// [`launch`](Runtime::launch) any number of [`Program`]s against it.  Each
/// launch returns a [`Session`] handle exposing the live epoch lifecycle;
/// when a session ends its partition resets to quiescence while keeping
/// its warm state (arena memory, log storage, the simulated OS), so
/// serving many workloads from one hot process costs no repeated
/// construction.
///
/// With [`Config::partitions`] greater than 1 the runtime is
/// **multi-tenant**: up to that many sessions run *simultaneously*, each on
/// its own arena partition with its own simulated-OS namespace, sync
/// table, and epoch machinery.  A session's behaviour -- including its
/// [`RunReport::fingerprint`] -- is byte-identical to running the same
/// program alone on a fresh runtime; neighbours cannot perturb it.
///
/// # Example
///
/// ```
/// use ireplayer::{Config, Program, Runtime, Step};
///
/// # fn main() -> Result<(), ireplayer::Error> {
/// let config = Config::builder()
///     .arena_size(8 << 20)
///     .heap_block_size(256 << 10)
///     .build()?;
/// let runtime = Runtime::new(config)?;
/// // The runtime is reusable: launch several programs back to back.
/// for _ in 0..2 {
///     let session = runtime.launch(Program::new("counter", |ctx| {
///         let cell = ctx.global("counter", 8);
///         let value = ctx.read_u64(cell);
///         ctx.write_u64(cell, value + 1);
///         if value + 1 == 10 {
///             ireplayer::Step::Done
///         } else {
///             ireplayer::Step::Yield
///         }
///     }))?;
///     let report = session.wait()?;
///     assert!(report.outcome.is_success());
/// }
/// # Ok(())
/// # }
/// ```
pub struct Runtime {
    /// One self-contained runtime core per arena partition; partition 0 is
    /// the whole runtime in the default single-tenant configuration.
    pub(crate) partitions: Vec<Arc<RtInner>>,
    /// Shared supervisor actors (at most one worker per partition).
    pub(crate) pool: Arc<SupervisorPool>,
    /// Cross-partition admission scheduler: FIFO queue of launches waiting
    /// for a partition, pumped by every partition release.
    pub(crate) scheduler: Arc<Scheduler>,
}

impl Runtime {
    /// Creates a runtime from a configuration.  With
    /// [`Config::partitions`] greater than 1, one backing arena allocation
    /// is sliced into that many independent partitions, each able to host
    /// one live [`Session`] concurrently with the others.
    ///
    /// # Errors
    ///
    /// Returns an [`ErrorKind::InvalidConfig`](crate::ErrorKind) error if
    /// the configuration is inconsistent.
    pub fn new(config: Config) -> Result<Self, Error> {
        config.validate()?;
        install_panic_hook();
        let arenas = Arena::partitioned(config.arena_size, config.partitions);
        let pool = SupervisorPool::new(config.partitions);
        let partitions: Vec<Arc<RtInner>> = arenas
            .into_iter()
            .enumerate()
            .map(|(index, arena)| {
                let rt = Arc::new(RtInner::with_arena(index as u32, arena, config.clone()));
                // Each partition's share of the single backing allocation.
                Counters::bump(&rt.diag.arena_allocations);
                rt
            })
            .collect();
        // Surface chaos injections as diagnostics counters and session
        // events.  Original executions only: a replayed re-execution
        // re-derives the same revocable faults (and re-serves the recorded
        // recordable ones), so re-announcing them would double-count.
        // Registered unconditionally: a per-launch [`LaunchOptions::chaos`]
        // override can put a plan on a partition whose config has none.
        for rt in &partitions {
            let weak = Arc::downgrade(rt);
            rt.os.set_chaos_observer(Box::new(move |class, site| {
                let Some(rt) = weak.upgrade() else { return };
                if rt.replaying() {
                    return;
                }
                Counters::bump(&rt.diag.faults_injected[class.code() as usize]);
                rt.emit_event(|| SessionEvent::FaultInjected {
                    class,
                    site,
                    epoch: rt.epoch_number(),
                });
            }));
        }
        let scheduler = Scheduler::new(partitions.clone(), Arc::clone(&pool), config.admission_queue_depth);
        Ok(Runtime {
            partitions,
            pool,
            scheduler,
        })
    }

    /// The configuration this runtime was created with.
    pub fn config(&self) -> &Config {
        &self.partitions[0].config
    }

    /// The number of arena partitions, i.e. the number of sessions this
    /// runtime can drive simultaneously.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// The simulated operating system of **partition 0**, used to stage
    /// files and network peers before launching a program and to inspect
    /// them afterwards.  The reset between launches reboots it, so each
    /// run stages its own inputs.  Launches claim the lowest free
    /// partition, so a single-session caller always lands here; to stage a
    /// specific tenant's namespace on a multi-partition runtime, use
    /// [`Runtime::partition_os`].
    pub fn os(&self) -> &SimOs {
        &self.partitions[0].os
    }

    /// The simulated operating system of one partition (each partition is
    /// its own OS namespace: files, sockets, mappings, and clock are
    /// per-session state), or `None` for an out-of-range index.
    pub fn partition_os(&self, partition: usize) -> Option<&SimOs> {
        self.partitions.get(partition).map(|rt| &rt.os)
    }

    /// Registers a tool hook (detector, debugger) on every partition.
    /// Hooks persist across launches; on a multi-partition runtime the same
    /// hook observes every tenant, so stateful hooks must be internally
    /// synchronized (they already must be `Send + Sync`).
    pub fn add_hook(&self, hook: Arc<dyn ToolHook>) {
        for rt in &self.partitions {
            rt.hooks.write().push(Arc::clone(&hook));
        }
    }

    /// Installs an execution instrument (used by the comparison baselines)
    /// on every partition.
    pub fn set_instrument(&self, instrument: Arc<dyn Instrument>) {
        for rt in &self.partitions {
            *rt.instrument.write() = Some(Arc::clone(&instrument));
        }
    }

    /// Subscribes an event stream that persists across launches (unlike
    /// [`Session::subscribe`], whose ergonomics tie it to one run, the
    /// registration is the same under the hood -- streams live until
    /// dropped).  On a multi-partition runtime the stream observes every
    /// partition: each session's events arrive in order; events of
    /// concurrent sessions interleave in arrival order.
    pub fn subscribe(&self, filter: EventFilter) -> EventStream {
        let (slots, stream) = crate::events::subscription_many(filter, self.partitions.len());
        for (rt, slot) in self.partitions.iter().zip(slots) {
            rt.register_observer(slot);
        }
        stream
    }

    /// Starts `program` on this runtime and returns the live [`Session`]
    /// handle, claiming the **lowest-indexed free partition** -- or, when
    /// every partition is busy, **queueing** the launch on the runtime's
    /// bounded FIFO admission queue (see
    /// [`Config::admission_queue_depth`]): a partition freed by a
    /// finishing session immediately claims the oldest queued launch, in
    /// launch order.  The run proceeds on background threads; use
    /// [`Session::status`], [`Session::subscribe`], and
    /// [`Session::request_replay`] to observe and steer it (all three work
    /// on a still-queued session too), and [`Session::wait`] or
    /// [`Session::wait_async`] to collect the report.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::SessionActive`](crate::ErrorKind) only when no
    /// partition is free **and** the admission queue is full (with the
    /// default depth of 64 that takes 64 launches already waiting; with
    /// depth 0 any overcommitted launch is refused, the pre-scheduler
    /// behaviour), [`ErrorKind::Poisoned`](crate::ErrorKind) once
    /// **every** partition has been poisoned by unreclaimable threads (no
    /// launch can ever succeed again), and
    /// [`ErrorKind::ThreadSpawn`](crate::ErrorKind) if the OS refuses the
    /// supervisor thread for a directly admitted launch.  A launch that
    /// *queued* reports a later admission failure through
    /// [`Session::wait`] / [`Session::wait_async`] instead (the `launch`
    /// call has long returned by then).
    ///
    /// # Example
    ///
    /// Overcommitting a single-partition runtime: the second launch queues
    /// instead of failing and runs as soon as the first finishes.
    ///
    /// ```
    /// use ireplayer::{Config, Program, Runtime, RunPhase, Step};
    ///
    /// # fn main() -> Result<(), ireplayer::Error> {
    /// let config = Config::builder()
    ///     .arena_size(4 << 20)
    ///     .heap_block_size(128 << 10)
    ///     .build()?;
    /// let runtime = Runtime::new(config)?;
    /// let first = runtime.launch(Program::new("first", |ctx| {
    ///     ctx.work(1_000);
    ///     Step::Done
    /// }))?;
    /// // The only partition is (very likely still) busy: this launch is
    /// // admitted later, from the queue, rather than refused.
    /// let second = runtime.launch(Program::new("second", |_| Step::Done))?;
    /// if second.partition().is_none() {
    ///     assert_eq!(second.status().phase, RunPhase::Queued);
    /// }
    /// assert!(first.wait()?.outcome.is_success());
    /// assert!(second.wait()?.outcome.is_success());
    /// # Ok(())
    /// # }
    /// ```
    pub fn launch(&self, program: Program) -> Result<Session<'_>, Error> {
        Session::start(
            self,
            program,
            AdmitMode::QueueWhenFull,
            TraceJob::recorder_for(self.config()),
            LaunchOptions::new(),
        )
    }

    /// [`Runtime::launch`] with per-launch overrides: a [`ChaosPlan`] that
    /// replaces the configured one (or adds one where the config has none)
    /// for this launch only, and a staging closure that runs against the
    /// claimed partition's kernel right before the program starts --
    /// *after* the launch has been admitted, which on an overcommitted
    /// runtime may be long after this call returned.  Both reset with the
    /// partition: the next launch sees the configured plan again and a
    /// freshly rebooted kernel.
    ///
    /// This is the fan-out primitive the [`ChaosExplorer`] sweep is built
    /// on: many `(seed, profile)` candidates queue on one runtime without
    /// rebuilding it per plan.  An override launch never records to
    /// [`Config::record_to`] (the sink's trace header pins the *config's*
    /// plan digest; a durable trace of a minimized plan is emitted by
    /// [`ChaosExplorer::emit_fixture`] instead, on a runtime configured
    /// with that plan).
    ///
    /// [`ChaosExplorer`]: crate::ChaosExplorer
    /// [`ChaosExplorer::emit_fixture`]: crate::ChaosExplorer::emit_fixture
    ///
    /// # Errors
    ///
    /// [`ErrorKind::InvalidConfig`](crate::ErrorKind) when the override
    /// plan fails [`ChaosPlan::verify`]; everything [`Runtime::launch`]
    /// can return.
    pub fn launch_with(&self, program: Program, options: LaunchOptions) -> Result<Session<'_>, Error> {
        if let Some(plan) = options.chaos.as_ref() {
            if let Err(error) = plan.verify() {
                return Err(Error::invalid_config(
                    "launch_options.chaos",
                    format!("plan for seed {}: {error}", plan.seed),
                    "the override plan fails ChaosPlan::verify; build it with compile or the shrink constructors",
                ));
            }
        }
        let trace = if options.chaos.is_some() {
            None
        } else {
            TraceJob::recorder_for(self.config())
        };
        Session::start(self, program, AdmitMode::QueueWhenFull, trace, options)
    }

    /// The non-queueing variant of [`Runtime::launch`]: starts `program`
    /// only if a partition is free **right now**, and otherwise fails
    /// immediately with [`ErrorKind::SessionActive`](crate::ErrorKind)
    /// without consuming admission-queue room.  Use it for callers that
    /// would rather shed load (or try another runtime) than wait behind
    /// the queue.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::SessionActive`](crate::ErrorKind) when no healthy
    /// partition is free or other launches are already queued (admitting
    /// this one would overtake them);
    /// [`ErrorKind::Poisoned`](crate::ErrorKind) and
    /// [`ErrorKind::ThreadSpawn`](crate::ErrorKind) as for
    /// [`Runtime::launch`].
    ///
    /// # Example
    ///
    /// ```
    /// use ireplayer::{Config, ErrorKind, Program, Runtime, Step};
    /// use std::sync::atomic::{AtomicBool, Ordering};
    /// use std::sync::Arc;
    ///
    /// # fn main() -> Result<(), ireplayer::Error> {
    /// let config = Config::builder()
    ///     .arena_size(4 << 20)
    ///     .heap_block_size(128 << 10)
    ///     .build()?;
    /// let runtime = Runtime::new(config)?;
    /// // A free runtime admits immediately...
    /// let gate = Arc::new(AtomicBool::new(false));
    /// let gate_for_body = Arc::clone(&gate);
    /// let session = runtime.try_launch(Program::new("now", move |ctx| {
    ///     ctx.work(100);
    ///     if gate_for_body.load(Ordering::Acquire) {
    ///         Step::Done
    ///     } else {
    ///         Step::Yield
    ///     }
    /// }))?;
    /// // ...but while it runs, try_launch sheds the overload instead of
    /// // queueing it.
    /// let refused = runtime.try_launch(Program::new("later", |_| Step::Done));
    /// assert_eq!(refused.unwrap_err().kind(), ErrorKind::SessionActive);
    /// gate.store(true, Ordering::Release);
    /// assert!(session.wait()?.outcome.is_success());
    /// # Ok(())
    /// # }
    /// ```
    pub fn try_launch(&self, program: Program) -> Result<Session<'_>, Error> {
        Session::start(
            self,
            program,
            AdmitMode::Immediate,
            TraceJob::recorder_for(self.config()),
            LaunchOptions::new(),
        )
    }

    /// Runs `program` to completion and returns its report: shorthand for
    /// [`Runtime::launch`] followed by [`Session::wait`].  The runtime
    /// stays reusable afterwards.
    ///
    /// # Errors
    ///
    /// Everything [`Runtime::launch`] and [`Session::wait`] can return.
    pub fn run(&self, program: Program) -> Result<RunReport, Error> {
        self.launch(program)?.wait()
    }

    /// Reproduces a recorded run from a durable [`Trace`] -- in this
    /// process or, the point of the format, in a **fresh process** that
    /// never saw the original run.  The runtime is deterministic, so
    /// re-executing `program` under the trace's recorded simulated-OS
    /// inputs yields the recorded run again; the trace is the oracle that
    /// *proves* it: the staged kernel inputs are restored from the trace
    /// before the program starts, and when the run finishes its
    /// [`RunReport::fingerprint`] is checked against the recorded one,
    /// failing with [`ErrorKind::TraceMismatch`](crate::ErrorKind) on any
    /// difference.
    ///
    /// `program` must be the same workload that was recorded (same name,
    /// same body), and this runtime's [`Config::fingerprint`] must equal
    /// the trace's -- execution-relevant knobs changed between record and
    /// replay are refused up front rather than surfacing as a confusing
    /// divergence later.  Tool hooks installed during recording must be
    /// installed again for replay, for the same reason.  The launch claims
    /// a partition like any other; a [`Config::record_to`] sink configured
    /// on this runtime is suspended for this launch (the verification
    /// replaces it).
    ///
    /// # Errors
    ///
    /// [`ErrorKind::TraceMismatch`](crate::ErrorKind) when the program
    /// name, the config fingerprint, or the reproduced run's fingerprint
    /// differs from the trace;
    /// [`ErrorKind::RecordingDisabled`](crate::ErrorKind) in passthrough
    /// mode; plus everything [`Runtime::run`] can return.
    pub fn replay_trace(&self, program: Program, trace: &Trace) -> Result<RunReport, Error> {
        self.replay_from_trace(program, trace, false)
    }

    /// The strict variant of [`Runtime::replay_trace`]: additionally
    /// compares every epoch's order logs (per-thread event logs,
    /// per-variable cross-thread orders, and the end-of-epoch heap image
    /// hash) against the trace *as each epoch closes*, stopping the run at
    /// the **first divergence** with a
    /// [`ErrorKind::TraceMismatch`](crate::ErrorKind) error naming the
    /// epoch, thread, and event.  `gettimeofday` outcomes are the one
    /// sanctioned nondeterminism (the virtual clock incorporates real
    /// elapsed time) and are exempt from the comparison.
    ///
    /// Strict mode asserts that the *schedule* reproduced, not just the
    /// outcome -- a racy program whose threads legitimately interleave
    /// differently run to run will (correctly) report a divergence here
    /// even though its non-strict fingerprint may still match.
    ///
    /// # Errors
    ///
    /// As for [`Runtime::replay_trace`], with divergence surfacing at the
    /// epoch boundary where it happened instead of at the end of the run.
    pub fn replay_trace_strict(&self, program: Program, trace: &Trace) -> Result<RunReport, Error> {
        self.replay_from_trace(program, trace, true)
    }

    fn replay_from_trace(&self, program: Program, trace: &Trace, strict: bool) -> Result<RunReport, Error> {
        let config = self.config();
        if config.mode != RunMode::Record {
            return Err(Error::recording_disabled());
        }
        if trace.program() != program.name() {
            return Err(Error::trace_mismatch(
                "program name",
                format!(
                    "trace records {:?} but {:?} was launched",
                    trace.program(),
                    program.name()
                ),
            ));
        }
        // The chaos plan is checked before the aggregate config fingerprint
        // (which the plan digest joins): a plan mismatch gets its specific
        // error rather than hiding behind the generic fingerprint one.
        let our_digest = config.chaos.as_ref().map(|plan| plan.digest()).unwrap_or(0);
        if trace.chaos_digest() != our_digest {
            return Err(Error::trace_mismatch(
                "chaos plan",
                format!(
                    "trace was recorded under chaos-plan digest {:#018x} but this runtime's is {:#018x} (0 = no plan)",
                    trace.chaos_digest(),
                    our_digest
                ),
            ));
        }
        let ours = config.fingerprint();
        if trace.config_fingerprint() != ours {
            return Err(Error::trace_mismatch(
                "config fingerprint",
                format!(
                    "trace was recorded under config {} but this runtime is {ours}",
                    trace.config_fingerprint()
                ),
            ));
        }
        let verifier = TraceJob::Verify(TraceVerifier::new(trace.data().clone(), strict));
        Session::start(
            self,
            program,
            AdmitMode::QueueWhenFull,
            Some(verifier),
            LaunchOptions::new(),
        )?
        .wait()
    }

    /// Allocation, wake-up, and **scheduling** diagnostics, for asserting
    /// the warm-relaunch guarantees (zero re-allocation of backing storage
    /// across launches), the step-boundary batching of supervisor
    /// wake-ups, the admission queue's behaviour (current depth plus
    /// cumulative queued/admitted launch counts), and -- per partition --
    /// occupancy, per-tenant quota usage, and cross-tenant isolation (idle
    /// partitions show zero live threads, zero live sync variables, and an
    /// arena high-water mark back at its construction baseline, no matter
    /// what their neighbours did).
    ///
    /// The returned [`DiagnosticsSnapshot`] is plain data: every field is a
    /// counter or a nested plain-data struct, and
    /// [`DiagnosticsSnapshot::to_json`] serializes it through the same JSON
    /// encoder the durable trace format uses.
    pub fn diagnostics(&self) -> DiagnosticsSnapshot {
        let partitions: Vec<PartitionDiagnostics> =
            self.partitions.iter().map(|rt| partition_diagnostics(rt)).collect();
        let sum = |field: fn(&PartitionDiagnostics) -> u64| partitions.iter().map(field).sum();
        let (launches_queued, launches_admitted) = self.scheduler.admission_counts();
        let mut faults_injected = vec![0u64; ireplayer_sys::FaultClass::ALL.len()];
        for p in &partitions {
            for (total, &count) in faults_injected.iter_mut().zip(&p.faults_injected) {
                *total += count;
            }
        }
        DiagnosticsSnapshot {
            world_pokes: sum(|p| p.world_pokes),
            arena_allocations: sum(|p| p.arena_allocations),
            thread_lists_created: sum(|p| p.thread_lists_created),
            thread_lists_reused: sum(|p| p.thread_lists_reused),
            var_lists_created: sum(|p| p.var_lists_created),
            var_lists_reused: sum(|p| p.var_lists_reused),
            var_chunks_allocated: sum(|p| p.var_chunks_allocated),
            admission_queue_depth: self.scheduler.queue_len() as u64,
            launches_queued,
            launches_admitted,
            faults_injected,
            partitions,
        }
    }
}

/// The staging closure of a [`LaunchOptions`]: runs against the claimed
/// partition's kernel (stage files, register peers, enqueue clients) right
/// before the program starts.
pub type StageFn = Box<dyn FnOnce(&SimOs) + Send + 'static>;

/// Per-launch overrides for [`Runtime::launch_with`].
///
/// The default options reproduce [`Runtime::launch`] exactly; each builder
/// method opts one launch into a deviation from the runtime's
/// configuration.  The overrides travel with the launch through the
/// admission queue and are applied by the supervisor on whatever partition
/// the launch lands on.
#[derive(Default)]
pub struct LaunchOptions {
    /// Chaos plan for this launch only, replacing [`Config::chaos`].
    pub(crate) chaos: Option<ChaosPlan>,
    /// Kernel staging for this launch only, run at admission.
    pub(crate) stage: Option<StageFn>,
}

impl LaunchOptions {
    /// No overrides: equivalent to [`Runtime::launch`].
    pub fn new() -> Self {
        LaunchOptions::default()
    }

    /// Injects `plan` for this launch instead of the configured plan (if
    /// any).  The plan must pass [`ChaosPlan::verify`]; compiled and
    /// derived (minimizer-shrunk) plans both qualify.
    pub fn chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Runs `stage` against the claimed partition's kernel immediately
    /// before the program's main thread starts -- the per-launch
    /// equivalent of staging [`Runtime::os`] by hand, and the only way to
    /// stage reliably when the launch may queue behind others (a queued
    /// launch's partition is unknown until admission, and each admission
    /// reboots the kernel).
    pub fn stage(mut self, stage: impl FnOnce(&SimOs) + Send + 'static) -> Self {
        self.stage = Some(Box::new(stage));
        self
    }
}

impl std::fmt::Debug for LaunchOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaunchOptions")
            .field("chaos", &self.chaos.as_ref().map(|plan| plan.digest()))
            .field("stage", &self.stage.is_some())
            .finish()
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Stop admitting first: queued launches can only still exist here
        // if their handles were dropped (the session lifetime ties live
        // handles to the runtime), so abandoning them is unobservable.
        self.scheduler.shutdown();
        // Parked supervisors exit; a worker still driving a detached
        // session finishes its run first (it owns everything by Arc).
        self.pool.shutdown();
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("partitions", &self.partitions)
            .field("pool", &self.pool)
            .field("scheduler", &self.scheduler)
            .finish()
    }
}

fn partition_diagnostics(rt: &RtInner) -> PartitionDiagnostics {
    let var_chunks_allocated = {
        let table = rt.sync_table.read();
        let pool = rt.var_pool.lock();
        table
            .iter()
            .map(|var| var.var_list.allocated_chunks() as u64)
            .chain(pool.iter().map(|list| list.allocated_chunks() as u64))
            .sum()
    };
    PartitionDiagnostics {
        partition: rt.partition,
        session_active: rt.session_active.load(Ordering::Acquire),
        poisoned: rt.poisoned.load(Ordering::Acquire),
        arena_base: rt.arena.partition_base() as u64,
        arena_size: rt.arena.size() as u64,
        arena_in_use: rt.super_heap.high_water().as_usize() as u64,
        live_threads: rt.threads.read().len() as u64,
        live_sync_vars: (rt.sync_table.read().len() - INTERNAL_SYNC_VARS) as u64,
        pooled_thread_lists: rt.list_pool.lock().len() as u64,
        pooled_var_lists: rt.var_pool.lock().len() as u64,
        world_pokes: Counters::get(&rt.diag.world_pokes),
        arena_allocations: Counters::get(&rt.diag.arena_allocations),
        thread_lists_created: Counters::get(&rt.diag.thread_lists_created),
        thread_lists_reused: Counters::get(&rt.diag.thread_lists_reused),
        var_lists_created: Counters::get(&rt.diag.var_lists_created),
        var_lists_reused: Counters::get(&rt.diag.var_lists_reused),
        var_chunks_allocated,
        quota_epochs_used: Counters::get(&rt.counters.epochs),
        quota_events_used: Counters::get(&rt.counters.events_recorded),
        quota_max_epochs: rt.config.max_epochs,
        quota_max_events: rt.config.max_events,
        faults_injected: rt.diag.faults_injected.iter().map(Counters::get).collect(),
    }
}

/// Cumulative allocation and wake-up counters of one [`Runtime`], plus the
/// per-partition breakdown.
///
/// The interesting property is what *stays flat*: after a first launch has
/// warmed the pools, further launches of same-shaped programs leave
/// `arena_allocations`, `thread_lists_created`, `var_lists_created`, and
/// `var_chunks_allocated` unchanged -- the reset-to-quiescence path reuses
/// every backing chunk.  On a multi-partition runtime the top-level fields
/// aggregate across partitions and [`DiagnosticsSnapshot::partitions`]
/// carries each tenant's own view, including occupancy.  Marked
/// `#[non_exhaustive]`: more counters may be added.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct DiagnosticsSnapshot {
    /// Supervisor wake-ups (world condition-variable broadcasts) performed.
    pub world_pokes: u64,
    /// Arena backing allocations performed (exactly one *share* per
    /// partition at construction; never grows across launches).
    pub arena_allocations: u64,
    /// Per-thread event lists allocated from scratch.
    pub thread_lists_created: u64,
    /// Per-thread event lists recycled from the warm pool.
    pub thread_lists_reused: u64,
    /// Per-variable event lists allocated from scratch.
    pub var_lists_created: u64,
    /// Per-variable event lists recycled from the warm pool.
    pub var_lists_reused: u64,
    /// Backing chunks currently allocated across all per-variable lists
    /// (live and pooled); flat across warm relaunches.
    pub var_chunks_allocated: u64,
    /// Launches currently waiting on the admission queue for a partition
    /// to free up.
    pub admission_queue_depth: u64,
    /// Launches that had to wait on the admission queue (cumulative; a
    /// launch admitted straight onto a free partition does not count).
    pub launches_queued: u64,
    /// Launches admitted onto a partition (cumulative, queued or direct).
    pub launches_admitted: u64,
    /// Chaos faults injected into original executions across every
    /// partition, indexed by
    /// [`FaultClass::code`](ireplayer_sys::FaultClass::code); all zeros
    /// when no plan is configured.
    pub faults_injected: Vec<u64>,
    /// Per-partition occupancy and counters, in partition order.
    pub partitions: Vec<PartitionDiagnostics>,
}

/// One arena partition's occupancy and counters (see
/// [`RuntimeDiagnostics`]).
///
/// The isolation contract is directly checkable here: while a neighbour
/// partition runs, an idle partition's `live_threads` and `live_sync_vars`
/// stay 0, its `arena_in_use` stays at the construction baseline, and its
/// allocation counters stay flat.  Marked `#[non_exhaustive]`: more fields
/// may be added.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct PartitionDiagnostics {
    /// Partition index within the runtime.
    pub partition: u32,
    /// Whether a session currently occupies this partition.
    pub session_active: bool,
    /// Whether a failed teardown poisoned this partition.
    pub poisoned: bool,
    /// Byte offset of this partition within the shared arena backing.
    pub arena_base: u64,
    /// Size of this partition's arena view in bytes.
    pub arena_size: u64,
    /// Partition-relative super-heap high-water mark: how much of the
    /// partition's arena is (or was, until the next reset) in use.
    pub arena_in_use: u64,
    /// Application threads currently registered in this partition.
    pub live_threads: u64,
    /// Application-visible sync variables currently registered (beyond the
    /// partition's pre-registered internal ones).
    pub live_sync_vars: u64,
    /// Retired per-thread lists parked in this partition's warm pool.
    pub pooled_thread_lists: u64,
    /// Retired per-variable lists parked in this partition's warm pool.
    pub pooled_var_lists: u64,
    /// Supervisor wake-ups performed by this partition.
    pub world_pokes: u64,
    /// This partition's share of the backing allocation (1 at
    /// construction; never grows).
    pub arena_allocations: u64,
    /// Per-thread event lists this partition allocated from scratch.
    pub thread_lists_created: u64,
    /// Per-thread event lists this partition recycled from its pool.
    pub thread_lists_reused: u64,
    /// Per-variable event lists this partition allocated from scratch.
    pub var_lists_created: u64,
    /// Per-variable event lists this partition recycled from its pool.
    pub var_lists_reused: u64,
    /// Backing chunks currently allocated across this partition's
    /// per-variable lists (live and pooled).
    pub var_chunks_allocated: u64,
    /// Epochs the session currently occupying this partition has executed
    /// (the usage [`Config::max_epochs`] is enforced against; 0 on an idle
    /// partition, whose end-of-run reset restarts the counters).
    pub quota_epochs_used: u64,
    /// Recorded events (summed over every thread's log at each epoch
    /// close) of the session currently occupying this partition (the usage
    /// [`Config::max_events`] is enforced against; mid-epoch events appear
    /// at the next close).
    pub quota_events_used: u64,
    /// The configured [`Config::max_epochs`] quota (0 = unlimited).
    pub quota_max_epochs: u64,
    /// The configured [`Config::max_events`] quota (0 = unlimited).
    pub quota_max_events: u64,
    /// Chaos faults this partition injected into original executions,
    /// indexed by [`FaultClass::code`](ireplayer_sys::FaultClass::code).
    pub faults_injected: Vec<u64>,
}

/// Former name of [`DiagnosticsSnapshot`], kept as a shim for one release.
#[deprecated(note = "renamed to `DiagnosticsSnapshot`; the shape is unchanged")]
pub type RuntimeDiagnostics = DiagnosticsSnapshot;

impl DiagnosticsSnapshot {
    /// Serializes the snapshot as pretty-printed JSON, through the same
    /// encoder the durable trace format's JSON sibling uses -- suitable
    /// for shipping to external dashboards or diffing across runs.
    pub fn to_json(&self) -> String {
        json::obj(vec![
            ("world_pokes", json::Value::Int(self.world_pokes.into())),
            ("arena_allocations", json::Value::Int(self.arena_allocations.into())),
            (
                "thread_lists_created",
                json::Value::Int(self.thread_lists_created.into()),
            ),
            ("thread_lists_reused", json::Value::Int(self.thread_lists_reused.into())),
            ("var_lists_created", json::Value::Int(self.var_lists_created.into())),
            ("var_lists_reused", json::Value::Int(self.var_lists_reused.into())),
            (
                "var_chunks_allocated",
                json::Value::Int(self.var_chunks_allocated.into()),
            ),
            (
                "admission_queue_depth",
                json::Value::Int(self.admission_queue_depth.into()),
            ),
            ("launches_queued", json::Value::Int(self.launches_queued.into())),
            ("launches_admitted", json::Value::Int(self.launches_admitted.into())),
            ("faults_injected", faults_to_value(&self.faults_injected)),
            (
                "partitions",
                json::Value::Arr(self.partitions.iter().map(PartitionDiagnostics::to_value).collect()),
            ),
        ])
        .to_pretty_string()
    }
}

/// Per-class fault counts as a JSON object keyed by the class names
/// ([`FaultClass::name`](ireplayer_sys::FaultClass::name)).
fn faults_to_value(counts: &[u64]) -> json::Value {
    json::obj(
        ireplayer_sys::FaultClass::ALL
            .iter()
            .zip(counts)
            .map(|(class, &count)| (class.name(), json::Value::Int(count.into())))
            .collect(),
    )
}

impl PartitionDiagnostics {
    /// This partition's view as a JSON value (one element of
    /// [`DiagnosticsSnapshot::to_json`]'s `partitions` array).
    fn to_value(&self) -> json::Value {
        json::obj(vec![
            ("partition", json::Value::Int(self.partition.into())),
            ("session_active", json::Value::Bool(self.session_active)),
            ("poisoned", json::Value::Bool(self.poisoned)),
            ("arena_base", json::Value::Int(self.arena_base.into())),
            ("arena_size", json::Value::Int(self.arena_size.into())),
            ("arena_in_use", json::Value::Int(self.arena_in_use.into())),
            ("live_threads", json::Value::Int(self.live_threads.into())),
            ("live_sync_vars", json::Value::Int(self.live_sync_vars.into())),
            ("pooled_thread_lists", json::Value::Int(self.pooled_thread_lists.into())),
            ("pooled_var_lists", json::Value::Int(self.pooled_var_lists.into())),
            ("world_pokes", json::Value::Int(self.world_pokes.into())),
            ("arena_allocations", json::Value::Int(self.arena_allocations.into())),
            (
                "thread_lists_created",
                json::Value::Int(self.thread_lists_created.into()),
            ),
            ("thread_lists_reused", json::Value::Int(self.thread_lists_reused.into())),
            ("var_lists_created", json::Value::Int(self.var_lists_created.into())),
            ("var_lists_reused", json::Value::Int(self.var_lists_reused.into())),
            (
                "var_chunks_allocated",
                json::Value::Int(self.var_chunks_allocated.into()),
            ),
            ("quota_epochs_used", json::Value::Int(self.quota_epochs_used.into())),
            ("quota_events_used", json::Value::Int(self.quota_events_used.into())),
            ("quota_max_epochs", json::Value::Int(self.quota_max_epochs.into())),
            ("quota_max_events", json::Value::Int(self.quota_max_events.into())),
            ("faults_injected", faults_to_value(&self.faults_injected)),
        ])
    }
}

// ---------------------------------------------------------------------------
// The supervisor: one run from launch to report.
// ---------------------------------------------------------------------------

/// Drives one program to completion on the supervisor thread: spawns the
/// main application thread, runs the epoch protocol, tears the world down
/// to quiescence, builds the report, and resets the runtime for the next
/// launch.
pub(crate) fn supervise(
    rt: Arc<RtInner>,
    shared: Arc<SessionShared>,
    program_name: String,
    main_body: BodyFn,
    mut trace_job: Option<TraceJob>,
    mut options: LaunchOptions,
) -> Result<RunReport, Error> {
    let started = Instant::now();

    // Establish this launch's chaos world *fresh* before anything runs.
    // `SimOs::reset` keeps the previously installed plan, so without this
    // a per-launch override would leak into the partition's next tenant --
    // and, just as important for the minimizer's re-trials, reinstalling
    // zeroes every injection counter (the `ChaosRevocableState` family and
    // the recordable ones), so back-to-back candidate runs on a warm
    // partition start from identical injection state.
    match options.chaos.take().or_else(|| rt.config.chaos.clone()) {
        Some(plan) => rt.os.install_chaos(plan),
        None => rt.os.uninstall_chaos(),
    }
    // Per-launch kernel staging: the queue-safe replacement for staging
    // `Runtime::os` by hand before `launch` (which races admission on an
    // overcommitted runtime).  Runs before the trace job so a recorder
    // snapshots the staged inputs.
    if let Some(stage) = options.stage.take() {
        stage(&rt.os);
    }

    // Durable-trace work rides with the launch and starts before anything
    // runs: a recorder snapshots the staged kernel inputs and writes the
    // (epoch-less) trace header, a verifier restores the recorded inputs
    // into this partition's kernel.  A failure here means nothing ran.
    if let Some(job) = trace_job.as_mut() {
        if let Err(error) = job.begin(&rt, &program_name) {
            crate::session::seal_final_status(&rt, &shared);
            rt.reset_to_quiescence();
            rt.emit_event(|| SessionEvent::Finished {
                outcome: RunOutcome::Completed,
            });
            return Err(error);
        }
    }

    // Create the main application thread (ThreadId 0).  The local Arc is
    // dropped immediately: the end-of-run reset harvests each thread's
    // list storage via `Arc::try_unwrap`, so nothing may outlive the
    // `threads` table's reference.
    {
        let main_vt = rt.build_vthread("main".to_owned(), None);
        let rt_for_main = Arc::clone(&rt);
        let spawned = std::thread::Builder::new()
            .name("ireplayer-0".to_owned())
            .spawn(move || exec::thread_main(rt_for_main, main_vt, main_body));
        match spawned {
            Ok(handle) => rt.os_threads.lock().push(handle),
            Err(io) => {
                // Nothing ran: reset the registered-but-never-started
                // thread away so the runtime stays launchable, seal the
                // (empty) run for the session handle, and keep the
                // one-`Finished`-per-launch lifecycle invariant for
                // observers.
                crate::session::seal_final_status(&rt, &shared);
                rt.reset_to_quiescence();
                rt.emit_event(|| SessionEvent::Finished {
                    outcome: RunOutcome::Completed,
                });
                return Err(Error::thread_spawn(io));
            }
        }
    }

    let mut checkpoint = begin_epoch(&rt, true);
    let mut replay_validations: Vec<ReplayValidation> = Vec::new();
    let mut outcome = RunOutcome::Completed;
    let mut supervisor_error: Option<Error> = None;

    loop {
        wait_world_tick(&rt);

        if rt.abort_pending() && !rt.replaying() {
            // A fault occurred during recording (or passthrough).
            if let Err(e) = wait_for_settle(&rt) {
                supervisor_error = Some(e);
                break;
            }
            let fault = rt.epoch.lock().faults.first().cloned();
            let Some(fault) = fault else {
                // Spurious abort without a fault record; clear and go on.
                rt.abort_requested.store(false, Ordering::Release);
                continue;
            };
            outcome = RunOutcome::Faulted(fault.clone());
            // Record (or verify) the faulting partial epoch now, before a
            // diagnostic replay rolls the world back over these logs.
            if let Some(job) = trace_job.as_mut() {
                if let Err(error) = job.on_epoch_close(&rt) {
                    supervisor_error = Some(error);
                }
            }
            let diagnose =
                rt.config.fault_policy == FaultPolicy::DiagnoseAndReport && rt.config.mode == RunMode::Record;
            if diagnose && !rt.tainted() {
                let watch = fault_watchpoints(&rt, &fault);
                let request = ReplayRequest {
                    watch,
                    reason: format!("diagnose fault: {}", fault.kind),
                };
                match run_replay_cycle(&rt, &checkpoint, request, Some(fault.thread)) {
                    Ok(validation) => {
                        if let Some(error) = strict_budget_error(&rt, &validation) {
                            supervisor_error = Some(error);
                        }
                        replay_validations.push(validation);
                    }
                    Err(e) => supervisor_error = Some(e),
                }
            } else if diagnose && rt.config.strict_replay_budget {
                // The fault sits in an epoch tainted by an irrevocable
                // system call: the diagnostic replay can never even start,
                // let alone match -- a zero-attempt budget exhaustion.
                supervisor_error = Some(Error::replay_budget_exhausted(0));
            }
            break;
        }

        if all_threads_done(&rt) {
            // Final epoch end: let tools scan for evidence (implanted
            // overflows are detected here) and possibly replay.
            rt.emit_event(|| SessionEvent::EpochEnded {
                epoch: rt.epoch_number(),
            });
            let can_replay = rt.config.mode == RunMode::Record && !rt.tainted();
            let mut epoch_replays = 0u64;
            if let Some(request) = collect_epoch_decision(&rt, can_replay) {
                if can_replay {
                    match run_replay_cycle(&rt, &checkpoint, request, None) {
                        Ok(validation) => {
                            epoch_replays = u64::from(validation.attempts);
                            if let Some(error) = strict_budget_error(&rt, &validation) {
                                supervisor_error = Some(error);
                            }
                            replay_validations.push(validation);
                        }
                        Err(e) => supervisor_error = Some(e),
                    }
                }
            }
            close_epoch(&rt, epoch_replays, &mut trace_job, &mut supervisor_error);
            break;
        }

        if rt.epoch_end_pending() && !rt.replaying() {
            match wait_for_quiescence(&rt) {
                Quiescence::Reached => {
                    rt.emit_event(|| SessionEvent::EpochEnded {
                        epoch: rt.epoch_number(),
                    });
                    let can_replay = rt.config.mode == RunMode::Record && !rt.tainted();
                    let mut epoch_replays = 0u64;
                    if let Some(request) = collect_epoch_decision(&rt, can_replay) {
                        if can_replay {
                            match run_replay_cycle(&rt, &checkpoint, request, None) {
                                Ok(validation) => {
                                    epoch_replays = u64::from(validation.attempts);
                                    let strict_error = strict_budget_error(&rt, &validation);
                                    replay_validations.push(validation);
                                    if let Some(error) = strict_error {
                                        supervisor_error = Some(error);
                                        close_epoch(&rt, epoch_replays, &mut trace_job, &mut supervisor_error);
                                        break;
                                    }
                                }
                                Err(e) => {
                                    supervisor_error = Some(e);
                                    close_epoch(&rt, epoch_replays, &mut trace_job, &mut supervisor_error);
                                    break;
                                }
                            }
                        }
                    }
                    close_epoch(&rt, epoch_replays, &mut trace_job, &mut supervisor_error);
                    // A strict trace verification that diverged at this
                    // close stops the run here, at the first divergence.
                    if supervisor_error.is_some() {
                        break;
                    }
                    // A continue-type epoch end means the program wants
                    // more epochs: the per-tenant quotas are enforced
                    // here, cutting the session off at the boundary
                    // instead of mid-epoch.
                    if let Some(error) = enforce_quotas(&rt) {
                        supervisor_error = Some(error);
                        break;
                    }
                    checkpoint = begin_epoch(&rt, false);
                }
                Quiescence::Stalled => {
                    // Some thread is blocked mid-step on a wait its
                    // peers have already parked past; cancel the stop and
                    // retry at the next trigger.
                    cancel_epoch_end(&rt);
                }
                Quiescence::Failed(stuck) => {
                    supervisor_error = Some(Error::quiescence_timeout(stuck));
                    break;
                }
            }
        }
    }

    // Teardown: bring every thread to rest (threads blocked in waits honour
    // the abort flag), command them to exit, and join.
    rt.abort_requested.store(true, Ordering::Release);
    rt.poke_world();
    let settle = wait_for_settle(&rt);
    rt.abort_requested.store(false, Ordering::Release);
    if let Err(error) = settle {
        // Threads that never settle cannot be joined; refuse to reuse the
        // runtime (its warm state can no longer be trusted) and leave the
        // stragglers detached.
        let stuck = error.stuck_threads().map(<[u32]>::to_vec).unwrap_or_default();
        rt.poison(stuck.clone());
        rt.os_threads.lock().clear();
        crate::session::seal_final_status(&rt, &shared);
        rt.emit_event(|| SessionEvent::Finished {
            outcome: outcome.clone(),
        });
        return Err(Error::poisoned(stuck));
    }
    for vt in rt.threads.read().iter() {
        let mut control = vt.control.lock();
        control.command = Some(Command::Exit);
        control.awaiting_creation = false;
        vt.notify();
    }
    let handles: Vec<_> = rt.os_threads.lock().drain(..).collect();
    for handle in handles {
        let _ = handle.join();
    }

    let result = if let Some(error) = supervisor_error {
        Err(error)
    } else {
        let final_high_water = rt.super_heap.high_water().as_usize();
        let faults_injected = {
            let mut counts = vec![0u64; ireplayer_sys::FaultClass::ALL.len()];
            for (class, count) in rt.os.chaos_injected() {
                counts[class.code() as usize] = count;
            }
            counts
        };
        let epoch_guard = rt.epoch.lock();
        Ok(RunReport {
            program: program_name,
            wall_time: started.elapsed(),
            outcome: outcome.clone(),
            epochs: Counters::get(&rt.counters.epochs),
            threads: rt.threads.read().len() as u32,
            sync_events: Counters::get(&rt.counters.sync_events),
            syscalls: Counters::get(&rt.counters.syscalls),
            allocations: Counters::get(&rt.counters.allocations),
            frees: Counters::get(&rt.counters.frees),
            bytes_allocated: Counters::get(&rt.counters.bytes_allocated),
            replay_attempts: Counters::get(&rt.counters.replay_attempts),
            divergences: Counters::get(&rt.counters.divergences),
            final_heap_hash: rt.arena.hash_prefix(final_high_water),
            replay_validations,
            watch_hits: epoch_guard.watch_hits.clone(),
            faults: epoch_guard.faults.clone(),
            faults_injected,
        })
    };

    // Seal or verify the durable trace against the finished run: a
    // recorder writes the summary (fingerprint, outcome), a verifier
    // checks that the re-execution produced every recorded epoch and the
    // recorded fingerprint.  An earlier supervisor error keeps precedence.
    let result = match (result, trace_job.as_mut()) {
        (Ok(report), Some(job)) => job.finish(&report).map(|()| report),
        (result, _) => result,
    };

    // A live replay request the run never found a replayable boundary for
    // (every remaining epoch was tainted, or the run ended first) is
    // announced as a zero-attempt replay so observers are not left
    // waiting for it.
    if rt.pending_replay.lock().take().is_some() {
        rt.emit_event(|| SessionEvent::ReplayFinished {
            epoch: rt.epoch_number(),
            attempts: 0,
            matched: false,
        });
    }

    // End-of-run teardown is a reset to quiescence: the next launch starts
    // from a pristine-but-warm runtime.  The final status is sealed first,
    // so `Session::status` keeps describing this run after the live
    // counters restart from zero.
    crate::session::seal_final_status(&rt, &shared);
    rt.reset_to_quiescence();
    rt.emit_event(|| SessionEvent::Finished {
        outcome: outcome.clone(),
    });
    result
}

// ---------------------------------------------------------------------------
// Supervisor helpers.
// ---------------------------------------------------------------------------

/// Completes an epoch's bookkeeping: accumulates the epoch's per-thread
/// log events into the session-wide total (the figure the `max_events`
/// quota and `PartitionDiagnostics::quota_events_used` are built on) and
/// announces [`SessionEvent::EpochClosed`] with the epoch's own counters.
/// Called before the next [`begin_epoch`] clears the logs.  The epoch's
/// order logs are still live here, so this is also where the launch's
/// [`TraceJob`] streams the epoch durably (or checks it against a loaded
/// trace); a trace failure is parked in `supervisor_error` without
/// displacing an earlier error.
fn close_epoch(
    rt: &RtInner,
    replays_attempted: u64,
    trace_job: &mut Option<TraceJob>,
    supervisor_error: &mut Option<Error>,
) {
    let events_recorded: u64 = rt.threads.read().iter().map(|vt| vt.list.len() as u64).sum();
    Counters::add(&rt.counters.events_recorded, events_recorded);
    rt.emit_event(|| SessionEvent::EpochClosed {
        epoch: rt.epoch_number(),
        events_recorded,
        replays_attempted,
    });
    if let Some(job) = trace_job.as_mut() {
        if let Err(error) = job.on_epoch_close(rt) {
            if supervisor_error.is_none() {
                *supervisor_error = Some(error);
            }
        }
    }
}

/// Per-tenant quota bookkeeping at an epoch close whose program still
/// wants to continue: returns the [`ErrorKind::QuotaExhausted`]
/// (crate::ErrorKind) error once a configured quota is used up, and emits
/// one [`SessionEvent::QuotaWarning`] per resource when usage first
/// reaches three quarters of its quota.  A session that *finishes* inside
/// its budget is never cut (the final-epoch close does not come here).
fn enforce_quotas(rt: &RtInner) -> Option<Error> {
    const EPOCHS_WARNED: u8 = 1 << 0;
    const EVENTS_WARNED: u8 = 1 << 1;
    let quotas = [
        (
            "epochs",
            EPOCHS_WARNED,
            Counters::get(&rt.counters.epochs),
            rt.config.max_epochs,
        ),
        (
            "events",
            EVENTS_WARNED,
            Counters::get(&rt.counters.events_recorded),
            rt.config.max_events,
        ),
    ];
    for (resource, warned_bit, used, limit) in quotas {
        if limit == 0 {
            continue;
        }
        if used >= limit {
            return Some(Error::quota_exhausted(resource, used, limit));
        }
        let warn_threshold_reached = used.saturating_mul(4) >= limit.saturating_mul(3);
        if warn_threshold_reached && rt.quota_warned.fetch_or(warned_bit, Ordering::AcqRel) & warned_bit == 0 {
            rt.emit_event(|| SessionEvent::QuotaWarning {
                epoch: rt.epoch_number(),
                resource,
                used,
                limit,
            });
        }
    }
    None
}

/// Under [`Config::strict_replay_budget`], an unmatched replay cycle
/// becomes an [`ErrorKind::ReplayBudgetExhausted`](crate::ErrorKind) error
/// carrying the attempts spent.
fn strict_budget_error(rt: &RtInner, validation: &ReplayValidation) -> Option<Error> {
    (rt.config.strict_replay_budget && !validation.matched).then(|| Error::replay_budget_exhausted(validation.attempts))
}

fn wait_world_tick(rt: &RtInner) {
    let version = rt.world_version.load(Ordering::Acquire);
    let mut guard = rt.world_lock.lock();
    if rt.world_version.load(Ordering::Acquire) != version {
        return;
    }
    rt.world_cv.wait_for(&mut guard, SUPERVISOR_SLICE);
}

fn all_threads_done(rt: &RtInner) -> bool {
    rt.threads
        .read()
        .iter()
        .all(|vt| matches!(vt.control.lock().phase, ThreadPhase::Finished | ThreadPhase::Reclaimed))
}

/// Waits until every thread is settled (parked, finished, reclaimed, or
/// idle), used after an abort and by the end-of-run teardown.
fn wait_for_settle(rt: &RtInner) -> Result<(), Error> {
    let deadline = Instant::now() + Duration::from_millis(rt.config.quiescence_timeout_ms);
    loop {
        let stuck: Vec<u32> = rt
            .threads
            .read()
            .iter()
            .filter(|vt| matches!(vt.control.lock().phase, ThreadPhase::Running))
            .map(|vt| vt.id.0)
            .collect();
        if stuck.is_empty() {
            return Ok(());
        }
        if Instant::now() > deadline {
            return Err(Error::quiescence_timeout(stuck));
        }
        wait_world_tick(rt);
    }
}

enum Quiescence {
    Reached,
    Stalled,
    Failed(Vec<u32>),
}

/// Waits for step-boundary quiescence for a continue-type epoch end.
fn wait_for_quiescence(rt: &RtInner) -> Quiescence {
    let stall_window = Duration::from_millis(200);
    let deadline = Instant::now() + Duration::from_millis(rt.config.quiescence_timeout_ms);
    let mut last_progress = Instant::now();
    let mut last_running = usize::MAX;
    loop {
        let running: Vec<u32> = rt
            .threads
            .read()
            .iter()
            .filter(|vt| matches!(vt.control.lock().phase, ThreadPhase::Running | ThreadPhase::Idle))
            .map(|vt| vt.id.0)
            .collect();
        if running.is_empty() {
            return Quiescence::Reached;
        }
        if running.len() != last_running {
            last_running = running.len();
            last_progress = Instant::now();
        }
        if Instant::now() > deadline {
            return Quiescence::Failed(running);
        }
        // If only a few threads remain running and nothing has changed for a
        // while, they are very likely blocked mid-step on an application
        // wait; give up on this stop and let execution continue.
        if Instant::now().duration_since(last_progress) > stall_window {
            return Quiescence::Stalled;
        }
        wait_world_tick(rt);
    }
}

fn cancel_epoch_end(rt: &RtInner) {
    rt.epoch_end_requested.store(false, Ordering::Release);
    rt.epoch.lock().end_reason = None;
    // Re-release the threads that already parked for the cancelled stop.
    for vt in rt.threads.read().iter() {
        let mut control = vt.control.lock();
        if control.phase == ThreadPhase::Parked
            && control.last_segment_end == Some(SegmentEnd::Stopped)
            && control.command.is_none()
        {
            control.command = Some(Command::Run {
                target: None,
                expect_fault: false,
            });
            vt.notify();
        }
    }
    rt.poke_world();
}

/// Housekeeping plus checkpoint plus release: the epoch-begin protocol of
/// §3.1.  Returns the new checkpoint.
fn begin_epoch(rt: &Arc<RtInner>, first: bool) -> Checkpoint {
    // Housekeeping: issue deferred system calls, reclaim joined threads,
    // drop the previous epoch's logs.
    if !first {
        rt.bump_epoch_number();
    }
    {
        let mut epoch = rt.epoch.lock();
        for op in epoch.deferred.drain(..) {
            match op {
                crate::state::DeferredOp::Close(fd) => {
                    let _ = rt.os.close(fd);
                }
                crate::state::DeferredOp::Munmap(addr) => {
                    let _ = rt.os.munmap(addr);
                }
            }
        }
        epoch.end_reason = None;
        epoch.tainted_by = None;
        epoch.divergences.clear();
        epoch.pending_reclaim.clear();
    }
    rt.clear_taint();
    Counters::bump(&rt.counters.epochs);
    rt.replay_attempt.store(0, Ordering::Release);
    rt.delay_plan.lock().clear();
    rt.delay_plan_active.store(false, Ordering::Release);

    for vt in rt.threads.read().iter() {
        // Reclaim finished-and-joined threads.
        let mut control = vt.control.lock();
        if control.phase == ThreadPhase::Finished && control.joined {
            control.command = Some(Command::Exit);
            vt.notify();
        }
        control.segment_steps = 0;
        control.last_segment_end = None;
        drop(control);
        // SAFETY: epoch begin runs on the coordinator at step-boundary
        // quiescence -- every application thread is parked (the park
        // handshake through its control mutex happened-before this), so no
        // append or read races the reset.
        #[allow(unsafe_code)]
        unsafe {
            vt.list.clear();
        }
    }
    for var in rt.sync_table.read().iter() {
        var.var_list.clear();
    }
    rt.epoch.lock().watch_hits.clear();

    let checkpoint = checkpoint::capture(rt);
    rt.emit_event(|| SessionEvent::EpochBegan {
        epoch: rt.epoch_number(),
    });

    // Release: clear the stop flag, then command every runnable thread.
    rt.epoch_end_requested.store(false, Ordering::Release);
    for vt in rt.threads.read().iter() {
        let mut control = vt.control.lock();
        if matches!(control.phase, ThreadPhase::Idle | ThreadPhase::Parked) {
            control.command = Some(Command::Run {
                target: None,
                expect_fault: false,
            });
            vt.notify();
        }
    }
    rt.poke_world();
    checkpoint
}

/// Runs every hook's epoch-end inspection and merges the replay requests,
/// including any request queued live through
/// [`crate::Session::request_replay`].  The live request is only consumed
/// when this boundary can actually replay (`can_replay`); otherwise it
/// stays queued for the next replayable epoch end, instead of silently
/// vanishing into a tainted epoch.
fn collect_epoch_decision(rt: &Arc<RtInner>, can_replay: bool) -> Option<ReplayRequest> {
    let view = RtEpochView { rt: Arc::clone(rt) };
    let mut merged: Option<ReplayRequest> = if can_replay {
        rt.pending_replay.lock().take()
    } else {
        None
    };
    for hook in rt.hooks.read().iter() {
        match hook.at_epoch_end(&view) {
            EpochDecision::Continue => {}
            EpochDecision::Replay(request) => match &mut merged {
                None => merged = Some(request),
                Some(existing) => {
                    existing.watch.extend(request.watch);
                    if existing.reason.is_empty() {
                        existing.reason = request.reason;
                    }
                }
            },
            // Future decisions default to continuing; the enum is
            // non-exhaustive for downstream crates.
            #[allow(unreachable_patterns)]
            _ => {}
        }
    }
    merged
}

/// Asks hooks for fault-specific watchpoints (§4.3: binary analysis of the
/// faulting address, here delegated to the registered tools).
fn fault_watchpoints(rt: &Arc<RtInner>, fault: &FaultRecord) -> Vec<Span> {
    let view = RtEpochView { rt: Arc::clone(rt) };
    let mut spans = Vec::new();
    for hook in rt.hooks.read().iter() {
        spans.extend(hook.on_fault(fault, &view));
    }
    spans
}

// ---------------------------------------------------------------------------
// Rollback and replay (§3.4, §3.5).
// ---------------------------------------------------------------------------

/// Per-thread replay plan derived from the state at the epoch end.
struct ReplayPlan {
    targets: HashMap<ThreadId, u64>,
    created_in_epoch: Vec<ThreadId>,
    skip: Vec<ThreadId>,
    faulting: Option<ThreadId>,
}

fn build_replay_plan(rt: &RtInner, checkpoint: &Checkpoint, faulting: Option<ThreadId>) -> ReplayPlan {
    let mut plan = ReplayPlan {
        targets: HashMap::new(),
        created_in_epoch: Vec::new(),
        skip: Vec::new(),
        faulting,
    };
    for (index, vt) in rt.threads.read().iter().enumerate() {
        let control = vt.control.lock();
        match checkpoint.threads.get(index) {
            Some(saved) => {
                if matches!(saved.phase, ThreadPhase::Finished | ThreadPhase::Reclaimed) {
                    plan.skip.push(vt.id);
                } else {
                    plan.targets.insert(vt.id, control.segment_steps);
                }
            }
            None => {
                plan.created_in_epoch.push(vt.id);
                plan.targets.insert(vt.id, control.segment_steps);
            }
        }
    }
    plan
}

fn run_replay_cycle(
    rt: &Arc<RtInner>,
    checkpoint: &Checkpoint,
    request: ReplayRequest,
    faulting: Option<ThreadId>,
) -> Result<ReplayValidation, Error> {
    if rt.config.mode != RunMode::Record {
        return Err(Error::recording_disabled());
    }
    if let Some(syscall) = rt.epoch.lock().tainted_by {
        return Err(Error::unreplayable_epoch(syscall));
    }

    let plan = build_replay_plan(rt, checkpoint, faulting);
    let epoch_number = checkpoint.epoch;

    // Image of the original epoch end, used for the identical-replay
    // validation of §5.2 / Table 1.
    let original_end = if rt.config.validate_replay_image {
        let high_water = rt.super_heap.high_water().as_usize();
        Some(MemSnapshot::capture(&rt.arena, high_water))
    } else {
        None
    };

    // Install up to four watchpoints (hardware debug-register limit).
    {
        let mut watch = rt.watch.lock();
        watch.clear();
        for span in request.watch.iter().take(ireplayer_mem::MAX_WATCHPOINTS) {
            let _ = watch.install(*span);
        }
        rt.watch_active.store(!watch.is_empty(), Ordering::Release);
    }

    let mut matched = false;
    let mut attempts = 0;
    let max_attempts = rt.config.max_replay_attempts;

    for attempt in 1..=max_attempts {
        attempts = attempt;
        Counters::bump(&rt.counters.replay_attempts);
        rt.replay_attempt.store(attempt, Ordering::Release);
        rt.emit_event(|| SessionEvent::ReplayStarted {
            epoch: epoch_number,
            attempt,
        });

        // Rollback (§3.4).
        rt.abort_requested.store(false, Ordering::Release);
        rt.epoch_end_requested.store(false, Ordering::Release);
        checkpoint::restore(rt, checkpoint);
        for vt in rt.threads.read().iter() {
            vt.list.begin_replay();
        }
        for var in rt.sync_table.read().iter() {
            var.var_list.begin_replay();
        }
        {
            let mut epoch = rt.epoch.lock();
            epoch.watch_hits.clear();
        }
        let divergences_before = rt.epoch.lock().divergences.len();
        let faults_before = rt.epoch.lock().faults.len();
        rt.set_phase(ExecPhase::Replaying);

        // Release the threads that participate in the re-execution.  Threads
        // created inside the replayed epoch are configured *first* (marked
        // as awaiting their creation event) so that a parent replaying a
        // `spawn` cannot clear a flag that has not been set yet.
        let configure = |vt: &VThread, awaiting: bool| {
            let Some(target) = plan.targets.get(&vt.id).copied() else {
                return;
            };
            let expect_fault = plan.faulting == Some(vt.id);
            let mut control = vt.control.lock();
            control.segment_steps = 0;
            control.last_segment_end = None;
            control.awaiting_creation = awaiting;
            // Reset the life-cycle phase left over from the recorded
            // segment: a thread that had already *finished* its recorded
            // segment would otherwise satisfy a replaying `join` before it
            // re-ran a single step, letting the joiner race ahead of the
            // re-execution.
            control.phase = if awaiting {
                ThreadPhase::Idle
            } else {
                ThreadPhase::Parked
            };
            control.command = Some(Command::Run {
                // The faulting thread re-runs its final (interrupted) step.
                target: Some(if expect_fault { target + 1 } else { target }),
                expect_fault,
            });
            drop(control);
            vt.notify();
        };
        for vt in rt.threads.read().iter() {
            if plan.skip.contains(&vt.id) || !plan.created_in_epoch.contains(&vt.id) {
                continue;
            }
            configure(vt, true);
        }
        for vt in rt.threads.read().iter() {
            if plan.skip.contains(&vt.id) || plan.created_in_epoch.contains(&vt.id) {
                continue;
            }
            configure(vt, false);
        }
        rt.poke_world();

        // Wait for the attempt to settle.
        let mut settled = wait_replay_settle(rt, &plan);
        if !settled {
            // A stalled attempt (threads waiting for recorded turns that a
            // racy re-execution will never produce) is treated like a
            // divergence: abort the attempt, let every thread park, and try
            // again with fresh delays (§3.5.2).
            rt.abort_requested.store(true, Ordering::Release);
            rt.poke_world();
            settled = wait_replay_settle(rt, &plan);
            rt.abort_requested.store(false, Ordering::Release);
        }
        crate::state::rt_trace!(
            "replay attempt {attempt}: settled={settled} divergences={:?}",
            rt.epoch.lock().divergences.len()
        );

        let diverged = rt.epoch.lock().divergences.len() > divergences_before;
        let fault_reproduced = rt.epoch.lock().faults.len() > faults_before;
        let complete = plan.targets.keys().all(|tid| rt.thread(*tid).list.replay_complete());
        let fault_ok = plan.faulting.is_none() || fault_reproduced;

        crate::state::rt_trace!(
            "replay attempt {attempt}: diverged={diverged} complete={complete} fault_ok={fault_ok}"
        );
        if settled && !diverged && complete && fault_ok {
            matched = true;
            break;
        }

        // Prepare random delays at the diverging points for the next
        // attempt (§3.5.2).
        augment_delay_plan(rt, divergences_before);
        // Clear any abort left over from the failed attempt before rolling
        // back again.
        rt.abort_requested.store(false, Ordering::Release);
    }

    // Tear down replay state.
    rt.watch_active.store(false, Ordering::Release);
    rt.watch.lock().clear();
    rt.abort_requested.store(false, Ordering::Release);
    rt.set_phase(match rt.config.mode {
        RunMode::Record => ExecPhase::Recording,
        _ => ExecPhase::Passthrough,
    });
    for vt in rt.threads.read().iter() {
        vt.list.end_replay();
    }

    let image_diff = original_end.map(|snapshot| snapshot.diff(&rt.arena));

    let view = RtEpochView { rt: Arc::clone(rt) };
    for hook in rt.hooks.read().iter() {
        hook.after_replay(&view, matched, attempts);
    }
    rt.emit_event(|| SessionEvent::ReplayFinished {
        epoch: epoch_number,
        attempts,
        matched,
    });

    Ok(ReplayValidation {
        epoch: epoch_number,
        attempts,
        matched,
        image_diff,
    })
}

/// Waits until every replaying thread has ended its segment (parked,
/// finished, or still idle awaiting a creation event that never came).
fn wait_replay_settle(rt: &RtInner, plan: &ReplayPlan) -> bool {
    let deadline = Instant::now() + Duration::from_millis(rt.config.quiescence_timeout_ms);
    loop {
        let mut unsettled = 0;
        for vt in rt.threads.read().iter() {
            if plan.skip.contains(&vt.id) || !plan.targets.contains_key(&vt.id) {
                continue;
            }
            let control = vt.control.lock();
            // A pending command counts as unsettled regardless of the phase
            // left over from the recorded segment (Finished/Parked): the
            // worker may not have woken to pick the command up yet.
            if control.phase == ThreadPhase::Running || (control.command.is_some() && !control.awaiting_creation) {
                unsettled += 1;
            }
        }
        if unsettled == 0 {
            return true;
        }
        if Instant::now() > deadline {
            return false;
        }
        wait_world_tick(rt);
    }
}

/// Adds randomized delays before the events where the failed attempt
/// diverged, bounded by the configured maximum (§3.5.2).
fn augment_delay_plan(rt: &RtInner, divergences_before: usize) {
    let epoch = rt.epoch.lock();
    let new_divergences: Vec<(ThreadId, usize)> = epoch
        .divergences
        .iter()
        .skip(divergences_before)
        .map(|d| (d.thread, d.at_index))
        .collect();
    drop(epoch);
    let mut rng = rt.replay_rng.lock();
    let max_delay = rt.config.max_divergence_delay_us.max(1);
    let mut plan = rt.delay_plan.lock();
    if new_divergences.is_empty() {
        // The attempt failed without an explicit divergence (for example an
        // expected fault that did not reproduce): jitter the start of every
        // thread instead.
        for vt in rt.threads.read().iter() {
            plan.insert((vt.id, 0), rng.next_below(max_delay));
        }
    } else {
        for (thread, at_index) in new_divergences {
            plan.insert((thread, at_index as u32), rng.next_below(max_delay));
        }
    }
    rt.delay_plan_active.store(!plan.is_empty(), Ordering::Release);
}

// ---------------------------------------------------------------------------
// Epoch view handed to tool hooks.
// ---------------------------------------------------------------------------

struct RtEpochView {
    rt: Arc<RtInner>,
}

impl EpochView for RtEpochView {
    fn epoch(&self) -> u64 {
        self.rt.epoch_number()
    }

    fn corrupted_canaries(&self) -> Vec<CorruptedCanary> {
        let mut evidence = self.rt.pending_canary_evidence.lock().clone();
        if let Ok(mut scanned) = self.rt.canaries.lock().check(&self.rt.arena) {
            evidence.append(&mut scanned);
        }
        evidence
    }

    fn use_after_free_evidence(&self) -> Vec<UafEvidence> {
        let mut evidence = self.rt.pending_uaf_evidence.lock().clone();
        for vt in self.rt.threads.read().iter() {
            if let Ok(mut scanned) = vt.quarantine.lock().check(&self.rt.arena) {
                evidence.append(&mut scanned);
            }
        }
        evidence
    }

    fn read_bytes(&self, addr: MemAddr, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        let _ = self.rt.arena.read_bytes(addr, &mut buf);
        buf
    }

    fn alloc_site(&self, addr: MemAddr) -> Option<crate::site::Site> {
        let payload = if self.rt.alloc_sites.lock().contains_key(&addr) {
            addr
        } else {
            crate::alloc::containing_allocation(&self.rt, addr)?.payload
        };
        let site = self.rt.alloc_sites.lock().get(&payload).copied()?;
        self.rt.sites.resolve(site)
    }

    fn free_site(&self, payload: MemAddr) -> Option<crate::site::Site> {
        let site = self.rt.free_sites.lock().get(&payload).copied()?;
        self.rt.sites.resolve(site)
    }

    fn faults(&self) -> Vec<FaultRecord> {
        self.rt.epoch.lock().faults.clone()
    }

    fn watch_hits(&self) -> Vec<WatchHitReport> {
        self.rt.epoch.lock().watch_hits.clone()
    }
}

// ---------------------------------------------------------------------------
// Panic-hook installation: runtime-internal unwinds must not spam stderr.
// ---------------------------------------------------------------------------

fn install_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<UnwindSignal>().is_some() {
                // Runtime-internal control-flow unwind; silent by design.
                return;
            }
            previous(info);
        }));
    });
}

// Internal consistency note: the epoch-end reason is currently only used for
// bookkeeping; expose it for tests.
#[allow(dead_code)]
pub(crate) fn epoch_end_reason(rt: &RtInner) -> Option<EpochEndReason> {
    rt.epoch.lock().end_reason
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Step;

    fn small_config() -> Config {
        Config::builder()
            .arena_size(4 << 20)
            .heap_block_size(128 << 10)
            .build()
            .unwrap()
    }

    #[test]
    fn single_thread_program_completes() {
        let runtime = Runtime::new(small_config()).unwrap();
        let report = runtime
            .run(Program::new("single", |ctx| {
                let cell = ctx.global("cell", 8);
                let value = ctx.read_u64(cell);
                ctx.write_u64(cell, value + 1);
                if value + 1 == 5 {
                    Step::Done
                } else {
                    Step::Yield
                }
            }))
            .unwrap();
        assert!(report.outcome.is_success());
        assert_eq!(report.threads, 1);
        assert!(report.epochs >= 1);
    }

    #[test]
    fn spawned_threads_run_and_join() {
        let runtime = Runtime::new(small_config()).unwrap();
        let report = runtime
            .run(Program::new("spawner", |ctx| {
                let counter = ctx.global("counter", 8);
                let mutex = ctx.mutex();
                let mut handles = Vec::new();
                for _ in 0..3 {
                    handles.push(ctx.spawn("worker", move |ctx| {
                        ctx.lock(mutex);
                        let value = ctx.read_u64(counter);
                        ctx.write_u64(counter, value + 1);
                        ctx.unlock(mutex);
                        Step::Done
                    }));
                }
                for handle in handles {
                    ctx.join(handle);
                }
                let total = ctx.read_u64(counter);
                ctx.assert_that(total == 3, "all workers incremented");
                Step::Done
            }))
            .unwrap();
        assert!(report.outcome.is_success(), "faults: {:?}", report.faults);
        assert_eq!(report.threads, 4);
        assert!(report.sync_events > 0);
    }

    #[test]
    fn invalid_sync_handle_faults_instead_of_panicking() {
        // A handle minted by another runtime resolves to no shadow object;
        // the runtime must surface that as a fault, not unwind an index
        // panic through the application's frames.
        let runtime = Runtime::new(small_config()).unwrap();
        let report = runtime
            .run(Program::new("forged-handle", |ctx| {
                ctx.lock(crate::context::MutexHandle(ireplayer_log::VarId(9_999)));
                Step::Done
            }))
            .unwrap();
        assert!(!report.outcome.is_success());
        let fault = report.faults.first().expect("fault recorded");
        assert!(fault.to_string().contains("never registered") || format!("{fault:?}").contains("never registered"));
    }

    #[test]
    fn segfault_is_reported_as_fault() {
        let runtime = Runtime::new(small_config()).unwrap();
        let report = runtime
            .run(Program::new("oob", |ctx| {
                // Dereference the null address: the analogue of a SIGSEGV.
                let _ = ctx.read_u64(ireplayer_mem::MemAddr::NULL);
                Step::Done
            }))
            .unwrap();
        assert!(!report.outcome.is_success());
        assert!(!report.faults.is_empty());
    }

    #[test]
    fn a_runtime_is_reusable_after_a_fault() {
        let runtime = Runtime::new(small_config()).unwrap();
        let crashed = runtime
            .run(Program::new("crasher", |ctx| ctx.crash("intentional")))
            .unwrap();
        assert!(!crashed.outcome.is_success());
        let clean = runtime
            .run(Program::new("clean", |ctx| {
                let cell = ctx.alloc(16);
                ctx.write_u64(cell, 7);
                let value = ctx.read_u64(cell);
                ctx.assert_that(value == 7, "clean run works");
                Step::Done
            }))
            .unwrap();
        assert!(clean.outcome.is_success(), "faults: {:?}", clean.faults);
        // The fault from the first run must not leak into the second report.
        assert!(clean.faults.is_empty());
    }
}
