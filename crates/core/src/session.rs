//! [`Session`]: the live handle to one running program.
//!
//! [`crate::Runtime::launch`] hands back a `Session` while the program runs
//! on background threads.  The handle is the *in-situ* control surface the
//! paper's long-lived deployment model implies: the caller can watch the
//! epoch lifecycle ([`Session::status`], [`Session::subscribe`]), steer it
//! ([`Session::request_replay`] queues a rollback/re-execution for the next
//! epoch boundary), and finally collect the report ([`Session::wait`]).
//!
//! A runtime drives one session **per arena partition** at a time: each
//! session exclusively owns its partition's arena slice, logs, and
//! simulated-OS namespace for the duration of the run, and the partition is
//! reset (alone) when the run ends.  [`crate::Runtime::launch`] claims the
//! lowest-indexed free partition and fails with
//! [`ErrorKind::SessionActive`](crate::ErrorKind) only when every partition
//! is occupied.  The supervisor driving a session is an actor on the
//! runtime's shared worker pool, not a freshly spawned thread per launch.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::config::RunMode;
use crate::error::Error;
use crate::events::{EventFilter, EventStream};
use crate::hooks::ReplayRequest;
use crate::program::Program;
use crate::runtime::{supervise, Runtime};
use crate::state::{ExecPhase, RtInner};
use crate::stats::{Counters, RunReport};

/// What the runtime is doing right now, as seen by [`Session::status`].
///
/// Marked `#[non_exhaustive]`: new phases may be added; downstream matches
/// must keep a wildcard arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RunPhase {
    /// Executing directly with no recording ([`RunMode::Passthrough`]).
    Passthrough,
    /// Recording the original execution.
    Recording,
    /// Rolled back and re-executing the last epoch.
    Replaying,
    /// The run is over; [`Session::wait`] will not block.
    Finished,
}

/// A point-in-time snapshot of a session, assembled entirely from the
/// runtime's lock-free atomics -- polling it never contends with the
/// record fast path or the coordinator.
///
/// Marked `#[non_exhaustive]`: new fields may be added.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct SessionStatus {
    /// Current epoch number (0-based).
    pub epoch: u64,
    /// What the runtime is doing right now.
    pub phase: RunPhase,
    /// The 1-based number of the replay attempt in flight (0 outside
    /// replays).
    pub replay_attempt: u32,
    /// Total replay attempts performed so far in this run.
    pub replay_attempts: u64,
    /// Divergences observed so far in this run.
    pub divergences: u64,
    /// Faults recorded so far in this run.
    pub faults: u64,
    /// Synchronization events recorded so far in this run.
    pub sync_events: u64,
    /// System calls issued so far in this run.
    pub syscalls: u64,
}

/// The live handle to one launched program (see the module docs).
///
/// The lifetime ties the session to its [`Runtime`], typestate-style: the
/// runtime cannot be dropped while a session handle is alive.  Dropping the
/// session *detaches* it -- the run continues on its background threads and
/// the runtime becomes launchable again once it finishes.
pub struct Session<'rt> {
    rt: Arc<RtInner>,
    shared: Arc<SessionShared>,
    partition: usize,
    _runtime: PhantomData<&'rt Runtime>,
}

/// Per-launch state shared between a [`Session`] handle and its supervisor
/// actor.  It belongs to *this* run only, so a finished session keeps
/// reporting its own run even after the runtime has moved on to the next
/// launch.
pub(crate) struct SessionShared {
    /// Set once the run is over (after the final status is sealed).
    pub finished: AtomicBool,
    /// The status snapshot sealed at the moment of completion, before the
    /// end-of-run reset zeroes the live counters.
    pub final_status: Mutex<Option<SessionStatus>>,
    /// One-shot delivery of the run's result from the supervisor actor to
    /// [`Session::wait`].  Delivered strictly after the partition's
    /// `session_active` flag is released, so a woken waiter can relaunch
    /// immediately.
    result: Mutex<Option<Result<RunReport, Error>>>,
    result_cv: Condvar,
}

impl SessionShared {
    fn new() -> Arc<Self> {
        Arc::new(SessionShared {
            finished: AtomicBool::new(false),
            final_status: Mutex::new(None),
            result: Mutex::new(None),
            result_cv: Condvar::new(),
        })
    }

    fn deliver(&self, result: Result<RunReport, Error>) {
        *self.result.lock() = Some(result);
        self.result_cv.notify_all();
    }
}

impl<'rt> Session<'rt> {
    pub(crate) fn start(runtime: &'rt Runtime, program: Program) -> Result<Self, Error> {
        // Claim the lowest-indexed partition that is neither poisoned nor
        // occupied.  The deterministic order keeps the single-tenant
        // behaviour (everything on partition 0) and makes multi-tenant
        // placement predictable for tests and staging.
        let mut saw_healthy = false;
        let mut claimed: Option<(usize, Arc<RtInner>)> = None;
        for (index, rt) in runtime.partitions.iter().enumerate() {
            if rt.poisoned.load(Ordering::Acquire) {
                continue;
            }
            saw_healthy = true;
            if rt
                .session_active
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                claimed = Some((index, Arc::clone(rt)));
                break;
            }
        }
        let Some((partition, rt)) = claimed else {
            if saw_healthy {
                return Err(Error::session_active());
            }
            // Every partition is poisoned; report the union of the stuck
            // threads that got them there.
            let stuck: Vec<u32> = runtime
                .partitions
                .iter()
                .flat_map(|rt| rt.poisoned_threads.lock().clone())
                .collect();
            return Err(Error::poisoned(stuck));
        };
        let shared = SessionShared::new();
        let (program_name, main_body) = program.into_parts();
        let rt_for_supervisor = Arc::clone(&rt);
        let shared_for_supervisor = Arc::clone(&shared);
        let submitted = runtime.pool.execute(Box::new(move || {
            // The unwind guard keeps the runtime honest even if the
            // supervisor itself panics: the session flags are always
            // released (so the partition is not bricked into
            // `SessionActive` forever) and the partition is poisoned (its
            // state can no longer be trusted mid-run).
            let rt = rt_for_supervisor;
            let shared = shared_for_supervisor;
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe({
                let rt = Arc::clone(&rt);
                let shared = Arc::clone(&shared);
                move || supervise(rt, shared, program_name, main_body)
            }));
            let result = match result {
                Ok(result) => result,
                Err(_) => {
                    rt.poison(Vec::new());
                    // Keep the lifecycle invariants even on this path:
                    // seal whatever status the runtime shows and send
                    // the one `Finished` event observers expect per
                    // launch.
                    seal_final_status(&rt, &shared);
                    rt.emit_event(|| crate::events::SessionEvent::Finished {
                        outcome: crate::stats::RunOutcome::Completed,
                    });
                    Err(Error::application_panic(
                        "the supervisor panicked; the partition is poisoned",
                    ))
                }
            };
            shared.finished.store(true, Ordering::Release);
            // Release the partition before delivering: `wait()` is the
            // hard synchronization point, so a caller woken by the
            // delivery must be able to relaunch without a spurious
            // `SessionActive`.
            rt.session_active.store(false, Ordering::Release);
            shared.deliver(result);
        }));
        match submitted {
            Ok(()) => Ok(Session {
                rt,
                shared,
                partition,
                _runtime: PhantomData,
            }),
            Err(error) => {
                rt.session_active.store(false, Ordering::Release);
                Err(error)
            }
        }
    }

    /// The arena partition this session exclusively occupies for the
    /// duration of its run (always 0 on a single-partition runtime).
    pub fn partition(&self) -> usize {
        self.partition
    }

    /// A lock-free snapshot of the run: epoch number, phase, and the
    /// divergence/retry/fault counters, streamed from the runtime's
    /// atomics.  Once the run has finished, the snapshot captured at the
    /// moment of completion is returned (the live counters are zeroed by
    /// the end-of-run reset; the status keeps describing *this* run).
    pub fn status(&self) -> SessionStatus {
        if self.shared.finished.load(Ordering::Acquire) {
            if let Some(final_status) = *self.shared.final_status.lock() {
                return final_status;
            }
            // The supervisor panicked before sealing; report what the
            // runtime shows, with the phase pinned to Finished.
            let mut status = live_status(&self.rt);
            status.phase = RunPhase::Finished;
            return status;
        }
        live_status(&self.rt)
    }

    /// Returns `true` once the run is over and [`Session::wait`] will not
    /// block for long.
    ///
    /// This flips as soon as the run's final status is sealed, an instant
    /// before the supervisor finishes its teardown -- so a new
    /// [`crate::Runtime::launch`] issued immediately afterwards may still
    /// be refused with [`ErrorKind::SessionActive`](crate::ErrorKind) for
    /// a moment.  [`Session::wait`] is the hard synchronization point.
    pub fn is_finished(&self) -> bool {
        self.shared.finished.load(Ordering::Acquire)
    }

    /// Queues a rollback-and-replay of the current epoch, merged with any
    /// tool-hook request at the next epoch boundary.  This is the live
    /// counterpart of a hook returning
    /// [`EpochDecision::Replay`](crate::EpochDecision): a debugger attached
    /// to a running process asking "show me that epoch again, watching
    /// these addresses".
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::RecordingDisabled`](crate::ErrorKind) in
    /// passthrough mode, where there is no recording to replay.
    pub fn request_replay(&self, request: ReplayRequest) -> Result<(), Error> {
        if self.rt.config.mode != RunMode::Record {
            return Err(Error::recording_disabled());
        }
        let mut pending = self.rt.pending_replay.lock();
        match &mut *pending {
            None => *pending = Some(request),
            Some(existing) => {
                existing.watch.extend(request.watch);
                if existing.reason.is_empty() {
                    existing.reason = request.reason;
                }
            }
        }
        Ok(())
    }

    /// Subscribes a bounded event stream (see [`EventStream`]) filtered to
    /// the given classes.  The stream outlives the session -- it keeps
    /// delivering events for later launches on the same runtime until
    /// dropped.
    pub fn subscribe(&self, filter: EventFilter) -> EventStream {
        self.rt.subscribe_events(filter)
    }

    /// Blocks until the run finishes and returns its report.
    ///
    /// # Errors
    ///
    /// Propagates the supervisor's error: quiescence timeouts, poisoning,
    /// and replay-machinery failures.  A program *fault* is not an error --
    /// it is reported through [`RunReport::outcome`] (use
    /// [`RunReport::into_result`] to convert).
    pub fn wait(self) -> Result<RunReport, Error> {
        let mut result = self.shared.result.lock();
        while result.is_none() {
            self.shared.result_cv.wait(&mut result);
        }
        result.take().expect("the loop exits only once a result is delivered")
    }
}

/// Assembles a status snapshot from the runtime's live atomics.
fn live_status(rt: &RtInner) -> SessionStatus {
    let phase = match rt.phase() {
        ExecPhase::Passthrough => RunPhase::Passthrough,
        ExecPhase::Recording => RunPhase::Recording,
        ExecPhase::Replaying => RunPhase::Replaying,
    };
    SessionStatus {
        epoch: rt.epoch_number(),
        phase,
        replay_attempt: rt.replay_attempt.load(Ordering::Acquire),
        replay_attempts: Counters::get(&rt.counters.replay_attempts),
        divergences: Counters::get(&rt.counters.divergences),
        faults: Counters::get(&rt.counters.faults),
        sync_events: Counters::get(&rt.counters.sync_events),
        syscalls: Counters::get(&rt.counters.syscalls),
    }
}

/// Captures the final status of a run (called by the supervisor right
/// before the reset zeroes the live counters) and flips the session's
/// finished flag, so no status reader ever observes the zeroed
/// in-between state -- and a finished session keeps describing its own
/// run after later launches reuse the runtime.
pub(crate) fn seal_final_status(rt: &RtInner, shared: &SessionShared) {
    let mut sealed = live_status(rt);
    sealed.phase = RunPhase::Finished;
    *shared.final_status.lock() = Some(sealed);
    shared.finished.store(true, Ordering::Release);
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("status", &self.status())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::program::Step;

    fn small_config() -> Config {
        Config::builder()
            .arena_size(4 << 20)
            .heap_block_size(128 << 10)
            .build()
            .unwrap()
    }

    #[test]
    fn status_reports_finished_after_wait() {
        let runtime = Runtime::new(small_config()).unwrap();
        let session = runtime
            .launch(Program::new("status", |ctx| {
                let cell = ctx.alloc(8);
                ctx.write_u64(cell, 1);
                Step::Done
            }))
            .unwrap();
        let status = session.status();
        assert!(matches!(
            status.phase,
            RunPhase::Recording | RunPhase::Replaying | RunPhase::Finished
        ));
        let report = session.wait().unwrap();
        assert!(report.outcome.is_success());
    }

    #[test]
    fn overlapping_launches_are_rejected() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let runtime = Runtime::new(small_config()).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_for_body = Arc::clone(&stop);
        let session = runtime
            .launch(Program::new("looper", move |ctx| {
                ctx.work(1_000);
                if stop_for_body.load(Ordering::Acquire) {
                    Step::Done
                } else {
                    Step::Yield
                }
            }))
            .unwrap();
        // While `looper` runs, a second launch must be refused.
        let second = runtime.launch(Program::new("second", |_| Step::Done));
        match second {
            Err(error) => assert_eq!(error.kind(), crate::ErrorKind::SessionActive),
            Ok(_) => panic!("a second session must not start while the first is running"),
        }
        // Release the looper and collect its report; afterwards the
        // runtime accepts launches again.
        stop.store(true, Ordering::Release);
        let report = session.wait().unwrap();
        assert!(report.outcome.is_success());
        let report = runtime.run(Program::new("after", |_| Step::Done)).unwrap();
        assert!(report.outcome.is_success());
    }
}
