//! [`Session`]: the live handle to one launched (running *or queued*)
//! program.
//!
//! [`crate::Runtime::launch`] hands back a `Session` while the program runs
//! on background threads.  The handle is the *in-situ* control surface the
//! paper's long-lived deployment model implies: the caller can watch the
//! epoch lifecycle ([`Session::status`], [`Session::subscribe`]), steer it
//! ([`Session::request_replay`] queues a rollback/re-execution for the next
//! epoch boundary), and finally collect the report ([`Session::wait`], or
//! the executor-agnostic [`Session::wait_async`]).
//!
//! A runtime drives one session **per arena partition** at a time: each
//! session exclusively owns its partition's arena slice, logs, and
//! simulated-OS namespace for the duration of the run, and the partition is
//! reset (alone) when the run ends.  When every partition is busy a launch
//! *queues* on the runtime's admission scheduler (see
//! [`crate::Runtime::launch`]); a queued session's handle works before
//! admission -- [`Session::status`] reports [`RunPhase::Queued`],
//! subscriptions and replay requests are held until the session reaches a
//! partition.  The supervisor driving a session is an actor on the
//! runtime's shared worker pool, not a freshly spawned thread per launch.

use std::future::Future;
use std::marker::PhantomData;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

use parking_lot::{Condvar, Mutex};

use crate::config::RunMode;
use crate::error::Error;
use crate::events::{subscription, EventFilter, EventStream, ObserverSlot, SessionEvent};
use crate::hooks::ReplayRequest;
use crate::program::Program;
use crate::runtime::Runtime;
use crate::scheduler::AdmitMode;
use crate::state::{ExecPhase, RtInner};
use crate::stats::{Counters, RunOutcome, RunReport};
use crate::trace::TraceJob;

/// What the runtime is doing right now, as seen by [`Session::status`].
///
/// Marked `#[non_exhaustive]`: new phases may be added; downstream matches
/// must keep a wildcard arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RunPhase {
    /// Waiting on the admission queue for a partition to free up; the
    /// program has not started.
    Queued,
    /// Executing directly with no recording ([`RunMode::Passthrough`]).
    Passthrough,
    /// Recording the original execution.
    Recording,
    /// Rolled back and re-executing the last epoch.
    Replaying,
    /// The run is over; [`Session::wait`] will not block.
    Finished,
}

/// A point-in-time snapshot of a session, assembled entirely from the
/// runtime's lock-free atomics -- polling it never contends with the
/// record fast path or the coordinator.
///
/// Marked `#[non_exhaustive]`: new fields may be added.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct SessionStatus {
    /// Current epoch number (0-based).
    pub epoch: u64,
    /// What the runtime is doing right now.
    pub phase: RunPhase,
    /// The 1-based number of the replay attempt in flight (0 outside
    /// replays).
    pub replay_attempt: u32,
    /// Total replay attempts performed so far in this run.
    pub replay_attempts: u64,
    /// Divergences observed so far in this run.
    pub divergences: u64,
    /// Faults recorded so far in this run.
    pub faults: u64,
    /// Synchronization events recorded so far in this run.
    pub sync_events: u64,
    /// System calls issued so far in this run.
    pub syscalls: u64,
}

/// Sentinel for "not yet admitted onto a partition".
const UNASSIGNED: usize = usize::MAX;

/// Per-launch state shared between a [`Session`] handle, the admission
/// scheduler, and the supervisor actor.  It belongs to *this* launch only,
/// so a finished session keeps reporting its own run even after the
/// runtime has moved on to the next one -- and a *queued* launch has a
/// fully functional handle before any partition knows about it.
pub(crate) struct SessionShared {
    /// Set once the run is over (after the final status is sealed).
    pub finished: AtomicBool,
    /// The status snapshot sealed at the moment of completion, before the
    /// end-of-run reset zeroes the live counters.
    pub final_status: Mutex<Option<SessionStatus>>,
    /// The partition this session was admitted onto ([`UNASSIGNED`] while
    /// queued).
    partition: AtomicUsize,
    /// The partition core this session was admitted onto, set exactly once
    /// at admission; unset while queued.  `get()` is lock-free, so status
    /// polling never contends with anything.  The stash mutexes below (not
    /// this cell) order admission against `subscribe`/`request_replay`:
    /// stash writers re-check this cell *under their stash lock*, and
    /// [`SessionShared::attach`] drains the stashes after setting it.
    rt: std::sync::OnceLock<Arc<RtInner>>,
    /// Recording mode of the runtime, copied at launch so a queued handle
    /// can validate [`Session::request_replay`] without a partition.
    mode: RunMode,
    /// Observer slots subscribed while queued, registered at admission.
    pending_observers: Mutex<Vec<ObserverSlot>>,
    /// A replay request queued while waiting for admission, merged into
    /// the partition's pending request at admission.
    pending_replay: Mutex<Option<ReplayRequest>>,
    /// Set when the launch failed before its program ever ran (a pool
    /// dispatch failure, or a poisoned-out queue entry); the delivered
    /// result is then always an error.
    never_ran: AtomicBool,
    /// One-shot delivery of the run's result from the supervisor actor to
    /// [`Session::wait`] / [`Session::wait_async`].  Delivered strictly
    /// after the partition has been released (or handed to the next queued
    /// launch), so a woken waiter can relaunch immediately.
    result: Mutex<Option<Result<RunReport, Error>>>,
    result_cv: Condvar,
    /// The latest waker of a pending [`SessionFuture`], woken at delivery.
    waker: Mutex<Option<Waker>>,
}

impl SessionShared {
    pub(crate) fn new(mode: RunMode) -> Arc<Self> {
        Arc::new(SessionShared {
            finished: AtomicBool::new(false),
            final_status: Mutex::new(None),
            partition: AtomicUsize::new(UNASSIGNED),
            rt: std::sync::OnceLock::new(),
            mode,
            pending_observers: Mutex::new(Vec::new()),
            pending_replay: Mutex::new(None),
            never_ran: AtomicBool::new(false),
            result: Mutex::new(None),
            result_cv: Condvar::new(),
            waker: Mutex::new(None),
        })
    }

    /// Binds this launch to the partition it was admitted onto and flushes
    /// everything the handle stashed while queued.  Called by the
    /// scheduler, exactly once per launch.  The cell is published *first*;
    /// stash writers that then take a stash lock re-check it and route to
    /// the partition directly, so nothing can land in a stash after its
    /// drain here.
    pub(crate) fn attach(&self, rt: &Arc<RtInner>, partition: usize) {
        self.partition.store(partition, Ordering::Release);
        self.rt
            .set(Arc::clone(rt))
            .unwrap_or_else(|_| unreachable!("the scheduler admits each launch exactly once"));
        for slot in self.pending_observers.lock().drain(..) {
            rt.register_observer(slot);
        }
        if let Some(request) = self.pending_replay.lock().take() {
            merge_replay_request(&mut rt.pending_replay.lock(), request);
        }
    }

    /// Delivers the run's result, waking both blocking and async waiters.
    pub(crate) fn deliver(&self, result: Result<RunReport, Error>) {
        *self.result.lock() = Some(result);
        self.result_cv.notify_all();
        if let Some(waker) = self.waker.lock().take() {
            waker.wake();
        }
    }

    /// Fails a launch whose program never ran (a pool dispatch failure, or
    /// a poisoned-out queue entry): marks it finished, keeps the
    /// one-[`SessionEvent::Finished`]-per-launch contract for observers --
    /// stashed subscriptions included -- and delivers `result`.
    pub(crate) fn finish_without_running(&self, result: Result<RunReport, Error>) {
        let finished = SessionEvent::Finished {
            outcome: RunOutcome::Completed,
        };
        for slot in self.pending_observers.lock().drain(..) {
            let _ = slot.offer(&finished);
        }
        if let Some(rt) = self.rt.get() {
            rt.emit_event(|| finished.clone());
        }
        // Seal a terminal status: nothing of this launch ever ran, so the
        // zeroed snapshot is the truth -- and without a seal, a handle
        // attached to a partition would fall through to `live_status` and
        // leak whatever tenant occupies that partition next.
        let mut sealed = queued_status();
        sealed.phase = RunPhase::Finished;
        *self.final_status.lock() = Some(sealed);
        self.never_ran.store(true, Ordering::Release);
        self.finished.store(true, Ordering::Release);
        self.deliver(result);
    }

    /// Takes the error a [`SessionShared::finish_without_running`] on this
    /// launch delivered, if any.  [`crate::scheduler::Scheduler::submit`]
    /// calls this after dispatching, so a launch whose own admission could
    /// not be served fails the `launch` call itself (the pre-scheduler
    /// contract) instead of parking the error behind `wait()`.
    pub(crate) fn take_startup_failure(&self) -> Option<Error> {
        if !self.never_ran.load(Ordering::Acquire) {
            return None;
        }
        match self.result.lock().take() {
            Some(Err(error)) => Some(error),
            // `finish_without_running` only ever delivers errors; a taken
            // (or unexpectedly successful) result means someone else owns
            // the outcome already.
            _ => None,
        }
    }
}

/// Merges `request` into `existing` the way the coordinator does at epoch
/// boundaries: union the watchpoints, keep the first non-empty reason.
fn merge_replay_request(existing: &mut Option<ReplayRequest>, request: ReplayRequest) {
    match existing {
        None => *existing = Some(request),
        Some(existing) => {
            existing.watch.extend(request.watch);
            if existing.reason.is_empty() {
                existing.reason = request.reason;
            }
        }
    }
}

/// The live handle to one launched program (see the module docs).
///
/// The lifetime ties the session to its [`Runtime`], typestate-style: the
/// runtime cannot be dropped while a session handle is alive.  Dropping the
/// session *detaches* it -- a running session continues on its background
/// threads (and its partition frees normally when it finishes), while a
/// still-queued session is admitted whenever its turn comes and runs
/// unobserved.
pub struct Session<'rt> {
    shared: Arc<SessionShared>,
    _runtime: PhantomData<&'rt Runtime>,
}

impl<'rt> Session<'rt> {
    pub(crate) fn start(
        runtime: &'rt Runtime,
        program: Program,
        mode: AdmitMode,
        trace: Option<TraceJob>,
        options: crate::runtime::LaunchOptions,
    ) -> Result<Self, Error> {
        let shared = runtime.scheduler.submit(program, mode, trace, options)?;
        Ok(Session {
            shared,
            _runtime: PhantomData,
        })
    }

    /// The arena partition this session occupies for the duration of its
    /// run (always `Some(0)` on a single-partition runtime), or `None`
    /// while the launch is still waiting on the admission queue.  Once a
    /// session has been admitted the partition never changes.
    pub fn partition(&self) -> Option<usize> {
        match self.shared.partition.load(Ordering::Acquire) {
            UNASSIGNED => None,
            partition => Some(partition),
        }
    }

    /// A lock-free snapshot of the run: epoch number, phase, and the
    /// divergence/retry/fault counters, streamed from the runtime's
    /// atomics.  A still-queued session reports [`RunPhase::Queued`] with
    /// zeroed counters.  Once the run has finished, the snapshot captured
    /// at the moment of completion is returned (the live counters are
    /// zeroed by the end-of-run reset; the status keeps describing *this*
    /// run).
    pub fn status(&self) -> SessionStatus {
        if self.shared.finished.load(Ordering::Acquire) {
            if let Some(final_status) = *self.shared.final_status.lock() {
                return final_status;
            }
            // The supervisor panicked before sealing (or the launch failed
            // before running); report what the runtime shows, with the
            // phase pinned to Finished.
            let mut status = match self.shared.rt.get() {
                Some(rt) => live_status(rt),
                None => queued_status(),
            };
            status.phase = RunPhase::Finished;
            return status;
        }
        match self.shared.rt.get() {
            Some(rt) => live_status(rt),
            None => queued_status(),
        }
    }

    /// Returns `true` once the run is over and [`Session::wait`] will not
    /// block for long.
    ///
    /// This flips as soon as the run's final status is sealed, an instant
    /// before the supervisor finishes its teardown -- so a new
    /// [`crate::Runtime::launch`] issued immediately afterwards may still
    /// queue (or, with a zero-depth admission queue, be refused with
    /// [`ErrorKind::SessionActive`](crate::ErrorKind)) for a moment.
    /// [`Session::wait`] is the hard synchronization point.
    pub fn is_finished(&self) -> bool {
        self.shared.finished.load(Ordering::Acquire)
    }

    /// Queues a rollback-and-replay of the current epoch, merged with any
    /// tool-hook request at the next epoch boundary.  This is the live
    /// counterpart of a hook returning
    /// [`EpochDecision::Replay`](crate::EpochDecision): a debugger attached
    /// to a running process asking "show me that epoch again, watching
    /// these addresses".  On a still-queued session the request is held
    /// and installed the moment the session is admitted.
    ///
    /// # Errors
    ///
    /// Returns [`ErrorKind::RecordingDisabled`](crate::ErrorKind) in
    /// passthrough mode, where there is no recording to replay.
    pub fn request_replay(&self, request: ReplayRequest) -> Result<(), Error> {
        if self.shared.mode != RunMode::Record {
            return Err(Error::recording_disabled());
        }
        match self.shared.rt.get() {
            Some(rt) => merge_replay_request(&mut rt.pending_replay.lock(), request),
            None => {
                let mut stash = self.shared.pending_replay.lock();
                // Re-check under the stash lock: attach publishes the cell
                // before draining, so either we see it here (and route to
                // the partition), or attach drains our stash entry later.
                match self.shared.rt.get() {
                    Some(rt) => merge_replay_request(&mut rt.pending_replay.lock(), request),
                    None => merge_replay_request(&mut stash, request),
                }
            }
        }
        Ok(())
    }

    /// Subscribes a bounded event stream (see [`EventStream`]) filtered to
    /// the given classes.  The stream outlives the session -- it keeps
    /// delivering events for later launches on the same partition until
    /// dropped.  Subscribing to a still-queued session works: the stream
    /// starts delivering from the session's first event once it is
    /// admitted (nothing is lost -- a queued program has not run).
    pub fn subscribe(&self, filter: EventFilter) -> EventStream {
        match self.shared.rt.get() {
            Some(rt) => rt.subscribe_events(filter),
            None => {
                let mut stash = self.shared.pending_observers.lock();
                let (slot, stream) = subscription(filter);
                // Re-check under the stash lock (see `request_replay`): a
                // concurrent admission must not strand the slot.
                match self.shared.rt.get() {
                    Some(rt) => rt.register_observer(slot),
                    None => stash.push(slot),
                }
                stream
            }
        }
    }

    /// Blocks until the run finishes and returns its report.  A queued
    /// session waits through its admission: the call returns once the
    /// program has been scheduled, run, and torn down.
    ///
    /// # Errors
    ///
    /// Propagates the supervisor's error: quiescence timeouts, poisoning,
    /// exhausted per-tenant quotas, and replay-machinery failures.  A
    /// program *fault* is not an error -- it is reported through
    /// [`RunReport::outcome`] (use [`RunReport::into_result`] to convert).
    pub fn wait(self) -> Result<RunReport, Error> {
        let mut result = self.shared.result.lock();
        while result.is_none() {
            self.shared.result_cv.wait(&mut result);
        }
        result.take().expect("the loop exits only once a result is delivered")
    }

    /// The asynchronous twin of [`Session::wait`]: converts the session
    /// into a [`SessionFuture`] that resolves to the same report without
    /// blocking a thread while the run (or its time on the admission
    /// queue) is in progress.  The future is executor-agnostic -- it is
    /// plain poll/waker `std` machinery with no runtime dependency, so
    /// thousands of pending tenants can be driven from a single polling
    /// thread.
    ///
    /// # Example
    ///
    /// ```
    /// use ireplayer::{Config, Program, Runtime, Step};
    /// # use std::future::Future;
    /// # use std::pin::pin;
    /// # use std::sync::Arc;
    /// # use std::task::{Context, Poll, Wake, Waker};
    /// #
    /// # /// A minimal single-threaded executor: park until woken, re-poll.
    /// # struct Unpark(std::thread::Thread);
    /// # impl Wake for Unpark {
    /// #     fn wake(self: Arc<Self>) {
    /// #         self.0.unpark();
    /// #     }
    /// # }
    /// # fn block_on<F: Future>(future: F) -> F::Output {
    /// #     let waker = Waker::from(Arc::new(Unpark(std::thread::current())));
    /// #     let mut context = Context::from_waker(&waker);
    /// #     let mut future = pin!(future);
    /// #     loop {
    /// #         match future.as_mut().poll(&mut context) {
    /// #             Poll::Ready(output) => return output,
    /// #             Poll::Pending => std::thread::park(),
    /// #         }
    /// #     }
    /// # }
    ///
    /// # fn main() -> Result<(), ireplayer::Error> {
    /// let config = Config::builder()
    ///     .arena_size(4 << 20)
    ///     .heap_block_size(128 << 10)
    ///     .build()?;
    /// let runtime = Runtime::new(config)?;
    /// let session = runtime.launch(Program::new("async-wait", |ctx| {
    ///     let cell = ctx.alloc(8);
    ///     ctx.write_u64(cell, 7);
    ///     Step::Done
    /// }))?;
    /// // Any executor can drive the future; this example uses a 15-line
    /// // park/unpark `block_on` (hidden above) to stay dependency-free.
    /// let report = block_on(session.wait_async())?;
    /// assert!(report.outcome.is_success());
    /// # Ok(())
    /// # }
    /// ```
    pub fn wait_async(self) -> SessionFuture<'rt> {
        SessionFuture {
            shared: self.shared,
            _runtime: PhantomData,
        }
    }
}

/// Future returned by [`Session::wait_async`]; resolves to the same
/// `Result<RunReport, Error>` as [`Session::wait`].
///
/// Like the session it came from, the future borrows the [`Runtime`]: the
/// runtime must stay alive until the future resolves (a queued launch is
/// only ever admitted by its runtime's scheduler).  Dropping the future
/// detaches the session, exactly like dropping the [`Session`] itself.
pub struct SessionFuture<'rt> {
    shared: Arc<SessionShared>,
    _runtime: PhantomData<&'rt Runtime>,
}

impl Future for SessionFuture<'_> {
    type Output = Result<RunReport, Error>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Some(result) = self.shared.result.lock().take() {
            return Poll::Ready(result);
        }
        *self.shared.waker.lock() = Some(cx.waker().clone());
        // Re-check after publishing the waker: a delivery racing with this
        // poll either sees the waker (and wakes us) or already put the
        // result where the next line finds it -- no lost wake-up window.
        if let Some(result) = self.shared.result.lock().take() {
            return Poll::Ready(result);
        }
        Poll::Pending
    }
}

impl std::fmt::Debug for SessionFuture<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionFuture")
            .field("finished", &self.shared.finished.load(Ordering::Acquire))
            .finish_non_exhaustive()
    }
}

/// The status of a launch still waiting on the admission queue.
fn queued_status() -> SessionStatus {
    SessionStatus {
        epoch: 0,
        phase: RunPhase::Queued,
        replay_attempt: 0,
        replay_attempts: 0,
        divergences: 0,
        faults: 0,
        sync_events: 0,
        syscalls: 0,
    }
}

/// Assembles a status snapshot from the runtime's live atomics.
fn live_status(rt: &RtInner) -> SessionStatus {
    let phase = match rt.phase() {
        ExecPhase::Passthrough => RunPhase::Passthrough,
        ExecPhase::Recording => RunPhase::Recording,
        ExecPhase::Replaying => RunPhase::Replaying,
    };
    SessionStatus {
        epoch: rt.epoch_number(),
        phase,
        replay_attempt: rt.replay_attempt.load(Ordering::Acquire),
        replay_attempts: Counters::get(&rt.counters.replay_attempts),
        divergences: Counters::get(&rt.counters.divergences),
        faults: Counters::get(&rt.counters.faults),
        sync_events: Counters::get(&rt.counters.sync_events),
        syscalls: Counters::get(&rt.counters.syscalls),
    }
}

/// Captures the final status of a run (called by the supervisor right
/// before the reset zeroes the live counters) and flips the session's
/// finished flag, so no status reader ever observes the zeroed
/// in-between state -- and a finished session keeps describing its own
/// run after later launches reuse the runtime.
pub(crate) fn seal_final_status(rt: &RtInner, shared: &SessionShared) {
    let mut sealed = live_status(rt);
    sealed.phase = RunPhase::Finished;
    *shared.final_status.lock() = Some(sealed);
    shared.finished.store(true, Ordering::Release);
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("status", &self.status())
            .field("partition", &self.partition())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::program::Step;

    fn small_config() -> Config {
        Config::builder()
            .arena_size(4 << 20)
            .heap_block_size(128 << 10)
            .build()
            .unwrap()
    }

    #[test]
    fn status_reports_finished_after_wait() {
        let runtime = Runtime::new(small_config()).unwrap();
        let session = runtime
            .launch(Program::new("status", |ctx| {
                let cell = ctx.alloc(8);
                ctx.write_u64(cell, 1);
                Step::Done
            }))
            .unwrap();
        assert_eq!(session.partition(), Some(0), "a free runtime admits immediately");
        let status = session.status();
        assert!(matches!(
            status.phase,
            RunPhase::Recording | RunPhase::Replaying | RunPhase::Finished
        ));
        let report = session.wait().unwrap();
        assert!(report.outcome.is_success());
    }

    #[test]
    fn overlapping_launches_queue_by_default_and_reject_at_depth_zero() {
        use std::sync::atomic::{AtomicBool, Ordering};

        let strict = Config::builder()
            .arena_size(4 << 20)
            .heap_block_size(128 << 10)
            .admission_queue_depth(0)
            .build()
            .unwrap();
        let runtime = Runtime::new(strict).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_for_body = Arc::clone(&stop);
        let session = runtime
            .launch(Program::new("looper", move |ctx| {
                ctx.work(1_000);
                if stop_for_body.load(Ordering::Acquire) {
                    Step::Done
                } else {
                    Step::Yield
                }
            }))
            .unwrap();
        // With a zero-depth queue, a second launch is refused outright --
        // the pre-scheduler contract.
        let second = runtime.launch(Program::new("second", |_| Step::Done));
        match second {
            Err(error) => assert_eq!(error.kind(), crate::ErrorKind::SessionActive),
            Ok(_) => panic!("a zero-depth queue must refuse overcommitted launches"),
        }
        // `try_launch` refuses regardless of queue depth.
        assert!(runtime.try_launch(Program::new("immediate", |_| Step::Done)).is_err());
        // Release the looper and collect its report; afterwards the
        // runtime accepts launches again.
        stop.store(true, Ordering::Release);
        let report = session.wait().unwrap();
        assert!(report.outcome.is_success());
        let report = runtime.run(Program::new("after", |_| Step::Done)).unwrap();
        assert!(report.outcome.is_success());

        // With the default queue, the same overcommit pattern queues: the
        // excess launch reports Queued, then completes once the partition
        // frees.
        let runtime = Runtime::new(small_config()).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_for_body = Arc::clone(&stop);
        let first = runtime
            .launch(Program::new("holder", move |ctx| {
                ctx.work(1_000);
                if stop_for_body.load(Ordering::Acquire) {
                    Step::Done
                } else {
                    Step::Yield
                }
            }))
            .unwrap();
        let queued = runtime.launch(Program::new("queued", |_| Step::Done)).unwrap();
        assert_eq!(queued.partition(), None, "no partition while queued");
        assert_eq!(queued.status().phase, RunPhase::Queued);
        stop.store(true, Ordering::Release);
        assert!(first.wait().unwrap().outcome.is_success());
        assert!(queued.wait().unwrap().outcome.is_success());
    }
}
