//! Call-site tracking.
//!
//! The original system reports the complete call stack of the instruction
//! that triggered a watchpoint, and the allocation/free sites of objects
//! involved in memory errors, by unwinding the native stack.  In the managed
//! substrate, every `ThreadCtx` operation that matters for diagnosis is
//! annotated with `#[track_caller]`, and the source location of the caller
//! is interned into a small registry.  Bug reports then name the exact
//! source line in the application, which is the information the paper's
//! tools ultimately surface to the developer.

use std::collections::HashMap;
use std::fmt;
use std::panic::Location;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Interned identifier of a source location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub u32);

/// A resolved source location.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Site {
    /// Source file of the call.
    pub file: String,
    /// Line number of the call.
    pub line: u32,
    /// Column of the call.
    pub column: u32,
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.file, self.line, self.column)
    }
}

/// Thread-safe interning registry of call sites.
#[derive(Debug, Default)]
pub struct SiteRegistry {
    inner: Mutex<SiteRegistryInner>,
}

#[derive(Debug, Default)]
struct SiteRegistryInner {
    by_site: HashMap<Site, SiteId>,
    sites: Vec<Site>,
}

impl SiteRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        SiteRegistry::default()
    }

    /// Interns a `#[track_caller]` location and returns its id.
    pub fn intern(&self, location: &Location<'_>) -> SiteId {
        let site = Site {
            file: location.file().to_owned(),
            line: location.line(),
            column: location.column(),
        };
        let mut inner = self.inner.lock();
        if let Some(id) = inner.by_site.get(&site) {
            return *id;
        }
        let id = SiteId(inner.sites.len() as u32);
        inner.sites.push(site.clone());
        inner.by_site.insert(site, id);
        id
    }

    /// Resolves an id back to its source location.
    pub fn resolve(&self, id: SiteId) -> Option<Site> {
        self.inner.lock().sites.get(id.0 as usize).cloned()
    }

    /// Number of distinct interned sites.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.inner.lock().sites.len()
    }

    /// Returns `true` if no sites have been interned.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[track_caller]
    fn here(registry: &SiteRegistry) -> SiteId {
        registry.intern(Location::caller())
    }

    #[test]
    fn interning_is_idempotent_per_location() {
        let registry = SiteRegistry::new();
        let mut ids = Vec::new();
        for _ in 0..3 {
            ids.push(here(&registry)); // same line each iteration
        }
        assert_eq!(ids[0], ids[1]);
        assert_eq!(ids[1], ids[2]);
        assert_eq!(registry.len(), 1);

        let other = here(&registry); // different line
        assert_ne!(other, ids[0]);
        assert_eq!(registry.len(), 2);
        assert!(!registry.is_empty());
    }

    #[test]
    fn resolve_returns_file_and_line() {
        let registry = SiteRegistry::new();
        let id = here(&registry);
        let site = registry.resolve(id).unwrap();
        assert!(site.file.ends_with("site.rs"));
        assert!(site.line > 0);
        assert!(site.to_string().contains("site.rs"));
        assert!(registry.resolve(SiteId(999)).is_none());
    }
}
