//! [`ChaosExplorer`]: chaos-plan search over the admission scheduler.
//!
//! The chaos plane (see [`ChaosPlan`]) injects one seeded fault plan per
//! run.  This module is the other half of "chaos as a bug-finder": it
//! *searches* plan space and turns every find into a regression artifact.
//! The loop has four stages:
//!
//! 1. **Sweep** ([`ChaosExplorer::sweep`]): compile many `(seed, profile)`
//!    candidates and fan them out across the runtime's partitions through
//!    the admission scheduler -- every candidate is one
//!    [`Runtime::launch_with`] with a per-launch plan override, drained
//!    through [`Session::wait_async`](crate::Session::wait_async).
//! 2. **Classify** ([`OutcomeClass`]): each run lands in one bucket --
//!    clean, a typed application fault, replay divergence, quota
//!    exhaustion, or a hang cut by the quiescence deadline.
//! 3. **Shrink** ([`ChaosExplorer::minimize`]): a failing plan is
//!    delta-debugged against its [`FailureFingerprint`] -- drop whole
//!    fault classes, then halve slot schedules
//!    ([`shrink_candidates`]), re-executing after each cut and keeping a
//!    cut only when the *same* failure reproduces -- until no strictly
//!    smaller plan still fails that way.
//! 4. **Fixture** ([`ChaosExplorer::emit_fixture`]): the minimized plan is
//!    re-run on a dedicated recording runtime and saved as a durable
//!    [`Trace`] test fixture, replayable fingerprint-identically by
//!    [`Runtime::replay_trace`] in a process that never saw the bug.
//!
//! Determinism is what makes the search loop sound: a probe of the same
//! plan on a warm runtime reproduces the same failure byte-for-byte (the
//! supervisor reinstalls the plan with zeroed injection counters on every
//! launch), so "still fails with the same fingerprint" is a real predicate
//! and not a statistical one.

use std::future::Future;
use std::path::Path;
use std::pin::pin;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

use ireplayer_sys::{shrink_candidates, ChaosPlan, ChaosProfile, ShrinkStep, SimOs};

use crate::error::{Error, ErrorKind};
use crate::fault::FaultKind;
use crate::fingerprint::Fingerprint;
use crate::program::Program;
use crate::runtime::{LaunchOptions, Runtime};
use crate::stats::{RunOutcome, RunReport};
use crate::trace::{json, Trace};

/// A minimal single-threaded executor for draining
/// [`SessionFuture`](crate::SessionFuture)s: park until woken, re-poll.
/// The futures are plain poll/waker machinery, so nothing heavier is
/// needed.
fn block_on<F: Future>(future: F) -> F::Output {
    struct Unpark(std::thread::Thread);
    impl Wake for Unpark {
        fn wake(self: Arc<Self>) {
            self.0.unpark();
        }
    }
    let waker = Waker::from(Arc::new(Unpark(std::thread::current())));
    let mut context = Context::from_waker(&waker);
    let mut future = pin!(future);
    loop {
        match future.as_mut().poll(&mut context) {
            Poll::Ready(output) => return output,
            Poll::Pending => std::thread::park(),
        }
    }
}

/// A shared, repeatable kernel-staging closure (cf. the one-shot
/// [`LaunchOptions::stage`] each probe derives from it).
type SharedStage = Arc<dyn Fn(&SimOs) + Send + Sync>;

/// The workload a [`ChaosExplorer`] drives: a factory for fresh
/// [`Program`]s plus the kernel staging each run needs.
///
/// The factory is called once per probe -- every run gets its own program
/// over a freshly staged kernel, so probes are independent.  The staging
/// closure is applied per launch through [`LaunchOptions::stage`], which
/// is what makes sweeping safe on an overcommitted runtime: a queued
/// launch's partition is rebooted at admission, long after `sweep`
/// returned.
pub struct ExploreSubject {
    name: String,
    program: Arc<dyn Fn() -> Program + Send + Sync>,
    stage: Option<SharedStage>,
}

impl ExploreSubject {
    /// A subject that needs no kernel staging.
    pub fn new(name: impl Into<String>, program: impl Fn() -> Program + Send + Sync + 'static) -> Self {
        ExploreSubject {
            name: name.into(),
            program: Arc::new(program),
            stage: None,
        }
    }

    /// Adds per-run kernel staging (files, network peers, queued clients),
    /// run against the claimed partition right before each probe starts.
    pub fn with_stage(mut self, stage: impl Fn(&SimOs) + Send + Sync + 'static) -> Self {
        self.stage = Some(Arc::new(stage));
        self
    }

    /// The subject's display name, carried into [`ExploreReport`].
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Launch options carrying this subject's staging plus `plan`.
    fn options(&self, plan: ChaosPlan) -> LaunchOptions {
        let mut options = LaunchOptions::new().chaos(plan);
        if let Some(stage) = &self.stage {
            let stage = Arc::clone(stage);
            options = options.stage(move |os| stage(os));
        }
        options
    }

    /// Launch options with this subject's staging only (no plan override).
    fn stage_options(&self) -> LaunchOptions {
        let mut options = LaunchOptions::new();
        if let Some(stage) = &self.stage {
            let stage = Arc::clone(stage);
            options = options.stage(move |os| stage(os));
        }
        options
    }
}

impl std::fmt::Debug for ExploreSubject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExploreSubject")
            .field("name", &self.name)
            .field("stage", &self.stage.is_some())
            .finish()
    }
}

/// Which bucket one probed plan landed in.
#[derive(Debug, Clone, PartialEq)]
pub enum OutcomeClass {
    /// The program completed without faulting.
    Clean,
    /// The program faulted; the payload is the typed fault.
    Faulted(FaultKind),
    /// The replay machinery exhausted its budget without reproducing the
    /// recorded schedule ([`ErrorKind::ReplayBudgetExhausted`]).
    Divergence,
    /// A per-tenant quota cut the run off
    /// ([`ErrorKind::QuotaExhausted`]).
    QuotaExhausted,
    /// The run hung and was cut by the quiescence deadline
    /// ([`ErrorKind::QuiescenceTimeout`]).
    Hang,
    /// The run failed some other way; the payload is the error kind.
    Failed(ErrorKind),
}

impl OutcomeClass {
    /// Buckets one run result.  Program faults are data here, not errors:
    /// the explorer's whole point is to observe them.
    fn classify(result: &Result<RunReport, Error>) -> OutcomeClass {
        match result {
            Ok(report) => match &report.outcome {
                RunOutcome::Completed => OutcomeClass::Clean,
                RunOutcome::Faulted(fault) => OutcomeClass::Faulted(fault.kind.clone()),
            },
            Err(error) => match error.kind() {
                ErrorKind::QuotaExhausted => OutcomeClass::QuotaExhausted,
                ErrorKind::QuiescenceTimeout => OutcomeClass::Hang,
                ErrorKind::ReplayBudgetExhausted => OutcomeClass::Divergence,
                kind => OutcomeClass::Failed(kind),
            },
        }
    }

    /// `true` for every bucket except [`OutcomeClass::Clean`].
    pub fn is_failure(&self) -> bool {
        !matches!(self, OutcomeClass::Clean)
    }

    /// The identity the minimizer preserves: a digest over the failure's
    /// class and typed payload (the fault kind with its message, or the
    /// error kind), or `None` for a clean run.  Two probes fail "the same
    /// way" exactly when their fingerprints are equal.
    pub fn fingerprint(&self) -> Option<FailureFingerprint> {
        self.is_failure()
            .then(|| FailureFingerprint(Fingerprint::of_debug(self)))
    }

    /// Stable kebab-case bucket label, used in the JSON report.
    pub fn label(&self) -> &'static str {
        match self {
            OutcomeClass::Clean => "clean",
            OutcomeClass::Faulted(_) => "fault",
            OutcomeClass::Divergence => "divergence",
            OutcomeClass::QuotaExhausted => "quota",
            OutcomeClass::Hang => "hang",
            OutcomeClass::Failed(_) => "failed",
        }
    }
}

impl std::fmt::Display for OutcomeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OutcomeClass::Faulted(kind) => write!(f, "fault: {kind}"),
            OutcomeClass::Failed(kind) => write!(f, "failed: {kind:?}"),
            other => f.write_str(other.label()),
        }
    }
}

/// The identity of one way to fail (see [`OutcomeClass::fingerprint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FailureFingerprint(Fingerprint);

impl FailureFingerprint {
    /// The underlying digest.
    pub fn as_fingerprint(self) -> Fingerprint {
        self.0
    }
}

impl std::fmt::Display for FailureFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// One probed plan and where it landed.
#[derive(Debug, Clone)]
pub struct PlanOutcome {
    /// The probed plan (compiled, or shrunk during minimization).
    pub plan: ChaosPlan,
    /// The bucket the run landed in.
    pub outcome: OutcomeClass,
    /// Total chaos faults injected into the run (0 when the run errored
    /// before producing a report).
    pub faults_injected: u64,
}

impl PlanOutcome {
    /// The failure identity of this probe, or `None` for a clean run.
    pub fn fingerprint(&self) -> Option<FailureFingerprint> {
        self.outcome.fingerprint()
    }

    fn to_value(&self) -> json::Value {
        json::obj(vec![
            ("seed", json::Value::Int(self.plan.seed.into())),
            ("digest", json::Value::Str(format!("{:016x}", self.plan.digest()))),
            ("weight", json::Value::Int(self.plan.weight().into())),
            ("class", json::Value::Str(self.outcome.label().to_owned())),
            ("outcome", json::Value::Str(self.outcome.to_string())),
            ("faults_injected", json::Value::Int(self.faults_injected.into())),
        ])
    }
}

/// A failing plan delta-debugged down to its smallest reproducing form.
#[derive(Debug, Clone)]
pub struct MinimizedFind {
    /// The failing plan the minimization started from.
    pub original: ChaosPlan,
    /// The smallest plan that still reproduces the failure.
    pub minimized: ChaosPlan,
    /// The failure identity every kept cut reproduced.
    pub fingerprint: FailureFingerprint,
    /// The minimized plan's outcome (same fingerprint as `fingerprint`).
    pub outcome: OutcomeClass,
    /// The accepted cuts, in application order.
    pub steps: Vec<ShrinkStep>,
    /// Probe runs the minimization spent (baseline plus every candidate).
    pub trials: u64,
}

impl MinimizedFind {
    /// Weight of the original plan over weight of the minimized plan --
    /// "minimized 8.5x" means the fault schedule shrank 8.5-fold.
    pub fn shrink_ratio(&self) -> f64 {
        self.original.weight() as f64 / self.minimized.weight().max(1) as f64
    }

    /// `true` when every slot the minimized plan fires existed in the
    /// original -- the minimizer's invariant, exposed for tests.
    pub fn is_subset(&self) -> bool {
        self.minimized.is_subset_of(&self.original)
    }

    fn to_value(&self) -> json::Value {
        json::obj(vec![
            ("seed", json::Value::Int(self.original.seed.into())),
            (
                "original_digest",
                json::Value::Str(format!("{:016x}", self.original.digest())),
            ),
            (
                "minimized_digest",
                json::Value::Str(format!("{:016x}", self.minimized.digest())),
            ),
            ("original_weight", json::Value::Int(self.original.weight().into())),
            ("minimized_weight", json::Value::Int(self.minimized.weight().into())),
            (
                "shrink_ratio_per_mille",
                json::Value::Int((self.shrink_ratio() * 1000.0) as i128),
            ),
            ("fingerprint", json::Value::Str(self.fingerprint.to_string())),
            ("outcome", json::Value::Str(self.outcome.to_string())),
            (
                "steps",
                json::Value::Arr(
                    self.steps
                        .iter()
                        .map(|step| json::Value::Str(step.to_string()))
                        .collect(),
                ),
            ),
            ("trials", json::Value::Int(self.trials.into())),
        ])
    }
}

/// What a [`ChaosExplorer::hunt`] found: every probed plan's outcome plus
/// one [`MinimizedFind`] per distinct failure fingerprint.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// The subject that was swept.
    pub subject: String,
    /// Every swept plan's outcome, in sweep order.
    pub outcomes: Vec<PlanOutcome>,
    /// One minimized find per distinct failure fingerprint.
    pub finds: Vec<MinimizedFind>,
    /// Total probe runs executed (sweep plus all minimizations).
    pub trials: u64,
}

impl ExploreReport {
    /// How many swept plans failed (any non-clean bucket).
    pub fn failures(&self) -> usize {
        self.outcomes.iter().filter(|o| o.outcome.is_failure()).count()
    }

    /// Mean shrink ratio across the finds (0.0 with no finds).
    pub fn mean_shrink_ratio(&self) -> f64 {
        if self.finds.is_empty() {
            return 0.0;
        }
        self.finds.iter().map(MinimizedFind::shrink_ratio).sum::<f64>() / self.finds.len() as f64
    }

    /// Serializes the report as pretty-printed JSON through the trace
    /// format's encoder.  Ratios appear as integer per-mille values (the
    /// encoder is integers-only by design).
    pub fn to_json(&self) -> String {
        json::obj(vec![
            ("subject", json::Value::Str(self.subject.clone())),
            ("plans_tried", json::Value::Int((self.outcomes.len() as u64).into())),
            ("failures_found", json::Value::Int((self.failures() as u64).into())),
            ("finds", json::Value::Int((self.finds.len() as u64).into())),
            ("trials", json::Value::Int(self.trials.into())),
            (
                "mean_shrink_ratio_per_mille",
                json::Value::Int((self.mean_shrink_ratio() * 1000.0) as i128),
            ),
            (
                "outcomes",
                json::Value::Arr(self.outcomes.iter().map(PlanOutcome::to_value).collect()),
            ),
            (
                "minimized",
                json::Value::Arr(self.finds.iter().map(MinimizedFind::to_value).collect()),
            ),
        ])
        .to_pretty_string()
    }
}

/// The sweep/classify/shrink/fixture driver (see the module docs).
///
/// Borrows the runtime it probes on: every probe is an ordinary
/// [`Runtime::launch_with`], so a multi-partition runtime runs probes
/// concurrently and a busy one queues them -- the explorer needs no
/// scheduling machinery of its own.
#[derive(Debug)]
pub struct ChaosExplorer<'rt> {
    runtime: &'rt Runtime,
    subject: ExploreSubject,
}

impl<'rt> ChaosExplorer<'rt> {
    /// An explorer probing `subject` on `runtime`.
    pub fn new(runtime: &'rt Runtime, subject: ExploreSubject) -> Self {
        ChaosExplorer { runtime, subject }
    }

    /// The subject under exploration.
    pub fn subject(&self) -> &ExploreSubject {
        &self.subject
    }

    /// Runs the subject once under `plan` and classifies the outcome.
    ///
    /// # Errors
    ///
    /// Only *launch* failures (an invalid plan, a poisoned runtime) are
    /// errors; everything the run itself does -- faulting, hanging into
    /// the deadline, blowing a quota -- is data in the returned
    /// [`PlanOutcome`].
    pub fn probe(&self, plan: &ChaosPlan) -> Result<PlanOutcome, Error> {
        let session = self
            .runtime
            .launch_with((self.subject.program)(), self.subject.options(plan.clone()))?;
        let result = session.wait();
        Ok(Self::outcome_of(plan.clone(), &result))
    }

    /// Compiles one plan per seed and fans the probes out across the
    /// runtime's partitions through the admission scheduler, draining the
    /// results with [`Session::wait_async`](crate::Session::wait_async).
    /// Launches are issued in chunks sized to the runtime's capacity
    /// (partitions plus admission-queue depth), so arbitrarily long seed
    /// lists sweep without tripping the queue bound.
    ///
    /// # Errors
    ///
    /// As for [`ChaosExplorer::probe`].
    pub fn sweep(&self, seeds: &[u64], profile: ChaosProfile) -> Result<Vec<PlanOutcome>, Error> {
        let capacity = (self.runtime.partition_count() + self.runtime.config().admission_queue_depth).max(1);
        let mut outcomes = Vec::with_capacity(seeds.len());
        for chunk in seeds.chunks(capacity) {
            let mut in_flight = Vec::with_capacity(chunk.len());
            for &seed in chunk {
                let plan = ChaosPlan::compile(seed, profile);
                let session = self
                    .runtime
                    .launch_with((self.subject.program)(), self.subject.options(plan.clone()))?;
                in_flight.push((plan, session.wait_async()));
            }
            for (plan, future) in in_flight {
                let result = block_on(future);
                outcomes.push(Self::outcome_of(plan, &result));
            }
        }
        Ok(outcomes)
    }

    /// Delta-debugs a failing plan to the smallest one still reproducing
    /// its failure fingerprint: greedily tries every
    /// [`shrink_candidates`] cut (whole classes first, then schedule
    /// halves), keeps the first cut whose probe fails identically, and
    /// restarts from the shrunk plan until no cut survives.  Every kept
    /// plan is strictly lighter and a slot-subset of its parent, so the
    /// loop terminates.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::InvalidConfig`] when `plan` probes clean (only failing
    /// plans can be minimized); launch failures as for
    /// [`ChaosExplorer::probe`].
    pub fn minimize(&self, plan: &ChaosPlan) -> Result<MinimizedFind, Error> {
        let baseline = self.probe(plan)?;
        let mut trials = 1u64;
        let Some(target) = baseline.fingerprint() else {
            return Err(Error::invalid_config(
                "explore.plan",
                format!("plan {:016x} for seed {}", plan.digest(), plan.seed),
                "the plan probes clean; only failing plans can be minimized",
            ));
        };
        let mut current = plan.clone();
        let mut outcome = baseline.outcome;
        let mut steps = Vec::new();
        'shrinking: loop {
            for (step, candidate) in shrink_candidates(&current) {
                let probe = self.probe(&candidate)?;
                trials += 1;
                if probe.fingerprint() == Some(target) {
                    current = candidate;
                    outcome = probe.outcome;
                    steps.push(step);
                    // Restart: the accepted cut changes which further cuts
                    // exist (dropping a class removes its halvings).
                    continue 'shrinking;
                }
            }
            break;
        }
        Ok(MinimizedFind {
            original: plan.clone(),
            minimized: current,
            fingerprint: target,
            outcome,
            steps,
            trials,
        })
    }

    /// The whole loop: sweep `seeds`, then minimize one failing plan per
    /// distinct failure fingerprint (the first plan that exhibited it).
    ///
    /// # Errors
    ///
    /// As for [`ChaosExplorer::sweep`] and [`ChaosExplorer::minimize`].
    pub fn hunt(&self, seeds: &[u64], profile: ChaosProfile) -> Result<ExploreReport, Error> {
        let outcomes = self.sweep(seeds, profile)?;
        let mut trials = outcomes.len() as u64;
        let mut seen: Vec<FailureFingerprint> = Vec::new();
        let mut finds = Vec::new();
        for outcome in &outcomes {
            let Some(fingerprint) = outcome.fingerprint() else {
                continue;
            };
            if seen.contains(&fingerprint) {
                continue;
            }
            seen.push(fingerprint);
            let find = self.minimize(&outcome.plan)?;
            trials += find.trials;
            finds.push(find);
        }
        Ok(ExploreReport {
            subject: self.subject.name.clone(),
            outcomes,
            finds,
            trials,
        })
    }

    /// Turns a find into a checked-in regression artifact: re-runs the
    /// subject under the minimized plan on a **dedicated single-partition
    /// recording runtime** (same execution-relevant configuration as the
    /// explorer's runtime) and saves the durable trace in
    /// [`Trace::emit_test`] fixture form at `fixture`.  The returned trace
    /// replays fingerprint-identically via [`Runtime::replay_trace`] on
    /// any fresh runtime configured with the minimized plan.
    ///
    /// The recording rides a dedicated runtime because a durable trace
    /// header pins its runtime's *configured* plan digest -- per-launch
    /// overrides never record (see [`Runtime::launch_with`]).
    ///
    /// # Errors
    ///
    /// [`ErrorKind::TraceMismatch`](crate::ErrorKind) when the re-run does
    /// not reproduce the find's failure fingerprint; trace I/O and launch
    /// errors otherwise.
    pub fn emit_fixture(&self, find: &MinimizedFind, fixture: &Path) -> Result<Trace, Error> {
        let mut config = self.runtime.config().clone();
        config.partitions = 1;
        config.chaos = Some(find.minimized.clone());
        let recording = fixture.with_extension("rec");
        config.record_to = Some(recording.clone());
        let runtime = Runtime::new(config)?;
        let result = runtime
            .launch_with((self.subject.program)(), self.subject.stage_options())?
            .wait();
        let reproduced = OutcomeClass::classify(&result);
        if reproduced.fingerprint() != Some(find.fingerprint) {
            return Err(Error::trace_mismatch(
                "chaos fixture",
                format!(
                    "the minimized plan reproduced {reproduced} instead of failure {} while recording the fixture",
                    find.fingerprint
                ),
            ));
        }
        // A faulted run is an Ok(report); anything else was caught above.
        drop(result);
        let trace = Trace::open(&recording)?;
        trace.emit_test(fixture)?;
        let _ = std::fs::remove_file(&recording);
        Ok(trace)
    }

    /// Builds the outcome row for one finished probe.
    fn outcome_of(plan: ChaosPlan, result: &Result<RunReport, Error>) -> PlanOutcome {
        let outcome = OutcomeClass::classify(result);
        let faults_injected = result
            .as_ref()
            .map(|report| report.faults_injected.iter().sum())
            .unwrap_or(0);
        PlanOutcome {
            plan,
            outcome,
            faults_injected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ireplayer_log::ThreadId;

    fn failing_outcome(message: &str) -> OutcomeClass {
        OutcomeClass::Faulted(FaultKind::AssertionFailure {
            message: message.to_owned(),
        })
    }

    #[test]
    fn fingerprints_identify_failures_not_runs() {
        assert_eq!(OutcomeClass::Clean.fingerprint(), None);
        let a = failing_outcome("posted != acked").fingerprint().unwrap();
        let b = failing_outcome("posted != acked").fingerprint().unwrap();
        let c = failing_outcome("other bug").fingerprint().unwrap();
        assert_eq!(a, b, "the same failure has one identity");
        assert_ne!(a, c, "different messages are different failures");
        assert_ne!(
            OutcomeClass::Hang.fingerprint(),
            OutcomeClass::Divergence.fingerprint(),
            "buckets are part of the identity"
        );
    }

    #[test]
    fn classification_buckets_run_results() {
        let faulted = Ok(RunReport {
            program: "p".into(),
            wall_time: std::time::Duration::ZERO,
            outcome: RunOutcome::Faulted(crate::fault::FaultRecord {
                thread: ThreadId(1),
                kind: FaultKind::AssertionFailure { message: "x".into() },
                site: None,
                epoch: 0,
            }),
            epochs: 1,
            threads: 1,
            sync_events: 0,
            syscalls: 0,
            allocations: 0,
            frees: 0,
            bytes_allocated: 0,
            replay_attempts: 0,
            divergences: 0,
            final_heap_hash: 0,
            replay_validations: Vec::new(),
            watch_hits: Vec::new(),
            faults: Vec::new(),
            faults_injected: Vec::new(),
        });
        assert!(matches!(OutcomeClass::classify(&faulted), OutcomeClass::Faulted(_)));
        assert_eq!(
            OutcomeClass::classify(&Err(Error::quota_exhausted("epochs", 5, 5))),
            OutcomeClass::QuotaExhausted
        );
        assert_eq!(
            OutcomeClass::classify(&Err(Error::quiescence_timeout(vec![1]))),
            OutcomeClass::Hang
        );
        assert_eq!(
            OutcomeClass::classify(&Err(Error::replay_budget_exhausted(3))),
            OutcomeClass::Divergence
        );
        assert_eq!(
            OutcomeClass::classify(&Err(Error::session_active())),
            OutcomeClass::Failed(ErrorKind::SessionActive)
        );
    }

    #[test]
    fn report_json_carries_the_headline_numbers() {
        let plan = ChaosPlan::compile(3, ChaosProfile::heavy());
        let minimized = plan.without_class(ireplayer_sys::FaultClass::ShortRead);
        let fingerprint = failing_outcome("bug").fingerprint().unwrap();
        let report = ExploreReport {
            subject: "unit".into(),
            outcomes: vec![
                PlanOutcome {
                    plan: plan.clone(),
                    outcome: OutcomeClass::Clean,
                    faults_injected: 4,
                },
                PlanOutcome {
                    plan: plan.clone(),
                    outcome: failing_outcome("bug"),
                    faults_injected: 9,
                },
            ],
            finds: vec![MinimizedFind {
                original: plan.clone(),
                minimized: minimized.clone(),
                fingerprint,
                outcome: failing_outcome("bug"),
                steps: vec![ShrinkStep::DropClass(ireplayer_sys::FaultClass::ShortRead)],
                trials: 7,
            }],
            trials: 9,
        };
        assert_eq!(report.failures(), 1);
        assert!(report.mean_shrink_ratio() > 1.0);
        let json = report.to_json();
        for needle in [
            "\"subject\": \"unit\"",
            "\"plans_tried\": 2",
            "\"failures_found\": 1",
            "\"trials\": 9",
            "mean_shrink_ratio_per_mille",
            "drop short-read",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn empty_reports_do_not_divide_by_zero() {
        let report = ExploreReport {
            subject: "empty".into(),
            outcomes: Vec::new(),
            finds: Vec::new(),
            trials: 0,
        };
        assert_eq!(report.failures(), 0);
        assert_eq!(report.mean_shrink_ratio(), 0.0);
        assert!(report.to_json().contains("\"plans_tried\": 0"));
    }
}
