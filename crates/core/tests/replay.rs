//! Integration tests of the record/rollback/replay cycle inside the core
//! crate (cross-crate scenarios live in the workspace-level `tests/`
//! directory).

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use ireplayer::{Config, EpochDecision, EpochView, Program, ReplayRequest, Runtime, Step, ToolHook};

fn config() -> Config {
    Config::builder()
        .arena_size(8 << 20)
        .heap_block_size(128 << 10)
        .max_replay_attempts(3)
        .quiescence_timeout_ms(5_000)
        .build()
        .unwrap()
}

/// A hook that requests one replay of the final epoch, with no watchpoints.
struct ReplayOnce {
    requested: AtomicU32,
    replays_seen: AtomicU32,
    matched: AtomicU32,
}

impl ReplayOnce {
    fn new() -> Arc<Self> {
        Arc::new(ReplayOnce {
            requested: AtomicU32::new(0),
            replays_seen: AtomicU32::new(0),
            matched: AtomicU32::new(0),
        })
    }
}

impl ToolHook for ReplayOnce {
    fn name(&self) -> &str {
        "replay-once"
    }

    fn at_epoch_end(&self, _view: &dyn EpochView) -> EpochDecision {
        if self.requested.fetch_add(1, Ordering::SeqCst) == 0 {
            EpochDecision::Replay(ReplayRequest::because("validation replay"))
        } else {
            EpochDecision::Continue
        }
    }

    fn after_replay(&self, _view: &dyn EpochView, matched: bool, _attempts: u32) {
        self.replays_seen.fetch_add(1, Ordering::SeqCst);
        if matched {
            self.matched.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// A deterministic multithreaded workload: several workers move values
/// between heap objects under locks, do file and socket IO, and the main
/// thread aggregates the results.
fn mixed_program() -> Program {
    Program::new("mixed", |ctx| {
        let total = ctx.global("total", 8);
        let lock = ctx.mutex();
        let barrier = ctx.barrier(4);

        let fd = ctx.open_create("scratch.dat").expect("open scratch file");
        ctx.write(fd, b"header--");

        let mut workers = Vec::new();
        for worker_index in 0..3u64 {
            workers.push(ctx.spawn("worker", move |ctx| {
                let buffer = ctx.alloc(256);
                for i in 0..32u64 {
                    ctx.write_u64(buffer + (i % 16) * 8, i * worker_index);
                }
                let checksum = ctx.work(500) ^ worker_index;
                ctx.lock(lock);
                let value = ctx.read_u64(total);
                ctx.write_u64(total, value + checksum % 97 + 1);
                ctx.unlock(lock);
                ctx.barrier_wait(barrier);
                ctx.free(buffer);
                Step::Done
            }));
        }
        ctx.barrier_wait(barrier);
        for worker in workers {
            ctx.join(worker);
        }
        let time = ctx.now_ns();
        let sum = ctx.read_u64(total);
        ctx.write(fd, format!("sum={sum} t={}", time % 7).as_bytes());
        ctx.close(fd);
        Step::Done
    })
}

#[test]
fn matching_replay_reproduces_the_heap_image() {
    let runtime = Runtime::new(config()).unwrap();
    let hook = ReplayOnce::new();
    runtime.add_hook(hook.clone());
    let report = runtime.run(mixed_program()).unwrap();

    assert!(report.outcome.is_success(), "faults: {:?}", report.faults);
    assert_eq!(report.replay_validations.len(), 1);
    let validation = &report.replay_validations[0];
    assert!(validation.matched, "replay did not find a matching schedule");
    let diff = validation.image_diff.expect("image validation enabled");
    assert_eq!(
        diff.bytes_different, 0,
        "identical replay must reproduce the heap image exactly: {diff}"
    );
    assert_eq!(hook.replays_seen.load(Ordering::SeqCst), 1);
    assert_eq!(hook.matched.load(Ordering::SeqCst), 1);
    assert!(report.replay_attempts >= 1);
}

#[test]
fn replay_reproduces_recorded_syscall_results() {
    // The recorded gettimeofday value must be returned during replay; if the
    // replay re-invoked the clock the derived value stored in the heap would
    // differ and the image diff would be non-zero.
    let runtime = Runtime::new(config()).unwrap();
    let hook = ReplayOnce::new();
    runtime.add_hook(hook.clone());
    let report = runtime
        .run(Program::new("time-dependent", |ctx| {
            let slot = ctx.global("slot", 8);
            let now = ctx.now_ns();
            ctx.write_u64(slot, now);
            let cell = ctx.alloc(64);
            ctx.write_u64(cell, now ^ 0xabcd);
            Step::Done
        }))
        .unwrap();
    assert!(report.outcome.is_success());
    let validation = &report.replay_validations[0];
    assert!(validation.matched);
    assert_eq!(validation.image_diff.unwrap().bytes_different, 0);
}

#[test]
fn fault_diagnosis_replay_runs_and_reports() {
    // An explicit crash triggers a diagnostic replay under the default fault
    // policy; the run reports the fault and the replay validation.
    let runtime = Runtime::new(config()).unwrap();
    let report = runtime
        .run(Program::new("crasher", |ctx| {
            let cell = ctx.alloc(32);
            ctx.write_u64(cell, 7);
            if ctx.read_u64(cell) == 7 {
                ctx.crash("invariant violated on purpose");
            }
            Step::Done
        }))
        .unwrap();
    assert!(!report.outcome.is_success());
    assert!(report.faults.iter().filter(|f| f.thread.0 == 0).count() >= 1);
    assert_eq!(report.replay_validations.len(), 1);
    assert!(report.replay_validations[0].matched);
}

#[test]
fn passthrough_mode_records_nothing_and_cannot_replay() {
    let config = Config::builder()
        .arena_size(8 << 20)
        .heap_block_size(128 << 10)
        .mode(ireplayer::RunMode::Passthrough)
        .build()
        .unwrap();
    let runtime = Runtime::new(config).unwrap();
    let report = runtime
        .run(Program::new("plain", |ctx| {
            let lock = ctx.mutex();
            ctx.lock(lock);
            ctx.unlock(lock);
            Step::Done
        }))
        .unwrap();
    assert!(report.outcome.is_success());
    assert_eq!(report.sync_events, 0);
    assert!(report.replay_validations.is_empty());
}

#[test]
fn deferred_close_keeps_descriptors_reproducible() {
    // Open/close/open: with close deferred to the next epoch the second open
    // must receive a *different* descriptor, which is what makes the
    // recorded descriptor values reproducible during replay.
    let runtime = Runtime::new(config()).unwrap();
    runtime.os().create_file("a.txt", vec![1, 2, 3]);
    let hook = ReplayOnce::new();
    runtime.add_hook(hook);
    let report = runtime
        .run(Program::new("fds", |ctx| {
            let first = ctx.open("a.txt").unwrap();
            ctx.close(first);
            let second = ctx.open("a.txt").unwrap();
            let cell = ctx.global("fds", 16);
            ctx.write_u64(cell, first as u64);
            ctx.write_u64(cell + 8, second as u64);
            ctx.assert_that(first != second, "close must be deferred");
            Step::Done
        }))
        .unwrap();
    assert!(report.outcome.is_success(), "faults: {:?}", report.faults);
    assert!(report.replay_validations[0].matched);
    assert_eq!(report.replay_validations[0].image_diff.unwrap().bytes_different, 0);
}
