//! Event and identifier types shared by the recording and replay phases.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of an application thread.
///
/// Thread ids are assigned in creation order (thread creation is serialized
/// by a global lock, §3.2.1), so they are identical across the original
/// execution and every re-execution -- one of the system states the paper's
/// identical replay preserves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct ThreadId(pub u32);

impl ThreadId {
    /// The main thread.
    pub const MAIN: ThreadId = ThreadId(0);

    /// Returns the id as an index into per-thread tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of a synchronization variable (mutex, condition variable,
/// barrier, or one of the runtime's internal global locks).
///
/// The paper reaches the per-variable list through a shadow object whose
/// pointer is stored in the first word of the application's synchronization
/// object; here the handle the application holds *is* the indirection, and
/// `VarId` indexes the runtime's shadow-object table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct VarId(pub u32);

impl VarId {
    /// Returns the id as an index into the shadow-object table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.0)
    }
}

/// The synchronization operations whose order (and, where relevant, result)
/// is recorded (§3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncOp {
    /// A mutex acquisition.
    MutexLock,
    /// A mutex try-lock; the recorded result says whether it succeeded.
    /// Only successful try-locks enter the per-variable list.
    MutexTryLock,
    /// Wake-up of a thread that was waiting on a condition variable.  The
    /// paper records the wake-up order, not the order of signal/broadcast.
    CondWake,
    /// Completion of a barrier wait; the recorded result is the value
    /// returned to the application (serial thread or not).
    BarrierWait,
    /// Creation of a child thread (serialized by the global creation lock).
    ThreadCreate,
    /// Joining a child thread.
    ThreadJoin,
    /// Acquisition of the super heap's block-fetch lock (§2.2.4), recorded
    /// so that block-to-thread assignment replays identically.
    SuperHeapFetch,
    /// Registration of a new synchronization variable (mutex, condition
    /// variable, barrier).  Recorded so that the identifier a replayed
    /// registration receives equals the original one, mirroring the paper's
    /// shadow-object indirection.
    VarRegister,
}

impl SyncOp {
    /// Stable numeric code, used by the lock-free per-variable list to pack
    /// an entry into a single atomic word.
    pub fn code(self) -> u8 {
        match self {
            SyncOp::MutexLock => 0,
            SyncOp::MutexTryLock => 1,
            SyncOp::CondWake => 2,
            SyncOp::BarrierWait => 3,
            SyncOp::ThreadCreate => 4,
            SyncOp::ThreadJoin => 5,
            SyncOp::SuperHeapFetch => 6,
            SyncOp::VarRegister => 7,
        }
    }

    /// Inverse of [`SyncOp::code`].
    pub fn from_code(code: u8) -> Option<SyncOp> {
        Some(match code {
            0 => SyncOp::MutexLock,
            1 => SyncOp::MutexTryLock,
            2 => SyncOp::CondWake,
            3 => SyncOp::BarrierWait,
            4 => SyncOp::ThreadCreate,
            5 => SyncOp::ThreadJoin,
            6 => SyncOp::SuperHeapFetch,
            7 => SyncOp::VarRegister,
            _ => return None,
        })
    }
}

impl fmt::Display for SyncOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SyncOp::MutexLock => "lock",
            SyncOp::MutexTryLock => "trylock",
            SyncOp::CondWake => "cond-wake",
            SyncOp::BarrierWait => "barrier",
            SyncOp::ThreadCreate => "create",
            SyncOp::ThreadJoin => "join",
            SyncOp::SuperHeapFetch => "superheap",
            SyncOp::VarRegister => "var-register",
        };
        f.write_str(name)
    }
}

/// The recorded outcome of a recordable system call (§2.2.3).
///
/// Repeatable calls are not recorded; revocable calls are re-issued during
/// replay; deferrable calls are queued; irrevocable calls end the epoch.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SyscallOutcome {
    /// Primary return value (e.g. a byte count, a file descriptor, 0/-errno).
    pub ret: i64,
    /// Out-of-band data returned by the call (e.g. bytes read from a
    /// socket, the bytes of a `gettimeofday` result).
    pub data: Vec<u8>,
}

impl SyscallOutcome {
    /// An outcome carrying only a return value.
    pub fn ret(ret: i64) -> Self {
        SyscallOutcome { ret, data: Vec::new() }
    }

    /// An outcome carrying a return value and payload bytes.
    pub fn with_data(ret: i64, data: Vec<u8>) -> Self {
        SyscallOutcome { ret, data }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A synchronization operation on `var`.
    Sync {
        /// The synchronization variable involved.
        var: VarId,
        /// The operation performed.
        op: SyncOp,
        /// The result returned to the application (try-lock success, barrier
        /// serial flag, child thread id for `ThreadCreate`, ...).
        result: i64,
    },
    /// A system call.  `code` identifies the call (the `ireplayer-sys` crate
    /// defines the mapping); `outcome` is stored only for recordable calls.
    Syscall {
        /// Call identifier.
        code: u16,
        /// Recorded outcome, replayed without re-executing the call.
        outcome: SyscallOutcome,
    },
}

impl EventKind {
    /// Returns the synchronization variable of a sync event.
    pub fn var(&self) -> Option<VarId> {
        match self {
            EventKind::Sync { var, .. } => Some(*var),
            EventKind::Syscall { .. } => None,
        }
    }

    /// Returns `true` if two events describe the same *operation*, ignoring
    /// recorded results.  Replay uses this to decide whether the operation a
    /// thread is about to perform matches the recorded schedule; results are
    /// then supplied from the log rather than compared.
    pub fn same_operation(&self, other: &EventKind) -> bool {
        match (self, other) {
            (EventKind::Sync { var: v1, op: o1, .. }, EventKind::Sync { var: v2, op: o2, .. }) => v1 == v2 && o1 == o2,
            (EventKind::Syscall { code: c1, .. }, EventKind::Syscall { code: c2, .. }) => c1 == c2,
            _ => false,
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Sync { var, op, result } => write!(f, "{op}({var})={result}"),
            EventKind::Syscall { code, outcome } => {
                write!(f, "syscall#{code}={}", outcome.ret)
            }
        }
    }
}

/// An event stored in a per-thread list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Thread that performed the event.
    pub thread: ThreadId,
    /// Index of the event within its per-thread list.
    pub index: u32,
    /// What happened.
    pub kind: EventKind,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}: {}", self.thread, self.index, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_compactly() {
        assert_eq!(ThreadId(3).to_string(), "T3");
        assert_eq!(VarId(9).to_string(), "V9");
        assert_eq!(ThreadId::MAIN.index(), 0);
        assert_eq!(VarId(4).index(), 4);
    }

    #[test]
    fn same_operation_ignores_results() {
        let a = EventKind::Sync {
            var: VarId(1),
            op: SyncOp::MutexLock,
            result: 0,
        };
        let b = EventKind::Sync {
            var: VarId(1),
            op: SyncOp::MutexLock,
            result: 99,
        };
        let c = EventKind::Sync {
            var: VarId(2),
            op: SyncOp::MutexLock,
            result: 0,
        };
        let d = EventKind::Sync {
            var: VarId(1),
            op: SyncOp::MutexTryLock,
            result: 0,
        };
        assert!(a.same_operation(&b));
        assert!(!a.same_operation(&c));
        assert!(!a.same_operation(&d));

        let s1 = EventKind::Syscall {
            code: 7,
            outcome: SyscallOutcome::ret(1),
        };
        let s2 = EventKind::Syscall {
            code: 7,
            outcome: SyscallOutcome::with_data(2, vec![1, 2, 3]),
        };
        let s3 = EventKind::Syscall {
            code: 8,
            outcome: SyscallOutcome::ret(1),
        };
        assert!(s1.same_operation(&s2));
        assert!(!s1.same_operation(&s3));
        assert!(!s1.same_operation(&a));
    }

    #[test]
    fn var_accessor_distinguishes_sync_and_syscall() {
        let sync = EventKind::Sync {
            var: VarId(5),
            op: SyncOp::BarrierWait,
            result: 1,
        };
        let sys = EventKind::Syscall {
            code: 3,
            outcome: SyscallOutcome::default(),
        };
        assert_eq!(sync.var(), Some(VarId(5)));
        assert_eq!(sys.var(), None);
    }

    #[test]
    fn events_display_thread_and_index() {
        let e = Event {
            thread: ThreadId(2),
            index: 14,
            kind: EventKind::Sync {
                var: VarId(1),
                op: SyncOp::MutexLock,
                result: 0,
            },
        };
        let text = e.to_string();
        assert!(text.contains("T2"));
        assert!(text.contains("#14"));
        assert!(text.contains("lock"));
    }
}
