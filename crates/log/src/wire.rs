//! Wire encoding of recorded events, used by the durable trace format.
//!
//! [`crate::ThreadList`] and [`crate::VarList`] hold an epoch's order log in
//! memory; this module defines the stable little-endian byte encoding of
//! their contents ([`Event`] and [`VarEntry`]) so the runtime crate can
//! frame whole epochs on disk.  The encoding is versioned by the container
//! (the trace header), not per event: every change to these functions is a
//! trace-format version bump.
//!
//! All decoders are total: malformed or truncated input yields
//! [`WireError`], never a panic, so corrupted trace files surface as typed
//! errors.

use crate::event::{Event, EventKind, SyncOp, SyscallOutcome, ThreadId, VarId};
use crate::var_list::VarEntry;

/// A malformed or truncated wire buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What the decoder was reading when the buffer ran out or made no
    /// sense.
    pub context: &'static str,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed wire data while decoding {}", self.context)
    }
}

impl std::error::Error for WireError {}

/// A bounds-checked read cursor over a wire buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads exactly `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if fewer than `n` bytes remain.
    pub fn bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError { context });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] at end of buffer.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        Ok(self.bytes(1, context)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if the buffer is too short.
    pub fn u16(&mut self, context: &'static str) -> Result<u16, WireError> {
        let b = self.bytes(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if the buffer is too short.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        let b = self.bytes(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if the buffer is too short.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        let b = self.bytes(8, context)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if the buffer is too short.
    pub fn i64(&mut self, context: &'static str) -> Result<i64, WireError> {
        Ok(self.u64(context)? as i64)
    }

    /// Reads a length-prefixed byte vector (`u32` length).
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if the buffer is too short for the prefix or
    /// the payload.
    pub fn blob(&mut self, context: &'static str) -> Result<Vec<u8>, WireError> {
        let len = self.u32(context)? as usize;
        Ok(self.bytes(len, context)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation or invalid UTF-8.
    pub fn string(&mut self, context: &'static str) -> Result<String, WireError> {
        String::from_utf8(self.blob(context)?).map_err(|_| WireError { context })
    }
}

/// Appends a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, value: u32) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

/// Converts a collection length to the `u32` the wire format stores.
///
/// The encoders used to cast with `as u32`, which silently truncates a
/// length above `u32::MAX` and corrupts the frame; an oversized log must be
/// refused instead.
///
/// # Errors
///
/// Returns [`WireError`] if `len` does not fit in a `u32`.
pub fn length_u32(len: usize, context: &'static str) -> Result<u32, WireError> {
    u32::try_from(len).map_err(|_| WireError { context })
}

/// Appends a length-prefixed byte slice (`u32` length).
///
/// # Errors
///
/// Returns [`WireError`] if the slice is longer than `u32::MAX` bytes.
pub fn put_blob(buf: &mut Vec<u8>, value: &[u8]) -> Result<(), WireError> {
    put_u32(buf, length_u32(value.len(), "blob length")?);
    buf.extend_from_slice(value);
    Ok(())
}

/// Appends a length-prefixed UTF-8 string.
///
/// # Errors
///
/// Returns [`WireError`] if the string is longer than `u32::MAX` bytes.
pub fn put_string(buf: &mut Vec<u8>, value: &str) -> Result<(), WireError> {
    put_blob(buf, value.as_bytes())
}

/// Tag byte distinguishing the two event kinds on the wire.
const TAG_SYNC: u8 = 1;
const TAG_SYSCALL: u8 = 2;

/// Appends one [`Event`] from a per-thread order log.
///
/// # Errors
///
/// Returns [`WireError`] if a syscall payload is longer than `u32::MAX`
/// bytes.
pub fn put_event(buf: &mut Vec<u8>, event: &Event) -> Result<(), WireError> {
    put_u32(buf, event.thread.0);
    put_u32(buf, event.index);
    match &event.kind {
        EventKind::Sync { var, op, result } => {
            buf.push(TAG_SYNC);
            put_u32(buf, var.0);
            buf.push(op.code());
            put_u64(buf, *result as u64);
        }
        EventKind::Syscall { code, outcome } => {
            buf.push(TAG_SYSCALL);
            buf.extend_from_slice(&code.to_le_bytes());
            put_u64(buf, outcome.ret as u64);
            put_blob(buf, &outcome.data)?;
        }
    }
    Ok(())
}

/// Decodes one [`Event`] written by [`put_event`].
///
/// # Errors
///
/// Returns [`WireError`] on truncation, an unknown kind tag, or an unknown
/// synchronization-operation code.
pub fn read_event(reader: &mut Reader<'_>) -> Result<Event, WireError> {
    let thread = ThreadId(reader.u32("event thread id")?);
    let index = reader.u32("event index")?;
    let kind = match reader.u8("event kind tag")? {
        TAG_SYNC => {
            let var = VarId(reader.u32("sync var id")?);
            let code = reader.u8("sync op code")?;
            let op = SyncOp::from_code(code).ok_or(WireError {
                context: "sync op code",
            })?;
            let result = reader.u64("sync result")? as i64;
            EventKind::Sync { var, op, result }
        }
        TAG_SYSCALL => {
            let code = reader.u16("syscall code")?;
            let ret = reader.u64("syscall return value")? as i64;
            let data = reader.blob("syscall data")?;
            EventKind::Syscall {
                code,
                outcome: SyscallOutcome { ret, data },
            }
        }
        _ => {
            return Err(WireError {
                context: "event kind tag",
            })
        }
    };
    Ok(Event { thread, index, kind })
}

/// Appends one [`VarEntry`] from a per-variable order log.
pub fn put_var_entry(buf: &mut Vec<u8>, entry: &VarEntry) {
    put_u32(buf, entry.thread.0);
    buf.push(entry.op.code());
    put_u32(buf, entry.thread_index);
}

/// Decodes one [`VarEntry`] written by [`put_var_entry`].
///
/// # Errors
///
/// Returns [`WireError`] on truncation or an unknown operation code.
pub fn read_var_entry(reader: &mut Reader<'_>) -> Result<VarEntry, WireError> {
    let thread = ThreadId(reader.u32("var entry thread")?);
    let code = reader.u8("var entry op code")?;
    let op = SyncOp::from_code(code).ok_or(WireError {
        context: "var entry op code",
    })?;
    let thread_index = reader.u32("var entry thread index")?;
    Ok(VarEntry {
        thread,
        op,
        thread_index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                thread: ThreadId(0),
                index: 0,
                kind: EventKind::Sync {
                    var: VarId(3),
                    op: SyncOp::MutexLock,
                    result: -1,
                },
            },
            Event {
                thread: ThreadId(7),
                index: 42,
                kind: EventKind::Syscall {
                    code: 14,
                    outcome: SyscallOutcome {
                        ret: 1024,
                        data: vec![1, 2, 3, 255],
                    },
                },
            },
        ]
    }

    #[test]
    fn events_roundtrip() {
        let mut buf = Vec::new();
        let events = sample_events();
        for event in &events {
            put_event(&mut buf, event).unwrap();
        }
        let mut reader = Reader::new(&buf);
        for event in &events {
            assert_eq!(&read_event(&mut reader).unwrap(), event);
        }
        assert_eq!(reader.remaining(), 0);
    }

    #[test]
    fn var_entries_roundtrip() {
        let entry = VarEntry {
            thread: ThreadId(5),
            op: SyncOp::BarrierWait,
            thread_index: 99,
        };
        let mut buf = Vec::new();
        put_var_entry(&mut buf, &entry);
        let mut reader = Reader::new(&buf);
        assert_eq!(read_var_entry(&mut reader).unwrap(), entry);
    }

    #[test]
    fn oversized_lengths_are_refused_instead_of_truncated() {
        // `as u32` would wrap these to small values and corrupt the frame;
        // the checked conversion must refuse them as typed errors.
        assert_eq!(length_u32(0, "t").unwrap(), 0);
        assert_eq!(length_u32(u32::MAX as usize, "t").unwrap(), u32::MAX);
        let error = length_u32(u32::MAX as usize + 1, "oversized log").unwrap_err();
        assert_eq!(error.context, "oversized log");
        assert!(error.to_string().contains("oversized log"));
    }

    #[test]
    fn truncated_and_corrupted_buffers_error_without_panicking() {
        let mut buf = Vec::new();
        for event in &sample_events() {
            put_event(&mut buf, event).unwrap();
        }
        // Every prefix either decodes cleanly or errors; none may panic.
        for cut in 0..buf.len() {
            let mut reader = Reader::new(&buf[..cut]);
            while reader.remaining() > 0 {
                if read_event(&mut reader).is_err() {
                    break;
                }
            }
        }
        // An unknown kind tag is rejected.
        let mut bad = Vec::new();
        put_u32(&mut bad, 0);
        put_u32(&mut bad, 0);
        bad.push(99);
        assert!(read_event(&mut Reader::new(&bad)).is_err());
    }
}
